// Reproduces Figure 7 of the paper: recall (7a/7b) and precision (7c/7d) of
// BlockSketch vs the EO and INV baselines, under standard blocking and
// Hamming LSH blocking, on all three data sets.
//
// Shapes to reproduce (Sec. 7.2):
//  - 7a: EO's recall slightly above BlockSketch (within ~0.01-0.04); INV
//    clearly below (double metaphone misses perturbed pairs); DBLP/NCVR
//    above LAB (longer blocking keys tolerate perturbation better).
//  - 7b: LSH blocking lifts recall for BlockSketch (~10%) and EO (~8%);
//    INV cannot use LSH.
//  - 7c: BlockSketch precision clearly above EO (-18%) and INV (-21%).
//  - 7d: LSH redundancy costs both methods some precision; BlockSketch
//    stays on top (paper: close to 0.75 on average).

#include <cstdio>

#include "bench_json.h"
#include "quality_runner.h"

namespace sketchlink::bench {
namespace {

void Run(size_t threads) {
  Banner("Figure 7 — recall & precision, BlockSketch vs EO vs INV",
         "Sub-figures: (a) recall/standard, (b) recall/LSH, (c) precision/"
         "standard, (d) precision/LSH.");
  std::printf("threads: %zu\n", threads);

  const auto results =
      RunQualityMatrix(/*entities=*/3000, /*copies=*/12, threads);

  const auto print_section = [&](const char* title, const char* blocking,
                                 bool recall) {
    std::printf("\n--- %s ---\n", title);
    std::printf("%8s %14s %10s\n", "dataset", "method",
                recall ? "recall" : "precision");
    for (const ExperimentResult& result : results) {
      if (result.blocking != blocking) continue;
      std::printf("%8s %14s %10.3f\n", result.dataset.c_str(),
                  result.method.c_str(),
                  recall ? result.report.quality.recall
                         : result.report.quality.precision);
    }
  };

  print_section("Fig. 7a  recall, standard blocking", "standard", true);
  print_section("Fig. 7b  recall, LSH blocking", "lsh", true);
  print_section("Fig. 7c  precision, standard blocking", "standard", false);
  print_section("Fig. 7d  precision, LSH blocking", "lsh", false);

  BenchJsonWriter json("fig7_quality", threads);
  for (const ExperimentResult& result : results) {
    JsonFields& row = json.AddResult();
    row.Add("dataset", result.dataset);
    AddReportFields(&row, result.report);
  }
  json.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(sketchlink::bench::ParseThreads(argc, argv));
  return 0;
}

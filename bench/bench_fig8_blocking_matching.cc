// Reproduces Figure 8 of the paper: time to perform the blocking step
// (8a standard / 8b LSH) and to resolve the query set Q during the matching
// step (8c standard / 8d LSH), for BlockSketch vs EO vs INV.
//
// Shapes to reproduce (Sec. 7.2):
//  - 8a/8b: EO and INV block records slightly faster than BlockSketch
//    (which pays lambda*rho representative comparisons per insert).
//  - 8c: BlockSketch resolves Q about 2x faster than EO and 1.5x faster
//    than INV (both compare all records in a block).
//  - 8d: under LSH both BlockSketch and EO slow ~3x due to redundancy.

#include <cstdio>

#include "bench_json.h"
#include "quality_runner.h"

namespace sketchlink::bench {
namespace {

void Run(size_t threads, const std::string& metrics_out) {
  Banner("Figure 8 — blocking & matching times",
         "Sub-figures: (a) blocking/standard, (b) blocking/LSH, (c) "
         "matching/standard, (d) matching/LSH.");
  std::printf("threads: %zu\n", threads);

  MetricsSession metrics(metrics_out);
  const auto results =
      RunQualityMatrix(/*entities=*/3000, /*copies=*/12, threads, &metrics);

  const auto print_section = [&](const char* title, const char* blocking,
                                 bool blocking_phase) {
    std::printf("\n--- %s ---\n", title);
    std::printf("%8s %14s %14s %16s\n", "dataset", "method", "seconds",
                "comparisons");
    for (const ExperimentResult& result : results) {
      if (result.blocking != blocking) continue;
      std::printf("%8s %14s %14.4f %16llu\n", result.dataset.c_str(),
                  result.method.c_str(),
                  blocking_phase ? result.report.blocking_seconds
                                 : result.report.matching_seconds,
                  static_cast<unsigned long long>(result.report.comparisons));
    }
  };

  print_section("Fig. 8a  blocking time, standard", "standard", true);
  print_section("Fig. 8b  blocking time, LSH", "lsh", true);
  print_section("Fig. 8c  matching time, standard", "standard", false);
  print_section("Fig. 8d  matching time, LSH", "lsh", false);

  BenchJsonWriter json("fig8_blocking_matching", threads);
  for (const ExperimentResult& result : results) {
    JsonFields& row = json.AddResult();
    row.Add("dataset", result.dataset);
    AddReportFields(&row, result.report);
  }
  json.Finish();
  metrics.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(sketchlink::bench::ParseThreads(argc, argv),
                         sketchlink::bench::ParseMetricsOut(argc, argv));
  return 0;
}

#ifndef SKETCHLINK_BENCH_BENCH_UTIL_H_
#define SKETCHLINK_BENCH_BENCH_UTIL_H_

// Shared plumbing for the paper-reproduction benchmark binaries. Each binary
// regenerates one table or figure of "Summarization Algorithms for Record
// Linkage" (EDBT 2018) at laptop scale and prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the scale mapping.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"

#include "blocking/presets.h"
#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "datagen/perturb.h"
#include "kv/env.h"
#include "linkage/engine.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace sketchlink::bench {

/// The three evaluation data sets, in the paper's presentation order.
inline std::vector<datagen::DatasetKind> AllKinds() {
  return {datagen::DatasetKind::kDblp, datagen::DatasetKind::kNcvr,
          datagen::DatasetKind::kLab};
}

/// Parses `--threads N` from the command line; defaults to
/// hardware_concurrency(); non-numeric or non-positive values fall back to
/// the default. Match results, comparison counts and quality metrics are
/// identical at every setting — the flag trades wall-clock only. (The
/// bounded SBlockSketch's eviction/disk-load telemetry is the exception:
/// concurrent queries interleave differently across stripes, like cache
/// statistics.)
inline size_t ParseThreads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const long value = std::atol(argv[i + 1]);
      if (value > 0) return static_cast<size_t>(value);
    }
  }
  return ThreadPool::DefaultThreads();
}

/// Parses `--<flag> N` (a positive size) from the command line; `fallback`
/// when absent or invalid. Benches use this for scale knobs (--entities,
/// --copies) so the regression gate can drive a tiny smoke run.
inline size_t ParseSize(int argc, char** argv, const char* flag,
                        size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const long value = std::atol(argv[i + 1]);
      if (value > 0) return static_cast<size_t>(value);
    }
  }
  return fallback;
}

/// Prints a banner naming the experiment being reproduced.
inline void Banner(const char* experiment, const char* description) {
  std::printf("\n==== %s ====\n%s\n\n", experiment, description);
}

/// Parses `--metrics-out PATH` from the command line; empty when absent.
/// Benches that support the flag attach a MetricRegistry to their pipeline
/// and write registry snapshots to PATH next to their BENCH_<name>.json
/// sidecar (see MetricsSession).
inline std::string ParseMetricsOut(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) return argv[i + 1];
  }
  return "";
}

/// Owns the optional per-run MetricRegistry behind `--metrics-out`. Without
/// the flag registry() is nullptr and the pipeline runs unobserved (no
/// latency timing, nothing exported — the zero-cost default). With it,
/// Capture() labels a snapshot while the instrumented components are still
/// alive (the registry is pull-based: a component deregisters its metrics
/// on destruction), and Finish() writes all captured snapshots as JSON to
/// PATH plus the last one in Prometheus text format to PATH.prom.
class MetricsSession {
 public:
  explicit MetricsSession(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) registry_ = std::make_unique<obs::MetricRegistry>();
  }

  /// nullptr when --metrics-out was not given.
  obs::Registry* registry() { return registry_ == nullptr ? nullptr : registry_.get(); }

  /// Snapshots the registry now under `label`. No-op without a registry.
  void Capture(const std::string& label) {
    if (registry_ == nullptr) return;
    last_snapshot_ = registry_->TakeSnapshot();
    obs::JsonFields row;
    row.Add("label", label);
    row.AddRaw("metrics", obs::ExportJson(last_snapshot_));
    captured_.push_back(row.ToJson());
  }

  /// Writes the sidecars; returns true (quietly) without a registry.
  bool Finish() {
    if (registry_ == nullptr) return true;
    if (captured_.empty()) Capture("final");
    std::string out = "{\n  \"snapshots\": [\n";
    for (size_t i = 0; i < captured_.size(); ++i) {
      out += "    " + captured_[i];
      if (i + 1 < captured_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    const Status json = obs::WriteFile(path_, out);
    const Status prom = obs::WriteFile(
        path_ + ".prom", obs::ExportPrometheusText(last_snapshot_));
    if (!json.ok() || !prom.ok()) {
      std::fprintf(stderr, "cannot write metrics sidecar %s\n", path_.c_str());
      return false;
    }
    std::printf("wrote %s and %s.prom\n", path_.c_str(), path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::unique_ptr<obs::MetricRegistry> registry_;
  obs::RegistrySnapshot last_snapshot_;
  std::vector<std::string> captured_;
};

/// Builds the paper's workload shape for one data set: Q base records and
/// copies_per_entity perturbed records per entity in A (the paper uses 1000
/// copies at |Q| in the hundreds of thousands; the defaults here keep the
/// A:Q ratio meaningful at single-core scale).
inline datagen::Workload MakeScaledWorkload(datagen::DatasetKind kind,
                                            size_t entities, size_t copies,
                                            uint64_t seed = 4242) {
  datagen::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_entities = entities;
  spec.copies_per_entity = copies;
  spec.max_perturb_ops = 4;
  spec.seed = seed;
  // Name data is heavily skewed; assay panels are ordered near-uniformly.
  spec.zipf_skew = (kind == datagen::DatasetKind::kLab) ? 0.3 : 0.8;
  return datagen::MakeWorkload(spec);
}

/// Scratch directory for benches that need the key/value store.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("/tmp/sketchlink_bench_" + name) {
    (void)kv::RemoveDirRecursively(path_);
    (void)kv::CreateDirIfMissing(path_);
  }
  ~ScratchDir() { (void)kv::RemoveDirRecursively(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Blocking-key stream for the SkipBloom experiments: NCVR-like keys drawn
/// with realistic skew, materialized lazily to keep memory flat.
class KeyStream {
 public:
  KeyStream(size_t distinct_entities, uint64_t seed)
      : base_(datagen::GenerateBase(datagen::DatasetKind::kNcvr,
                                    distinct_entities, seed, 0.6)),
        blocker_(MakeStandardBlocker(datagen::DatasetKind::kNcvr)),
        perturbator_(seed ^ 0xaa, 4, 0),
        rng_(seed ^ 0xbb) {}

  /// Returns the next blocking key of the stream.
  std::string Next() {
    const Record& source = base_[rng_.UniformIndex(base_.size())];
    const Record copy =
        perturbator_.PerturbRecord(source, next_id_++);
    return blocker_->Key(copy);
  }

 private:
  Dataset base_;
  std::unique_ptr<StandardBlocker> blocker_;
  datagen::Perturbator perturbator_;
  Rng rng_;
  RecordId next_id_ = 1'000'000;
};

inline void PrintRow(const char* label, double value, const char* unit) {
  std::printf("  %-38s %12.6f %s\n", label, value, unit);
}

}  // namespace sketchlink::bench

#endif  // SKETCHLINK_BENCH_BENCH_UTIL_H_

// Reproduces Table 3 of the paper: accuracy of SkipBloom in estimating the
// overlap coefficient between the blocking keys of A and Q, for epsilon in
// {0.10, 0.05} on DBLP / NCVR / LAB. The paper reports estimates within
// ~0.06 of the truth (inside the Monte-Carlo guarantee).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "core/overlap.h"
#include "core/skip_bloom.h"

namespace sketchlink::bench {
namespace {

struct KeySets {
  std::vector<std::string> a;
  std::vector<std::string> q;
};

// Builds the two key universes with a controllable overlap: records of
// entities above the cutoff are dropped from A, so a tunable slice of Q's
// keys has no counterpart (the merger scenario of Sec. 1, where customer
// bases only partially overlap).
KeySets BlockingKeysFor(datagen::DatasetKind kind, size_t entities,
                        size_t copies, double shared_entity_fraction) {
  const datagen::Workload workload =
      MakeScaledWorkload(kind, entities, copies);
  const uint64_t cutoff = static_cast<uint64_t>(
      shared_entity_fraction * static_cast<double>(entities));
  auto blocker = MakeStandardBlocker(kind);
  KeySets keys;
  keys.a.reserve(workload.a.size());
  for (const Record& record : workload.a.records()) {
    if (record.entity_id > cutoff) continue;
    keys.a.push_back(blocker->Key(record));
  }
  keys.q.reserve(workload.q.size());
  for (const Record& record : workload.q.records()) {
    keys.q.push_back(blocker->Key(record));
  }
  return keys;
}

void Run() {
  Banner("Table 3 — SkipBloom overlap-coefficient estimation accuracy",
         "Estimated vs true overlap of D_A and D_Q per data set; the\n"
         "epsilon rows vary the Monte-Carlo budget via the synopsis sample.");

  std::printf("%8s %8s %14s %14s %12s\n", "dataset", "epsilon", "true",
              "estimated", "abs_error");
  for (datagen::DatasetKind kind : AllKinds()) {
    const KeySets keys =
        BlockingKeysFor(kind, 4000, 8, /*shared_entity_fraction=*/0.7);
    const double truth = ExactOverlapCoefficient(keys.a, keys.q);

    for (double epsilon : {0.10, 0.05}) {
      // Monte-Carlo needs (eps^2 * theta)^-1 sampled keys from Q. At the
      // paper's scale sqrt(n) exceeds that automatically (sqrt(10^8) = 10^4
      // > 8000); at laptop scale we oversample by shrinking the synopsis's
      // nominal n so that n_actual * n_nominal^-1/2 >= the required sample.
      const size_t sample_target = RequiredSampleSize(epsilon, 0.30);
      const double n_actual = static_cast<double>(keys.q.size());
      const double ratio =
          n_actual / static_cast<double>(sample_target);
      SkipBloomOptions options_q;
      options_q.expected_keys =
          static_cast<uint64_t>(std::max(ratio * ratio, 64.0));
      options_q.bloom_fp = 0.01;
      options_q.seed = static_cast<uint64_t>(epsilon * 1e4) + 7;

      SkipBloomOptions options_a = options_q;
      // A's synopsis answers membership; size it for its real key count and
      // keep the filter FP low enough not to drown the MC error.
      options_a.expected_keys = std::max<uint64_t>(keys.a.size(), 1024);

      SkipBloom synopsis_a(options_a);
      for (const std::string& key : keys.a) synopsis_a.Insert(key);
      SkipBloom synopsis_q(options_q);
      for (const std::string& key : keys.q) synopsis_q.Insert(key);

      const OverlapEstimate estimate =
          EstimateOverlapCoefficient(synopsis_a, synopsis_q);
      std::printf("%8s %8.2f %14.4f %14.4f %12.4f\n",
                  std::string(datagen::DatasetKindName(kind)).c_str(),
                  epsilon, truth, estimate.coefficient,
                  std::abs(estimate.coefficient - truth));
    }
  }
  std::printf(
      "\nExpected shape: absolute errors within ~0.06 (Table 3 reports "
      "0.95-0.98 estimates\nagainst truths near 0.9-1.0, i.e. errors inside "
      "the epsilon guarantee).\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

// Ablation: EO's oracle-budget trade-off. Firmani et al.'s contribution is
// maximizing recall per oracle query; this sweep varies EO's probability-
// estimate floor (which gates oracle submission) and plots recall,
// precision and oracle spending — the progressive-resolution curve the
// paper's related work discusses, regenerated for our scaled workload.

#include <cstdio>

#include "baselines/edge_ordering.h"
#include "baselines/oracle.h"
#include "bench_util.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::bench {
namespace {

void Run() {
  Banner("Ablation — EO oracle budget vs recall (NCVR, standard blocking)",
         "Sweeping the estimate floor that gates oracle submissions.");

  const datagen::DatasetKind kind = datagen::DatasetKind::kNcvr;
  const datagen::Workload workload = MakeScaledWorkload(kind, 1500, 10);
  const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  const GroundTruth truth(workload.a);
  auto blocker = MakeStandardBlocker(kind);

  std::printf("%14s %10s %12s %16s %18s\n", "submit_floor", "recall",
              "precision", "oracle_queries", "transitivity_skips");
  for (double floor : {0.95, 0.85, 0.75, 0.65, 0.55, 0.45, 0.30}) {
    EoOptions options;
    options.submit_threshold = floor;
    RecordStore store;
    Oracle oracle;
    EdgeOrderingMatcher matcher(options, similarity, &store, &oracle);
    LinkageEngine engine(blocker.get(), &matcher, similarity);
    if (!engine.BuildIndex(workload.a).ok()) return;
    auto report = engine.ResolveAll(workload.q, truth);
    if (!report.ok()) return;
    std::printf("%14.2f %10.3f %12.3f %16llu %18llu\n", floor,
                report->quality.recall, report->quality.precision,
                static_cast<unsigned long long>(matcher.oracle_queries()),
                static_cast<unsigned long long>(
                    matcher.transitivity_skips()));
  }
  std::printf(
      "\nExpected shape: lowering the floor spends more oracle queries for "
      "diminishing recall\n(the formulated result set is fixed by blocking; "
      "the oracle spending curve is what\nmoves), with transitivity "
      "absorbing a growing share of would-be queries.\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

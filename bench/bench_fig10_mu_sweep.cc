// Reproduces Figure 10 of the paper: SBlockSketch running time on the NCVR
// stream while varying the live-table capacity mu, under standard (10a) and
// LSH (10b) blocking.
//
// Shapes to reproduce (Sec. 7.2): doubling mu cuts running time sharply
// (the paper's last doubling to mu = 1M runs ~4x faster than the previous
// point), because a larger live table turns evictions + disk seeks into
// hash-table hits; under LSH the composite keys multiply the incoming key
// stream and the absolute times rise (~156% in the paper).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::bench {
namespace {

void Run() {
  Banner("Figure 10 — SBlockSketch running time vs mu (NCVR)",
         "Streaming blocking+matching of the NCVR workload for doubling mu.");

  const datagen::DatasetKind kind = datagen::DatasetKind::kNcvr;
  const datagen::Workload workload = MakeScaledWorkload(kind, 3000, 8);
  const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  const GroundTruth truth(workload.a);
  const std::vector<size_t> mus = {200,   400,   800,   1600, 3200,
                                   6400, 12800, 25600, 51200, 102400};

  for (const char* blocking : {"standard", "lsh"}) {
    std::printf("\n--- Fig. 10%s  running time vs mu, %s blocking ---\n",
                std::string(blocking) == "standard" ? "a" : "b", blocking);
    std::printf("%8s %14s %12s %12s\n", "mu", "total_s", "evictions",
                "disk_loads");
    std::unique_ptr<Blocker> blocker;
    if (std::string(blocking) == "standard") {
      blocker = MakeStandardBlocker(kind);
    } else {
      blocker = MakeLshBlocker(kind);
    }

    for (size_t mu : mus) {
      ScratchDir scratch("fig10_" + std::to_string(mu) + "_" + blocking);
      auto db = kv::Db::Open(scratch.path());
      if (!db.ok()) return;
      SBlockSketchOptions options;
      options.mu = mu;
      RecordStore store;
      SBlockSketchMatcher matcher(options, db->get(), similarity, &store);
      LinkageEngine engine(blocker.get(), &matcher, similarity);
      Stopwatch watch;
      if (!engine.BuildIndex(workload.a).ok()) return;
      auto report = engine.ResolveAll(workload.q, truth);
      if (!report.ok()) return;
      std::printf("%8zu %14.3f %12llu %12llu\n", mu, watch.ElapsedSeconds(),
                  static_cast<unsigned long long>(
                      matcher.sketch().stats().evictions),
                  static_cast<unsigned long long>(
                      matcher.sketch().stats().disk_loads));
    }
  }
  std::printf(
      "\nExpected shape: running time falls steeply as mu doubles, then "
      "flattens once the\nworking set of blocks fits (paper: 156min -> 43min "
      "on the last doubling); LSH rows\nrun longer at every mu.\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

// Ablation: BlockSketch's lambda / delta knobs (DESIGN.md design-choice
// index). Lemma 5.1 sizes rho = ceil(lambda * ln(1/delta)) representatives
// per sub-block so a co-blocked matching pair is detected with probability
// >= 1 - delta; this sweep shows the recall/comparisons trade-off that
// formula buys, under LSH blocking where sub-block routing actually has
// work to do (standard blocks are near-pure).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::bench {
namespace {

void Run() {
  Banner("Ablation — BlockSketch lambda/delta sweep (NCVR, LSH blocking)",
         "rho = ceil(lambda*ln(1/delta)); recall should rise toward the\n"
         "1-delta guarantee as rho grows, paying comparisons per operation.");

  const datagen::DatasetKind kind = datagen::DatasetKind::kNcvr;
  const datagen::Workload workload = MakeScaledWorkload(kind, 1500, 10);
  const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  const GroundTruth truth(workload.a);
  auto blocker = MakeLshBlocker(kind);

  std::printf("%8s %8s %6s %10s %12s %22s\n", "lambda", "delta", "rho",
              "recall", "precision", "rep_comparisons/op");
  for (size_t lambda : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    for (double delta : {0.5, 0.1, 0.01}) {
      BlockSketchOptions options;
      options.lambda = lambda;
      options.delta = delta;
      RecordStore store;
      BlockSketchMatcher matcher(options, similarity, &store);
      LinkageEngine engine(blocker.get(), &matcher, similarity);
      if (!engine.BuildIndex(workload.a).ok()) return;
      auto report = engine.ResolveAll(workload.q, truth);
      if (!report.ok()) return;
      const auto& stats = matcher.sketch().stats();
      const double per_op =
          static_cast<double>(stats.representative_comparisons) /
          static_cast<double>(stats.inserts + stats.queries);
      std::printf("%8zu %8.2f %6zu %10.3f %12.3f %22.2f\n", lambda, delta,
                  options.rho(), report->quality.recall,
                  report->quality.precision, per_op);
    }
  }
  std::printf(
      "\nExpected shape: recall saturates once rho covers the sub-block "
      "population; precision\nrises with lambda (finer rings isolate junk); "
      "comparisons/op track lambda*rho.\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

// Reproduces Table 4 of the paper: average time (seconds) for resolving a
// single query record of Q during the matching phase, per data set and
// method, under standard blocking.
//
// Shape to reproduce: BlockSketch's per-query latency is stable across data
// sets (constant number of distance computations), while EO and INV roughly
// double it and vary with block sizes.

#include <cstdio>

#include "bench_json.h"
#include "core/block_sketch.h"
#include "quality_runner.h"

namespace sketchlink::bench {
namespace {

/// Counts the allocations the snapshot-handle Candidates path removed:
/// every query used to allocate (and fill) a std::vector<RecordId> of its
/// candidate ids; it now returns a pinned view into the published block.
/// One vector allocation per query and one id copy per returned candidate,
/// gone — counted exactly on a Table 4-shaped workload.
void ReportRemovedAllocations(BenchJsonWriter* json) {
  BlockSketch sketch{BlockSketchOptions()};
  const datagen::Workload workload =
      MakeScaledWorkload(datagen::DatasetKind::kNcvr, 1000, 8);
  auto blocker = MakeStandardBlocker(datagen::DatasetKind::kNcvr);
  for (const Record& record : workload.a.records()) {
    sketch.Insert(blocker->Key(record), blocker->Key(record), record.id);
  }
  for (const Record& record : workload.q.records()) {
    (void)sketch.Candidates(blocker->Key(record), blocker->Key(record));
  }
  const BlockSketchStats stats = sketch.stats();
  std::printf("\nCandidates snapshot handles (vs. the old full-copy "
              "return):\n");
  std::printf("  removed vector allocations: %llu (one per query)\n",
              static_cast<unsigned long long>(stats.queries));
  std::printf("  removed id copies:          %llu candidates\n",
              static_cast<unsigned long long>(stats.candidates_returned));
  JsonFields& row = json->AddResult();
  row.Add("label", std::string("allocation_accounting"));
  row.Add("queries", stats.queries);
  row.Add("removed_vector_allocations", stats.queries);
  row.Add("removed_id_copies", stats.candidates_returned);
}

void Run(size_t threads, size_t entities, size_t copies,
         const std::string& metrics_out) {
  Banner("Table 4 — average time to resolve one query record",
         "Standard blocking; matching phase only (paper's Table 4).");
  std::printf("threads: %zu entities: %zu copies: %zu\n", threads, entities,
              copies);

  MetricsSession metrics(metrics_out);
  const auto results = RunQualityMatrix(entities, copies, threads, &metrics);

  std::printf("%8s %14s %18s\n", "dataset", "method", "avg_query_us");
  for (const ExperimentResult& result : results) {
    if (result.blocking != "standard") continue;
    std::printf("%8s %14s %18.3f\n", result.dataset.c_str(),
                result.method.c_str(),
                result.report.avg_query_seconds * 1e6);
  }
  std::printf(
      "\nExpected shape: BlockSketch stable and smallest; EO roughly 2x, "
      "INV in between,\nboth varying with block size (paper Table 4).\n");

  BenchJsonWriter json("table4_query_latency", threads);
  for (const ExperimentResult& result : results) {
    JsonFields& row = json.AddResult();
    row.Add("dataset", result.dataset);
    AddReportFields(&row, result.report);
  }
  ReportRemovedAllocations(&json);
  json.Finish();
  metrics.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(
      sketchlink::bench::ParseThreads(argc, argv),
      sketchlink::bench::ParseSize(argc, argv, "--entities", 3000),
      sketchlink::bench::ParseSize(argc, argv, "--copies", 12),
      sketchlink::bench::ParseMetricsOut(argc, argv));
  return 0;
}

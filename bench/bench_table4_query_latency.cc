// Reproduces Table 4 of the paper: average time (seconds) for resolving a
// single query record of Q during the matching phase, per data set and
// method, under standard blocking.
//
// Shape to reproduce: BlockSketch's per-query latency is stable across data
// sets (constant number of distance computations), while EO and INV roughly
// double it and vary with block sizes.

#include <cstdio>

#include "bench_json.h"
#include "quality_runner.h"

namespace sketchlink::bench {
namespace {

void Run(size_t threads, const std::string& metrics_out) {
  Banner("Table 4 — average time to resolve one query record",
         "Standard blocking; matching phase only (paper's Table 4).");
  std::printf("threads: %zu\n", threads);

  MetricsSession metrics(metrics_out);
  const auto results =
      RunQualityMatrix(/*entities=*/3000, /*copies=*/12, threads, &metrics);

  std::printf("%8s %14s %18s\n", "dataset", "method", "avg_query_us");
  for (const ExperimentResult& result : results) {
    if (result.blocking != "standard") continue;
    std::printf("%8s %14s %18.3f\n", result.dataset.c_str(),
                result.method.c_str(),
                result.report.avg_query_seconds * 1e6);
  }
  std::printf(
      "\nExpected shape: BlockSketch stable and smallest; EO roughly 2x, "
      "INV in between,\nboth varying with block size (paper Table 4).\n");

  BenchJsonWriter json("table4_query_latency", threads);
  for (const ExperimentResult& result : results) {
    JsonFields& row = json.AddResult();
    row.Add("dataset", result.dataset);
    AddReportFields(&row, result.report);
  }
  json.Finish();
  metrics.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(sketchlink::bench::ParseThreads(argc, argv),
                         sketchlink::bench::ParseMetricsOut(argc, argv));
  return 0;
}

// Workload profiler: prints the structural statistics of the synthetic
// data sets that drive every other bench — distinct blocking keys, block
// size distribution, and key survival under perturbation. These are the
// quantities the EXPERIMENTS.md analysis leans on when explaining where a
// measured shape comes from.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"

namespace sketchlink::bench {
namespace {

struct BlockStats {
  size_t distinct = 0;
  size_t max_size = 0;
  double mean_size = 0;
  size_t p99_size = 0;
};

BlockStats Profile(const std::map<std::string, size_t>& blocks,
                   size_t records) {
  BlockStats stats;
  stats.distinct = blocks.size();
  if (blocks.empty()) return stats;
  std::vector<size_t> sizes;
  sizes.reserve(blocks.size());
  for (const auto& [key, count] : blocks) sizes.push_back(count);
  std::sort(sizes.begin(), sizes.end());
  stats.max_size = sizes.back();
  stats.mean_size = static_cast<double>(records) /
                    static_cast<double>(sizes.size());
  stats.p99_size = sizes[sizes.size() * 99 / 100];
  return stats;
}

void Run() {
  Banner("Workload statistics — blocking-key structure per data set",
         "Distinct keys, block sizes, and exact-key survival of perturbed "
         "copies.");

  std::printf("%8s %10s %10s %12s %10s %8s %12s\n", "dataset", "blocking",
              "distinct", "mean_block", "p99_block", "max", "key_survival");
  for (datagen::DatasetKind kind : AllKinds()) {
    const datagen::Workload workload = MakeScaledWorkload(kind, 2000, 8);
    for (const char* blocking : {"standard", "lsh"}) {
      std::unique_ptr<Blocker> blocker;
      if (std::string(blocking) == "standard") {
        blocker = MakeStandardBlocker(kind);
      } else {
        blocker = MakeLshBlocker(kind);
      }
      std::map<std::string, size_t> blocks;
      size_t key_records = 0;
      for (const Record& record : workload.a.records()) {
        for (const std::string& key : blocker->Keys(record)) {
          ++blocks[key];
          ++key_records;
        }
      }
      // Exact-key survival: fraction of A-records sharing at least one key
      // with their source record in Q (the blocking recall ceiling).
      size_t survived = 0;
      for (const Record& copy : workload.a.records()) {
        const Record& source = workload.q[copy.entity_id - 1];
        const auto keys_copy = blocker->Keys(copy);
        const auto keys_source = blocker->Keys(source);
        bool shared = false;
        for (const std::string& key : keys_copy) {
          if (std::find(keys_source.begin(), keys_source.end(), key) !=
              keys_source.end()) {
            shared = true;
            break;
          }
        }
        if (shared) ++survived;
      }
      const BlockStats stats = Profile(blocks, key_records);
      std::printf("%8s %10s %10zu %12.2f %10zu %8zu %11.1f%%\n",
                  std::string(datagen::DatasetKindName(kind)).c_str(),
                  blocking, stats.distinct, stats.mean_size, stats.p99_size,
                  stats.max_size,
                  100.0 * static_cast<double>(survived) /
                      static_cast<double>(workload.a.size()));
    }
  }
  std::printf(
      "\nkey_survival is the recall ceiling of each blocking scheme: no "
      "same-blocking method\ncan exceed it (paper Sec. 7: 'the underlying "
      "blocking method drives the whole linkage\nprocess').\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

// Reproduces Figure 9 of the paper: total running time (blocking + matching)
// of SBlockSketch vs BlockSketch under standard (9a) and LSH (9b) blocking.
//
// The BlockSketch baseline runs the identical code path with an unbounded
// live table (mu = infinity): the paper's BlockSketch is exactly that — the
// same summarization without the memory bound — so the measured overhead
// isolates what Problem Statement 3 pays for constant memory: eviction
// scans, block spills, and disk seeks for re-faulted blocks.
//
// Shapes to reproduce (Sec. 7.2): overhead grows with the ratio of distinct
// blocking keys to mu (DBLP/NCVR pay more than a data set whose blocks fit);
// LSH multiplies the incoming keys via the composite HashTableNo_Key format
// and raises the absolute times (~156% in the paper).

#include <cstdio>
#include <memory>

#include "bench_json.h"
#include "bench_util.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::bench {
namespace {

// The paper's mu = 1M against ~60M distinct NCVR/DBLP keys; 400 keeps a
// comparable distinct-keys:mu ratio at this scale.
constexpr size_t kMu = 400;

struct RunResult {
  double seconds = 0;
  double queries_per_second = 0;
  uint64_t comparisons = 0;
  uint64_t evictions = 0;
  uint64_t disk_loads = 0;
  size_t blocks = 0;
};

RunResult RunOne(const datagen::Workload& workload,
                 const RecordSimilarity& similarity, const GroundTruth& truth,
                 const Blocker* blocker, size_t mu, size_t threads,
                 const std::string& tag, MetricsSession* metrics) {
  RunResult result;
  ScratchDir scratch("fig9_" + tag);
  kv::Options db_options;
  db_options.registry = metrics->registry();
  db_options.metrics_instance = "fig9_spill";
  auto db = kv::Db::Open(scratch.path(), db_options);
  if (!db.ok()) return result;
  SBlockSketchOptions options;
  options.mu = mu;
  RecordStore store;
  SBlockSketchMatcher matcher(options, db->get(), similarity, &store);
  EngineOptions engine_options;
  engine_options.num_threads = threads;
  engine_options.registry = metrics->registry();
  LinkageEngine engine(blocker, &matcher, similarity, engine_options);
  Stopwatch watch;
  if (!engine.BuildIndex(workload.a).ok()) return result;
  auto report = engine.ResolveAll(workload.q, truth);
  if (!report.ok()) return result;
  result.seconds = watch.ElapsedSeconds();
  result.queries_per_second = report->queries_per_second;
  result.comparisons = report->comparisons;
  result.evictions = matcher.sketch().stats().evictions;
  result.disk_loads = matcher.sketch().stats().disk_loads;
  result.blocks = matcher.sketch().num_live_blocks();
  // Snapshot before the matcher/db/engine deregister their instruments.
  metrics->Capture(tag);
  return result;
}

void Run(size_t threads, const std::string& metrics_out) {
  Banner("Figure 9 — SBlockSketch vs BlockSketch running time",
         "Total time to block A and resolve Q; BlockSketch = same code with "
         "unbounded mu.");
  std::printf("threads: %zu\n", threads);
  BenchJsonWriter json("fig9_sblocksketch", threads);
  MetricsSession metrics(metrics_out);

  for (const char* blocking : {"standard", "lsh"}) {
    std::printf("\n--- Fig. 9%s  running time, %s blocking ---\n",
                std::string(blocking) == "standard" ? "a" : "b", blocking);
    std::printf("%8s %10s %16s %16s %10s %12s %12s\n", "dataset",
                "blocks", "blocksketch_s", "sblocksketch_s", "overhead",
                "evictions", "disk_loads");
    for (datagen::DatasetKind kind : AllKinds()) {
      const datagen::Workload workload = MakeScaledWorkload(kind, 2000, 8);
      const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
      const GroundTruth truth(workload.a);

      std::unique_ptr<Blocker> blocker;
      if (std::string(blocking) == "standard") {
        blocker = MakeStandardBlocker(kind);
      } else {
        blocker = MakeLshBlocker(kind);
      }
      const std::string tag = std::string(datagen::DatasetKindName(kind)) +
                              "_" + blocking;

      const RunResult unbounded =
          RunOne(workload, similarity, truth, blocker.get(), SIZE_MAX,
                 threads, tag + "_unbounded", &metrics);
      const RunResult bounded =
          RunOne(workload, similarity, truth, blocker.get(), kMu, threads,
                 tag + "_bounded", &metrics);

      for (const auto* variant : {"unbounded", "bounded"}) {
        const RunResult& r =
            std::string(variant) == "unbounded" ? unbounded : bounded;
        JsonFields& row = json.AddResult();
        row.Add("dataset", std::string(datagen::DatasetKindName(kind)));
        row.Add("blocking", blocking);
        row.Add("variant", variant);
        row.Add("total_seconds", r.seconds);
        row.Add("queries_per_second", r.queries_per_second);
        row.Add("comparisons", r.comparisons);
        row.Add("evictions", r.evictions);
        row.Add("disk_loads", r.disk_loads);
        row.Add("live_blocks", static_cast<uint64_t>(r.blocks));
      }

      std::printf("%8s %10zu %16.3f %16.3f %9.1f%% %12llu %12llu\n",
                  std::string(datagen::DatasetKindName(kind)).c_str(),
                  unbounded.blocks, unbounded.seconds, bounded.seconds,
                  (bounded.seconds / unbounded.seconds - 1.0) * 100.0,
                  static_cast<unsigned long long>(bounded.evictions),
                  static_cast<unsigned long long>(bounded.disk_loads));
    }
  }
  std::printf(
      "\nExpected shape: overhead tracks distinct-blocks/mu (datasets whose "
      "blocks fit in the\nlive table pay ~nothing); LSH rows run several "
      "times longer in absolute terms. The\npaper reports ~10%% overhead at "
      "its (much coarser) timescale, where each operation\nalready pays a "
      "LevelDB round trip in the baseline.\n");
  json.Finish();
  metrics.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(sketchlink::bench::ParseThreads(argc, argv),
                         sketchlink::bench::ParseMetricsOut(argc, argv));
  return 0;
}

// Ablation: SBlockSketch's eviction-status policy es = e^(w*xi - alpha)
// against classic LRU and FIFO replacement (DESIGN.md design-choice index).
// The paper's policy promotes newer AND more selective blocks; on a skewed
// key stream it should keep hot blocks live and beat FIFO (and track or
// beat LRU) on disk loads.

#include <cstdio>

#include "bench_util.h"
#include "core/sblock_sketch.h"

namespace sketchlink::bench {
namespace {

const char* PolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kEvictionStatus:
      return "eviction-status";
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kFifo:
      return "fifo";
  }
  return "?";
}

void Run() {
  Banner("Ablation — SBlockSketch eviction policy (NCVR stream)",
         "es = e^(w*xi - alpha) vs LRU vs FIFO at several live-table sizes.\n"
         "The stream revisits entities with Zipf-skewed frequency and no\n"
         "temporal locality — the regime the eviction status is built for.");

  const datagen::DatasetKind kind = datagen::DatasetKind::kNcvr;
  auto blocker = MakeStandardBlocker(kind);

  // Hot entities recur often, cold ones rarely, arrivals fully interleaved.
  const Dataset population =
      datagen::GenerateBase(kind, 6000, /*seed=*/0xE1, /*zipf_skew=*/0.8);
  ZipfSampler entity_picker(population.size(), 0.9, 0xE2);
  datagen::Perturbator perturbator(0xE3, 4, 0);
  std::vector<std::pair<std::string, std::string>> stream;  // key, key-values
  stream.reserve(80000);
  for (size_t i = 0; i < 80000; ++i) {
    const Record& base = population[entity_picker.Next()];
    const Record copy = perturbator.PerturbRecord(base, 100000 + i);
    stream.emplace_back(blocker->Key(copy), blocker->KeyValues(copy));
  }

  struct Config {
    EvictionPolicy policy;
    double w;
  };
  // The success weight w controls how many evictions one extra hit buys a
  // block; the paper's example uses 1.5, larger values approach LFU.
  const Config configs[] = {{EvictionPolicy::kEvictionStatus, 1.5},
                            {EvictionPolicy::kEvictionStatus, 8.0},
                            {EvictionPolicy::kEvictionStatus, 32.0},
                            {EvictionPolicy::kLru, 1.5},
                            {EvictionPolicy::kFifo, 1.5}};

  std::printf("%8s %18s %6s %12s %12s %12s %12s\n", "mu", "policy", "w",
              "total_s", "evictions", "disk_loads", "live_hit%");
  for (size_t mu : {size_t{50}, size_t{200}, size_t{800}}) {
    for (const Config& config : configs) {
      const EvictionPolicy policy = config.policy;
      ScratchDir scratch("evict_" + std::to_string(mu) + "_" +
                         PolicyName(policy) + std::to_string(config.w));
      auto db = kv::Db::Open(scratch.path());
      if (!db.ok()) return;
      SBlockSketchOptions options;
      options.mu = mu;
      options.policy = policy;
      options.w = config.w;
      SBlockSketch sketch(options, db->get());
      Stopwatch watch;
      for (size_t i = 0; i < stream.size(); ++i) {
        if (!sketch.Insert(stream[i].first, stream[i].second, i).ok()) {
          return;
        }
      }
      const auto& stats = sketch.stats();
      const double hit_rate = 100.0 *
                              static_cast<double>(stats.live_hits) /
                              static_cast<double>(stats.inserts);
      std::printf("%8zu %18s %6.1f %12.3f %12llu %12llu %11.1f%%\n", mu,
                  PolicyName(policy), config.w, watch.ElapsedSeconds(),
                  static_cast<unsigned long long>(stats.evictions),
                  static_cast<unsigned long long>(stats.disk_loads),
                  hit_rate);
    }
  }
  std::printf(
      "\nExpected shape: eviction-status beats FIFO at every mu, and its "
      "advantage grows with w\n(one hit then buys more evictions of "
      "survival, approaching LFU): at the tightest\nmemory budget, "
      "w = 32 keeps the most hot blocks live. LRU is a strong contender\n"
      "whenever hot keys also recur soon; all policies converge as mu "
      "approaches the\nnumber of distinct blocks.\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

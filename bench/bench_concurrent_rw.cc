// Measures the tentpole claim of the concurrent sketch engine: Candidates
// on a live block is lock-free and never blocks on maintenance, so read
// latency holds up while evictions and background spills churn next to it.
//
// Protocol: a hot working set is built and its xi pumped high (hot blocks
// are never eviction victims), then the same deterministic query sequence
// is timed twice — once quiet (no writers, maintenance drained) and once
// while a writer thread streams cold keys through the sketch, forcing
// constant admission, eviction, and write-behind spilling. Reported:
// quiet reads_per_second (gated by tools/bench_compare.py against
// bench/baselines/BENCH_concurrent_rw.json), p50/p99 for both phases and
// the p99 impact percentage (ungated: on a single hardware thread the
// contended phase measures CPU sharing on top of lock behavior).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "core/sharded_sketch.h"
#include "kv/db.h"

namespace sketchlink::bench {
namespace {

size_t ParseSizeFlag(int argc, char** argv, const char* flag,
                     size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const long value = std::atol(argv[i + 1]);
      if (value > 0) return static_cast<size_t>(value);
    }
  }
  return fallback;
}

struct LatencySummary {
  double mean_nanos = 0;
  double p50_nanos = 0;
  double p99_nanos = 0;
  double reads_per_second = 0;
};

LatencySummary Summarize(std::vector<uint64_t> nanos) {
  LatencySummary summary;
  if (nanos.empty()) return summary;
  uint64_t total = 0;
  for (uint64_t n : nanos) total += n;
  summary.mean_nanos = static_cast<double>(total) / nanos.size();
  summary.reads_per_second =
      total == 0 ? 0.0 : 1e9 * static_cast<double>(nanos.size()) / total;
  const auto percentile = [&](double p) {
    const size_t rank = static_cast<size_t>(p * (nanos.size() - 1));
    std::nth_element(nanos.begin(), nanos.begin() + rank, nanos.end());
    return static_cast<double>(nanos[rank]);
  };
  summary.p50_nanos = percentile(0.50);
  summary.p99_nanos = percentile(0.99);
  return summary;
}

/// Times `count` hot-key queries in a fixed deterministic order.
std::vector<uint64_t> MeasureQueries(ShardedSBlockSketch* sketch,
                                     const std::vector<std::string>& keys,
                                     const std::vector<std::string>& values,
                                     size_t count, size_t* failures) {
  std::vector<uint64_t> nanos;
  nanos.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t k = i % keys.size();
    Stopwatch clock;
    auto candidates = sketch->Candidates(keys[k], values[k]);
    nanos.push_back(clock.ElapsedNanos());
    if (!candidates.ok() || candidates->empty()) ++(*failures);
  }
  return nanos;
}

void Run(int argc, char** argv) {
  const size_t hot = ParseSizeFlag(argc, argv, "--hot", 400);
  const size_t cold = ParseSizeFlag(argc, argv, "--cold", 12000);
  const size_t queries = ParseSizeFlag(argc, argv, "--queries", 100000);
  const size_t reps = ParseSizeFlag(argc, argv, "--reps", 3);
  Banner("Concurrent R/W — query latency while maintenance runs",
         "Hot-set Candidates latency, quiet vs. concurrent evict/spill "
         "churn from a writer thread.");
  std::printf("hot keys: %zu, cold inserts: %zu, timed queries: %zu\n", hot,
              cold, queries);

  ScratchDir scratch("concurrent_rw");
  auto db = kv::Db::Open(scratch.path());
  if (!db.ok()) {
    std::fprintf(stderr, "db open failed: %s\n",
                 db.status().ToString().c_str());
    return;
  }
  SBlockSketchOptions options;
  // Twice the hot set: no stripe's share of the hot keys can overflow its
  // budget, so the hot set stays live while cold keys churn the remainder.
  options.mu = hot * 2;
  options.sketch.seed = 0x5eed;
  ShardedSBlockSketch sketch(options, db->get());

  std::vector<std::string> keys, values;
  keys.reserve(hot);
  values.reserve(hot);
  for (size_t i = 0; i < hot; ++i) {
    keys.push_back("HOT" + std::to_string(i));
    values.push_back(keys.back() + "#VALUE");
  }
  RecordId next_id = 1;
  for (size_t i = 0; i < hot; ++i) {
    for (int m = 0; m < 4; ++m) {
      if (!sketch.Insert(keys[i], values[i], next_id++).ok()) {
        std::fprintf(stderr, "build insert failed\n");
        return;
      }
    }
  }
  // Pump xi so every hot block outranks any cold block in eviction status.
  size_t warm_failures = 0;
  (void)MeasureQueries(&sketch, keys, values, hot * 20, &warm_failures);
  if (!sketch.WaitForMaintenance().ok()) {
    std::fprintf(stderr, "maintenance failed during build\n");
    return;
  }

  // Best-of-reps on both phases: on a shared machine any single run can be
  // dented by unrelated scheduling; the best run is the reproducible one.
  const auto best_of = [&](size_t reps, auto&& measure) {
    LatencySummary best;
    for (size_t r = 0; r < reps; ++r) {
      const LatencySummary run = Summarize(measure());
      if (run.reads_per_second > best.reads_per_second) best = run;
    }
    return best;
  };

  size_t quiet_failures = 0;
  const LatencySummary quiet = best_of(reps, [&] {
    return MeasureQueries(&sketch, keys, values, queries, &quiet_failures);
  });

  std::atomic<bool> stop{false};
  std::atomic<bool> writer_started{false};
  size_t writer_failures = 0;
  std::thread writer([&] {
    RecordId id = 1'000'000;
    size_t j = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string key = "COLD" + std::to_string(j++ % cold);
      if (!sketch.Insert(key, key + "#VALUE", id++).ok()) ++writer_failures;
      writer_started.store(true, std::memory_order_release);
    }
  });
  // The timed window must actually overlap the churn.
  while (!writer_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  size_t contended_failures = 0;
  const LatencySummary contended = best_of(reps, [&] {
    return MeasureQueries(&sketch, keys, values, queries,
                          &contended_failures);
  });
  stop.store(true, std::memory_order_release);
  writer.join();
  const Status maintenance = sketch.WaitForMaintenance();

  const double p99_impact_percent =
      quiet.p99_nanos <= 0
          ? 0.0
          : 100.0 * (contended.p99_nanos - quiet.p99_nanos) / quiet.p99_nanos;

  std::printf("%12s %12s %12s %12s %16s\n", "phase", "mean_ns", "p50_ns",
              "p99_ns", "reads/s");
  std::printf("%12s %12.0f %12.0f %12.0f %16.0f\n", "quiet",
              quiet.mean_nanos, quiet.p50_nanos, quiet.p99_nanos,
              quiet.reads_per_second);
  std::printf("%12s %12.0f %12.0f %12.0f %16.0f\n", "contended",
              contended.mean_nanos, contended.p50_nanos, contended.p99_nanos,
              contended.reads_per_second);
  std::printf("\np99 impact: %+.1f%% (evictions: %llu, spilled blocks "
              "still live-served: hot hits stayed lock-free)\n",
              p99_impact_percent,
              static_cast<unsigned long long>(sketch.stats().evictions));
  std::printf("failures: quiet=%zu contended=%zu writer=%zu maintenance=%s\n",
              quiet_failures, contended_failures, writer_failures,
              maintenance.ok() ? "ok" : maintenance.ToString().c_str());
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("note: single hardware thread — the contended phase "
                "includes CPU sharing with the writer, not lock waits.\n");
  }

  BenchJsonWriter json("concurrent_rw", 1);
  JsonFields& row = json.AddResult();
  row.Add("label", std::string("hot_set_reads"));
  row.Add("hot_keys", static_cast<uint64_t>(hot));
  row.Add("timed_queries", static_cast<uint64_t>(queries));
  row.Add("reads_per_second", quiet.reads_per_second);
  row.Add("quiet_mean_nanos", quiet.mean_nanos);
  row.Add("quiet_p50_nanos", quiet.p50_nanos);
  row.Add("quiet_p99_nanos", quiet.p99_nanos);
  row.Add("contended_mean_nanos", contended.mean_nanos);
  row.Add("contended_p50_nanos", contended.p50_nanos);
  row.Add("contended_p99_nanos", contended.p99_nanos);
  row.Add("p99_impact_percent", p99_impact_percent);
  row.Add("evictions", sketch.stats().evictions);
  row.Add("read_failures",
          static_cast<uint64_t>(quiet_failures + contended_failures));
  json.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(argc, argv);
  return 0;
}

// Reproduces Figure 6 of the paper:
//   6a — total time to build a SkipBloom while scaling the streamed NCVR
//        records (paper: 10M / 100M / 500M; scaled here 100K / 500K / 2M).
//   6b — main memory consumed by SkipBloom vs a plain hash map ("MAP").
// The paper's findings to reproduce: build time grows by a constant factor
// per record; SkipBloom's memory is strongly sublinear (0.6/0.8/1.4 GB for
// 10/100/500M) while MAP grows linearly and eventually dies.

#include <cstdio>
#include <vector>

#include "baselines/map_summary.h"
#include "bench_util.h"
#include "core/skip_bloom.h"

namespace sketchlink::bench {
namespace {

void Run() {
  Banner("Figure 6 — SkipBloom scaling (NCVR stream)",
         "6a: build time vs records; 6b: memory, SkipBloom vs MAP.\n"
         "Paper scales 10M/100M/500M; scaled here by 1/250 per DESIGN.md.");

  const std::vector<size_t> scales = {100'000, 500'000, 2'000'000};

  std::printf("%12s %16s %18s %14s %14s\n", "records", "build_time_s",
              "time_per_rec_us", "skipbloom_mem", "map_mem");
  for (size_t n : scales) {
    SkipBloomOptions options;
    options.expected_keys = n;
    options.filters_per_block = 5;
    options.bloom_fp = 0.05;
    SkipBloom synopsis(options);
    MapSummary map;

    KeyStream stream(/*distinct_entities=*/n / 10, /*seed=*/n);
    // Pre-generate keys so that key synthesis cost is excluded from the
    // timed section (the paper streams pre-existing records).
    std::vector<std::string> keys;
    keys.reserve(n);
    for (size_t i = 0; i < n; ++i) keys.push_back(stream.Next());

    Stopwatch watch;
    for (const std::string& key : keys) synopsis.Insert(key);
    const double build_seconds = watch.ElapsedSeconds();

    for (const std::string& key : keys) map.Insert(key);

    std::printf("%12zu %16.3f %18.3f %14s %14s\n", n, build_seconds,
                build_seconds / static_cast<double>(n) * 1e6,
                FormatBytes(synopsis.ApproximateMemoryUsage()).c_str(),
                FormatBytes(map.ApproximateMemoryUsage()).c_str());
  }
  std::printf(
      "\nExpected shape: time/record roughly constant; SkipBloom memory "
      "grows ~sqrt(n)\nwhile MAP memory grows linearly (the paper's MAP "
      "dies at 500M records).\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

// Measures the cost of observability: the same blocking + matching workload
// run unobserved (no registry — counters only, no clock reads) and with a
// full MetricRegistry attached (latency histograms armed on every query,
// insert and candidate lookup).
//
// Acceptance gate for the obs subsystem: with metrics enabled the matching
// phase must stay within 5% of the unobserved throughput. Each variant runs
// several times and the fastest repetition is compared, which filters
// allocator/page-cache warm-up noise from the small absolute times.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "bench_util.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::bench {
namespace {

constexpr size_t kEntities = 3000;
constexpr size_t kCopies = 12;
// The matching phase is ~10ms at this scale, so a single measurement is
// dominated by scheduling/frequency noise. The index is built once per
// variant and the query set resolved many times on the same engine (queries
// do not mutate the sketch); the minimum over repetitions is the
// noise-floor estimate of the true cost.
constexpr int kRepetitions = 15;

struct VariantResult {
  double best_matching_seconds = 0.0;
  double blocking_seconds = 0.0;
  double queries_per_second = 0.0;
  uint64_t queries = 0;
};

/// One ready-to-query pipeline (index already built).
struct Variant {
  explicit Variant(obs::Registry* registry_in) : registry(registry_in) {}

  Status Build(const datagen::Workload& workload,
               const RecordSimilarity& similarity, const Blocker* blocker,
               size_t threads) {
    matcher = std::make_unique<BlockSketchMatcher>(BlockSketchOptions(),
                                                   similarity, &store);
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.registry = registry;
    engine = std::make_unique<LinkageEngine>(blocker, matcher.get(),
                                             similarity, engine_options);
    return engine->BuildIndex(workload.a);
  }

  void Measure(const datagen::Workload& workload, const GroundTruth& truth) {
    auto report = engine->ResolveAll(workload.q, truth);
    if (!report.ok()) return;
    if (result.queries == 0 ||
        report->matching_seconds < result.best_matching_seconds) {
      result.best_matching_seconds = report->matching_seconds;
      result.blocking_seconds = report->blocking_seconds;
      result.queries_per_second = report->queries_per_second;
      result.queries = workload.q.size();
    }
  }

  obs::Registry* registry;
  RecordStore store;
  std::unique_ptr<BlockSketchMatcher> matcher;
  std::unique_ptr<LinkageEngine> engine;
  VariantResult result;
};

void Run(size_t threads) {
  Banner("Observability overhead — NullRegistry vs MetricRegistry",
         "Identical BlockSketch workload; enabled metrics arm latency "
         "histograms on every insert and query.");
  std::printf("threads: %zu, repetitions per variant: %d\n", threads,
              kRepetitions);

  BenchJsonWriter json("obs_overhead", threads);
  std::printf("%8s %18s %18s %10s\n", "dataset", "unobserved_s",
              "observed_s", "overhead");

  for (datagen::DatasetKind kind : AllKinds()) {
    const datagen::Workload workload =
        MakeScaledWorkload(kind, kEntities, kCopies);
    const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
    const GroundTruth truth(workload.a);
    const auto blocker = MakeStandardBlocker(kind);
    const std::string dataset(datagen::DatasetKindName(kind));

    obs::MetricRegistry registry;
    Variant unobserved_variant(nullptr);
    Variant observed_variant(&registry);
    if (!unobserved_variant.Build(workload, similarity, blocker.get(), threads)
             .ok() ||
        !observed_variant.Build(workload, similarity, blocker.get(), threads)
             .ok()) {
      std::fprintf(stderr, "build failed for %s\n", dataset.c_str());
      continue;
    }
    // Interleaved so machine-level drift (frequency, co-tenants) hits both
    // variants equally; min-of-reps then compares noise floors.
    for (int rep = 0; rep < kRepetitions; ++rep) {
      unobserved_variant.Measure(workload, truth);
      observed_variant.Measure(workload, truth);
    }
    const VariantResult& unobserved = unobserved_variant.result;
    const VariantResult& observed = observed_variant.result;

    const double overhead =
        unobserved.best_matching_seconds > 0.0
            ? (observed.best_matching_seconds /
                   unobserved.best_matching_seconds -
               1.0) * 100.0
            : 0.0;
    std::printf("%8s %18.4f %18.4f %9.2f%%\n", dataset.c_str(),
                unobserved.best_matching_seconds,
                observed.best_matching_seconds, overhead);

    JsonFields& row = json.AddResult();
    row.Add("dataset", dataset);
    row.Add("queries", unobserved.queries);
    row.Add("unobserved_matching_seconds", unobserved.best_matching_seconds);
    row.Add("observed_matching_seconds", observed.best_matching_seconds);
    row.Add("unobserved_blocking_seconds", unobserved.blocking_seconds);
    row.Add("observed_blocking_seconds", observed.blocking_seconds);
    row.Add("unobserved_queries_per_second", unobserved.queries_per_second);
    row.Add("observed_queries_per_second", observed.queries_per_second);
    row.Add("overhead_percent", overhead);
  }

  std::printf(
      "\nExpected shape: overhead < 5%% — latency timers sample 1 in %u "
      "operations on the\nper-query paths, so the amortized cost is a "
      "fraction of a clock-read pair per query.\n",
      1u << obs::kLatencySamplePeriodLog2);
  json.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(sketchlink::bench::ParseThreads(argc, argv));
  return 0;
}

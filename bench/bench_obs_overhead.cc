// Measures the cost of observability: the same blocking + matching workload
// run in four variants —
//   unobserved  no registry, no tracer (counters only, no clock reads)
//   observed    full MetricRegistry (latency histograms armed per query)
//   traced_off  registry + Tracer attached with sample_period=0
//               (tracing compiled in and wired through, but disabled)
//   traced      registry + Tracer at the default head-sampling rate
//
// Acceptance gates for the telemetry plane (recorded in
// BENCH_obs_overhead.json and DESIGN.md §8): `observed` and `traced` must
// stay within 5% of `unobserved`, and `traced_off` within 1% of `observed`
// (the increment of carrying a disabled tracer through every layer). Each
// variant runs several times interleaved and the fastest repetition is
// compared, which filters allocator/page-cache warm-up noise from the
// small absolute times.
//
// Flags: --threads N  --entities N  --copies N  --reps N
//        --serve  expose /metrics /metrics.json /traces /healthz on an
//                 ephemeral port while the bench runs (scrape a live run)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "linkage/sketch_matchers.h"
#include "obs/http_server.h"
#include "obs/spans.h"

namespace sketchlink::bench {
namespace {

struct VariantResult {
  double best_matching_seconds = 0.0;
  double blocking_seconds = 0.0;
  double queries_per_second = 0.0;
  uint64_t queries = 0;
};

/// One ready-to-query pipeline (index already built).
struct Variant {
  Variant(std::string label_in, obs::Registry* registry_in,
          obs::Tracer* tracer_in)
      : label(std::move(label_in)), registry(registry_in), tracer(tracer_in) {}

  Status Build(const datagen::Workload& workload,
               const RecordSimilarity& similarity, const Blocker* blocker,
               size_t threads) {
    matcher = std::make_unique<BlockSketchMatcher>(BlockSketchOptions(),
                                                   similarity, &store);
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.registry = registry;
    engine_options.metrics_instance = label;
    engine_options.tracer = tracer;
    engine = std::make_unique<LinkageEngine>(blocker, matcher.get(),
                                             similarity, engine_options);
    return engine->BuildIndex(workload.a);
  }

  void Measure(const datagen::Workload& workload, const GroundTruth& truth) {
    auto report = engine->ResolveAll(workload.q, truth);
    if (!report.ok()) return;
    if (result.queries == 0 ||
        report->matching_seconds < result.best_matching_seconds) {
      result.best_matching_seconds = report->matching_seconds;
      result.blocking_seconds = report->blocking_seconds;
      result.queries_per_second = report->queries_per_second;
      result.queries = workload.q.size();
    }
  }

  std::string label;
  obs::Registry* registry;
  obs::Tracer* tracer;
  RecordStore store;
  std::unique_ptr<BlockSketchMatcher> matcher;
  std::unique_ptr<LinkageEngine> engine;
  VariantResult result;
};

double OverheadPercent(double base_seconds, double variant_seconds) {
  return base_seconds > 0.0 ? (variant_seconds / base_seconds - 1.0) * 100.0
                            : 0.0;
}


bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

void Run(int argc, char** argv) {
  const size_t threads = ParseThreads(argc, argv);
  const size_t entities = ParseSize(argc, argv, "--entities", 3000);
  const size_t copies = ParseSize(argc, argv, "--copies", 12);
  // The matching phase is ~10ms at default scale, so a single measurement
  // is dominated by scheduling/frequency noise. The index is built once per
  // variant and the query set resolved many times on the same engine
  // (queries do not mutate the sketch); the minimum over repetitions is the
  // noise-floor estimate of the true cost.
  const int repetitions =
      static_cast<int>(ParseSize(argc, argv, "--reps", 15));

  Banner("Observability overhead — registry and tracer variants",
         "Identical BlockSketch workload; `observed` arms latency "
         "histograms, `traced_off` adds a disabled tracer, `traced` head-"
         "samples at the default rate.");
  std::printf("threads: %zu, repetitions per variant: %d\n", threads,
              repetitions);

  // Bench-lifetime registry and tracers so --serve can expose them while
  // the measurement loop runs (the server needs them to outlive it).
  obs::MetricRegistry registry;
  obs::Tracer::Options off_options;
  off_options.sample_period = 0;
  obs::Tracer tracer_off(off_options);
  obs::Tracer tracer_default((obs::Tracer::Options()));
  const auto tracer_regs = tracer_default.RegisterMetrics(&registry, "traced");

  std::unique_ptr<obs::HttpServer> server;
  if (HasFlag(argc, argv, "--serve")) {
    server = std::make_unique<obs::HttpServer>(obs::HttpServer::Options());
    obs::RegisterTelemetryHandlers(server.get(), &registry, &tracer_default);
    const Status status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "--serve failed: %s\n", status.ToString().c_str());
    } else {
      std::printf("serving telemetry on http://127.0.0.1:%u\n",
                  static_cast<unsigned>(server->port()));
    }
  }

  BenchJsonWriter json("obs_overhead", threads);
  std::printf("%8s %14s %14s %14s %14s\n", "dataset", "unobserved_s",
              "observed_s", "traced_off_s", "traced_s");

  for (datagen::DatasetKind kind : AllKinds()) {
    const datagen::Workload workload =
        MakeScaledWorkload(kind, entities, copies);
    const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
    const GroundTruth truth(workload.a);
    const auto blocker = MakeStandardBlocker(kind);
    const std::string dataset(datagen::DatasetKindName(kind));

    std::vector<std::unique_ptr<Variant>> variants;
    variants.push_back(
        std::make_unique<Variant>("unobserved", nullptr, nullptr));
    variants.push_back(
        std::make_unique<Variant>("observed", &registry, nullptr));
    variants.push_back(
        std::make_unique<Variant>("traced_off", &registry, &tracer_off));
    variants.push_back(
        std::make_unique<Variant>("traced", &registry, &tracer_default));
    bool built = true;
    for (auto& variant : variants) {
      if (!variant->Build(workload, similarity, blocker.get(), threads)
               .ok()) {
        std::fprintf(stderr, "build failed for %s/%s\n", dataset.c_str(),
                     variant->label.c_str());
        built = false;
      }
    }
    if (!built) continue;

    // Interleaved so machine-level drift (frequency, co-tenants) hits every
    // variant equally; min-of-reps then compares noise floors.
    for (int rep = 0; rep < repetitions; ++rep) {
      for (auto& variant : variants) variant->Measure(workload, truth);
    }
    const VariantResult& unobserved = variants[0]->result;
    const VariantResult& observed = variants[1]->result;
    const VariantResult& traced_off = variants[2]->result;
    const VariantResult& traced = variants[3]->result;

    std::printf("%8s %14.4f %14.4f %14.4f %14.4f\n", dataset.c_str(),
                unobserved.best_matching_seconds,
                observed.best_matching_seconds,
                traced_off.best_matching_seconds,
                traced.best_matching_seconds);

    JsonFields& row = json.AddResult();
    row.Add("dataset", dataset);
    row.Add("queries", unobserved.queries);
    row.Add("unobserved_matching_seconds", unobserved.best_matching_seconds);
    row.Add("observed_matching_seconds", observed.best_matching_seconds);
    row.Add("traced_off_matching_seconds", traced_off.best_matching_seconds);
    row.Add("traced_matching_seconds", traced.best_matching_seconds);
    row.Add("unobserved_blocking_seconds", unobserved.blocking_seconds);
    row.Add("observed_blocking_seconds", observed.blocking_seconds);
    row.Add("unobserved_queries_per_second", unobserved.queries_per_second);
    row.Add("observed_queries_per_second", observed.queries_per_second);
    row.Add("traced_queries_per_second", traced.queries_per_second);
    row.Add("observed_overhead_percent",
            OverheadPercent(unobserved.best_matching_seconds,
                            observed.best_matching_seconds));
    // The compiled-in-but-disabled gate, both against the unobserved base
    // and as tracing's increment over metrics alone.
    row.Add("traced_off_overhead_percent",
            OverheadPercent(unobserved.best_matching_seconds,
                            traced_off.best_matching_seconds));
    row.Add("traced_off_increment_percent",
            OverheadPercent(observed.best_matching_seconds,
                            traced_off.best_matching_seconds));
    row.Add("traced_overhead_percent",
            OverheadPercent(unobserved.best_matching_seconds,
                            traced.best_matching_seconds));
  }

  std::printf(
      "\nExpected shape: observed and traced within 5%% of unobserved, "
      "traced_off within 1%% of observed\n(the un-admitted StartTrace path "
      "is one thread-local tick; sample_period=0 returns before any\n"
      "metric write; latency timers sample 1 in %u operations).\n",
      1u << obs::kLatencySamplePeriodLog2);
  json.Finish();
  if (server != nullptr) server->Stop();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(argc, argv);
  return 0;
}

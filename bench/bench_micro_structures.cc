// Microbenchmarks for the data-structure substrate: Bloom filters, the skip
// list, record encoding and the key/value store — the building blocks whose
// costs the SkipBloom/BlockSketch complexity analyses (Secs. 4.2, 5.2, 6.2)
// are expressed in.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/random.h"
#include "kv/db.h"
#include "kv/env.h"
#include "skiplist/skip_list.h"

namespace sketchlink {
namespace {

std::vector<std::string> MakeKeys(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys(count);
  for (auto& key : keys) {
    key = "key" + std::to_string(rng.NextUint64());
  }
  return keys;
}

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter filter = BloomFilter::WithCapacity(
      static_cast<size_t>(state.range(0)), 0.05);
  const auto keys = MakeKeys(4096, 1);
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(keys[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert)->Arg(5000)->Arg(50000);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilter filter = BloomFilter::WithCapacity(
      static_cast<size_t>(state.range(0)), 0.05);
  const auto keys = MakeKeys(4096, 2);
  for (size_t i = 0; i < keys.size() / 2; ++i) filter.Insert(keys[i]);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery)->Arg(5000)->Arg(50000);

void BM_SkipListInsert(benchmark::State& state) {
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    state.PauseTiming();
    SkipList<std::string, int> list(7);
    state.ResumeTiming();
    for (const auto& key : keys) list.InsertOrAssign(key, 1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkipListInsert)->Arg(1000)->Arg(10000);

void BM_SkipListFindLessOrEqual(benchmark::State& state) {
  SkipList<std::string, int> list(11);
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)), 4);
  for (const auto& key : keys) list.InsertOrAssign(key, 1);
  const auto probes = MakeKeys(4096, 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.FindLessOrEqual(probes[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListFindLessOrEqual)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_KvPut(benchmark::State& state) {
  const std::string dir = "/tmp/sketchlink_bench_kvput";
  (void)kv::RemoveDirRecursively(dir);
  auto db = kv::Db::Open(dir);
  if (!db.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  const auto keys = MakeKeys(4096, 6);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Put(keys[i++ & 4095], "value-payload"));
  }
  state.SetItemsProcessed(state.iterations());
  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}
BENCHMARK(BM_KvPut);

void BM_KvGet(benchmark::State& state) {
  const std::string dir = "/tmp/sketchlink_bench_kvget";
  (void)kv::RemoveDirRecursively(dir);
  auto db = kv::Db::Open(dir);
  if (!db.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)), 7);
  for (const auto& key : keys) {
    if (!(*db)->Put(key, "value-payload").ok()) {
      state.SkipWithError("put failed");
      return;
    }
  }
  if (!(*db)->Flush().ok() || !(*db)->Compact(true).ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  std::string value;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(keys[i++ % keys.size()], &value));
  }
  state.SetItemsProcessed(state.iterations());
  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}
BENCHMARK(BM_KvGet)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace sketchlink

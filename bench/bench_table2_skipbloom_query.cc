// Reproduces Table 2 of the paper: time (seconds) consumed by SkipBloom to
// report the existence of a key, at stream scales 10M/100M/500M (scaled here
// 100K/500K/2M). The paper's finding: lookup latency is almost flat in the
// stream size (O(log sqrt(n)) plus a constant number of filter probes) —
// 0.000277s / 0.000315s / 0.000365s on their hardware.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/skip_bloom.h"

namespace sketchlink::bench {
namespace {

void Run() {
  Banner("Table 2 — SkipBloom key-lookup latency",
         "Average time to report the existence of a key vs stream size.");

  const std::vector<size_t> scales = {100'000, 500'000, 2'000'000};
  const size_t kQueries = 200'000;

  std::printf("%12s %18s %20s\n", "records", "avg_query_us",
              "queries_per_sec");
  for (size_t n : scales) {
    SkipBloomOptions options;
    options.expected_keys = n;
    SkipBloom synopsis(options);
    KeyStream stream(n / 10, n);
    std::vector<std::string> keys;
    keys.reserve(n);
    for (size_t i = 0; i < n; ++i) keys.push_back(stream.Next());
    for (const std::string& key : keys) synopsis.Insert(key);

    // Query mix: half present keys, half absent probes, as a pre-blocking
    // membership workload would issue.
    Rng rng(n ^ 0x77);
    volatile size_t sink = 0;
    Stopwatch watch;
    for (size_t i = 0; i < kQueries; ++i) {
      if (i & 1) {
        sink += synopsis.Query(keys[rng.UniformIndex(keys.size())]);
      } else {
        sink += synopsis.Query("ABSENT#" + std::to_string(rng.NextUint64()));
      }
    }
    const double seconds = watch.ElapsedSeconds();
    (void)sink;
    std::printf("%12zu %18.4f %20.0f\n", n,
                seconds / static_cast<double>(kQueries) * 1e6,
                static_cast<double>(kQueries) / seconds);
  }
  std::printf(
      "\nExpected shape: avg query time nearly flat across scales "
      "(Table 2's 0.277ms -> 0.365ms over a 50x size increase).\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

// Reproduces Table 2 of the paper: time (seconds) consumed by SkipBloom to
// report the existence of a key, at stream scales 10M/100M/500M (scaled here
// 100K/500K/2M). The paper's finding: lookup latency is almost flat in the
// stream size (O(log sqrt(n)) plus a constant number of filter probes) —
// 0.000277s / 0.000315s / 0.000365s on their hardware.

#include <atomic>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/skip_bloom.h"

namespace sketchlink::bench {
namespace {

void Run(size_t threads) {
  Banner("Table 2 — SkipBloom key-lookup latency",
         "Average time to report the existence of a key vs stream size.");
  std::printf("threads: %zu\n", threads);

  const std::vector<size_t> scales = {100'000, 500'000, 2'000'000};
  const size_t kQueries = 200'000;
  // The query workload is carved into a fixed number of shards with
  // per-shard RNGs, so the exact key mix issued is independent of the
  // thread count; the pool only changes how shards map onto threads.
  const size_t kShards = 64;

  ThreadPool pool(threads);
  BenchJsonWriter json("table2_skipbloom_query", threads);

  std::printf("%12s %18s %20s\n", "records", "avg_query_us",
              "queries_per_sec");
  for (size_t n : scales) {
    SkipBloomOptions options;
    options.expected_keys = n;
    SkipBloom synopsis(options);
    KeyStream stream(n / 10, n);
    std::vector<std::string> keys;
    keys.reserve(n);
    for (size_t i = 0; i < n; ++i) keys.push_back(stream.Next());
    for (const std::string& key : keys) synopsis.Insert(key);

    // Query mix: half present keys, half absent probes, as a pre-blocking
    // membership workload would issue. Concurrent Query is read-only
    // (stats are relaxed atomics), so shards fan out across the pool.
    std::atomic<size_t> sink{0};
    Stopwatch watch;
    pool.RunShards(kShards, [&](size_t shard) {
      Rng rng(n ^ 0x77 ^ (shard * 0x9e3779b97f4a7c15ULL));
      const size_t begin = shard * kQueries / kShards;
      const size_t end = (shard + 1) * kQueries / kShards;
      size_t hits = 0;
      for (size_t i = begin; i < end; ++i) {
        if (i & 1) {
          hits += synopsis.Query(keys[rng.UniformIndex(keys.size())]);
        } else {
          hits += synopsis.Query("ABSENT#" + std::to_string(rng.NextUint64()));
        }
      }
      sink.fetch_add(hits, std::memory_order_relaxed);
    });
    const double seconds = watch.ElapsedSeconds();
    (void)sink.load();
    const double qps = static_cast<double>(kQueries) / seconds;
    std::printf("%12zu %18.4f %20.0f\n", n,
                seconds / static_cast<double>(kQueries) * 1e6, qps);

    JsonFields& row = json.AddResult();
    row.Add("method", "SkipBloom");
    row.Add("records", static_cast<uint64_t>(n));
    row.Add("queries", static_cast<uint64_t>(kQueries));
    row.Add("total_seconds", seconds);
    row.Add("avg_query_us", seconds / static_cast<double>(kQueries) * 1e6);
    row.Add("queries_per_second", qps);
    row.Add("filter_probes",
            static_cast<uint64_t>(synopsis.stats().filter_probes));
    row.Add("memory_bytes",
            static_cast<uint64_t>(synopsis.ApproximateMemoryUsage()));
  }
  std::printf(
      "\nExpected shape: avg query time nearly flat across scales "
      "(Table 2's 0.277ms -> 0.365ms over a 50x size increase).\n");
  json.Finish();
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  sketchlink::bench::Run(sketchlink::bench::ParseThreads(argc, argv));
  return 0;
}

// Microbenchmark of the bit-parallel similarity kernels (src/simd) against
// their scalar references (src/text): single-pair throughput for every
// instruction-set tier this CPU can run, plus the batched routing path
// (BatchQuery::Score) that BlockSketch/SBlockSketch use to pick a sub-block.
// Results land in BENCH_kernels.json so kernel regressions can be scripted;
// the end-to-end effect on the match phase is bench_table4_query_latency.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/block_sketch.h"
#include "simd/bit_profile.h"
#include "simd/dispatch.h"
#include "simd/jaro_pattern.h"
#include "simd/score_batch.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/qgram.h"

namespace sketchlink::bench {
namespace {

// Accumulating into a global keeps the optimizer from eliding the kernels.
double g_sink = 0.0;

std::vector<std::string> MakeStrings(size_t count, size_t length,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> strings(count);
  for (auto& s : strings) {
    // +/- 25% length jitter so the pairs exercise the length-mismatch paths.
    const size_t len = length - length / 4 + rng.UniformIndex(length / 2 + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('A' + rng.UniformUint64(26)));
    }
  }
  return strings;
}

/// Runs `sweep` (which performs `ops_per_sweep` kernel calls) until ~0.2 s
/// has elapsed and returns the mean ns per call.
template <typename Fn>
double TimeNsPerOp(size_t ops_per_sweep, Fn&& sweep) {
  using Clock = std::chrono::steady_clock;
  sweep();  // warm-up: faults in the corpus, primes caches
  const auto start = Clock::now();
  size_t sweeps = 0;
  double elapsed = 0.0;
  do {
    sweep();
    ++sweeps;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.2);
  return elapsed * 1e9 / static_cast<double>(sweeps * ops_per_sweep);
}

void Report(BenchJsonWriter* json, const char* kernel, const char* tier,
            size_t length, double kernel_ns, double scalar_ns) {
  const double speedup = scalar_ns / kernel_ns;
  char label[96];
  std::snprintf(label, sizeof(label), "%s/%s len=%zu (%.2fx)", kernel, tier,
                length, speedup);
  PrintRow(label, kernel_ns, "ns/op");
  JsonFields& row = json->AddResult();
  row.Add("kernel", kernel);
  row.Add("tier", tier);
  row.Add("length", static_cast<uint64_t>(length));
  row.Add("kernel_ns_per_op", kernel_ns);
  row.Add("scalar_ns_per_op", scalar_ns);
  row.Add("speedup", speedup);
}

struct JaroCorpus {
  std::vector<std::string> strings;
  std::vector<simd::JaroPattern> patterns;
};

JaroCorpus MakeJaroCorpus(size_t count, size_t length, uint64_t seed) {
  JaroCorpus corpus;
  corpus.strings = MakeStrings(count, length, seed);
  corpus.patterns.resize(count);
  for (size_t i = 0; i < count; ++i) {
    simd::BuildJaroPattern(corpus.strings[i], &corpus.patterns[i]);
  }
  return corpus;
}

void BenchJaro(BenchJsonWriter* json, const simd::KernelOps& ops,
               size_t length) {
  const JaroCorpus corpus = MakeJaroCorpus(512, length, 0xa1 + length);
  const size_t n = corpus.strings.size();
  const double scalar_ns = TimeNsPerOp(n, [&] {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += text::Jaro(corpus.strings[i], corpus.strings[(i + 1) % n]);
    }
    g_sink += sum;
  });
  const double kernel_ns = TimeNsPerOp(n, [&] {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const size_t j = (i + 1) % n;
      sum += ops.jaro(corpus.strings[i], corpus.strings[j],
                      corpus.patterns[j]);
    }
    g_sink += sum;
  });
  Report(json, "jaro", ops.name, length, kernel_ns, scalar_ns);
}

void BenchLevenshtein(BenchJsonWriter* json, const simd::KernelOps& ops,
                      size_t length) {
  const auto strings = MakeStrings(512, length, 0xb2 + length);
  const size_t n = strings.size();
  const double scalar_ns = TimeNsPerOp(n, [&] {
    size_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += text::Levenshtein(strings[i], strings[(i + 1) % n]);
    }
    g_sink += static_cast<double>(sum);
  });
  const double kernel_ns = TimeNsPerOp(n, [&] {
    size_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += ops.levenshtein(strings[i], strings[(i + 1) % n]);
    }
    g_sink += static_cast<double>(sum);
  });
  Report(json, "levenshtein", ops.name, length, kernel_ns, scalar_ns);
}

void BenchDice(BenchJsonWriter* json, const simd::KernelOps& ops,
               size_t length, size_t q) {
  const auto strings = MakeStrings(512, length, 0xc3 + length);
  const size_t n = strings.size();
  std::vector<QGramProfile> legacy(n);
  std::vector<simd::BitProfile> bits(n);
  for (size_t i = 0; i < n; ++i) {
    legacy[i] = text::QGrams(strings[i], q);
    std::sort(legacy[i].begin(), legacy[i].end());
    bits[i] = simd::MakeBitProfile(strings[i], q);
  }
  const double scalar_ns = TimeNsPerOp(n, [&] {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += SketchPolicy::ProfileDistance(legacy[i], legacy[(i + 1) % n]);
    }
    g_sink += sum;
  });
  const double kernel_ns = TimeNsPerOp(n, [&] {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += ops.profile_dice_distance(bits[i], bits[(i + 1) % n]);
    }
    g_sink += sum;
  });
  Report(json, "profile_dice", ops.name, length, kernel_ns, scalar_ns);
}

/// The routing shape: one query scored against lambda*rho cached
/// representatives. The scalar reference is the legacy per-representative
/// JaroWinklerDistance loop with the strict-< argmin.
void BenchBatch(BenchJsonWriter* json, const char* tier, size_t batch_size) {
  const JaroCorpus corpus = MakeJaroCorpus(batch_size + 64, 14, 0xd4);
  std::vector<simd::BatchCandidate> candidates(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    candidates[i] = {corpus.strings[i], &corpus.patterns[i], nullptr};
  }
  const std::string& query = corpus.strings[batch_size];
  const simd::BatchQuery batch(simd::BatchMetric::kJaroWinkler, query);
  const simd::BatchResult once = batch.Score(candidates.data(), batch_size);
  const double prune_rate =
      batch_size == 0 ? 0.0
                      : static_cast<double>(once.pruned) /
                            static_cast<double>(batch_size);

  const double scalar_ns = TimeNsPerOp(batch_size, [&] {
    size_t best = SIZE_MAX;
    double best_distance = 2.0;
    for (size_t i = 0; i < batch_size; ++i) {
      const double d = text::JaroWinklerDistance(query, corpus.strings[i]);
      if (d < best_distance) {
        best_distance = d;
        best = i;
      }
    }
    g_sink += best_distance + static_cast<double>(best);
  });
  const double kernel_ns = TimeNsPerOp(batch_size, [&] {
    const simd::BatchResult result = batch.Score(candidates.data(), batch_size);
    g_sink += result.best_distance + static_cast<double>(result.best_index);
  });

  const double speedup = scalar_ns / kernel_ns;
  char label[96];
  std::snprintf(label, sizeof(label), "score_batch/%s n=%zu (%.2fx)", tier,
                batch_size, speedup);
  PrintRow(label, kernel_ns, "ns/candidate");
  JsonFields& row = json->AddResult();
  row.Add("kernel", "score_batch_jw");
  row.Add("tier", tier);
  row.Add("batch_size", static_cast<uint64_t>(batch_size));
  row.Add("kernel_ns_per_op", kernel_ns);
  row.Add("scalar_ns_per_op", scalar_ns);
  row.Add("speedup", speedup);
  row.Add("prune_rate", prune_rate);
}

int Run() {
  Banner("micro_kernels",
         "Bit-parallel similarity kernels vs their scalar references, per\n"
         "instruction-set tier, plus the batched sub-block routing path.");
  if (!simd::KernelsEnabled()) {
    std::printf("kernels disabled via SKETCHLINK_SIMD=off; nothing to do\n");
    return 0;
  }
  std::printf("detected CPU tier: %s\n\n",
              simd::KernelLevelName(simd::DetectedCpuLevel()));

  BenchJsonWriter json("kernels", /*threads=*/1);
  for (int level = 0; level <= 2; ++level) {
    const auto tier = static_cast<simd::KernelLevel>(level);
    const simd::KernelOps* ops = simd::OpsForLevel(tier);
    if (ops == nullptr) continue;
    for (const size_t length : {8, 16, 32}) BenchJaro(&json, *ops, length);
    for (const size_t length : {16, 48, 200}) {
      BenchLevenshtein(&json, *ops, length);
    }
    BenchDice(&json, *ops, /*length=*/16, /*q=*/2);

    // Score the batch with this tier active (Score dispatches internally).
    simd::SetActiveLevelForTesting(tier);
    for (const size_t batch_size : {8, 24, 64}) {
      BenchBatch(&json, ops->name, batch_size);
    }
    simd::ResetActiveLevelForTesting();
    std::printf("\n");
  }
  if (!json.Finish()) return 1;
  if (g_sink == 12345.6789) std::printf("sink %f\n", g_sink);
  return 0;
}

}  // namespace
}  // namespace sketchlink::bench

int main() { return sketchlink::bench::Run(); }

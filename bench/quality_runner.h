#ifndef SKETCHLINK_BENCH_QUALITY_RUNNER_H_
#define SKETCHLINK_BENCH_QUALITY_RUNNER_H_

// Shared experiment matrix for Figures 7-8 and Table 4: every data set ×
// blocking scheme × method, run through the LinkageEngine. Each bench binary
// prints a different projection of these results (recall/precision, times,
// per-query latency).

#include <memory>
#include <string>
#include <vector>

#include "baselines/edge_ordering.h"
#include "baselines/inv_index.h"
#include "baselines/oracle.h"
#include "bench_util.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::bench {

struct ExperimentResult {
  std::string dataset;
  std::string blocking;  // "standard" or "lsh"
  std::string method;    // "BlockSketch", "EO", "INV"
  LinkageReport report;
};

/// Runs the full Fig. 7/8 matrix. INV runs only under standard blocking
/// (paper: "Only BlockSketch and EO can use LSH blocking, because they
/// essentially run on top of the blocking mechanism").
// The paper's A holds 1000 perturbed copies of every Q record, so blocks are
// dominated by true matches; the scaled default (entities=600, copies=25)
// preserves that copies >> cross-entity collisions regime.
/// `session` (optional) attaches a MetricRegistry to every engine of the
/// matrix and captures one labelled snapshot per cell while the engine and
/// matcher are still alive — required because instruments deregister when
/// their component is destroyed at the end of the cell.
inline std::vector<ExperimentResult> RunQualityMatrix(
    size_t entities, size_t copies, size_t threads = 1,
    MetricsSession* session = nullptr) {
  std::vector<ExperimentResult> results;
  EngineOptions engine_options;
  engine_options.num_threads = threads;
  if (session != nullptr) engine_options.registry = session->registry();
  for (datagen::DatasetKind kind : AllKinds()) {
    const datagen::Workload workload =
        MakeScaledWorkload(kind, entities, copies);
    const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
    const GroundTruth truth(workload.a);
    const std::string dataset(datagen::DatasetKindName(kind));

    auto standard = MakeStandardBlocker(kind);
    auto lsh = MakeLshBlocker(kind);

    const auto run = [&](const Blocker* blocker, OnlineMatcher* matcher,
                         const char* blocking_name) {
      LinkageEngine engine(blocker, matcher, similarity, engine_options);
      Status status = engine.BuildIndex(workload.a);
      if (!status.ok()) {
        std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
        return;
      }
      auto report = engine.ResolveAll(workload.q, truth);
      if (!report.ok()) {
        std::fprintf(stderr, "resolve failed: %s\n",
                     report.status().ToString().c_str());
        return;
      }
      results.push_back(
          ExperimentResult{dataset, blocking_name, matcher->name(), *report});
      if (session != nullptr) {
        session->Capture(dataset + "/" + blocking_name + "/" + matcher->name());
      }
    };

    for (const char* blocking : {"standard", "lsh"}) {
      const Blocker* blocker =
          std::string(blocking) == "standard"
              ? static_cast<const Blocker*>(standard.get())
              : static_cast<const Blocker*>(lsh.get());

      {
        RecordStore store;
        BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
        run(blocker, &matcher, blocking);
      }
      {
        RecordStore store;
        Oracle oracle;
        EdgeOrderingMatcher matcher(EoOptions(), similarity, &store, &oracle);
        run(blocker, &matcher, blocking);
      }
      if (std::string(blocking) == "standard") {
        RecordStore store;
        InvIndexMatcher matcher(InvOptions(), similarity, &store);
        run(blocker, &matcher, blocking);
      }
    }
  }
  return results;
}

}  // namespace sketchlink::bench

#endif  // SKETCHLINK_BENCH_QUALITY_RUNNER_H_

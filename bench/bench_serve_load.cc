// Load bench for the linkage-as-a-service plane: an open-loop generator
// sweeps offered QPS against an in-process Server + LinkageService and
// reports tail latency and throughput per step.
//
// Protocol: arrivals are scheduled on a fixed clock (arrival i fires at
// start + i/qps); a small pool of keep-alive client connections claims
// arrivals in order, sleeps until each one's scheduled time, and measures
// latency from the *scheduled* arrival to response completion — so queueing
// delay from a lagging server shows up in the tail instead of silently
// thinning the offered load (closed-loop coordinated omission). Every
// insert_every-th arrival is a single-record insert, the rest are verified
// queries against the preloaded index.
//
// Reported per step: served_per_second (gated by tools/bench_compare.py
// against bench/baselines/BENCH_serve_load.json; at sub-capacity offered
// rates it is arrival-bound and therefore stable run-to-run) plus
// p50/p99/p999 latency in micros and shed/error counts (ungated: tails on
// a shared single-core box are noise-dominated).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "serve/http_client.h"
#include "serve/server.h"
#include "serve/service.h"

namespace sketchlink::bench {
namespace {

size_t ParseSizeFlag(int argc, char** argv, const char* flag,
                     size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const long value = std::atol(argv[i + 1]);
      if (value > 0) return static_cast<size_t>(value);
    }
  }
  return fallback;
}

std::string RecordJson(uint64_t id) {
  const char* first = id % 2 == 0 ? "ALICE" : "BOB";
  return R"({"id":)" + std::to_string(id) + R"(,"fields":[")" + first +
         R"(","SMITH","RALEIGH","276)" + std::to_string(id % 100) +
         R"(","F","1980"]})";
}

struct StepResult {
  size_t offered_qps = 0;
  double elapsed_secs = 0;
  uint64_t served = 0;     // 2xx responses
  uint64_t shed_429 = 0;   // queue-full admission sheds
  uint64_t shed_503 = 0;   // deadline/drain sheds
  uint64_t errors = 0;     // transport failures + unexpected statuses
  double served_per_second = 0;
  double mean_micros = 0;
  double p50_micros = 0;
  double p99_micros = 0;
  double p999_micros = 0;
};

void Summarize(std::vector<uint64_t> micros, StepResult* step) {
  if (micros.empty()) return;
  uint64_t total = 0;
  for (uint64_t m : micros) total += m;
  step->mean_micros = static_cast<double>(total) / micros.size();
  const auto percentile = [&](double p) {
    const size_t rank = static_cast<size_t>(p * (micros.size() - 1));
    std::nth_element(micros.begin(), micros.begin() + rank, micros.end());
    return static_cast<double>(micros[rank]);
  };
  step->p50_micros = percentile(0.50);
  step->p99_micros = percentile(0.99);
  step->p999_micros = percentile(0.999);
}

/// Drives one offered-QPS step against the live server.
StepResult RunStep(uint16_t port, size_t qps, size_t seconds,
                   size_t connections, size_t insert_every,
                   uint64_t id_base) {
  StepResult step;
  step.offered_qps = qps;
  const size_t total_arrivals = qps * seconds;
  const auto interarrival =
      std::chrono::nanoseconds(1'000'000'000ull / qps);

  std::atomic<size_t> next_arrival{0};
  std::atomic<uint64_t> served{0}, shed_429{0}, shed_503{0}, errors{0};
  std::vector<std::vector<uint64_t>> latencies(connections);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      serve::ClientConnection conn("127.0.0.1", port);
      latencies[c].reserve(total_arrivals / connections + 1);
      for (;;) {
        const size_t i = next_arrival.fetch_add(1);
        if (i >= total_arrivals) break;
        const auto scheduled = start + interarrival * i;
        std::this_thread::sleep_until(scheduled);
        const uint64_t id = id_base + i;
        Result<serve::HttpResult> result =
            i % insert_every == 0
                ? conn.RoundTrip("POST", "/v1/indexes/bench/records",
                                 R"({"records":[)" + RecordJson(id) + "]}")
                : conn.RoundTrip("POST", "/v1/indexes/bench/query",
                                 R"({"record":)" + RecordJson(id) +
                                     R"(,"verify":true,"limit":5})");
        const auto done = std::chrono::steady_clock::now();
        if (!result.ok()) {
          ++errors;
          continue;
        }
        const int status = result.value().status;
        if (status == 200) {
          ++served;
          latencies[c].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  done - scheduled)
                  .count()));
        } else if (status == 429) {
          ++shed_429;
        } else if (status == 503) {
          ++shed_503;
        } else {
          ++errors;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();

  step.elapsed_secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  step.served = served.load();
  step.shed_429 = shed_429.load();
  step.shed_503 = shed_503.load();
  step.errors = errors.load();
  step.served_per_second =
      step.elapsed_secs > 0
          ? static_cast<double>(step.served) / step.elapsed_secs
          : 0;
  std::vector<uint64_t> merged;
  for (auto& per_conn : latencies)
    merged.insert(merged.end(), per_conn.begin(), per_conn.end());
  Summarize(std::move(merged), &step);
  return step;
}

int Main(int argc, char** argv) {
  const size_t connections = ParseSizeFlag(argc, argv, "--connections", 2);
  const size_t seconds = ParseSizeFlag(argc, argv, "--seconds", 2);
  const size_t qps0 = ParseSizeFlag(argc, argv, "--qps0", 40);
  const size_t steps = ParseSizeFlag(argc, argv, "--steps", 3);
  const size_t insert_every = ParseSizeFlag(argc, argv, "--insert-every", 8);
  const size_t preload = ParseSizeFlag(argc, argv, "--preload", 200);

  Banner("serve_load",
         "Open-loop QPS sweep against the serving plane: latency is "
         "measured from each request's scheduled arrival, so server lag "
         "surfaces as tail latency rather than reduced offered load.");

  ScratchDir scratch("serve_load");
  serve::LinkageService::Options service_options;
  service_options.scratch_dir = scratch.path();
  serve::LinkageService service(service_options);

  serve::Server::Options server_options;
  server_options.num_workers = 2;
  server_options.max_queue = 128;
  serve::Server server(server_options);
  service.RegisterRoutes(&server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 std::string(started.message()).c_str());
    return 1;
  }

  // One index for the whole sweep, preloaded so queries do real candidate
  // retrieval + verification work.
  {
    serve::ClientConnection conn("127.0.0.1", server.port());
    auto created =
        conn.RoundTrip("POST", "/v1/indexes/bench",
                       R"({"threshold":0.8,"mu":256,"stripes":4})");
    if (!created.ok() || created.value().status != 201) {
      std::fprintf(stderr, "index create failed\n");
      return 1;
    }
    for (size_t i = 0; i < preload; i += 50) {
      std::string batch = R"({"records":[)";
      for (size_t j = i; j < std::min(i + 50, preload); ++j) {
        if (j > i) batch += ",";
        batch += RecordJson(j);
      }
      batch += "]}";
      auto inserted =
          conn.RoundTrip("POST", "/v1/indexes/bench/records", batch);
      if (!inserted.ok() || inserted.value().status != 200) {
        std::fprintf(stderr, "preload failed\n");
        return 1;
      }
    }
  }

  BenchJsonWriter json("serve_load", connections);
  std::printf("%10s %12s %10s %10s %10s %10s %6s %6s %6s\n", "offered",
              "served/s", "mean_us", "p50_us", "p99_us", "p999_us", "429",
              "503", "err");
  uint64_t id_base = 1'000'000;
  size_t qps = qps0;
  for (size_t s = 0; s < steps; ++s, qps *= 2) {
    const StepResult step = RunStep(server.port(), qps, seconds, connections,
                                    insert_every, id_base);
    id_base += 1'000'000;
    std::printf("%10zu %12.1f %10.1f %10.1f %10.1f %10.1f %6llu %6llu %6llu\n",
                step.offered_qps, step.served_per_second, step.mean_micros,
                step.p50_micros, step.p99_micros, step.p999_micros,
                static_cast<unsigned long long>(step.shed_429),
                static_cast<unsigned long long>(step.shed_503),
                static_cast<unsigned long long>(step.errors));

    JsonFields& row = json.AddResult();
    row.Add("label", "qps_" + std::to_string(step.offered_qps));
    row.Add("offered_qps", static_cast<uint64_t>(step.offered_qps));
    row.Add("elapsed_secs", step.elapsed_secs);
    row.Add("served", step.served);
    row.Add("served_per_second", step.served_per_second);
    row.Add("mean_micros", step.mean_micros);
    row.Add("p50_micros", step.p50_micros);
    row.Add("p99_micros", step.p99_micros);
    row.Add("p999_micros", step.p999_micros);
    row.Add("shed_429", step.shed_429);
    row.Add("shed_503", step.shed_503);
    row.Add("errors", step.errors);
  }

  const serve::Server::Stats stats = server.stats();
  std::printf("\nserver: executed=%llu shed_queue_full=%llu "
              "shed_deadline=%llu 5xx=%llu\n",
              static_cast<unsigned long long>(stats.executed),
              static_cast<unsigned long long>(stats.shed_queue_full),
              static_cast<unsigned long long>(stats.shed_deadline),
              static_cast<unsigned long long>(stats.responses_5xx));

  server.Shutdown();
  return json.Finish() ? 0 : 1;
}

}  // namespace
}  // namespace sketchlink::bench

int main(int argc, char** argv) {
  return sketchlink::bench::Main(argc, argv);
}

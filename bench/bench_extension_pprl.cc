// Extension bench (beyond the paper): privacy-preserving linkage over CLK
// encodings vs plaintext BlockSketch on the same LSH blocking. Quantifies
// what the privacy boundary costs — the question the paper's refs [18]/[28]
// study — using this repository's scaled workloads.

#include <cstdio>

#include "bench_util.h"
#include "linkage/pprl_matcher.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::bench {
namespace {

void Run() {
  Banner("Extension — PPRL (CLK encodings) vs plaintext BlockSketch",
         "Same Hamming LSH blocking; PPRL matches on encodings only.");

  std::printf("%8s %16s %10s %12s %14s %16s\n", "dataset", "method",
              "recall", "precision", "match_time_s", "memory");
  for (datagen::DatasetKind kind : AllKinds()) {
    const datagen::Workload workload = MakeScaledWorkload(kind, 2000, 8);
    const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
    const GroundTruth truth(workload.a);
    auto blocker = MakeLshBlocker(kind);

    {
      RecordStore store;
      BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
      LinkageEngine engine(blocker.get(), &matcher, similarity);
      if (!engine.BuildIndex(workload.a).ok()) return;
      auto report = engine.ResolveAll(workload.q, truth);
      if (!report.ok()) return;
      std::printf("%8s %16s %10.3f %12.3f %14.3f %16s\n",
                  std::string(datagen::DatasetKindName(kind)).c_str(),
                  "plaintext-BS", report->quality.recall,
                  report->quality.precision, report->matching_seconds,
                  FormatBytes(report->matcher_memory_bytes).c_str());
    }
    {
      PprlMatcher matcher(blocker.get(), /*similarity_threshold=*/0.9);
      LinkageEngine engine(blocker.get(), &matcher, similarity);
      if (!engine.BuildIndex(workload.a).ok()) return;
      auto report = engine.ResolveAll(workload.q, truth);
      if (!report.ok()) return;
      std::printf("%8s %16s %10.3f %12.3f %14.3f %16s\n",
                  std::string(datagen::DatasetKindName(kind)).c_str(),
                  "PPRL-CLK", report->quality.recall,
                  report->quality.precision, report->matching_seconds,
                  FormatBytes(report->matcher_memory_bytes).c_str());
    }
  }
  std::printf(
      "\nExpected shape: PPRL tracks the plaintext recall within a few "
      "points (the encoding\npreserves q-gram overlap) and often wins "
      "precision (Hamming similarity at 0.9 is a\ntighter test than "
      "average Jaro-Winkler at 0.75), at comparable match time.\n");
}

}  // namespace
}  // namespace sketchlink::bench

int main() {
  sketchlink::bench::Run();
  return 0;
}

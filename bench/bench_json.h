#ifndef SKETCHLINK_BENCH_BENCH_JSON_H_
#define SKETCHLINK_BENCH_BENCH_JSON_H_

// Machine-readable results sidecar: every bench binary writes a
// BENCH_<name>.json next to its stdout tables, so speedup comparisons across
// thread counts (and regressions across commits) can be scripted instead of
// scraped. The format is flat on purpose: one object per result row with
// whatever fields the experiment reports, plus the bench name, thread count
// and peak RSS at the top level. The JSON primitives live in obs/json.h and
// are shared with the metrics exporters.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace sketchlink::bench {

using JsonFields = obs::JsonFields;

/// Peak resident set size of this process in bytes (VmHWM), or 0 when
/// /proc is unavailable.
inline uint64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%" SCNu64, &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Accumulates result rows and writes BENCH_<name>.json into the working
/// directory on Finish().
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench_name, size_t threads)
      : bench_name_(std::move(bench_name)), threads_(threads) {}

  /// Starts a new result row; fill it via the returned reference.
  JsonFields& AddResult() {
    results_.emplace_back();
    return results_.back();
  }

  /// Writes the file; returns false (and prints to stderr) on IO failure.
  bool Finish() const {
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string out = "{\n  \"bench\": \"" + bench_name_ + "\",\n";
    out += "  \"threads\": " + std::to_string(threads_) + ",\n";
    out += "  \"peak_rss_bytes\": " + std::to_string(PeakRssBytes()) + ",\n";
    out += "  \"results\": [\n";
    for (size_t i = 0; i < results_.size(); ++i) {
      out += "    " + results_[i].ToJson();
      if (i + 1 < results_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string bench_name_;
  size_t threads_;
  std::vector<JsonFields> results_;
};

/// Adds the standard per-run fields of a LinkageReport to a result row.
template <typename Report>
void AddReportFields(JsonFields* row, const Report& report) {
  row->Add("method", report.method);
  row->Add("blocking", report.blocking);
  row->Add("threads", static_cast<uint64_t>(report.threads));
  row->Add("blocking_seconds", report.blocking_seconds);
  row->Add("matching_seconds", report.matching_seconds);
  row->Add("avg_query_seconds", report.avg_query_seconds);
  row->Add("queries_per_second", report.queries_per_second);
  row->Add("comparisons", report.comparisons);
  row->Add("matcher_memory_bytes",
           static_cast<uint64_t>(report.matcher_memory_bytes));
  row->Add("recall", report.quality.recall);
  row->Add("precision", report.quality.precision);
  row->Add("f1", report.quality.f1);
}

}  // namespace sketchlink::bench

#endif  // SKETCHLINK_BENCH_BENCH_JSON_H_

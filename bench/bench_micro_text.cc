// Microbenchmarks for the string-similarity substrate: the distance
// computations dominate every matcher's inner loop, so their unit costs
// contextualize the Figure 8 / Table 4 timings.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "text/double_metaphone.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/normalize.h"
#include "text/qgram.h"
#include "text/soundex.h"

namespace sketchlink::text {
namespace {

std::vector<std::string> MakeStrings(size_t count, size_t length,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> strings(count);
  for (auto& s : strings) {
    for (size_t i = 0; i < length; ++i) {
      s.push_back(static_cast<char>('A' + rng.UniformUint64(26)));
    }
  }
  return strings;
}

void BM_JaroWinkler(benchmark::State& state) {
  const auto strings = MakeStrings(1024, state.range(0), 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JaroWinkler(strings[i % 1024], strings[(i + 1) % 1024]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JaroWinkler)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Levenshtein(benchmark::State& state) {
  const auto strings = MakeStrings(1024, state.range(0), 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Levenshtein(strings[i % 1024], strings[(i + 1) % 1024]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BoundedLevenshtein(benchmark::State& state) {
  const auto strings = MakeStrings(1024, state.range(0), 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedLevenshtein(
        strings[i % 1024], strings[(i + 1) % 1024], /*max_distance=*/2));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DoubleMetaphone(benchmark::State& state) {
  const auto strings = MakeStrings(1024, 12, 4);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DoubleMetaphone(strings[i % 1024]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DoubleMetaphone);

void BM_Soundex(benchmark::State& state) {
  const auto strings = MakeStrings(1024, 12, 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Soundex(strings[i % 1024]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Soundex);

void BM_QGramDice(benchmark::State& state) {
  const auto strings = MakeStrings(1024, 16, 6);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        QGramDice(strings[i % 1024], strings[(i + 1) % 1024]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QGramDice);

void BM_NormalizeField(benchmark::State& state) {
  const std::string input = "  john   o'brien-SMITH, jr.  ";
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizeField(input));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NormalizeField);

}  // namespace
}  // namespace sketchlink::text

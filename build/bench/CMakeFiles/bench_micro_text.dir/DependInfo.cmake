
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_text.cc" "bench/CMakeFiles/bench_micro_text.dir/bench_micro_text.cc.o" "gcc" "bench/CMakeFiles/bench_micro_text.dir/bench_micro_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/sketchlink_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/sketchlink_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/sketchlink_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sketchlink_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sketchlink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/sketchlink_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sketchlink_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sketchlink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/sketchlink_record.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bench_fig8_blocking_matching.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_table2_skipbloom_query.
# This may be replaced when dependencies are built.

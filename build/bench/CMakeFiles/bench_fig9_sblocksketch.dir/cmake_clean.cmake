file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sblocksketch.dir/bench_fig9_sblocksketch.cc.o"
  "CMakeFiles/bench_fig9_sblocksketch.dir/bench_fig9_sblocksketch.cc.o.d"
  "bench_fig9_sblocksketch"
  "bench_fig9_sblocksketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sblocksketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

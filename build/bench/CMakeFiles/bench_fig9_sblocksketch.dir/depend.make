# Empty dependencies file for bench_fig9_sblocksketch.
# This may be replaced when dependencies are built.

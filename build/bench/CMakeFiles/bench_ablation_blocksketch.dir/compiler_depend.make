# Empty compiler generated dependencies file for bench_ablation_blocksketch.
# This may be replaced when dependencies are built.

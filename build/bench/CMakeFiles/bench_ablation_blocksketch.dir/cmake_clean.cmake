file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blocksketch.dir/bench_ablation_blocksketch.cc.o"
  "CMakeFiles/bench_ablation_blocksketch.dir/bench_ablation_blocksketch.cc.o.d"
  "bench_ablation_blocksketch"
  "bench_ablation_blocksketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blocksketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig10_mu_sweep.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig6_skipbloom_scaling.
# This may be replaced when dependencies are built.

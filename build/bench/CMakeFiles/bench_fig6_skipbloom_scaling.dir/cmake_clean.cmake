file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_skipbloom_scaling.dir/bench_fig6_skipbloom_scaling.cc.o"
  "CMakeFiles/bench_fig6_skipbloom_scaling.dir/bench_fig6_skipbloom_scaling.cc.o.d"
  "bench_fig6_skipbloom_scaling"
  "bench_fig6_skipbloom_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_skipbloom_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

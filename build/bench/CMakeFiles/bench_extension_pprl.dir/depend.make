# Empty dependencies file for bench_extension_pprl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_pprl.dir/bench_extension_pprl.cc.o"
  "CMakeFiles/bench_extension_pprl.dir/bench_extension_pprl.cc.o.d"
  "bench_extension_pprl"
  "bench_extension_pprl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_pprl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/block_sketch_test.cc.o"
  "CMakeFiles/core_test.dir/block_sketch_test.cc.o.d"
  "CMakeFiles/core_test.dir/overlap_test.cc.o"
  "CMakeFiles/core_test.dir/overlap_test.cc.o.d"
  "CMakeFiles/core_test.dir/sblock_sketch_test.cc.o"
  "CMakeFiles/core_test.dir/sblock_sketch_test.cc.o.d"
  "CMakeFiles/core_test.dir/sketch_policy_test.cc.o"
  "CMakeFiles/core_test.dir/sketch_policy_test.cc.o.d"
  "CMakeFiles/core_test.dir/skip_bloom_estimate_test.cc.o"
  "CMakeFiles/core_test.dir/skip_bloom_estimate_test.cc.o.d"
  "CMakeFiles/core_test.dir/skip_bloom_reference_test.cc.o"
  "CMakeFiles/core_test.dir/skip_bloom_reference_test.cc.o.d"
  "CMakeFiles/core_test.dir/skip_bloom_serialization_test.cc.o"
  "CMakeFiles/core_test.dir/skip_bloom_serialization_test.cc.o.d"
  "CMakeFiles/core_test.dir/skip_bloom_test.cc.o"
  "CMakeFiles/core_test.dir/skip_bloom_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

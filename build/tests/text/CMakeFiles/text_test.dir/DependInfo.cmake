
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text/double_metaphone_test.cc" "tests/text/CMakeFiles/text_test.dir/double_metaphone_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/double_metaphone_test.cc.o.d"
  "/root/repo/tests/text/edit_distance_test.cc" "tests/text/CMakeFiles/text_test.dir/edit_distance_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/edit_distance_test.cc.o.d"
  "/root/repo/tests/text/jaro_test.cc" "tests/text/CMakeFiles/text_test.dir/jaro_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/jaro_test.cc.o.d"
  "/root/repo/tests/text/monge_elkan_test.cc" "tests/text/CMakeFiles/text_test.dir/monge_elkan_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/monge_elkan_test.cc.o.d"
  "/root/repo/tests/text/normalize_test.cc" "tests/text/CMakeFiles/text_test.dir/normalize_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/normalize_test.cc.o.d"
  "/root/repo/tests/text/qgram_test.cc" "tests/text/CMakeFiles/text_test.dir/qgram_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/qgram_test.cc.o.d"
  "/root/repo/tests/text/smith_waterman_test.cc" "tests/text/CMakeFiles/text_test.dir/smith_waterman_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/smith_waterman_test.cc.o.d"
  "/root/repo/tests/text/soundex_test.cc" "tests/text/CMakeFiles/text_test.dir/soundex_test.cc.o" "gcc" "tests/text/CMakeFiles/text_test.dir/soundex_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/sketchlink_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/sketchlink_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/sketchlink_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sketchlink_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sketchlink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/sketchlink_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sketchlink_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sketchlink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/sketchlink_record.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/text_test.dir/double_metaphone_test.cc.o"
  "CMakeFiles/text_test.dir/double_metaphone_test.cc.o.d"
  "CMakeFiles/text_test.dir/edit_distance_test.cc.o"
  "CMakeFiles/text_test.dir/edit_distance_test.cc.o.d"
  "CMakeFiles/text_test.dir/jaro_test.cc.o"
  "CMakeFiles/text_test.dir/jaro_test.cc.o.d"
  "CMakeFiles/text_test.dir/monge_elkan_test.cc.o"
  "CMakeFiles/text_test.dir/monge_elkan_test.cc.o.d"
  "CMakeFiles/text_test.dir/normalize_test.cc.o"
  "CMakeFiles/text_test.dir/normalize_test.cc.o.d"
  "CMakeFiles/text_test.dir/qgram_test.cc.o"
  "CMakeFiles/text_test.dir/qgram_test.cc.o.d"
  "CMakeFiles/text_test.dir/smith_waterman_test.cc.o"
  "CMakeFiles/text_test.dir/smith_waterman_test.cc.o.d"
  "CMakeFiles/text_test.dir/soundex_test.cc.o"
  "CMakeFiles/text_test.dir/soundex_test.cc.o.d"
  "text_test"
  "text_test.pdb"
  "text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

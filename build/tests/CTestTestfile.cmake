# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("text")
subdirs("bloom")
subdirs("skiplist")
subdirs("kv")
subdirs("record")
subdirs("datagen")
subdirs("blocking")
subdirs("core")
subdirs("baselines")
subdirs("linkage")

file(REMOVE_RECURSE
  "CMakeFiles/kv_test.dir/block_cache_test.cc.o"
  "CMakeFiles/kv_test.dir/block_cache_test.cc.o.d"
  "CMakeFiles/kv_test.dir/db_test.cc.o"
  "CMakeFiles/kv_test.dir/db_test.cc.o.d"
  "CMakeFiles/kv_test.dir/env_test.cc.o"
  "CMakeFiles/kv_test.dir/env_test.cc.o.d"
  "CMakeFiles/kv_test.dir/fault_test.cc.o"
  "CMakeFiles/kv_test.dir/fault_test.cc.o.d"
  "CMakeFiles/kv_test.dir/iterator_test.cc.o"
  "CMakeFiles/kv_test.dir/iterator_test.cc.o.d"
  "CMakeFiles/kv_test.dir/memtable_test.cc.o"
  "CMakeFiles/kv_test.dir/memtable_test.cc.o.d"
  "CMakeFiles/kv_test.dir/sstable_test.cc.o"
  "CMakeFiles/kv_test.dir/sstable_test.cc.o.d"
  "CMakeFiles/kv_test.dir/wal_test.cc.o"
  "CMakeFiles/kv_test.dir/wal_test.cc.o.d"
  "kv_test"
  "kv_test.pdb"
  "kv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

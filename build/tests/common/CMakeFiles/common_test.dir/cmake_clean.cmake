file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/coding_test.cc.o"
  "CMakeFiles/common_test.dir/coding_test.cc.o.d"
  "CMakeFiles/common_test.dir/hash_test.cc.o"
  "CMakeFiles/common_test.dir/hash_test.cc.o.d"
  "CMakeFiles/common_test.dir/memory_tracker_test.cc.o"
  "CMakeFiles/common_test.dir/memory_tracker_test.cc.o.d"
  "CMakeFiles/common_test.dir/random_test.cc.o"
  "CMakeFiles/common_test.dir/random_test.cc.o.d"
  "CMakeFiles/common_test.dir/status_test.cc.o"
  "CMakeFiles/common_test.dir/status_test.cc.o.d"
  "CMakeFiles/common_test.dir/stopwatch_test.cc.o"
  "CMakeFiles/common_test.dir/stopwatch_test.cc.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

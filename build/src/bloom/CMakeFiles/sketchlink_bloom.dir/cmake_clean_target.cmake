file(REMOVE_RECURSE
  "libsketchlink_bloom.a"
)

# Empty dependencies file for sketchlink_bloom.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_bloom.dir/annotated_bloom_filter.cc.o"
  "CMakeFiles/sketchlink_bloom.dir/annotated_bloom_filter.cc.o.d"
  "CMakeFiles/sketchlink_bloom.dir/bloom_filter.cc.o"
  "CMakeFiles/sketchlink_bloom.dir/bloom_filter.cc.o.d"
  "CMakeFiles/sketchlink_bloom.dir/counting_bloom_filter.cc.o"
  "CMakeFiles/sketchlink_bloom.dir/counting_bloom_filter.cc.o.d"
  "CMakeFiles/sketchlink_bloom.dir/record_encoder.cc.o"
  "CMakeFiles/sketchlink_bloom.dir/record_encoder.cc.o.d"
  "libsketchlink_bloom.a"
  "libsketchlink_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

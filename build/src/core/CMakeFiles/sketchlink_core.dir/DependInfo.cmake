
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_sketch.cc" "src/core/CMakeFiles/sketchlink_core.dir/block_sketch.cc.o" "gcc" "src/core/CMakeFiles/sketchlink_core.dir/block_sketch.cc.o.d"
  "/root/repo/src/core/overlap.cc" "src/core/CMakeFiles/sketchlink_core.dir/overlap.cc.o" "gcc" "src/core/CMakeFiles/sketchlink_core.dir/overlap.cc.o.d"
  "/root/repo/src/core/sblock_sketch.cc" "src/core/CMakeFiles/sketchlink_core.dir/sblock_sketch.cc.o" "gcc" "src/core/CMakeFiles/sketchlink_core.dir/sblock_sketch.cc.o.d"
  "/root/repo/src/core/skip_bloom.cc" "src/core/CMakeFiles/sketchlink_core.dir/skip_bloom.cc.o" "gcc" "src/core/CMakeFiles/sketchlink_core.dir/skip_bloom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sketchlink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sketchlink_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/sketchlink_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/sketchlink_record.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

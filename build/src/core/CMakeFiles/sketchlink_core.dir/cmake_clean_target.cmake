file(REMOVE_RECURSE
  "libsketchlink_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_core.dir/block_sketch.cc.o"
  "CMakeFiles/sketchlink_core.dir/block_sketch.cc.o.d"
  "CMakeFiles/sketchlink_core.dir/overlap.cc.o"
  "CMakeFiles/sketchlink_core.dir/overlap.cc.o.d"
  "CMakeFiles/sketchlink_core.dir/sblock_sketch.cc.o"
  "CMakeFiles/sketchlink_core.dir/sblock_sketch.cc.o.d"
  "CMakeFiles/sketchlink_core.dir/skip_bloom.cc.o"
  "CMakeFiles/sketchlink_core.dir/skip_bloom.cc.o.d"
  "libsketchlink_core.a"
  "libsketchlink_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

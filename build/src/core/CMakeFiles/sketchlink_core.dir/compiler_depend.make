# Empty compiler generated dependencies file for sketchlink_core.
# This may be replaced when dependencies are built.

# Empty dependencies file for sketchlink_blocking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_blocking.dir/lsh_blocker.cc.o"
  "CMakeFiles/sketchlink_blocking.dir/lsh_blocker.cc.o.d"
  "CMakeFiles/sketchlink_blocking.dir/minhash_blocker.cc.o"
  "CMakeFiles/sketchlink_blocking.dir/minhash_blocker.cc.o.d"
  "CMakeFiles/sketchlink_blocking.dir/presets.cc.o"
  "CMakeFiles/sketchlink_blocking.dir/presets.cc.o.d"
  "CMakeFiles/sketchlink_blocking.dir/sorted_neighborhood.cc.o"
  "CMakeFiles/sketchlink_blocking.dir/sorted_neighborhood.cc.o.d"
  "CMakeFiles/sketchlink_blocking.dir/standard_blocker.cc.o"
  "CMakeFiles/sketchlink_blocking.dir/standard_blocker.cc.o.d"
  "libsketchlink_blocking.a"
  "libsketchlink_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/lsh_blocker.cc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/lsh_blocker.cc.o" "gcc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/lsh_blocker.cc.o.d"
  "/root/repo/src/blocking/minhash_blocker.cc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/minhash_blocker.cc.o" "gcc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/minhash_blocker.cc.o.d"
  "/root/repo/src/blocking/presets.cc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/presets.cc.o" "gcc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/presets.cc.o.d"
  "/root/repo/src/blocking/sorted_neighborhood.cc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/sorted_neighborhood.cc.o" "gcc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/sorted_neighborhood.cc.o.d"
  "/root/repo/src/blocking/standard_blocker.cc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/standard_blocker.cc.o" "gcc" "src/blocking/CMakeFiles/sketchlink_blocking.dir/standard_blocker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sketchlink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sketchlink_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/sketchlink_record.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sketchlink_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

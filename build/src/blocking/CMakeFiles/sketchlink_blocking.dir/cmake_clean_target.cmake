file(REMOVE_RECURSE
  "libsketchlink_blocking.a"
)

file(REMOVE_RECURSE
  "libsketchlink_record.a"
)

# Empty compiler generated dependencies file for sketchlink_record.
# This may be replaced when dependencies are built.

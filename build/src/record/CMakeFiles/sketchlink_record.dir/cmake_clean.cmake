file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_record.dir/record.cc.o"
  "CMakeFiles/sketchlink_record.dir/record.cc.o.d"
  "libsketchlink_record.a"
  "libsketchlink_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

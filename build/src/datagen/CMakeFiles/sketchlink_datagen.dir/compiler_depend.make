# Empty compiler generated dependencies file for sketchlink_datagen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsketchlink_datagen.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/generators.cc" "src/datagen/CMakeFiles/sketchlink_datagen.dir/generators.cc.o" "gcc" "src/datagen/CMakeFiles/sketchlink_datagen.dir/generators.cc.o.d"
  "/root/repo/src/datagen/name_pools.cc" "src/datagen/CMakeFiles/sketchlink_datagen.dir/name_pools.cc.o" "gcc" "src/datagen/CMakeFiles/sketchlink_datagen.dir/name_pools.cc.o.d"
  "/root/repo/src/datagen/perturb.cc" "src/datagen/CMakeFiles/sketchlink_datagen.dir/perturb.cc.o" "gcc" "src/datagen/CMakeFiles/sketchlink_datagen.dir/perturb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/sketchlink_record.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

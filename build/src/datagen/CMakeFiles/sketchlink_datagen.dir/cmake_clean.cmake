file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_datagen.dir/generators.cc.o"
  "CMakeFiles/sketchlink_datagen.dir/generators.cc.o.d"
  "CMakeFiles/sketchlink_datagen.dir/name_pools.cc.o"
  "CMakeFiles/sketchlink_datagen.dir/name_pools.cc.o.d"
  "CMakeFiles/sketchlink_datagen.dir/perturb.cc.o"
  "CMakeFiles/sketchlink_datagen.dir/perturb.cc.o.d"
  "libsketchlink_datagen.a"
  "libsketchlink_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sketchlink_kv.
# This may be replaced when dependencies are built.

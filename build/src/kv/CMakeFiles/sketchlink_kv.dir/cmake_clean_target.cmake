file(REMOVE_RECURSE
  "libsketchlink_kv.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/block_cache.cc" "src/kv/CMakeFiles/sketchlink_kv.dir/block_cache.cc.o" "gcc" "src/kv/CMakeFiles/sketchlink_kv.dir/block_cache.cc.o.d"
  "/root/repo/src/kv/db.cc" "src/kv/CMakeFiles/sketchlink_kv.dir/db.cc.o" "gcc" "src/kv/CMakeFiles/sketchlink_kv.dir/db.cc.o.d"
  "/root/repo/src/kv/env.cc" "src/kv/CMakeFiles/sketchlink_kv.dir/env.cc.o" "gcc" "src/kv/CMakeFiles/sketchlink_kv.dir/env.cc.o.d"
  "/root/repo/src/kv/memtable.cc" "src/kv/CMakeFiles/sketchlink_kv.dir/memtable.cc.o" "gcc" "src/kv/CMakeFiles/sketchlink_kv.dir/memtable.cc.o.d"
  "/root/repo/src/kv/merging_iterator.cc" "src/kv/CMakeFiles/sketchlink_kv.dir/merging_iterator.cc.o" "gcc" "src/kv/CMakeFiles/sketchlink_kv.dir/merging_iterator.cc.o.d"
  "/root/repo/src/kv/sstable.cc" "src/kv/CMakeFiles/sketchlink_kv.dir/sstable.cc.o" "gcc" "src/kv/CMakeFiles/sketchlink_kv.dir/sstable.cc.o.d"
  "/root/repo/src/kv/wal.cc" "src/kv/CMakeFiles/sketchlink_kv.dir/wal.cc.o" "gcc" "src/kv/CMakeFiles/sketchlink_kv.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sketchlink_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sketchlink_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_kv.dir/block_cache.cc.o"
  "CMakeFiles/sketchlink_kv.dir/block_cache.cc.o.d"
  "CMakeFiles/sketchlink_kv.dir/db.cc.o"
  "CMakeFiles/sketchlink_kv.dir/db.cc.o.d"
  "CMakeFiles/sketchlink_kv.dir/env.cc.o"
  "CMakeFiles/sketchlink_kv.dir/env.cc.o.d"
  "CMakeFiles/sketchlink_kv.dir/memtable.cc.o"
  "CMakeFiles/sketchlink_kv.dir/memtable.cc.o.d"
  "CMakeFiles/sketchlink_kv.dir/merging_iterator.cc.o"
  "CMakeFiles/sketchlink_kv.dir/merging_iterator.cc.o.d"
  "CMakeFiles/sketchlink_kv.dir/sstable.cc.o"
  "CMakeFiles/sketchlink_kv.dir/sstable.cc.o.d"
  "CMakeFiles/sketchlink_kv.dir/wal.cc.o"
  "CMakeFiles/sketchlink_kv.dir/wal.cc.o.d"
  "libsketchlink_kv.a"
  "libsketchlink_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

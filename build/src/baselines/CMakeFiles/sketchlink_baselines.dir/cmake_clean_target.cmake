file(REMOVE_RECURSE
  "libsketchlink_baselines.a"
)

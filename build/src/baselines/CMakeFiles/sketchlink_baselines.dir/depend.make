# Empty dependencies file for sketchlink_baselines.
# This may be replaced when dependencies are built.

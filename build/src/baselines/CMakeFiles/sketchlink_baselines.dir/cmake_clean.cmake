file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_baselines.dir/edge_ordering.cc.o"
  "CMakeFiles/sketchlink_baselines.dir/edge_ordering.cc.o.d"
  "CMakeFiles/sketchlink_baselines.dir/inv_index.cc.o"
  "CMakeFiles/sketchlink_baselines.dir/inv_index.cc.o.d"
  "libsketchlink_baselines.a"
  "libsketchlink_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

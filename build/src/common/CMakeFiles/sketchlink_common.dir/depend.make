# Empty dependencies file for sketchlink_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsketchlink_common.a"
)

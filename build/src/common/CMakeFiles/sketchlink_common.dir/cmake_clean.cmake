file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_common.dir/coding.cc.o"
  "CMakeFiles/sketchlink_common.dir/coding.cc.o.d"
  "CMakeFiles/sketchlink_common.dir/hash.cc.o"
  "CMakeFiles/sketchlink_common.dir/hash.cc.o.d"
  "CMakeFiles/sketchlink_common.dir/memory_tracker.cc.o"
  "CMakeFiles/sketchlink_common.dir/memory_tracker.cc.o.d"
  "CMakeFiles/sketchlink_common.dir/random.cc.o"
  "CMakeFiles/sketchlink_common.dir/random.cc.o.d"
  "CMakeFiles/sketchlink_common.dir/status.cc.o"
  "CMakeFiles/sketchlink_common.dir/status.cc.o.d"
  "libsketchlink_common.a"
  "libsketchlink_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

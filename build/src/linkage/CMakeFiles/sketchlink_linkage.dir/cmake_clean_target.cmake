file(REMOVE_RECURSE
  "libsketchlink_linkage.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_linkage.dir/engine.cc.o"
  "CMakeFiles/sketchlink_linkage.dir/engine.cc.o.d"
  "CMakeFiles/sketchlink_linkage.dir/metrics.cc.o"
  "CMakeFiles/sketchlink_linkage.dir/metrics.cc.o.d"
  "CMakeFiles/sketchlink_linkage.dir/pprl_matcher.cc.o"
  "CMakeFiles/sketchlink_linkage.dir/pprl_matcher.cc.o.d"
  "CMakeFiles/sketchlink_linkage.dir/record_store.cc.o"
  "CMakeFiles/sketchlink_linkage.dir/record_store.cc.o.d"
  "CMakeFiles/sketchlink_linkage.dir/similarity.cc.o"
  "CMakeFiles/sketchlink_linkage.dir/similarity.cc.o.d"
  "CMakeFiles/sketchlink_linkage.dir/sketch_matchers.cc.o"
  "CMakeFiles/sketchlink_linkage.dir/sketch_matchers.cc.o.d"
  "libsketchlink_linkage.a"
  "libsketchlink_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linkage/engine.cc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/engine.cc.o" "gcc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/engine.cc.o.d"
  "/root/repo/src/linkage/metrics.cc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/metrics.cc.o" "gcc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/metrics.cc.o.d"
  "/root/repo/src/linkage/pprl_matcher.cc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/pprl_matcher.cc.o" "gcc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/pprl_matcher.cc.o.d"
  "/root/repo/src/linkage/record_store.cc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/record_store.cc.o" "gcc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/record_store.cc.o.d"
  "/root/repo/src/linkage/similarity.cc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/similarity.cc.o" "gcc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/similarity.cc.o.d"
  "/root/repo/src/linkage/sketch_matchers.cc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/sketch_matchers.cc.o" "gcc" "src/linkage/CMakeFiles/sketchlink_linkage.dir/sketch_matchers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sketchlink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/sketchlink_record.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/sketchlink_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sketchlink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/sketchlink_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sketchlink_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sketchlink_bloom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sketchlink_linkage.
# This may be replaced when dependencies are built.

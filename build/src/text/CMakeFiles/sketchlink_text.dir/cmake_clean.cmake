file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_text.dir/double_metaphone.cc.o"
  "CMakeFiles/sketchlink_text.dir/double_metaphone.cc.o.d"
  "CMakeFiles/sketchlink_text.dir/edit_distance.cc.o"
  "CMakeFiles/sketchlink_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/sketchlink_text.dir/jaro.cc.o"
  "CMakeFiles/sketchlink_text.dir/jaro.cc.o.d"
  "CMakeFiles/sketchlink_text.dir/monge_elkan.cc.o"
  "CMakeFiles/sketchlink_text.dir/monge_elkan.cc.o.d"
  "CMakeFiles/sketchlink_text.dir/normalize.cc.o"
  "CMakeFiles/sketchlink_text.dir/normalize.cc.o.d"
  "CMakeFiles/sketchlink_text.dir/qgram.cc.o"
  "CMakeFiles/sketchlink_text.dir/qgram.cc.o.d"
  "CMakeFiles/sketchlink_text.dir/smith_waterman.cc.o"
  "CMakeFiles/sketchlink_text.dir/smith_waterman.cc.o.d"
  "CMakeFiles/sketchlink_text.dir/soundex.cc.o"
  "CMakeFiles/sketchlink_text.dir/soundex.cc.o.d"
  "libsketchlink_text.a"
  "libsketchlink_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

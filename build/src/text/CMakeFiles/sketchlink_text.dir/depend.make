# Empty dependencies file for sketchlink_text.
# This may be replaced when dependencies are built.

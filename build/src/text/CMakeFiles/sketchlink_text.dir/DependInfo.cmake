
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/double_metaphone.cc" "src/text/CMakeFiles/sketchlink_text.dir/double_metaphone.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/double_metaphone.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/text/CMakeFiles/sketchlink_text.dir/edit_distance.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/edit_distance.cc.o.d"
  "/root/repo/src/text/jaro.cc" "src/text/CMakeFiles/sketchlink_text.dir/jaro.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/jaro.cc.o.d"
  "/root/repo/src/text/monge_elkan.cc" "src/text/CMakeFiles/sketchlink_text.dir/monge_elkan.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/monge_elkan.cc.o.d"
  "/root/repo/src/text/normalize.cc" "src/text/CMakeFiles/sketchlink_text.dir/normalize.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/normalize.cc.o.d"
  "/root/repo/src/text/qgram.cc" "src/text/CMakeFiles/sketchlink_text.dir/qgram.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/qgram.cc.o.d"
  "/root/repo/src/text/smith_waterman.cc" "src/text/CMakeFiles/sketchlink_text.dir/smith_waterman.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/smith_waterman.cc.o.d"
  "/root/repo/src/text/soundex.cc" "src/text/CMakeFiles/sketchlink_text.dir/soundex.cc.o" "gcc" "src/text/CMakeFiles/sketchlink_text.dir/soundex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchlink_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

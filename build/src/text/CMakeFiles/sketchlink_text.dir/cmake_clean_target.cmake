file(REMOVE_RECURSE
  "libsketchlink_text.a"
)

# Empty dependencies file for sketchlink_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sketchlink_cli.dir/sketchlink_cli.cc.o"
  "CMakeFiles/sketchlink_cli.dir/sketchlink_cli.cc.o.d"
  "sketchlink_cli"
  "sketchlink_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchlink_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

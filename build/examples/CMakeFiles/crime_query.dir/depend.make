# Empty dependencies file for crime_query.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crime_query.dir/crime_query.cpp.o"
  "CMakeFiles/crime_query.dir/crime_query.cpp.o.d"
  "crime_query"
  "crime_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crime_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

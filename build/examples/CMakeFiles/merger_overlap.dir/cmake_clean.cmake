file(REMOVE_RECURSE
  "CMakeFiles/merger_overlap.dir/merger_overlap.cpp.o"
  "CMakeFiles/merger_overlap.dir/merger_overlap.cpp.o.d"
  "merger_overlap"
  "merger_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merger_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for merger_overlap.
# This may be replaced when dependencies are built.

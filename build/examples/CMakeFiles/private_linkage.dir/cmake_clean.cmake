file(REMOVE_RECURSE
  "CMakeFiles/private_linkage.dir/private_linkage.cpp.o"
  "CMakeFiles/private_linkage.dir/private_linkage.cpp.o.d"
  "private_linkage"
  "private_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for private_linkage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stream_linkage.dir/stream_linkage.cpp.o"
  "CMakeFiles/stream_linkage.dir/stream_linkage.cpp.o.d"
  "stream_linkage"
  "stream_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for stream_linkage.
# This may be replaced when dependencies are built.

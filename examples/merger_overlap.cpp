// The bank-merger scenario from the paper's introduction: two institutions
// want a fast estimate of how much their customer bases overlap before
// committing to a full record-linkage project. Each custodian compiles a
// SkipBloom synopsis of its blocking keys; the synopses are exchanged (they
// are sqrt(n)-sized, so cheap to ship) and the overlap coefficient is
// estimated by Monte Carlo without touching the raw databases.
//
//   $ ./build/examples/merger_overlap

#include <cstdio>
#include <string>
#include <vector>

#include "blocking/presets.h"
#include "core/overlap.h"
#include "core/skip_bloom.h"
#include "datagen/generators.h"

using namespace sketchlink;

namespace {

// One institution's customer database: blocking keys of its records.
std::vector<std::string> CustomerKeys(size_t customers, uint64_t seed,
                                      size_t shared_with_other,
                                      uint64_t shared_seed) {
  // `shared_with_other` customers are drawn from a common population the
  // two banks both serve; the rest are exclusive.
  auto blocker = MakeStandardBlocker(datagen::DatasetKind::kNcvr);
  std::vector<std::string> keys;
  const Dataset shared = datagen::GenerateBase(
      datagen::DatasetKind::kNcvr, shared_with_other, shared_seed, 0.8);
  for (const Record& record : shared.records()) {
    keys.push_back(blocker->Key(record));
  }
  const Dataset exclusive = datagen::GenerateBase(
      datagen::DatasetKind::kNcvr, customers - shared_with_other, seed, 0.8);
  for (const Record& record : exclusive.records()) {
    keys.push_back(blocker->Key(record));
  }
  return keys;
}

}  // namespace

int main() {
  const size_t kCustomers = 50000;
  const size_t kShared = 20000;  // true shared population

  std::printf("Bank A and Bank B each hold %zu customers; %zu are shared.\n",
              kCustomers, kShared);

  const auto keys_a = CustomerKeys(kCustomers, 0xA, kShared, 0xC0FFEE);
  const auto keys_b = CustomerKeys(kCustomers, 0xB, kShared, 0xC0FFEE);

  // Each custodian builds its synopsis locally...
  SkipBloomOptions options;
  options.expected_keys = kCustomers;
  SkipBloom synopsis_a(options);
  for (const auto& key : keys_a) synopsis_a.Insert(key);
  SkipBloom synopsis_b(options);
  for (const auto& key : keys_b) synopsis_b.Insert(key);

  std::printf("Synopsis sizes: A %s, B %s (raw key sets: ~%s each).\n",
              FormatBytes(synopsis_a.ApproximateMemoryUsage()).c_str(),
              FormatBytes(synopsis_b.ApproximateMemoryUsage()).c_str(),
              FormatBytes(kCustomers * 16).c_str());

  // ...and only the synopses are exchanged.
  const OverlapEstimate estimate =
      EstimateOverlapCoefficient(synopsis_a, synopsis_b);
  const double truth = ExactOverlapCoefficient(keys_a, keys_b);

  std::printf(
      "\nEstimated overlap coefficient: %.3f  (%zu sampled keys, %zu hits)\n",
      estimate.coefficient, estimate.sample_size, estimate.hits);
  std::printf("Exact overlap coefficient:     %.3f\n", truth);

  if (estimate.coefficient > 0.25) {
    std::printf(
        "\n=> Substantial customer overlap: a full record-linkage project "
        "is worth the cost.\n");
  } else {
    std::printf(
        "\n=> Little overlap: the expensive full linkage can be skipped.\n");
  }
  return 0;
}

// Streaming linkage with bounded memory: records arrive endlessly (e.g.
// admissions feeds from many hospitals) and must be linked on the fly.
// SBlockSketch keeps at most mu blocks live; everything else is spilled to
// the embedded key/value store and faulted back on demand, so resident
// memory stays flat no matter how long the stream runs (Problem Statement 3).
//
//   $ ./build/examples/stream_linkage

#include <cstdio>

#include "blocking/presets.h"
#include "core/sblock_sketch.h"
#include "datagen/generators.h"
#include "kv/db.h"
#include "kv/env.h"

using namespace sketchlink;

int main() {
  const std::string dir = "/tmp/sketchlink_stream_example";
  (void)kv::RemoveDirRecursively(dir);
  auto db = kv::Db::Open(dir);
  if (!db.ok()) {
    std::fprintf(stderr, "db open failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  // An endless admissions stream over a 2k-patient population.
  const Dataset population =
      datagen::GenerateBase(datagen::DatasetKind::kLab, 2000, 0xF00D, 0.3);
  const Dataset stream =
      datagen::MakeStream(population, /*total=*/40000, /*max_perturb_ops=*/3,
                          /*seed=*/0xFEED);
  auto blocker = MakeStandardBlocker(datagen::DatasetKind::kLab);

  SBlockSketchOptions options;
  options.mu = 500;  // the memory budget: at most 500 live blocks
  options.w = 1.5;
  SBlockSketch sketch(options, db->get());

  std::printf("%10s %12s %12s %12s %14s\n", "records", "live_blocks",
              "evictions", "disk_loads", "sketch_memory");
  size_t processed = 0;
  for (const Record& record : stream.records()) {
    const Status status = sketch.Insert(blocker->Key(record),
                                        blocker->KeyValues(record), record.id);
    if (!status.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", status.ToString().c_str());
      return 1;
    }
    if (++processed % 8000 == 0) {
      std::printf("%10zu %12zu %12llu %12llu %14s\n", processed,
                  sketch.num_live_blocks(),
                  static_cast<unsigned long long>(sketch.stats().evictions),
                  static_cast<unsigned long long>(sketch.stats().disk_loads),
                  FormatBytes(sketch.ApproximateMemoryUsage()).c_str());
    }
  }

  // Memory stayed bounded while every block remained queryable:
  const Record& probe = stream[123];
  auto candidates = sketch.Candidates(blocker->Key(probe),
                                      blocker->KeyValues(probe));
  if (!candidates.ok()) return 1;
  std::printf(
      "\nAfter %zu stream records: %zu live blocks (mu = %zu), probe query "
      "returned %zu candidates.\n",
      processed, sketch.num_live_blocks(), options.mu, candidates->size());
  std::printf(
      "The spill store holds the cold blocks; resident sketch memory is %s "
      "regardless of stream length.\n",
      FormatBytes(sketch.ApproximateMemoryUsage()).c_str());

  db->reset();
  (void)kv::RemoveDirRecursively(dir);
  return 0;
}

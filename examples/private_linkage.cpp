// Privacy-preserving linkage: two hospitals need to link patient records
// without revealing names or addresses to each other. Each side reduces its
// records to record-level Bloom-filter encodings (CLKs); only the bit
// vectors and their Hamming LSH keys cross the trust boundary. Matching
// thresholds the normalized Hamming similarity between encodings — no
// plaintext comparison ever happens on the linkage side.
//
//   $ ./build/examples/private_linkage

#include <cstdio>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "linkage/engine.h"
#include "linkage/metrics.h"
#include "linkage/pprl_matcher.h"
#include "common/memory_tracker.h"
#include "linkage/similarity.h"

using namespace sketchlink;

int main() {
  // Hospital B's patient roster: 1000 patients, 5 registrations each.
  datagen::WorkloadSpec spec;
  spec.kind = datagen::DatasetKind::kNcvr;
  spec.num_entities = 1000;
  spec.copies_per_entity = 5;
  spec.max_perturb_ops = 3;
  spec.seed = 0x9A71;
  const datagen::Workload workload = datagen::MakeWorkload(spec);

  auto blocker = MakeLshBlocker(spec.kind);
  PprlMatcher matcher(blocker.get(), /*similarity_threshold=*/0.9);
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);
  LinkageEngine engine(blocker.get(), &matcher, similarity);

  if (!engine.BuildIndex(workload.a).ok()) return 1;
  std::printf(
      "Hospital B indexed %zu registrations as %zu-bit encodings; the "
      "linkage side holds %s\nof opaque bit vectors and LSH keys — no "
      "plaintext.\n",
      workload.a.size(), blocker->params().embedding_bits,
      FormatBytes(matcher.ApproximateMemoryUsage()).c_str());

  // Hospital A submits its (encoded) queries.
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  if (!report.ok()) return 1;

  std::printf(
      "\nLinked %zu query patients: recall %.3f, precision %.3f "
      "(%.1fus per query,\n%llu Hamming comparisons in total).\n",
      workload.q.size(), report->quality.recall, report->quality.precision,
      report->avg_query_seconds * 1e6,
      static_cast<unsigned long long>(report->comparisons));
  std::printf(
      "\nFor comparison, an eavesdropper on the linkage side sees only "
      "%zu-bit vectors:\nfield values never leave their custodian "
      "(Schnell et al. 2009; paper refs [18], [28]).\n",
      blocker->params().embedding_bits);
  return 0;
}

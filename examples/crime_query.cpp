// The crime-detection scenario from the paper's introduction: a central
// system consolidates records from several sources (citizen registry,
// immigration, airline bookings) and must answer suspect queries in near
// real-time so enforcement actions can be triggered. Hamming LSH blocking
// provides typo-tolerant candidate generation; BlockSketch bounds the work
// per query.
//
//   $ ./build/examples/crime_query

#include <cstdio>

#include "blocking/presets.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "datagen/perturb.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"

using namespace sketchlink;

int main() {
  // Consolidated person index: 5k identities, 6 records each (one per
  // source system, with source-specific typos).
  datagen::WorkloadSpec spec;
  spec.kind = datagen::DatasetKind::kNcvr;
  spec.num_entities = 5000;
  spec.copies_per_entity = 6;
  spec.seed = 0x5EC;
  const datagen::Workload workload = datagen::MakeWorkload(spec);

  auto blocker = MakeLshBlocker(spec.kind);  // typo-tolerant redundancy
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  LinkageEngine engine(blocker.get(), &matcher, similarity);

  Stopwatch build_watch;
  if (!engine.BuildIndex(workload.a).ok()) return 1;
  std::printf(
      "Consolidated %zu records from %zu identities in %.2fs "
      "(LSH: %zu keys/record).\n",
      workload.a.size(), workload.q.size(), build_watch.ElapsedSeconds(),
      blocker->keys_per_record());

  // A suspect query arrives: a name heard over the phone, misspelled.
  datagen::Perturbator typos(0xBAD, /*max_ops=*/2, /*min_ops=*/1);
  for (size_t i = 0; i < 5; ++i) {
    const Record& identity = workload.q[i * 997 % workload.q.size()];
    const Record suspect = typos.PerturbRecord(identity, 900000 + i);

    Stopwatch query_watch;
    auto matches = engine.ResolveOne(suspect);
    const double micros = query_watch.ElapsedSeconds() * 1e6;
    if (!matches.ok()) return 1;

    std::printf("\nSuspect query [%s %s / %s / %s]  ->  %zu hits in %.0fus\n",
                suspect.fields[0].c_str(), suspect.fields[1].c_str(),
                suspect.fields[2].c_str(), suspect.fields[3].c_str(),
                matches->size(), micros);
    size_t shown = 0;
    size_t correct = 0;
    for (RecordId id : *matches) {
      auto record = store.Get(id);
      if (!record.ok()) continue;
      if (record->entity_id == identity.entity_id) ++correct;
      if (shown < 3) {
        std::printf("    hit %-8llu %s %s, %s, %s\n",
                    static_cast<unsigned long long>(id),
                    record->fields[0].c_str(), record->fields[1].c_str(),
                    record->fields[2].c_str(), record->fields[3].c_str());
        ++shown;
      }
    }
    std::printf("    (%zu of %zu hits are records of the true identity)\n",
                correct, matches->size());
  }
  return 0;
}

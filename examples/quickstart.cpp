// Quickstart: generate a small voter-registry workload, summarize it with
// BlockSketch, and resolve a handful of query records online.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's core loop: blocking key generation ->
// summarization -> constant-work resolution -> quality scoring.

#include <cstdio>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"

using namespace sketchlink;

int main() {
  // 1. Synthesize a workload: 200 voters (Q), 10 perturbed registrations
  //    each (A), per the paper's evaluation protocol.
  datagen::WorkloadSpec spec;
  spec.kind = datagen::DatasetKind::kNcvr;
  spec.num_entities = 200;
  spec.copies_per_entity = 10;
  spec.seed = 7;
  const datagen::Workload workload = datagen::MakeWorkload(spec);
  std::printf("Generated %zu query records and %zu data records.\n",
              workload.q.size(), workload.a.size());

  // 2. Standard blocking (given_name + surname[50%]) and Jaro-Winkler
  //    matching at the paper's threshold 0.75.
  auto blocker = MakeStandardBlocker(spec.kind);
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);

  // 3. BlockSketch summarizes every block with lambda = 3 sub-blocks of
  //    rho = 7 representatives; resolution touches only the representatives
  //    plus the chosen sub-block.
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  LinkageEngine engine(blocker.get(), &matcher, similarity);

  Status status = engine.BuildIndex(workload.a);
  if (!status.ok()) {
    std::fprintf(stderr, "indexing failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Indexed A in %.3fs across %zu blocks (%s of sketch memory).\n",
              engine.blocking_seconds(), matcher.sketch().num_blocks(),
              FormatBytes(matcher.ApproximateMemoryUsage()).c_str());

  // 4. Resolve a few queries and show their result sets.
  for (size_t i = 0; i < 3; ++i) {
    const Record& query = workload.q[i];
    auto matches = engine.ResolveOne(query);
    if (!matches.ok()) {
      std::fprintf(stderr, "resolve failed: %s\n",
                   matches.status().ToString().c_str());
      return 1;
    }
    std::printf("\nQuery #%llu  [%s %s, %s, %s]\n",
                static_cast<unsigned long long>(query.id),
                query.fields[0].c_str(), query.fields[1].c_str(),
                query.fields[2].c_str(), query.fields[3].c_str());
    size_t shown = 0;
    for (RecordId id : *matches) {
      auto record = store.Get(id);
      if (!record.ok()) continue;
      std::printf("  match %-8llu [%s %s, %s, %s]%s\n",
                  static_cast<unsigned long long>(id),
                  record->fields[0].c_str(), record->fields[1].c_str(),
                  record->fields[2].c_str(), record->fields[3].c_str(),
                  record->entity_id == query.entity_id ? "" : "  (!)");
      if (++shown == 5) {
        std::printf("  ... %zu more\n", matches->size() - shown);
        break;
      }
    }
  }

  // 5. Score the whole query set against ground truth.
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  if (!report.ok()) return 1;
  std::printf(
      "\nFull run: recall %.3f, precision %.3f, F1 %.3f; "
      "%.1fus per query, %llu similarity computations.\n",
      report->quality.recall, report->quality.precision, report->quality.f1,
      report->avg_query_seconds * 1e6,
      static_cast<unsigned long long>(report->comparisons));
  return 0;
}

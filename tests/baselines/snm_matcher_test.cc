#include "baselines/snm_matcher.h"

#include <gtest/gtest.h>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "linkage/engine.h"
#include "linkage/metrics.h"

namespace sketchlink {
namespace {

using datagen::DatasetKind;

TEST(SnmMatcherTest, FindsSortAdjacentMatches) {
  RecordStore store;
  RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr), 0.75);
  SortedNeighborhoodMatcher matcher(MakeStandardBlocker(DatasetKind::kNcvr),
                                    /*window=*/4, similarity, &store);
  Record base;
  base.id = 1;
  base.entity_id = 1;
  base.fields = {"JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH"};
  ASSERT_TRUE(matcher.Insert(base, {}, "").ok());

  Record query = base;
  query.id = 100;
  query.fields[1] = "JOHNSONN";  // near the base in sort order
  auto matches = matcher.Resolve(query, {}, "");
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0], 1u);
  EXPECT_GT(matcher.comparisons(), 0u);
}

TEST(SnmMatcherTest, EndToEndQualityIsReasonable) {
  datagen::WorkloadSpec spec;
  spec.kind = DatasetKind::kNcvr;
  spec.num_entities = 150;
  spec.copies_per_entity = 6;
  spec.seed = 777;
  const datagen::Workload workload = datagen::MakeWorkload(spec);
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);
  RecordStore store;
  SortedNeighborhoodMatcher matcher(MakeStandardBlocker(spec.kind),
                                    /*window=*/8, similarity, &store);
  auto blocker = MakeStandardBlocker(spec.kind);
  LinkageEngine engine(blocker.get(), &matcher, similarity);
  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->quality.recall, 0.2);
  EXPECT_GT(report->quality.precision, 0.7);
  EXPECT_EQ(report->method, "SortedNeighborhood");
}

TEST(SnmMatcherTest, FirstLetterTypoDefeatsTheSort) {
  // The related-work weakness end-to-end: 'KONES' sorts far from 'JONES'.
  RecordStore store;
  RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr), 0.75);
  SortedNeighborhoodMatcher matcher(MakeStandardBlocker(DatasetKind::kNcvr),
                                    /*window=*/3, similarity, &store);
  Record target;
  target.id = 1;
  target.entity_id = 1;
  target.fields = {"JAMES", "JONES", "1 MAIN ST", "RALEIGH"};
  ASSERT_TRUE(matcher.Insert(target, {}, "").ok());
  // Fill the gap between J... and K... in sort order.
  for (int i = 0; i < 30; ++i) {
    Record filler;
    filler.id = 100 + i;
    filler.entity_id = 100 + i;
    filler.fields = {"JAMESX" + std::to_string(i), "ZFILL", "2 OAK AVE",
                     "DURHAM"};
    ASSERT_TRUE(matcher.Insert(filler, {}, "").ok());
  }
  Record query = target;
  query.id = 999;
  query.fields[0] = "KAMES";  // first-letter typo in the sort-leading field
  auto matches = matcher.Resolve(query, {}, "");
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

}  // namespace
}  // namespace sketchlink

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/edge_ordering.h"
#include "baselines/inv_index.h"
#include "baselines/map_summary.h"
#include "baselines/oracle.h"
#include "linkage/record_store.h"

namespace sketchlink {
namespace {

Record MakeRecord(RecordId id, uint64_t entity,
                  std::vector<std::string> fields) {
  Record record;
  record.id = id;
  record.entity_id = entity;
  record.fields = std::move(fields);
  return record;
}

TEST(MapSummaryTest, ExactMembership) {
  MapSummary summary;
  summary.Insert("A");
  summary.Insert("B");
  summary.Insert("A");
  EXPECT_TRUE(summary.Query("A"));
  EXPECT_TRUE(summary.Query("B"));
  EXPECT_FALSE(summary.Query("C"));
  EXPECT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary.inserts(), 3u);
}

TEST(MapSummaryTest, MemoryGrowsLinearly) {
  MapSummary summary;
  const size_t empty = summary.ApproximateMemoryUsage();
  for (int i = 0; i < 10000; ++i) {
    summary.Insert("some-blocking-key-" + std::to_string(i));
  }
  EXPECT_GT(summary.ApproximateMemoryUsage(), empty + 10000 * 8);
}

TEST(OracleTest, AnswersFromEntityIds) {
  Oracle oracle;
  Dataset dataset;
  dataset.Add(MakeRecord(1, 100, {}));
  dataset.Add(MakeRecord(2, 100, {}));
  dataset.Add(MakeRecord(3, 200, {}));
  oracle.RegisterDataset(dataset);
  EXPECT_TRUE(oracle.Matches(1, 2));
  EXPECT_FALSE(oracle.Matches(1, 3));
  EXPECT_FALSE(oracle.Matches(1, 999));  // unknown record
  EXPECT_EQ(oracle.queries(), 3u);
}

class InvTest : public ::testing::Test {
 protected:
  InvTest()
      : similarity_({0, 1}, 0.75),
        matcher_(InvOptions(), similarity_, &store_) {}

  Status Insert(const Record& record) {
    return matcher_.Insert(record, {}, "");
  }
  Result<std::vector<RecordId>> Resolve(const Record& query) {
    return matcher_.Resolve(query, {}, "");
  }

  RecordStore store_;
  RecordSimilarity similarity_;
  InvIndexMatcher matcher_;
};

TEST_F(InvTest, FindsExactDuplicates) {
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"JAMES", "JOHNSON"})).ok());
  ASSERT_TRUE(Insert(MakeRecord(2, 2, {"MARY", "WILLIAMS"})).ok());
  auto matches = Resolve(MakeRecord(100, 1, {"JAMES", "JOHNSON"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0], 1u);
}

TEST_F(InvTest, FindsPhoneticVariants) {
  // SMITH / SMYTH share the metaphone bucket; the pre-computed similarity
  // clears both thresholds.
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"JAMES", "SMITH"})).ok());
  auto matches = Resolve(MakeRecord(100, 1, {"JAMES", "SMYTH"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
}

TEST_F(InvTest, MissesPhoneticallyBrokenTypos) {
  // A typo in the first letter changes the metaphone code, the documented
  // weakness that costs INV recall in Fig. 7a.
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"JAMES", "KONES"})).ok());
  auto matches = Resolve(MakeRecord(100, 1, {"JAMES", "JONES"}));
  ASSERT_TRUE(matches.ok());
  // "KONES" encodes differently from "JONES": the surname field cannot
  // contribute, and one matching field out of two is below 0.75.
  EXPECT_TRUE(matches->empty());
}

TEST_F(InvTest, PrecomputationIsReused) {
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"JAMES", "SMITH"})).ok());
  ASSERT_TRUE(Insert(MakeRecord(2, 2, {"JAMES", "SMYTH"})).ok());
  EXPECT_GT(matcher_.build_comparisons(), 0u);
  const uint64_t before = matcher_.query_comparisons();
  auto matches = Resolve(MakeRecord(100, 1, {"JAMES", "SMITH"}));
  ASSERT_TRUE(matches.ok());
  EXPECT_GT(matcher_.cache_hits(), 0u);
  // Query values that already exist in the index hit the cache.
  EXPECT_EQ(matcher_.query_comparisons(), before);
}

TEST_F(InvTest, CrossFieldPollutionCreatesCandidates) {
  // A record whose SURNAME is "JAMES" collides with queries whose GIVEN
  // name is "JAMES" — the shared-index ambiguity the paper highlights.
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"JAMES", "JAMES"})).ok());
  auto matches = Resolve(MakeRecord(100, 2, {"JAMES", "JAMES"}));
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);  // reported despite different entity
}

TEST_F(InvTest, EmptyIndexResolvesEmpty) {
  auto matches = Resolve(MakeRecord(1, 1, {"ANY", "ONE"}));
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

class EoTest : public ::testing::Test {
 protected:
  EoTest()
      : similarity_({0, 1}, 0.75),
        matcher_(EoOptions(), similarity_, &store_, &oracle_) {}

  Status Insert(const Record& record, const std::string& key) {
    return matcher_.Insert(record, {key}, "");
  }
  Result<std::vector<RecordId>> Resolve(const Record& query,
                                        const std::string& key) {
    return matcher_.Resolve(query, {key}, "");
  }

  RecordStore store_;
  Oracle oracle_;
  RecordSimilarity similarity_;
  EdgeOrderingMatcher matcher_;
};

TEST_F(EoTest, SubmitsOnlySimilarPairsToOracle) {
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"JAMES", "JOHNSON"}), "J").ok());
  ASSERT_TRUE(Insert(MakeRecord(2, 2, {"XQW", "ZVB"}), "J").ok());
  auto formulated = Resolve(MakeRecord(100, 1, {"JAMES", "JOHNSON"}), "J");
  ASSERT_TRUE(formulated.ok());
  // EO formulates (and is scored on) every pair in the block...
  EXPECT_EQ(formulated->size(), 2u);
  // ...but spends oracle budget only on the edge above the estimate floor.
  EXPECT_EQ(matcher_.oracle_queries(), 1u);
}

TEST_F(EoTest, ComparesEveryBlockMember) {
  // EO's cost profile: similarity is computed for ALL block members even if
  // none is submitted.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        Insert(MakeRecord(i + 1, i + 1, {"FILLER" + std::to_string(i),
                                         "OTHER"}),
               "BLOCK")
            .ok());
  }
  const uint64_t before = matcher_.comparisons();
  auto submitted =
      Resolve(MakeRecord(100, 999, {"UNRELATED", "QUERY"}), "BLOCK");
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(matcher_.comparisons() - before, 50u);
}

TEST_F(EoTest, TransitivityskipsRedundantOracleCalls) {
  // Two records already clustered (previous resolutions) need one oracle
  // query for the pair, not two.
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"JAMES", "JOHNSON"}), "J").ok());
  ASSERT_TRUE(Insert(MakeRecord(2, 1, {"JAMES", "JOHNSON"}), "J").ok());
  auto first = Resolve(MakeRecord(100, 1, {"JAMES", "JOHNSON"}), "J");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 2u);
  // Records 1 and 2 are now clustered together (both matched query 100). A
  // second query forms two edges but needs only one oracle call: the second
  // edge's verdict follows transitively.
  const uint64_t queries_before = matcher_.oracle_queries();
  auto second = Resolve(MakeRecord(101, 1, {"JAMES", "JOHNSON"}), "J");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 2u);  // data records 1 and 2 submitted
  EXPECT_GT(matcher_.transitivity_skips(), 0u);
  EXPECT_EQ(matcher_.oracle_queries() - queries_before, 1u);
}

TEST_F(EoTest, DissimilarPairsNotSubmittedToOracle) {
  ASSERT_TRUE(Insert(MakeRecord(1, 1, {"AAAA", "BBBB"}), "K").ok());
  auto formulated = Resolve(MakeRecord(100, 2, {"ZZZZ", "QQQQ"}), "K");
  ASSERT_TRUE(formulated.ok());
  EXPECT_EQ(formulated->size(), 1u);  // compared, hence in the result set
  EXPECT_EQ(matcher_.oracle_queries(), 0u);  // but never submitted
}

TEST_F(EoTest, EmptyBlockResolvesEmpty) {
  auto submitted = Resolve(MakeRecord(1, 1, {"A", "B"}), "NOSUCH");
  ASSERT_TRUE(submitted.ok());
  EXPECT_TRUE(submitted->empty());
}

TEST(UnionFindTest, BasicConnectivity) {
  UnionFind uf;
  EXPECT_FALSE(uf.Connected(1, 2));
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(1, 2));
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Connected(1, 3));
  EXPECT_FALSE(uf.Connected(1, 4));
  uf.Union(4, 5);
  uf.Union(3, 5);
  EXPECT_TRUE(uf.Connected(1, 4));
}

TEST(UnionFindTest, SelfUnionIsNoOp) {
  UnionFind uf;
  uf.Union(7, 7);
  EXPECT_TRUE(uf.Connected(7, 7));
}

}  // namespace
}  // namespace sketchlink

#include "record/record.h"

#include <gtest/gtest.h>

#include <string>

#include "kv/env.h"

namespace sketchlink {
namespace {

Record MakeRecord(RecordId id, uint64_t entity,
                  std::vector<std::string> fields) {
  Record record;
  record.id = id;
  record.entity_id = entity;
  record.fields = std::move(fields);
  return record;
}

TEST(RecordTest, EncodeDecodeRoundTrip) {
  const Record original = MakeRecord(42, 7, {"JOHN", "SMITH", "1970"});
  std::string encoded;
  original.EncodeTo(&encoded);
  std::string_view input(encoded);
  auto decoded = Record::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(*decoded, original);
}

TEST(RecordTest, EncodeDecodeEmptyFields) {
  const Record original = MakeRecord(1, 1, {"", "", ""});
  std::string encoded;
  original.EncodeTo(&encoded);
  std::string_view input(encoded);
  auto decoded = Record::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->fields.size(), 3u);
}

TEST(RecordTest, DecodeTruncatedFails) {
  const Record original = MakeRecord(42, 7, {"FIELD"});
  std::string encoded;
  original.EncodeTo(&encoded);
  encoded.resize(encoded.size() - 2);
  std::string_view input(encoded);
  EXPECT_TRUE(Record::DecodeFrom(&input).status().IsCorruption());
}

TEST(RecordTest, MultipleRecordsInOneBuffer) {
  std::string buffer;
  MakeRecord(1, 1, {"A"}).EncodeTo(&buffer);
  MakeRecord(2, 2, {"B", "C"}).EncodeTo(&buffer);
  std::string_view input(buffer);
  auto first = Record::DecodeFrom(&input);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->id, 1u);
  auto second = Record::DecodeFrom(&input);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->fields.size(), 2u);
  EXPECT_TRUE(input.empty());
}

TEST(SchemaTest, FieldIndexLookup) {
  Schema schema({"given", "surname", "town"});
  EXPECT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.FieldIndex("surname"), 1);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);
}

TEST(DatasetTest, AddAndAccess) {
  Dataset dataset(Schema({"f1"}));
  dataset.Add(MakeRecord(1, 1, {"a"}));
  dataset.Add(MakeRecord(2, 1, {"b"}));
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset[1].fields[0], "b");
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/csv_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
    (void)kv::RemoveFile(path_);
  }
  void TearDown() override { (void)kv::RemoveFile(path_); }
  std::string path_;
};

TEST_F(CsvTest, WriteReadRoundTrip) {
  Dataset dataset(Schema({"name", "town"}));
  dataset.Add(MakeRecord(1, 10, {"JAMES", "RALEIGH"}));
  dataset.Add(MakeRecord(2, 20, {"MARY", "DURHAM"}));
  ASSERT_TRUE(dataset.WriteCsv(path_).ok());

  auto loaded = Dataset::ReadCsv(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->schema().field_names(),
            (std::vector<std::string>{"name", "town"}));
  EXPECT_EQ((*loaded)[0].id, 1u);
  EXPECT_EQ((*loaded)[0].entity_id, 10u);
  EXPECT_EQ((*loaded)[1].fields[1], "DURHAM");
}

TEST_F(CsvTest, QuotingRoundTrip) {
  Dataset dataset(Schema({"tricky"}));
  dataset.Add(MakeRecord(1, 1, {"comma, inside"}));
  dataset.Add(MakeRecord(2, 2, {"quote \" inside"}));
  ASSERT_TRUE(dataset.WriteCsv(path_).ok());
  auto loaded = Dataset::ReadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)[0].fields[0], "comma, inside");
  EXPECT_EQ((*loaded)[1].fields[0], "quote \" inside");
}

TEST_F(CsvTest, RejectsBadHeader) {
  ASSERT_TRUE(kv::WriteStringToFileSync(path_, "foo,bar\n1,2\n").ok());
  EXPECT_TRUE(Dataset::ReadCsv(path_).status().IsCorruption());
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  ASSERT_TRUE(kv::WriteStringToFileSync(
                  path_, "id,entity_id,name\n1,1,a,EXTRA\n")
                  .ok());
  EXPECT_TRUE(Dataset::ReadCsv(path_).status().IsCorruption());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  EXPECT_FALSE(Dataset::ReadCsv("/nonexistent/nope.csv").ok());
}

TEST(RecordTest, MemoryUsageGrowsWithFieldSize) {
  const Record small = MakeRecord(1, 1, {"a"});
  const Record large = MakeRecord(1, 1, {std::string(1000, 'x')});
  EXPECT_GT(large.ApproximateMemoryUsage(), small.ApproximateMemoryUsage());
}

}  // namespace
}  // namespace sketchlink

#include "bloom/bloom_filter.h"

#include <gtest/gtest.h>

#include <string>

namespace sketchlink {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter = BloomFilter::WithCapacity(1000, 0.05);
  for (int i = 0; i < 1000; ++i) {
    filter.Insert("key" + std::to_string(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MayContain("key" + std::to_string(i))) << i;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  const double target_fp = 0.05;
  BloomFilter filter = BloomFilter::WithCapacity(5000, target_fp);
  for (int i = 0; i < 5000; ++i) {
    filter.Insert("present" + std::to_string(i));
  }
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  const double observed = static_cast<double>(false_positives) / probes;
  EXPECT_LT(observed, target_fp * 2.0);
  // Sanity: a filter at capacity should not be trivially empty either.
  EXPECT_GT(filter.CountSetBits(), 0u);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter filter(1024, 4);
  EXPECT_FALSE(filter.MayContain("anything"));
  EXPECT_EQ(filter.CountSetBits(), 0u);
  EXPECT_EQ(filter.insert_count(), 0u);
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter filter(1024, 4);
  filter.Insert("a");
  filter.Insert("b");
  EXPECT_TRUE(filter.MayContain("a"));
  filter.Clear();
  EXPECT_FALSE(filter.MayContain("a"));
  EXPECT_EQ(filter.insert_count(), 0u);
}

TEST(BloomFilterTest, PaperGeometry32kBitsFor5kKeys) {
  // The paper sizes SkipBloom's filters at 32,000 bits for 5,000 keys with
  // fp = 0.05; verify that load produces an acceptable observed rate.
  BloomFilter filter(32000, 4);
  for (int i = 0; i < 5000; ++i) {
    filter.Insert("k" + std::to_string(i));
  }
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain("other" + std::to_string(i))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.08);
}

TEST(BloomFilterTest, UnionCombinesMembership) {
  BloomFilter a(2048, 4, 7);
  BloomFilter b(2048, 4, 7);
  a.Insert("left");
  b.Insert("right");
  ASSERT_TRUE(a.UnionWith(b).ok());
  EXPECT_TRUE(a.MayContain("left"));
  EXPECT_TRUE(a.MayContain("right"));
}

TEST(BloomFilterTest, UnionRejectsMismatchedGeometry) {
  BloomFilter a(2048, 4, 7);
  BloomFilter b(4096, 4, 7);
  EXPECT_TRUE(a.UnionWith(b).IsInvalidArgument());
  BloomFilter c(2048, 5, 7);
  EXPECT_TRUE(a.UnionWith(c).IsInvalidArgument());
  BloomFilter d(2048, 4, 8);
  EXPECT_TRUE(a.UnionWith(d).IsInvalidArgument());
}

TEST(BloomFilterTest, EncodeDecodeRoundTrip) {
  BloomFilter filter(4096, 5, 99);
  for (int i = 0; i < 200; ++i) filter.Insert("item" + std::to_string(i));
  std::string encoded;
  filter.EncodeTo(&encoded);
  std::string_view input(encoded);
  auto decoded = BloomFilter::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(decoded->insert_count(), filter.insert_count());
  EXPECT_EQ(decoded->num_bits(), filter.num_bits());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(decoded->MayContain("item" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, DecodeTruncatedFails) {
  BloomFilter filter(1024, 3);
  filter.Insert("x");
  std::string encoded;
  filter.EncodeTo(&encoded);
  encoded.resize(encoded.size() / 2);
  std::string_view input(encoded);
  EXPECT_TRUE(BloomFilter::DecodeFrom(&input).status().IsCorruption());
}

TEST(BloomFilterTest, EstimatedFpGrowsWithLoad) {
  BloomFilter filter(1024, 4);
  const double empty_fp = filter.EstimatedFpRate();
  for (int i = 0; i < 400; ++i) filter.Insert(std::to_string(i));
  EXPECT_GT(filter.EstimatedFpRate(), empty_fp);
  EXPECT_LE(filter.EstimatedFpRate(), 1.0);
}

TEST(BloomFilterTest, MemoryUsageScalesWithBits) {
  BloomFilter small(1024, 4);
  BloomFilter large(1024 * 64, 4);
  EXPECT_GT(large.ApproximateMemoryUsage(), small.ApproximateMemoryUsage());
}

class BloomFpSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFpSweep, ObservedRateTracksConfiguredRate) {
  const double target = GetParam();
  BloomFilter filter = BloomFilter::WithCapacity(2000, target, 1234);
  for (int i = 0; i < 2000; ++i) filter.Insert("in" + std::to_string(i));
  int fp = 0;
  const int probes = 30000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain("out" + std::to_string(i))) ++fp;
  }
  const double observed = static_cast<double>(fp) / probes;
  EXPECT_LT(observed, target * 2.5 + 0.001) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Rates, BloomFpSweep,
                         ::testing::Values(0.2, 0.1, 0.05, 0.01, 0.001));

}  // namespace
}  // namespace sketchlink

#include "bloom/counting_bloom_filter.h"

#include <gtest/gtest.h>

#include <string>

namespace sketchlink {
namespace {

TEST(CountingBloomFilterTest, InsertThenContains) {
  CountingBloomFilter filter = CountingBloomFilter::WithCapacity(1000, 0.01);
  for (int i = 0; i < 1000; ++i) {
    filter.Insert("key" + std::to_string(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MayContain("key" + std::to_string(i))) << i;
  }
}

TEST(CountingBloomFilterTest, RemoveErasesMembership) {
  CountingBloomFilter filter = CountingBloomFilter::WithCapacity(100, 0.01);
  filter.Insert("alpha");
  filter.Insert("beta");
  ASSERT_TRUE(filter.MayContain("alpha"));
  filter.Remove("alpha");
  EXPECT_FALSE(filter.MayContain("alpha"));
  // Other keys are untouched (with overwhelming probability at this load).
  EXPECT_TRUE(filter.MayContain("beta"));
}

TEST(CountingBloomFilterTest, DuplicateInsertsNeedMatchingRemoves) {
  CountingBloomFilter filter = CountingBloomFilter::WithCapacity(100, 0.01);
  filter.Insert("dup");
  filter.Insert("dup");
  filter.Remove("dup");
  EXPECT_TRUE(filter.MayContain("dup"));  // one copy still in
  filter.Remove("dup");
  EXPECT_FALSE(filter.MayContain("dup"));
}

TEST(CountingBloomFilterTest, FalsePositiveRateNearTarget) {
  const double target = 0.01;
  CountingBloomFilter filter =
      CountingBloomFilter::WithCapacity(2000, target);
  for (int i = 0; i < 2000; ++i) filter.Insert("in" + std::to_string(i));
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain("out" + std::to_string(i))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, target * 3 + 0.001);
}

TEST(CountingBloomFilterTest, ChurnKeepsCorrectness) {
  CountingBloomFilter filter = CountingBloomFilter::WithCapacity(500, 0.01);
  // Insert/remove waves; present keys must always answer true.
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 200; ++i) {
      filter.Insert("w" + std::to_string(wave) + "k" + std::to_string(i));
    }
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(filter.MayContain("w" + std::to_string(wave) + "k" +
                                    std::to_string(i)));
    }
    for (int i = 0; i < 200; ++i) {
      filter.Remove("w" + std::to_string(wave) + "k" + std::to_string(i));
    }
  }
  EXPECT_EQ(filter.insert_count(), 0u);
}

TEST(CountingBloomFilterTest, SaturationSticks) {
  // A tiny filter hammered with one key: counters saturate and further
  // removes cannot push them to zero (no false negatives for survivors).
  CountingBloomFilter filter(16, 2);
  for (int i = 0; i < 300; ++i) filter.Insert("hot");
  EXPECT_GT(filter.saturated_count(), 0u);
  for (int i = 0; i < 300; ++i) filter.Remove("hot");
  // Saturated cells stick at 255, so membership persists (documented
  // permanent-false-positive trade-off).
  EXPECT_TRUE(filter.MayContain("hot"));
}

TEST(CountingBloomFilterTest, EmptyFilterContainsNothing) {
  CountingBloomFilter filter(64, 3);
  EXPECT_FALSE(filter.MayContain("anything"));
  filter.Remove("anything");  // removing from empty is a no-op
  EXPECT_FALSE(filter.MayContain("anything"));
}

}  // namespace
}  // namespace sketchlink

#include "bloom/annotated_bloom_filter.h"

#include <gtest/gtest.h>

namespace sketchlink {
namespace {

TEST(AnnotatedBloomFilterTest, TracksMinMax) {
  AnnotatedBloomFilter filter(100, 0.05);
  filter.Insert("MIDDLE");
  EXPECT_EQ(filter.min_key(), "MIDDLE");
  EXPECT_EQ(filter.max_key(), "MIDDLE");
  filter.Insert("ALPHA");
  filter.Insert("ZULU");
  EXPECT_EQ(filter.min_key(), "ALPHA");
  EXPECT_EQ(filter.max_key(), "ZULU");
  EXPECT_EQ(filter.count(), 3u);
}

TEST(AnnotatedBloomFilterTest, RangeCoversOnlyInsertedSpan) {
  AnnotatedBloomFilter filter(100, 0.05);
  filter.Insert("GAMMA");
  filter.Insert("OMEGA");
  EXPECT_TRUE(filter.RangeCovers("GAMMA"));
  EXPECT_TRUE(filter.RangeCovers("LAMBDA"));
  EXPECT_TRUE(filter.RangeCovers("OMEGA"));
  EXPECT_FALSE(filter.RangeCovers("ALPHA"));
  EXPECT_FALSE(filter.RangeCovers("ZETA9"));
}

TEST(AnnotatedBloomFilterTest, EmptyCoversNothing) {
  AnnotatedBloomFilter filter(100, 0.05);
  EXPECT_FALSE(filter.RangeCovers(""));
  EXPECT_FALSE(filter.RangeCovers("ANY"));
  EXPECT_FALSE(filter.MayContain("ANY"));
}

TEST(AnnotatedBloomFilterTest, MayContainRequiresRangeAndBits) {
  AnnotatedBloomFilter filter(100, 0.05);
  filter.Insert("JOHNS");
  filter.Insert("JORDAN");
  EXPECT_TRUE(filter.MayContain("JOHNS"));
  EXPECT_TRUE(filter.MayContain("JORDAN"));
  // Out of range, even if the bits happened to collide.
  EXPECT_FALSE(filter.MayContain("AARON"));
  EXPECT_FALSE(filter.MayContain("ZZTOP"));
}

TEST(AnnotatedBloomFilterTest, FullAfterCapacityInserts) {
  AnnotatedBloomFilter filter(3, 0.05);
  EXPECT_FALSE(filter.Full());
  filter.Insert("A");
  filter.Insert("B");
  EXPECT_FALSE(filter.Full());
  filter.Insert("C");
  EXPECT_TRUE(filter.Full());
}

TEST(AnnotatedBloomFilterTest, DuplicateInsertsCountTowardCapacity) {
  AnnotatedBloomFilter filter(2, 0.05);
  filter.Insert("X");
  filter.Insert("X");
  EXPECT_TRUE(filter.Full());
  EXPECT_EQ(filter.min_key(), "X");
  EXPECT_EQ(filter.max_key(), "X");
}

TEST(AnnotatedBloomFilterTest, ZeroCapacityClampedToOne) {
  AnnotatedBloomFilter filter(0, 0.05);
  filter.Insert("Y");
  EXPECT_TRUE(filter.Full());
  EXPECT_TRUE(filter.MayContain("Y"));
}

TEST(AnnotatedBloomFilterTest, MemoryIncludesFilterAndKeys) {
  AnnotatedBloomFilter filter(1000, 0.01);
  const size_t base = filter.ApproximateMemoryUsage();
  EXPECT_GT(base, sizeof(AnnotatedBloomFilter));
  filter.Insert(std::string(100, 'A'));
  filter.Insert(std::string(100, 'Z'));
  EXPECT_GT(filter.ApproximateMemoryUsage(), base);
}

}  // namespace
}  // namespace sketchlink

#include "bloom/record_encoder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sketchlink {
namespace {

TEST(BitVectorTest, SetAndGet) {
  BitVector bits(128);
  EXPECT_FALSE(bits.GetBit(0));
  bits.SetBit(0);
  bits.SetBit(63);
  bits.SetBit(64);
  bits.SetBit(127);
  EXPECT_TRUE(bits.GetBit(0));
  EXPECT_TRUE(bits.GetBit(63));
  EXPECT_TRUE(bits.GetBit(64));
  EXPECT_TRUE(bits.GetBit(127));
  EXPECT_FALSE(bits.GetBit(1));
  EXPECT_EQ(bits.CountSetBits(), 4u);
}

TEST(BitVectorTest, HammingDistanceBasic) {
  BitVector a(64);
  BitVector b(64);
  EXPECT_EQ(a.HammingDistance(b), 0u);
  a.SetBit(3);
  EXPECT_EQ(a.HammingDistance(b), 1u);
  b.SetBit(3);
  EXPECT_EQ(a.HammingDistance(b), 0u);
  b.SetBit(40);
  a.SetBit(41);
  EXPECT_EQ(a.HammingDistance(b), 2u);
}

TEST(BitVectorTest, HammingDistanceSymmetric) {
  BitVector a(100);
  BitVector b(100);
  a.SetBit(10);
  a.SetBit(20);
  b.SetBit(20);
  b.SetBit(99);
  EXPECT_EQ(a.HammingDistance(b), b.HammingDistance(a));
}

TEST(RecordEncoderTest, DeterministicEncoding) {
  RecordBloomEncoder encoder(500, 4);
  const auto a = encoder.EncodeString("JOHNSON");
  const auto b = encoder.EncodeString("JOHNSON");
  EXPECT_EQ(a.HammingDistance(b), 0u);
}

TEST(RecordEncoderTest, SimilarStringsCloserThanDissimilar) {
  RecordBloomEncoder encoder(1000, 4);
  const auto base = encoder.EncodeString("JOHNSON");
  const auto typo = encoder.EncodeString("JOHNSN");
  const auto other = encoder.EncodeString("WILLIAMS");
  EXPECT_LT(base.HammingDistance(typo), base.HammingDistance(other));
}

TEST(RecordEncoderTest, MultiFieldEncodingIsUnionOfGrams) {
  RecordBloomEncoder encoder(1000, 4);
  const auto joint = encoder.Encode({"JOHN", "SMITH"});
  const auto first = encoder.EncodeString("JOHN");
  // Every bit set by the single field is set in the joint encoding.
  for (size_t i = 0; i < 1000; ++i) {
    if (first.GetBit(i)) EXPECT_TRUE(joint.GetBit(i)) << i;
  }
}

TEST(RecordEncoderTest, EmptyFieldsYieldEmptyVectorWithPadGrams) {
  RecordBloomEncoder encoder(500, 4);
  const auto empty = encoder.Encode({});
  EXPECT_EQ(empty.CountSetBits(), 0u);
  // An empty string still emits the pad gram "#$".
  const auto empty_string = encoder.EncodeString("");
  EXPECT_GT(empty_string.CountSetBits(), 0u);
}

TEST(RecordEncoderTest, RecordLevelPerturbationStaysClose) {
  // The Hamming LSH premise: a perturbed record's embedding is much closer
  // to its source than to an unrelated record's embedding.
  RecordBloomEncoder encoder(1000, 4);
  const auto original = encoder.Encode({"JAMES", "JOHNSON", "RALEIGH"});
  const auto perturbed = encoder.Encode({"JAMS", "JOHNSONN", "RALEIGH"});
  const auto unrelated = encoder.Encode({"MARY", "WILLIAMS", "DURHAM"});
  EXPECT_LT(original.HammingDistance(perturbed) * 2,
            original.HammingDistance(unrelated));
}

}  // namespace
}  // namespace sketchlink

#include "kv/wal.h"

#include <gtest/gtest.h>

#include <string>

#include "kv/env.h"

namespace sketchlink::kv {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/wal.log";
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, RoundTripPutsAndDeletes) {
  {
    auto writer = WalWriter::Open(path_, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendPut("alpha", "1").ok());
    ASSERT_TRUE((*writer)->AppendDelete("beta").ok());
    ASSERT_TRUE((*writer)->AppendPut("gamma", std::string(1000, 'g')).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto records = ReadWal(path_);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].op, WalRecord::Op::kPut);
  EXPECT_EQ((*records)[0].key, "alpha");
  EXPECT_EQ((*records)[0].value, "1");
  EXPECT_EQ((*records)[1].op, WalRecord::Op::kDelete);
  EXPECT_EQ((*records)[1].key, "beta");
  EXPECT_TRUE((*records)[1].value.empty());
  EXPECT_EQ((*records)[2].value.size(), 1000u);
}

TEST_F(WalTest, EmptyLogYieldsNoRecords) {
  {
    auto writer = WalWriter::Open(path_, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto records = ReadWal(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(WalTest, TornTailIsRecoveredGracefully) {
  {
    auto writer = WalWriter::Open(path_, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendPut("intact", "yes").ok());
    ASSERT_TRUE((*writer)->AppendPut("torn", "lost").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Chop bytes off the tail: simulates a crash mid-append.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path_, &contents).ok());
  contents.resize(contents.size() - 5);
  ASSERT_TRUE(WriteStringToFileSync(path_, contents).ok());

  auto records = ReadWal(path_);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].key, "intact");
}

TEST_F(WalTest, MidFileCorruptionIsReported) {
  {
    auto writer = WalWriter::Open(path_, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendPut("first", "1").ok());
    ASSERT_TRUE((*writer)->AppendPut("second", "2").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path_, &contents).ok());
  // Flip a payload byte inside the first record (skip 4-byte crc + 1-byte
  // length varint).
  contents[6] ^= 0x40;
  ASSERT_TRUE(WriteStringToFileSync(path_, contents).ok());
  EXPECT_TRUE(ReadWal(path_).status().IsCorruption());
}

TEST_F(WalTest, SyncEachRecordModeWorks) {
  auto writer = WalWriter::Open(path_, true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendPut("durable", "v").ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto records = ReadWal(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

TEST_F(WalTest, EmptyKeysAndValuesSurvive) {
  {
    auto writer = WalWriter::Open(path_, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendPut("", "").ok());
    ASSERT_TRUE((*writer)->AppendDelete("").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto records = ReadWal(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].key, "");
  EXPECT_EQ((*records)[0].op, WalRecord::Op::kPut);
  EXPECT_EQ((*records)[1].op, WalRecord::Op::kDelete);
}

TEST_F(WalTest, BinaryKeysSurvive) {
  std::string binary_key("\x00\x01\xff\x7f", 4);
  {
    auto writer = WalWriter::Open(path_, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendPut(binary_key, std::string("\0v\0", 3)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto records = ReadWal(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].key, binary_key);
  EXPECT_EQ((*records)[0].value.size(), 3u);
}

}  // namespace
}  // namespace sketchlink::kv

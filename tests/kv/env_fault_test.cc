// Injected-failure and crash-consistency tests driven through
// FaultInjectionEnv: every I/O entry point can fail or the disk can freeze
// mid-sequence, and the store must either surface the error or recover to a
// state containing every acknowledged synced write.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "kv/db.h"
#include "kv/env.h"
#include "kv/fault_injection_env.h"
#include "kv/wal.h"

namespace sketchlink::kv {
namespace {

class EnvFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/env_fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST_F(EnvFaultTest, FailedAppendSurfacesErrorWithoutPoisoning) {
  FaultInjectionEnv env;
  Options options;
  options.env = &env;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  env.FailNth(IoOp::kAppend, 0, Status::IOError("injected append"));
  EXPECT_TRUE((*db)->Put("a", "1").IsIOError());
  // The WAL itself is intact (nothing landed): later writes go through.
  ASSERT_TRUE((*db)->Put("b", "2").ok());
  std::string value;
  EXPECT_TRUE((*db)->Get("a", &value).IsNotFound());
  EXPECT_TRUE((*db)->Get("b", &value).ok());
}

TEST_F(EnvFaultTest, FailedSyncFailsTheWrite) {
  FaultInjectionEnv env;
  Options options;
  options.env = &env;
  options.sync_writes = true;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  env.FailNth(IoOp::kSync, 0, Status::IOError("injected sync"));
  EXPECT_TRUE((*db)->Put("a", "1").IsIOError());
  ASSERT_TRUE((*db)->Put("b", "2").ok());
}

TEST_F(EnvFaultTest, FailedReadSurfacesFromSstableLookup) {
  FaultInjectionEnv env;
  Options options;
  options.env = &env;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*db)->Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  env.FailNth(IoOp::kRead, 0, Status::IOError("injected read"));
  std::string value;
  EXPECT_TRUE((*db)->Get("k17", &value).IsIOError());
  // Transient: the next lookup reads fine.
  EXPECT_TRUE((*db)->Get("k17", &value).ok());
}

TEST_F(EnvFaultTest, FailedFlushLeavesDataReadableAndRetryable) {
  FaultInjectionEnv env;
  Options options;
  options.env = &env;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*db)->Put("k" + std::to_string(i), "v").ok());
  }
  env.FailNth(IoOp::kOpenWritable, 0, Status::IOError("injected open"));
  EXPECT_TRUE((*db)->Flush().IsIOError());
  std::string value;
  EXPECT_TRUE((*db)->Get("k3", &value).ok());  // memtable untouched
  ASSERT_TRUE((*db)->Flush().ok());            // retry succeeds
  EXPECT_TRUE((*db)->Get("k3", &value).ok());
}

// Regression for the stale-WAL-writer bug: a failed WAL rotation used to
// leave wal_ pointing at a closed file, after which Puts reported OK while
// logging nothing. The store must fail closed until a rotation succeeds.
TEST_F(EnvFaultTest, WalRotationFailurePoisonsWritesUntilHealed) {
  FaultInjectionEnv env;
  Options options;
  options.env = &env;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k1", "v1").ok());
  // The flush renames twice — the manifest commit, then the WAL rotation.
  // Let the manifest through and fail the rotation, plus the retry the
  // next write makes.
  env.FailNth(IoOp::kRename, 1, Status::IOError("injected rename"));
  env.FailNth(IoOp::kRename, 1, Status::IOError("injected rename"));
  EXPECT_TRUE((*db)->Flush().IsIOError());
  EXPECT_TRUE((*db)->Put("k2", "v2").IsIOError());  // poisoned, fails closed
  ASSERT_TRUE((*db)->Put("k3", "v3").ok());         // rotation healed
  std::string value;
  EXPECT_TRUE((*db)->Get("k1", &value).ok());
  EXPECT_TRUE((*db)->Get("k2", &value).IsNotFound());
  EXPECT_TRUE((*db)->Get("k3", &value).ok());

  (*db).reset();
  auto reopened = Db::Open(dir_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->Get("k1", &value).ok());
  EXPECT_TRUE((*reopened)->Get("k2", &value).IsNotFound());
  EXPECT_TRUE((*reopened)->Get("k3", &value).ok());
}

TEST_F(EnvFaultTest, DropUnsyncedWritesTruncatesToLastSync) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing(dir_).ok());
  const std::string path = dir_ + "/wal.log";
  {
    auto wal = WalWriter::Open(path, /*sync_each_record=*/false, &env);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPut("synced", "s").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE((*wal)->AppendPut("lost", "l").ok());
    // No Sync/Close: the "process" dies holding buffered bytes.
  }
  ASSERT_TRUE(env.DropUnsyncedWrites().ok());
  auto records = ReadWal(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].key, "synced");
}

TEST_F(EnvFaultTest, SyncStateFollowsRenamedFile) {
  // WAL rotation renames the file out from under a live writer; sync
  // tracking must follow the inode or power loss would falsely truncate.
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing(dir_).ok());
  const std::string tmp = dir_ + "/wal.log.new";
  const std::string live = dir_ + "/wal.log";
  {
    auto wal = WalWriter::Open(tmp, /*sync_each_record=*/false, &env);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPut("before", "b").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE(env.RenameFile(tmp, live).ok());
    ASSERT_TRUE((*wal)->AppendPut("after", "a").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  ASSERT_TRUE(env.DropUnsyncedWrites().ok());
  auto records = ReadWal(live);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].key, "after");
}

TEST_F(EnvFaultTest, PartialAppendLeavesRecoverableTornTail) {
  FaultInjectionEnv env;
  env.set_partial_appends(true);
  ASSERT_TRUE(env.CreateDirIfMissing(dir_).ok());
  const std::string path = dir_ + "/wal.log";
  {
    auto wal = WalWriter::Open(path, /*sync_each_record=*/false, &env);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPut("whole", "w").ok());
    env.FailNth(IoOp::kAppend, 0, Status::IOError("injected append"));
    EXPECT_TRUE((*wal)->AppendPut("torn", "t").IsIOError());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  // Half a frame sits at the tail: that is the shape of a torn write, so
  // replay recovers the prefix instead of reporting corruption.
  auto records = ReadWal(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].key, "whole");
}

// --- crash-point sweep ----------------------------------------------------

Options SweepOptions(Env* env) {
  Options options;
  options.env = env;
  // Acked == synced-durable: every write the workload records as
  // acknowledged must survive power loss.
  options.sync_writes = true;
  return options;
}

// One Put -> flush -> Put -> flush -> compact -> Put cycle, pressing on
// through failures; records every key whose Put was acknowledged OK.
void RunCycle(Env* env, const std::string& dir,
              std::vector<std::string>* acked) {
  auto db = Db::Open(dir, SweepOptions(env));
  if (!db.ok()) return;
  auto put = [&](const std::string& key) {
    if ((*db)->Put(key, "v-" + key).ok()) acked->push_back(key);
  };
  for (int i = 0; i < 6; ++i) put("a" + std::to_string(i));
  (void)(*db)->Flush();
  for (int i = 0; i < 6; ++i) put("b" + std::to_string(i));
  (void)(*db)->Flush();
  (void)(*db)->Compact(true);
  for (int i = 0; i < 6; ++i) put("c" + std::to_string(i));
}

void VerifyAcked(const std::string& dir,
                 const std::vector<std::string>& acked, uint64_t crash_point) {
  auto db = Db::Open(dir);  // clean env: the machine came back up
  ASSERT_TRUE(db.ok()) << "crash point " << crash_point << ": "
                       << db.status().ToString();
  std::string value;
  for (const std::string& key : acked) {
    EXPECT_TRUE((*db)->Get(key, &value).ok())
        << "crash point " << crash_point << " lost acked key " << key;
  }
}

uint64_t CountCycleOps(const std::string& base) {
  FaultInjectionEnv counting_env;
  std::vector<std::string> ignored;
  RunCycle(&counting_env, base + "/clean", &ignored);
  return counting_env.mutating_ops();
}

TEST_F(EnvFaultTest, CrashPointSweepPowerLoss) {
  const uint64_t total = CountCycleOps(dir_);
  ASSERT_GT(total, 30u);
  for (uint64_t k = 0; k <= total; ++k) {
    const std::string dir = dir_ + "/k" + std::to_string(k);
    std::vector<std::string> acked;
    {
      FaultInjectionEnv env;
      env.CrashAfter(k);
      RunCycle(&env, dir, &acked);
      // The machine loses power on top of the frozen disk: everything
      // past the last fsync of each file vanishes.
      env.ClearCrash();
      ASSERT_TRUE(env.DropUnsyncedWrites().ok());
    }
    VerifyAcked(dir, acked, k);
  }
}

TEST_F(EnvFaultTest, CrashPointSweepProcessCrashWithTornWrites) {
  const uint64_t total = CountCycleOps(dir_);
  ASSERT_GT(total, 30u);
  for (uint64_t k = 0; k <= total; ++k) {
    const std::string dir = dir_ + "/k" + std::to_string(k);
    std::vector<std::string> acked;
    {
      FaultInjectionEnv env;
      env.set_partial_appends(true);  // the fatal append tears mid-frame
      env.CrashAfter(k);
      RunCycle(&env, dir, &acked);
    }
    VerifyAcked(dir, acked, k);
  }
}

}  // namespace
}  // namespace sketchlink::kv

#include "kv/block_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "kv/db.h"
#include "kv/env.h"

namespace sketchlink::kv {
namespace {

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(1024);
  std::string value;
  EXPECT_FALSE(cache.Lookup("k", &value));
  cache.Insert("k", "block-bytes");
  ASSERT_TRUE(cache.Lookup("k", &value));
  EXPECT_EQ(value, "block-bytes");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, OverwriteRefreshesValue) {
  BlockCache cache(1024);
  cache.Insert("k", "old");
  cache.Insert("k", "new");
  std::string value;
  ASSERT_TRUE(cache.Lookup("k", &value));
  EXPECT_EQ(value, "new");
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  // Each entry costs ~64 + key + value bytes; budget fits about 3.
  BlockCache cache(3 * 80);
  cache.Insert("a", std::string(8, 'a'));
  cache.Insert("b", std::string(8, 'b'));
  cache.Insert("c", std::string(8, 'c'));
  // Touch "a" so "b" is the LRU victim when "d" arrives.
  std::string value;
  ASSERT_TRUE(cache.Lookup("a", &value));
  cache.Insert("d", std::string(8, 'd'));
  EXPECT_TRUE(cache.Lookup("a", &value));
  EXPECT_FALSE(cache.Lookup("b", &value));
  EXPECT_TRUE(cache.Lookup("c", &value));
  EXPECT_TRUE(cache.Lookup("d", &value));
}

TEST(BlockCacheTest, OversizedValueIsNotCached) {
  BlockCache cache(128);
  cache.Insert("big", std::string(1024, 'x'));
  std::string value;
  EXPECT_FALSE(cache.Lookup("big", &value));
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(BlockCacheTest, BudgetIsRespected) {
  BlockCache cache(1000);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key" + std::to_string(i), std::string(50, 'v'));
  }
  EXPECT_LE(cache.size_bytes(), 1000u);
  EXPECT_GT(cache.num_entries(), 0u);
}

TEST(BlockCacheTest, EraseByPrefix) {
  BlockCache cache(4096);
  cache.Insert("t1@0", "a");
  cache.Insert("t1@100", "b");
  cache.Insert("t2@0", "c");
  cache.EraseByPrefix("t1@");
  std::string value;
  EXPECT_FALSE(cache.Lookup("t1@0", &value));
  EXPECT_FALSE(cache.Lookup("t1@100", &value));
  EXPECT_TRUE(cache.Lookup("t2@0", &value));
}

TEST(BlockCacheTest, ClearEmpties) {
  BlockCache cache(4096);
  cache.Insert("k", "v");
  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(BlockCacheIntegrationTest, RepeatedGetsHitTheCache) {
  const std::string dir = ::testing::TempDir() + "/block_cache_integration";
  ASSERT_TRUE(RemoveDirRecursively(dir).ok());
  Options options;
  options.block_cache_bytes = 1 << 20;
  auto db = Db::Open(dir, options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i), "value").ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());

  std::string value;
  ASSERT_TRUE((*db)->Get("key123", &value).ok());
  const BlockCache* cache = (*db)->block_cache();
  ASSERT_NE(cache, nullptr);
  const uint64_t misses_after_first = cache->misses();
  // Same stride re-read: served from cache, no new miss.
  ASSERT_TRUE((*db)->Get("key123", &value).ok());
  EXPECT_GT(cache->hits(), 0u);
  EXPECT_EQ(cache->misses(), misses_after_first);
  (void)RemoveDirRecursively(dir);
}

TEST(BlockCacheIntegrationTest, DisabledCacheStillServesReads) {
  const std::string dir = ::testing::TempDir() + "/block_cache_disabled";
  ASSERT_TRUE(RemoveDirRecursively(dir).ok());
  Options options;
  options.block_cache_bytes = 0;
  auto db = Db::Open(dir, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->block_cache(), nullptr);
  ASSERT_TRUE((*db)->Put("k", "v").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  std::string value;
  ASSERT_TRUE((*db)->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  (void)RemoveDirRecursively(dir);
}

}  // namespace
}  // namespace sketchlink::kv

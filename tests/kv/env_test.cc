#include "kv/env.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sketchlink::kv {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/env_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  const std::string path = dir_ + "/file.bin";
  auto file = WritableFile::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  EXPECT_EQ((*file)->size(), 11u);
  ASSERT_TRUE((*file)->Close().ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST_F(EnvTest, RandomAccessReadsAtOffset) {
  const std::string path = dir_ + "/ra.bin";
  ASSERT_TRUE(WriteStringToFileSync(path, "0123456789").ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->size(), 10u);
  std::string chunk;
  ASSERT_TRUE((*file)->Read(3, 4, &chunk).ok());
  EXPECT_EQ(chunk, "3456");
  ASSERT_TRUE((*file)->Read(0, 0, &chunk).ok());
  EXPECT_TRUE(chunk.empty());
}

TEST_F(EnvTest, RandomAccessShortReadFails) {
  const std::string path = dir_ + "/short.bin";
  ASSERT_TRUE(WriteStringToFileSync(path, "abc").ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  std::string chunk;
  EXPECT_TRUE((*file)->Read(1, 10, &chunk).IsIOError());
}

TEST_F(EnvTest, OpenMissingFileIsNotFound) {
  EXPECT_TRUE(RandomAccessFile::Open(dir_ + "/missing").status().IsNotFound());
  std::string contents;
  EXPECT_TRUE(ReadFileToString(dir_ + "/missing", &contents).IsNotFound());
}

TEST_F(EnvTest, FileExistsAndRemove) {
  const std::string path = dir_ + "/f";
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteStringToFileSync(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).IsNotFound());
}

TEST_F(EnvTest, RenameReplaces) {
  ASSERT_TRUE(WriteStringToFileSync(dir_ + "/a", "AAA").ok());
  ASSERT_TRUE(WriteStringToFileSync(dir_ + "/b", "BBB").ok());
  ASSERT_TRUE(RenameFile(dir_ + "/a", dir_ + "/b").ok());
  EXPECT_FALSE(FileExists(dir_ + "/a"));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(dir_ + "/b", &contents).ok());
  EXPECT_EQ(contents, "AAA");
}

TEST_F(EnvTest, ListDirReturnsRegularFiles) {
  ASSERT_TRUE(WriteStringToFileSync(dir_ + "/one", "1").ok());
  ASSERT_TRUE(WriteStringToFileSync(dir_ + "/two", "2").ok());
  ASSERT_TRUE(CreateDirIfMissing(dir_ + "/subdir").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  std::sort(names->begin(), names->end());
  EXPECT_EQ(*names, (std::vector<std::string>{"one", "two"}));
}

TEST_F(EnvTest, WriteStringToFileSyncIsAtomicReplacement) {
  const std::string path = dir_ + "/atomic";
  ASSERT_TRUE(WriteStringToFileSync(path, "first").ok());
  ASSERT_TRUE(WriteStringToFileSync(path, "second").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "second");
  // No stray .tmp left behind.
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(EnvTest, AppendAfterCloseFails) {
  auto file = WritableFile::Open(dir_ + "/closed");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_FALSE((*file)->Append("data").ok());
}

}  // namespace
}  // namespace sketchlink::kv

#include "kv/db.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "kv/env.h"

namespace sketchlink::kv {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/db_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST_F(DbTest, PutGetDelete) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Put("k1", "v1").ok());
  ASSERT_TRUE((*db)->Put("k2", "v2").ok());
  std::string value;
  ASSERT_TRUE((*db)->Get("k1", &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE((*db)->Delete("k1").ok());
  EXPECT_TRUE((*db)->Get("k1", &value).IsNotFound());
  ASSERT_TRUE((*db)->Get("k2", &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(DbTest, OverwriteReturnsLatest) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k", "old").ok());
  ASSERT_TRUE((*db)->Put("k", "new").ok());
  std::string value;
  ASSERT_TRUE((*db)->Get("k", &value).ok());
  EXPECT_EQ(value, "new");
}

TEST_F(DbTest, GetMissingIsNotFound) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  std::string value;
  EXPECT_TRUE((*db)->Get("absent", &value).IsNotFound());
  EXPECT_FALSE((*db)->Contains("absent"));
}

TEST_F(DbTest, SurvivesFlush) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*db)->Put("key" + std::to_string(i), "val" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_GE((*db)->num_tables(), 1u);
  std::string value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*db)->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "val" + std::to_string(i));
  }
}

TEST_F(DbTest, DeleteShadowsFlushedValue) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k", "v").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Delete("k").ok());
  std::string value;
  EXPECT_TRUE((*db)->Get("k", &value).IsNotFound());
  // Also after the tombstone itself is flushed.
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_TRUE((*db)->Get("k", &value).IsNotFound());
}

TEST_F(DbTest, NewerRunWinsOverOlder) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k", "first").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put("k", "second").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  std::string value;
  ASSERT_TRUE((*db)->Get("k", &value).ok());
  EXPECT_EQ(value, "second");
}

TEST_F(DbTest, RecoversFromWalAfterReopen) {
  {
    auto db = Db::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("persist", "me").ok());
    ASSERT_TRUE((*db)->Delete("ghost").ok());
    // No flush: data lives only in WAL + memtable.
  }
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string value;
  ASSERT_TRUE((*db)->Get("persist", &value).ok());
  EXPECT_EQ(value, "me");
  EXPECT_TRUE((*db)->Get("ghost", &value).IsNotFound());
}

TEST_F(DbTest, RecoversTablesAfterReopen) {
  {
    auto db = Db::Open(dir_);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*db)->Put("t" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->Put("after-flush", "x").ok());
  }
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  std::string value;
  ASSERT_TRUE((*db)->Get("t42", &value).ok());
  ASSERT_TRUE((*db)->Get("after-flush", &value).ok());
  EXPECT_EQ(value, "x");
}

TEST_F(DbTest, CompactionMergesRunsAndDropsTombstones) {
  Options options;
  options.compaction_trigger = 100;  // manual compaction only
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*db)
                      ->Put("k" + std::to_string(i),
                            "round" + std::to_string(round))
                      .ok());
    }
    ASSERT_TRUE((*db)->Delete("k0").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  EXPECT_EQ((*db)->num_tables(), 4u);
  ASSERT_TRUE((*db)->Compact(true).ok());
  EXPECT_EQ((*db)->num_tables(), 1u);
  std::string value;
  EXPECT_TRUE((*db)->Get("k0", &value).IsNotFound());
  ASSERT_TRUE((*db)->Get("k1", &value).ok());
  EXPECT_EQ(value, "round3");
  // Survives reopen after compaction.
  db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Get("k1", &value).ok());
  EXPECT_EQ(value, "round3");
}

TEST_F(DbTest, AutomaticFlushOnMemtableLimit) {
  Options options;
  options.memtable_bytes = 4096;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i),
                           std::string(64, 'v'))
                    .ok());
  }
  EXPECT_GT((*db)->stats().flushes, 0u);
  std::string value;
  ASSERT_TRUE((*db)->Get("key0", &value).ok());
  ASSERT_TRUE((*db)->Get("key199", &value).ok());
}

TEST_F(DbTest, ScanAllMergesAllSources) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("b", "2").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put("a", "1").ok());
  ASSERT_TRUE((*db)->Put("c", "3").ok());
  ASSERT_TRUE((*db)->Delete("b").ok());
  auto entries = (*db)->ScanAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].key, "a");
  EXPECT_EQ((*entries)[1].key, "c");
}

TEST_F(DbTest, ScanPrefix) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("blk/1", "a").ok());
  ASSERT_TRUE((*db)->Put("blk/2", "b").ok());
  ASSERT_TRUE((*db)->Put("rec/1", "c").ok());
  auto entries = (*db)->ScanPrefix("blk/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(DbTest, RandomizedAgainstStdMap) {
  Options options;
  options.memtable_bytes = 2048;  // force frequent flushes
  options.compaction_trigger = 4;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::string> reference;
  Rng rng(77);
  for (int op = 0; op < 3000; ++op) {
    const std::string key = "k" + std::to_string(rng.UniformUint64(300));
    if (rng.Bernoulli(0.25)) {
      ASSERT_TRUE((*db)->Delete(key).ok());
      reference.erase(key);
    } else {
      const std::string value = "v" + std::to_string(rng.NextUint64() % 1000);
      ASSERT_TRUE((*db)->Put(key, value).ok());
      reference[key] = value;
    }
  }
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(i);
    std::string value;
    const Status status = (*db)->Get(key, &value);
    auto it = reference.find(key);
    if (it == reference.end()) {
      EXPECT_TRUE(status.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(status.ok()) << key << " " << status.ToString();
      EXPECT_EQ(value, it->second) << key;
    }
  }
  // Merged scan equals the reference exactly.
  auto entries = (*db)->ScanAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), reference.size());
  auto ref_it = reference.begin();
  for (const TableEntry& entry : *entries) {
    EXPECT_EQ(entry.key, ref_it->first);
    EXPECT_EQ(entry.value, ref_it->second);
    ++ref_it;
  }
}

TEST_F(DbTest, StatsCountOperations) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("a", "1").ok());
  std::string value;
  ASSERT_TRUE((*db)->Get("a", &value).ok());
  (void)(*db)->Get("zz", &value);
  EXPECT_EQ((*db)->stats().puts, 1u);
  EXPECT_EQ((*db)->stats().gets, 2u);
  EXPECT_EQ((*db)->stats().memtable_hits, 1u);
}

TEST_F(DbTest, OpenWithoutCreateFailsOnMissingDir) {
  Options options;
  options.create_if_missing = false;
  EXPECT_TRUE(Db::Open(dir_ + "/nope", options).status().IsNotFound());
}

}  // namespace
}  // namespace sketchlink::kv

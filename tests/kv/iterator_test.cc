// Tests for the iterator stack: memtable cursor, stride-buffered SSTable
// cursor, k-way merging with newest-wins shadowing, and the DB-level view
// with tombstone suppression.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "kv/db.h"
#include "kv/env.h"
#include "kv/memtable.h"
#include "kv/merging_iterator.h"
#include "kv/sstable.h"

namespace sketchlink::kv {
namespace {

TEST(MemTableIteratorTest, OrderAndTombstones) {
  MemTable mem;
  mem.Put("b", "2");
  mem.Put("a", "1");
  mem.Delete("c");
  auto it = mem.NewKvIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "a");
  EXPECT_FALSE(it->tombstone());
  it->Next();
  EXPECT_EQ(it->key(), "b");
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "c");
  EXPECT_TRUE(it->tombstone());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST(MemTableIteratorTest, Seek) {
  MemTable mem;
  for (const char* key : {"apple", "banana", "cherry"}) mem.Put(key, "v");
  auto it = mem.NewKvIterator();
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "banana");
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

class TableIteratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/table_iter_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::shared_ptr<Table> Build(int n, size_t index_interval) {
    Options options;
    options.index_interval = index_interval;
    const std::string path = dir_ + "/t.sst";
    auto builder = TableBuilder::Open(path, options);
    EXPECT_TRUE(builder.ok());
    char key[16];
    for (int i = 0; i < n; ++i) {
      std::snprintf(key, sizeof(key), "k%05d", i);
      EXPECT_TRUE((*builder)->Add(key, std::to_string(i), i % 7 == 3).ok());
    }
    EXPECT_TRUE((*builder)->Finish().ok());
    auto table = Table::Open(path);
    EXPECT_TRUE(table.ok());
    return *table;
  }

  std::string dir_;
};

TEST_F(TableIteratorTest, FullScanMatchesEntryCount) {
  auto table = Build(333, 16);
  auto it = table->NewIterator();
  int count = 0;
  std::string previous;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    if (count > 0) EXPECT_LT(previous, it->key());
    previous.assign(it->key());
    ++count;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(count, 333);
}

TEST_F(TableIteratorTest, TombstonesAreSurfaced) {
  auto table = Build(50, 8);
  auto it = table->NewIterator();
  int tombstones = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    if (it->tombstone()) ++tombstones;
  }
  EXPECT_EQ(tombstones, 7);  // i % 7 == 3 for i in [0, 50)
}

TEST_F(TableIteratorTest, SeekLandsOnFirstKeyNotLess) {
  auto table = Build(100, 4);
  auto it = table->NewIterator();
  it->Seek("k00042");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "k00042");
  it->Seek("k00042x");  // between keys
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "k00043");
  it->Seek("a");  // before everything
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "k00000");
  it->Seek("z");  // past everything
  EXPECT_FALSE(it->Valid());
}

TEST_F(TableIteratorTest, EmptyTable) {
  Options options;
  const std::string path = dir_ + "/empty.sst";
  auto builder = TableBuilder::Open(path, options);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  auto table = Table::Open(path);
  ASSERT_TRUE(table.ok());
  auto it = (*table)->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("anything");
  EXPECT_FALSE(it->Valid());
}

TEST(MergingIteratorTest, NewestLayerWinsPerKey) {
  MemTable newest;
  newest.Put("a", "new-a");
  newest.Delete("b");
  MemTable oldest;
  oldest.Put("a", "old-a");
  oldest.Put("b", "old-b");
  oldest.Put("c", "old-c");
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(newest.NewKvIterator());
  children.push_back(oldest.NewKvIterator());
  auto merged = NewMergingIterator(std::move(children));

  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "a");
  EXPECT_EQ(merged->value(), "new-a");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "b");
  EXPECT_TRUE(merged->tombstone());  // deletion shadows old-b
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "c");
  EXPECT_EQ(merged->value(), "old-c");
  merged->Next();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIteratorTest, SeekAcrossChildren) {
  MemTable even;
  MemTable odd;
  for (int i = 0; i < 20; ++i) {
    (i % 2 == 0 ? even : odd).Put("k" + std::to_string(100 + i), "v");
  }
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(even.NewKvIterator());
  children.push_back(odd.NewKvIterator());
  auto merged = NewMergingIterator(std::move(children));
  merged->Seek("k110");
  int count = 0;
  for (; merged->Valid(); merged->Next()) ++count;
  EXPECT_EQ(count, 10);
}

class DbIteratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/db_iter_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }
  std::string dir_;
};

TEST_F(DbIteratorTest, MergedViewAcrossLayersMatchesReference) {
  Options options;
  options.memtable_bytes = 1024;  // frequent flushes -> several runs
  options.compaction_trigger = 100;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::string> reference;
  Rng rng(55);
  for (int op = 0; op < 2000; ++op) {
    const std::string key = "k" + std::to_string(rng.UniformUint64(200));
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE((*db)->Delete(key).ok());
      reference.erase(key);
    } else {
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE((*db)->Put(key, value).ok());
      reference[key] = value;
    }
  }
  EXPECT_GT((*db)->num_tables(), 2u);  // the merge is actually multi-layer

  auto it = (*db)->NewIterator();
  auto ref_it = reference.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++ref_it) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it->key(), ref_it->first);
    EXPECT_EQ(it->value(), ref_it->second);
    EXPECT_FALSE(it->tombstone());
  }
  EXPECT_EQ(ref_it, reference.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(DbIteratorTest, SeekSkipsDeletedRange) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("a1", "v").ok());
  ASSERT_TRUE((*db)->Put("a2", "v").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Delete("a1").ok());
  ASSERT_TRUE((*db)->Delete("a2").ok());
  ASSERT_TRUE((*db)->Put("b1", "v").ok());
  auto it = (*db)->NewIterator();
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b1");  // tombstoned a1/a2 are invisible
}

TEST_F(DbIteratorTest, ScanPrefixUsesSortedBreakout) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*db)->Put("blk/" + std::to_string(1000 + i), "x").ok());
    ASSERT_TRUE((*db)->Put("rec/" + std::to_string(1000 + i), "y").ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  auto entries = (*db)->ScanPrefix("blk/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 50u);
  for (const TableEntry& entry : *entries) {
    EXPECT_EQ(entry.key.substr(0, 4), "blk/");
  }
}

}  // namespace
}  // namespace sketchlink::kv

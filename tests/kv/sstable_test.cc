#include "kv/sstable.h"

#include <gtest/gtest.h>

#include <string>

#include "kv/env.h"

namespace sketchlink::kv {
namespace {

class SstableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sst_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/000001.sst";
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  // Builds a table with `n` entries key%04d -> value-<i>.
  void BuildTable(int n, const Options& options = Options()) {
    auto builder = TableBuilder::Open(path_, options);
    ASSERT_TRUE(builder.ok());
    char key[16];
    for (int i = 0; i < n; ++i) {
      std::snprintf(key, sizeof(key), "key%04d", i);
      ASSERT_TRUE(
          (*builder)->Add(key, "value-" + std::to_string(i), false).ok());
    }
    ASSERT_TRUE((*builder)->Finish().ok());
  }

  std::string dir_;
  std::string path_;
};

TEST_F(SstableTest, PointLookupsFindEveryKey) {
  BuildTable(500);
  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_entries(), 500u);
  char key[16];
  std::string value;
  for (int i = 0; i < 500; ++i) {
    std::snprintf(key, sizeof(key), "key%04d", i);
    auto state = (*table)->Get(key, &value);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, Table::LookupState::kFound) << key;
    EXPECT_EQ(value, "value-" + std::to_string(i));
  }
}

TEST_F(SstableTest, AbsentKeysReturnAbsent) {
  BuildTable(100);
  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok());
  std::string value;
  auto state = (*table)->Get("missing", &value);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Table::LookupState::kAbsent);
  // Before the first key.
  state = (*table)->Get("aaa", &value);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Table::LookupState::kAbsent);
  // Between two keys.
  state = (*table)->Get("key0000x", &value);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Table::LookupState::kAbsent);
}

TEST_F(SstableTest, TombstonesAreVisible) {
  Options options;
  auto builder = TableBuilder::Open(path_, options);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add("alive", "v", false).ok());
  ASSERT_TRUE((*builder)->Add("dead", "", true).ok());
  ASSERT_TRUE((*builder)->Finish().ok());

  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok());
  std::string value;
  auto state = (*table)->Get("dead", &value);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Table::LookupState::kDeleted);
  state = (*table)->Get("alive", &value);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Table::LookupState::kFound);
}

TEST_F(SstableTest, OutOfOrderAddRejected) {
  auto builder = TableBuilder::Open(path_, Options());
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add("b", "1", false).ok());
  EXPECT_TRUE((*builder)->Add("a", "2", false).IsInvalidArgument());
  EXPECT_TRUE((*builder)->Add("b", "3", false).IsInvalidArgument());
}

TEST_F(SstableTest, ScanReturnsAllInOrder) {
  BuildTable(257);  // not a multiple of the index interval
  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok());
  std::vector<TableEntry> entries;
  ASSERT_TRUE((*table)->Scan(&entries).ok());
  ASSERT_EQ(entries.size(), 257u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].key, entries[i].key);
  }
}

TEST_F(SstableTest, MinMaxKeysExposed) {
  BuildTable(50);
  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->min_key(), "key0000");
  EXPECT_EQ((*table)->max_key(), "key0049");
}

TEST_F(SstableTest, BloomFilterSkipsAbsentKeys) {
  Options options;
  options.sstable_bloom_fp = 0.01;
  BuildTable(1000, options);
  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok());
  int definite_absent = 0;
  for (int i = 0; i < 1000; ++i) {
    if ((*table)->DefinitelyAbsent("nothere" + std::to_string(i))) {
      ++definite_absent;
    }
  }
  EXPECT_GT(definite_absent, 950);  // ~99% pruned
  // Never claims a present key absent.
  EXPECT_FALSE((*table)->DefinitelyAbsent("key0123"));
}

TEST_F(SstableTest, NoBloomMode) {
  Options options;
  options.sstable_bloom_fp = 0.0;
  BuildTable(10, options);
  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE((*table)->DefinitelyAbsent("anything"));
  std::string value;
  auto state = (*table)->Get("key0005", &value);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Table::LookupState::kFound);
}

TEST_F(SstableTest, CorruptFooterDetected) {
  BuildTable(10);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path_, &contents).ok());
  contents[contents.size() - 1] ^= 0xff;  // clobber magic
  ASSERT_TRUE(WriteStringToFileSync(path_, contents).ok());
  EXPECT_TRUE(Table::Open(path_).status().IsCorruption());
}

TEST_F(SstableTest, TruncatedFileDetected) {
  BuildTable(10);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path_, &contents).ok());
  ASSERT_TRUE(WriteStringToFileSync(path_, contents.substr(0, 10)).ok());
  EXPECT_TRUE(Table::Open(path_).status().IsCorruption());
}

TEST_F(SstableTest, EmptyTableIsServable) {
  auto builder = TableBuilder::Open(path_, Options());
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  auto table = Table::Open(path_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_entries(), 0u);
  std::string value;
  auto state = (*table)->Get("x", &value);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Table::LookupState::kAbsent);
}

class IndexIntervalSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexIntervalSweep, LookupsWorkAtEveryStride) {
  const std::string dir = ::testing::TempDir() + "/sst_stride_" +
                          std::to_string(GetParam());
  ASSERT_TRUE(RemoveDirRecursively(dir).ok());
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  const std::string path = dir + "/t.sst";
  Options options;
  options.index_interval = GetParam();
  auto builder = TableBuilder::Open(path, options);
  ASSERT_TRUE(builder.ok());
  char key[16];
  for (int i = 0; i < 100; ++i) {
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE((*builder)->Add(key, std::to_string(i), false).ok());
  }
  ASSERT_TRUE((*builder)->Finish().ok());
  auto table = Table::Open(path);
  ASSERT_TRUE(table.ok());
  std::string value;
  for (int i = 0; i < 100; ++i) {
    std::snprintf(key, sizeof(key), "k%03d", i);
    auto state = (*table)->Get(key, &value);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, Table::LookupState::kFound)
        << key << " stride " << GetParam();
    EXPECT_EQ(value, std::to_string(i));
  }
  (void)RemoveDirRecursively(dir);
}

INSTANTIATE_TEST_SUITE_P(Strides, IndexIntervalSweep,
                         ::testing::Values(1, 2, 7, 16, 64, 1000));

}  // namespace
}  // namespace sketchlink::kv

#include "kv/memtable.h"

#include <gtest/gtest.h>

#include <string>

namespace sketchlink::kv {
namespace {

TEST(MemTableTest, PutGet) {
  MemTable mem;
  mem.Put("k", "v");
  std::string value;
  EXPECT_EQ(mem.Get("k", &value), MemTable::LookupState::kFound);
  EXPECT_EQ(value, "v");
  EXPECT_EQ(mem.Get("other", &value), MemTable::LookupState::kAbsent);
}

TEST(MemTableTest, DeleteLeavesTombstone) {
  MemTable mem;
  mem.Put("k", "v");
  mem.Delete("k");
  std::string value;
  EXPECT_EQ(mem.Get("k", &value), MemTable::LookupState::kDeleted);
  // A tombstone is an entry, not an absence: flushes must persist it.
  EXPECT_EQ(mem.size(), 1u);
}

TEST(MemTableTest, DeleteOfAbsentKeyIsRecorded) {
  MemTable mem;
  mem.Delete("ghost");
  std::string value;
  EXPECT_EQ(mem.Get("ghost", &value), MemTable::LookupState::kDeleted);
}

TEST(MemTableTest, OverwriteKeepsLatest) {
  MemTable mem;
  mem.Put("k", "old");
  mem.Put("k", "new");
  std::string value;
  EXPECT_EQ(mem.Get("k", &value), MemTable::LookupState::kFound);
  EXPECT_EQ(value, "new");
  EXPECT_EQ(mem.size(), 1u);
}

TEST(MemTableTest, PutAfterDeleteRevives) {
  MemTable mem;
  mem.Put("k", "v1");
  mem.Delete("k");
  mem.Put("k", "v2");
  std::string value;
  EXPECT_EQ(mem.Get("k", &value), MemTable::LookupState::kFound);
  EXPECT_EQ(value, "v2");
}

TEST(MemTableTest, PayloadBytesGrow) {
  MemTable mem;
  EXPECT_EQ(mem.payload_bytes(), 0u);
  mem.Put("key", std::string(1000, 'x'));
  EXPECT_GE(mem.payload_bytes(), 1000u);
}

TEST(MemTableTest, IterationIsSorted) {
  MemTable mem;
  mem.Put("charlie", "3");
  mem.Put("alpha", "1");
  mem.Delete("bravo");
  std::string previous;
  size_t count = 0;
  for (auto it = mem.NewIterator(); it.Valid(); it.Next()) {
    if (count > 0) EXPECT_LT(previous, it.key());
    previous = it.key();
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(MemTableTest, ClearResetsEverything) {
  MemTable mem;
  mem.Put("k", "v");
  mem.Clear();
  EXPECT_TRUE(mem.empty());
  EXPECT_EQ(mem.payload_bytes(), 0u);
  std::string value;
  EXPECT_EQ(mem.Get("k", &value), MemTable::LookupState::kAbsent);
}

}  // namespace
}  // namespace sketchlink::kv

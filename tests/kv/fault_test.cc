// Failure-injection tests for the key/value store: the summarization
// structures spill state here (SBlockSketch), so silent corruption or lossy
// recovery would quietly destroy linkage results.

#include <gtest/gtest.h>

#include <string>

#include "kv/db.h"
#include "kv/env.h"

namespace sketchlink::kv {
namespace {

class DbFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/db_fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveDirRecursively(dir_).ok());
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  // Creates a DB with one flushed run + some WAL-only state, then closes.
  void Populate() {
    auto db = Db::Open(dir_);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*db)->Put("flushed" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->Put("walonly", "w").ok());
  }

  void Corrupt(const std::string& name, size_t offset_from_end,
               bool truncate = false) {
    const std::string path = dir_ + "/" + name;
    std::string contents;
    ASSERT_TRUE(ReadFileToString(path, &contents).ok());
    ASSERT_GT(contents.size(), offset_from_end);
    if (truncate) {
      contents.resize(contents.size() - offset_from_end);
    } else {
      contents[contents.size() - 1 - offset_from_end] ^= 0x5a;
    }
    ASSERT_TRUE(WriteStringToFileSync(path, contents).ok());
  }

  std::string dir_;
};

TEST_F(DbFaultTest, CorruptManifestIsDetectedAtOpen) {
  Populate();
  Corrupt("MANIFEST", 0);  // clobber the magic/crc tail
  EXPECT_TRUE(Db::Open(dir_).status().IsCorruption());
}

TEST_F(DbFaultTest, MissingSstableIsReportedAtOpen) {
  Populate();
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.ends_with(".sst")) {
      ASSERT_TRUE(RemoveFile(dir_ + "/" + name).ok());
    }
  }
  EXPECT_FALSE(Db::Open(dir_).ok());
}

TEST_F(DbFaultTest, CorruptSstableFooterIsDetectedAtOpen) {
  Populate();
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.ends_with(".sst")) Corrupt(name, 2);
  }
  EXPECT_TRUE(Db::Open(dir_).status().IsCorruption());
}

TEST_F(DbFaultTest, TruncatedWalRecoversPrefix) {
  Populate();
  // Chop the WAL tail: the wal-only key may be lost (torn write) but the
  // database must open and serve everything that was flushed.
  Corrupt("wal.log", 3, /*truncate=*/true);
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string value;
  EXPECT_TRUE((*db)->Get("flushed17", &value).ok());
}

// Regression: a checksum-corrupt *final* WAL record used to be silently
// dropped as if it were a torn tail. The frame's bytes are all present, so
// this is bit rot and must fail the open.
TEST_F(DbFaultTest, CorruptFinalWalRecordIsCorruption) {
  Populate();
  Corrupt("wal.log", 0);  // flip the last payload byte: frame complete
  EXPECT_TRUE(Db::Open(dir_).status().IsCorruption());
}

TEST_F(DbFaultTest, BestEffortRecoveryAcceptsCorruptFinalRecord) {
  Populate();
  Corrupt("wal.log", 0);
  Options options;
  options.best_effort_wal_recovery = true;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string value;
  EXPECT_TRUE((*db)->Get("flushed17", &value).ok());
  // The damaged record itself is lost — that is the escape hatch's deal.
  EXPECT_TRUE((*db)->Get("walonly", &value).IsNotFound());
}

TEST_F(DbFaultTest, CorruptInteriorWalRecordIsCorruption) {
  {
    auto db = Db::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("first", "1").ok());
    ASSERT_TRUE((*db)->Put("second", "2").ok());
  }
  // Flip a byte inside the first record's payload (the frames are 14 and
  // 15 bytes; 20 from the end of the 29-byte log lands in the first).
  Corrupt("wal.log", 20);
  EXPECT_TRUE(Db::Open(dir_).status().IsCorruption());
  Options options;
  options.best_effort_wal_recovery = true;
  auto db = Db::Open(dir_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string value;
  // Best effort stops at the bad frame: everything after it is gone too.
  EXPECT_TRUE((*db)->Get("first", &value).IsNotFound());
  EXPECT_TRUE((*db)->Get("second", &value).IsNotFound());
}

TEST_F(DbFaultTest, MissingWalIsFine) {
  Populate();
  ASSERT_TRUE(RemoveFile(dir_ + "/wal.log").ok());
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  std::string value;
  EXPECT_TRUE((*db)->Get("flushed0", &value).ok());
  EXPECT_TRUE((*db)->Get("walonly", &value).IsNotFound());
}

TEST_F(DbFaultTest, ReopenLoopPreservesAllData) {
  // Repeated open/mutate/close cycles across flush+compaction boundaries
  // must never lose an acknowledged write.
  for (int round = 0; round < 5; ++round) {
    auto db = Db::Open(dir_);
    ASSERT_TRUE(db.ok()) << "round " << round;
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE((*db)
                      ->Put("r" + std::to_string(round) + "k" +
                                std::to_string(i),
                            std::to_string(round))
                      .ok());
    }
    if (round % 2 == 0) {
      ASSERT_TRUE((*db)->Flush().ok());
    }
    if (round == 3) {
      ASSERT_TRUE((*db)->Compact(true).ok());
    }
  }
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  std::string value;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE((*db)
                      ->Get("r" + std::to_string(round) + "k" +
                                std::to_string(i),
                            &value)
                      .ok())
          << round << " " << i;
      EXPECT_EQ(value, std::to_string(round));
    }
  }
}

TEST_F(DbFaultTest, LargeValuesSurviveFlushAndCompaction) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  const std::string big(256 * 1024, 'B');
  ASSERT_TRUE((*db)->Put("big", big).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put("big2", big).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Compact(true).ok());
  std::string value;
  ASSERT_TRUE((*db)->Get("big", &value).ok());
  EXPECT_EQ(value.size(), big.size());
}

TEST_F(DbFaultTest, BinaryKeysAndValuesRoundTrip) {
  auto db = Db::Open(dir_);
  ASSERT_TRUE(db.ok());
  const std::string key("\x00\x01\x02\xff\xfe", 5);
  const std::string val("\x00payload\x00", 9);
  ASSERT_TRUE((*db)->Put(key, val).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  std::string out;
  ASSERT_TRUE((*db)->Get(key, &out).ok());
  EXPECT_EQ(out, val);
}

}  // namespace
}  // namespace sketchlink::kv

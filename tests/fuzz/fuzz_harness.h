#ifndef SKETCHLINK_TESTS_FUZZ_FUZZ_HARNESS_H_
#define SKETCHLINK_TESTS_FUZZ_FUZZ_HARNESS_H_

// Shared fuzz bodies. Each FuzzXxx function is the single source of truth
// for one target: the libFuzzer entry points (built only under
// -DSKETCHLINK_FUZZ=ON, which needs clang's -fsanitize=fuzzer) and the
// tier-1 fuzz_smoke_test (plain gtest, random byte strings, runs on every
// toolchain) both call it. A body must be total: any input either passes
// its invariant checks or aborts — there is no "reject" path, so the smoke
// run exercises exactly what the fuzzer would.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/coding.h"
#include "common/interner.h"
#include "common/pool.h"
#include "text/normalize.h"

namespace sketchlink::fuzz {

namespace internal {

inline void Check(bool ok, const char* what) {
  if (!ok) {
    // Both libFuzzer and the smoke test treat an abort as a crash with the
    // offending input preserved (libFuzzer writes the reproducer; the smoke
    // test logs the seed).
    std::abort();
  }
  (void)what;
}

}  // namespace internal

/// text/normalize.cc: every transform must be total over arbitrary bytes and
/// the documented output invariants must hold.
inline void FuzzNormalize(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  const std::string upper = text::ToUpperAscii(input);
  const std::string lower = text::ToLowerAscii(input);
  internal::Check(upper.size() == size, "ToUpperAscii preserves length");
  internal::Check(lower.size() == size, "ToLowerAscii preserves length");
  internal::Check(text::ToUpperAscii(lower) == upper,
                  "upper(lower(x)) == upper(x)");

  const std::string_view trimmed = text::Trim(input);
  internal::Check(trimmed.size() <= size, "Trim never grows");
  internal::Check(text::Trim(trimmed) == trimmed, "Trim is idempotent");

  const std::string normalized = text::NormalizeField(input);
  // Output alphabet: [A-Z0-9 '-], no leading/trailing/double spaces.
  for (const char c : normalized) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == ' ' || c == '\'' || c == '-';
    internal::Check(ok, "NormalizeField output alphabet");
  }
  internal::Check(normalized.find("  ") == std::string::npos,
                  "no double spaces");
  internal::Check(normalized.empty() || (normalized.front() != ' ' &&
                                         normalized.back() != ' '),
                  "no edge spaces");
  internal::Check(text::NormalizeField(normalized) == normalized,
                  "NormalizeField is idempotent");

  // Prefix helpers must stay in bounds for any (s, n) / (s, fraction).
  if (size > 0) {
    const size_t n = data[0];
    internal::Check(text::Prefix(input, n).size() <= input.size(),
                    "Prefix bounded");
    const double fraction =
        static_cast<double>(1 + data[0] % 100) / 100.0;  // (0, 1]
    internal::Check(text::FractionPrefix(input, fraction).size() <=
                        input.size(),
                    "FractionPrefix bounded");
  }
}

/// common/coding.cc: decoders must be total over arbitrary bytes (never read
/// out of bounds, never loop), and every value they accept must re-encode /
/// re-decode to itself.
inline void FuzzCoding(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Decode a stream of varint32s until the input rejects; every accepted
  // value must round-trip.
  {
    std::string_view rest = input;
    uint32_t value = 0;
    while (GetVarint32(&rest, &value)) {
      std::string encoded;
      PutVarint32(&encoded, value);
      std::string_view reread = encoded;
      uint32_t back = 0;
      internal::Check(GetVarint32(&reread, &back) && back == value &&
                          reread.empty(),
                      "varint32 round-trip");
      internal::Check(VarintLength(value) ==
                          static_cast<int>(encoded.size()),
                      "VarintLength matches encoding");
    }
  }
  {
    std::string_view rest = input;
    uint64_t value = 0;
    while (GetVarint64(&rest, &value)) {
      std::string encoded;
      PutVarint64(&encoded, value);
      std::string_view reread = encoded;
      uint64_t back = 0;
      internal::Check(GetVarint64(&reread, &back) && back == value &&
                          reread.empty(),
                      "varint64 round-trip");
    }
  }
  // Length-prefixed strings: accepted slices must lie inside the input and
  // round-trip exactly.
  {
    std::string_view rest = input;
    std::string_view value;
    while (GetLengthPrefixed(&rest, &value)) {
      internal::Check(value.size() <= size, "length-prefixed in bounds");
      std::string encoded;
      PutLengthPrefixed(&encoded, value);
      std::string_view reread = encoded;
      std::string_view back;
      internal::Check(GetLengthPrefixed(&reread, &back) && back == value &&
                          reread.empty(),
                      "length-prefixed round-trip");
    }
  }
  // Fixed-width readers and the CRC must accept anything long enough.
  if (size >= 4) {
    std::string_view rest = input;
    uint32_t v32 = 0;
    internal::Check(GetFixed32(&rest, &v32), "GetFixed32 on >= 4 bytes");
    std::string encoded;
    PutFixed32(&encoded, v32);
    internal::Check(DecodeFixed32(encoded.data()) == v32,
                    "fixed32 round-trip");
  }
  if (size >= 8) {
    std::string_view rest = input;
    uint64_t v64 = 0;
    internal::Check(GetFixed64(&rest, &v64), "GetFixed64 on >= 8 bytes");
    std::string encoded;
    PutFixed64(&encoded, v64);
    internal::Check(DecodeFixed64(encoded.data()) == v64,
                    "fixed64 round-trip");
  }
  const uint32_t crc = Crc32c(input);
  internal::Check(Crc32cExtend(Crc32cExtend(0, input), std::string_view()) ==
                      Crc32cExtend(0, input),
                  "Crc32cExtend with empty tail is identity");
  (void)crc;
}

/// common/{arena,pool,interner}.h: the input is an op program over the
/// memory subsystem. Invariants checked on every path: arena views are
/// byte-stable until Reset; Scope rewinds accounting exactly; pool nodes
/// round-trip their values across free/reuse and live() balances; interner
/// ids never remap and always round-trip through View/Find. Built with
/// ASan (the libFuzzer target always is), the Reset/rewind poisoning also
/// turns any internal use-after-reset into a crash.
inline void FuzzMemory(const uint8_t* data, size_t size) {
  Arena arena(/*block_bytes=*/512);
  Pool<uint64_t> pool(/*nodes_per_slab=*/8);
  StringInterner interner;

  std::vector<std::pair<std::string, std::string_view>> live;  // arena views
  std::vector<std::pair<uint64_t*, uint64_t>> nodes;           // pool nodes
  std::vector<std::pair<std::string, StringInterner::Id>> ids;

  size_t i = 0;
  auto next = [&]() -> uint8_t { return i < size ? data[i++] : 0; };
  while (i < size) {
    switch (next() % 7) {
      case 0: {  // arena string copy
        std::string s(next() % 100, 'x');
        for (auto& c : s) c = static_cast<char>('a' + next() % 26);
        std::string_view view = arena.CopyString(s);
        internal::Check(view == s, "CopyString round-trip");
        live.emplace_back(std::move(s), view);
        break;
      }
      case 1: {  // aligned raw allocation, must be writable
        const size_t align = size_t{1} << (next() % 5);
        auto* p = static_cast<unsigned char*>(
            arena.Allocate(1 + next() % 64, align));
        internal::Check(reinterpret_cast<uintptr_t>(p) % align == 0,
                        "arena alignment");
        p[0] = 0xAB;
        internal::Check(p[0] == 0xAB, "arena bytes writable");
        break;
      }
      case 2: {  // full reset: all live views verified first, then dropped
        for (const auto& [s, view] : live) {
          internal::Check(view == s, "view stable before Reset");
        }
        live.clear();
        arena.Reset();
        internal::Check(arena.bytes_allocated() == 0, "Reset zeroes usage");
        break;
      }
      case 3: {  // scoped scratch: exact rewind, outer views untouched
        const size_t before = arena.bytes_allocated();
        {
          Arena::Scope scope(&arena);
          const std::string s(1 + next() % 32, 'q');
          internal::Check(arena.CopyString(s) == s, "scope-local copy");
        }
        internal::Check(arena.bytes_allocated() == before, "Scope rewind");
        break;
      }
      case 4: {  // pool New
        const uint64_t value = next() * 2654435761ULL + i;
        nodes.emplace_back(pool.New(value), value);
        break;
      }
      case 5: {  // pool Free of a random live node
        if (nodes.empty()) break;
        const size_t idx = next() % nodes.size();
        internal::Check(*nodes[idx].first == nodes[idx].second,
                        "pool node holds its value");
        pool.Free(nodes[idx].first);
        nodes.erase(nodes.begin() + static_cast<ptrdiff_t>(idx));
        break;
      }
      case 6: {  // intern from a small key universe (forces duplicates)
        std::string key = "k" + std::to_string(next() % 64);
        const StringInterner::Id id = interner.Intern(key);
        internal::Check(id != StringInterner::kInvalidId, "Intern succeeds");
        internal::Check(interner.View(id) == key, "View round-trip");
        internal::Check(interner.Find(key) == id, "Find after Intern");
        for (const auto& [k, seen] : ids) {
          if (k == key) internal::Check(seen == id, "id never remaps");
        }
        ids.emplace_back(std::move(key), id);
        break;
      }
    }
  }

  for (const auto& [s, view] : live) {
    internal::Check(view == s, "view stable at end");
  }
  for (const auto& [p, value] : nodes) {
    internal::Check(*p == value, "pool node stable at end");
    pool.Free(p);
  }
  internal::Check(pool.live() == 0, "pool live accounting balances");
  for (const auto& [key, id] : ids) {
    internal::Check(interner.Find(key) == id, "interner ids stable at end");
  }
}

}  // namespace sketchlink::fuzz

#endif  // SKETCHLINK_TESTS_FUZZ_FUZZ_HARNESS_H_

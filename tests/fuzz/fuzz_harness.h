#ifndef SKETCHLINK_TESTS_FUZZ_FUZZ_HARNESS_H_
#define SKETCHLINK_TESTS_FUZZ_FUZZ_HARNESS_H_

// Shared fuzz bodies. Each FuzzXxx function is the single source of truth
// for one target: the libFuzzer entry points (built only under
// -DSKETCHLINK_FUZZ=ON, which needs clang's -fsanitize=fuzzer) and the
// tier-1 fuzz_smoke_test (plain gtest, random byte strings, runs on every
// toolchain) both call it. A body must be total: any input either passes
// its invariant checks or aborts — there is no "reject" path, so the smoke
// run exercises exactly what the fuzzer would.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/coding.h"
#include "text/normalize.h"

namespace sketchlink::fuzz {

namespace internal {

inline void Check(bool ok, const char* what) {
  if (!ok) {
    // Both libFuzzer and the smoke test treat an abort as a crash with the
    // offending input preserved (libFuzzer writes the reproducer; the smoke
    // test logs the seed).
    std::abort();
  }
  (void)what;
}

}  // namespace internal

/// text/normalize.cc: every transform must be total over arbitrary bytes and
/// the documented output invariants must hold.
inline void FuzzNormalize(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  const std::string upper = text::ToUpperAscii(input);
  const std::string lower = text::ToLowerAscii(input);
  internal::Check(upper.size() == size, "ToUpperAscii preserves length");
  internal::Check(lower.size() == size, "ToLowerAscii preserves length");
  internal::Check(text::ToUpperAscii(lower) == upper,
                  "upper(lower(x)) == upper(x)");

  const std::string_view trimmed = text::Trim(input);
  internal::Check(trimmed.size() <= size, "Trim never grows");
  internal::Check(text::Trim(trimmed) == trimmed, "Trim is idempotent");

  const std::string normalized = text::NormalizeField(input);
  // Output alphabet: [A-Z0-9 '-], no leading/trailing/double spaces.
  for (const char c : normalized) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == ' ' || c == '\'' || c == '-';
    internal::Check(ok, "NormalizeField output alphabet");
  }
  internal::Check(normalized.find("  ") == std::string::npos,
                  "no double spaces");
  internal::Check(normalized.empty() || (normalized.front() != ' ' &&
                                         normalized.back() != ' '),
                  "no edge spaces");
  internal::Check(text::NormalizeField(normalized) == normalized,
                  "NormalizeField is idempotent");

  // Prefix helpers must stay in bounds for any (s, n) / (s, fraction).
  if (size > 0) {
    const size_t n = data[0];
    internal::Check(text::Prefix(input, n).size() <= input.size(),
                    "Prefix bounded");
    const double fraction =
        static_cast<double>(1 + data[0] % 100) / 100.0;  // (0, 1]
    internal::Check(text::FractionPrefix(input, fraction).size() <=
                        input.size(),
                    "FractionPrefix bounded");
  }
}

/// common/coding.cc: decoders must be total over arbitrary bytes (never read
/// out of bounds, never loop), and every value they accept must re-encode /
/// re-decode to itself.
inline void FuzzCoding(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Decode a stream of varint32s until the input rejects; every accepted
  // value must round-trip.
  {
    std::string_view rest = input;
    uint32_t value = 0;
    while (GetVarint32(&rest, &value)) {
      std::string encoded;
      PutVarint32(&encoded, value);
      std::string_view reread = encoded;
      uint32_t back = 0;
      internal::Check(GetVarint32(&reread, &back) && back == value &&
                          reread.empty(),
                      "varint32 round-trip");
      internal::Check(VarintLength(value) ==
                          static_cast<int>(encoded.size()),
                      "VarintLength matches encoding");
    }
  }
  {
    std::string_view rest = input;
    uint64_t value = 0;
    while (GetVarint64(&rest, &value)) {
      std::string encoded;
      PutVarint64(&encoded, value);
      std::string_view reread = encoded;
      uint64_t back = 0;
      internal::Check(GetVarint64(&reread, &back) && back == value &&
                          reread.empty(),
                      "varint64 round-trip");
    }
  }
  // Length-prefixed strings: accepted slices must lie inside the input and
  // round-trip exactly.
  {
    std::string_view rest = input;
    std::string_view value;
    while (GetLengthPrefixed(&rest, &value)) {
      internal::Check(value.size() <= size, "length-prefixed in bounds");
      std::string encoded;
      PutLengthPrefixed(&encoded, value);
      std::string_view reread = encoded;
      std::string_view back;
      internal::Check(GetLengthPrefixed(&reread, &back) && back == value &&
                          reread.empty(),
                      "length-prefixed round-trip");
    }
  }
  // Fixed-width readers and the CRC must accept anything long enough.
  if (size >= 4) {
    std::string_view rest = input;
    uint32_t v32 = 0;
    internal::Check(GetFixed32(&rest, &v32), "GetFixed32 on >= 4 bytes");
    std::string encoded;
    PutFixed32(&encoded, v32);
    internal::Check(DecodeFixed32(encoded.data()) == v32,
                    "fixed32 round-trip");
  }
  if (size >= 8) {
    std::string_view rest = input;
    uint64_t v64 = 0;
    internal::Check(GetFixed64(&rest, &v64), "GetFixed64 on >= 8 bytes");
    std::string encoded;
    PutFixed64(&encoded, v64);
    internal::Check(DecodeFixed64(encoded.data()) == v64,
                    "fixed64 round-trip");
  }
  const uint32_t crc = Crc32c(input);
  internal::Check(Crc32cExtend(Crc32cExtend(0, input), std::string_view()) ==
                      Crc32cExtend(0, input),
                  "Crc32cExtend with empty tail is identity");
  (void)crc;
}

}  // namespace sketchlink::fuzz

#endif  // SKETCHLINK_TESTS_FUZZ_FUZZ_HARNESS_H_

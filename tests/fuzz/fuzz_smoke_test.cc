// Tier-1 smoke run of the fuzz bodies: ~5 seconds of random byte strings
// through the exact functions the libFuzzer targets call, so the invariants
// stay exercised on toolchains without -fsanitize=fuzzer (the default gcc
// build). A violated invariant aborts, which gtest reports as a crash; the
// seed is logged for replay via SKETCHLINK_TEST_SEED.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fuzz_harness.h"

namespace sketchlink {
namespace {

uint64_t TestSeed() {
  const char* env = std::getenv("SKETCHLINK_TEST_SEED");
  const uint64_t seed =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 20260805ULL;
  std::cerr << "[fuzz_smoke] seed=" << seed
            << " (override with SKETCHLINK_TEST_SEED)\n";
  return seed;
}

/// Random inputs biased the way a fuzzer's corpus drifts: mostly short,
/// occasionally long, sometimes structured (valid varints / length
/// prefixes) so the accepting paths run too, not just the reject paths.
std::vector<uint8_t> RandomInput(Rng& rng) {
  const size_t size = rng.CoinFlip() ? rng.UniformIndex(32)
                                     : rng.UniformIndex(512);
  std::vector<uint8_t> data(size);
  for (auto& byte : data) byte = static_cast<uint8_t>(rng.NextUint64());
  if (size >= 2 && rng.UniformIndex(4) == 0) {
    // Plant a plausible varint-encoded length at the front so the
    // length-prefixed decoder accepts more often.
    data[0] = static_cast<uint8_t>(rng.UniformIndex(size));
  }
  return data;
}

void SmokeRun(void (*body)(const uint8_t*, size_t), double seconds,
              uint64_t salt) {
  Rng rng(TestSeed() ^ salt);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  size_t executions = 0;
  // Floor of iterations even on a loaded machine; the deadline caps the
  // total so the tier-1 suite stays fast.
  while (executions < 2000 ||
         (std::chrono::steady_clock::now() < deadline &&
          executions < 2000000)) {
    const std::vector<uint8_t> input = RandomInput(rng);
    body(input.data(), input.size());
    ++executions;
    if (executions >= 2000 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }
  std::cerr << "[fuzz_smoke] " << executions << " executions\n";
  EXPECT_GE(executions, 2000u);
}

TEST(FuzzSmokeTest, NormalizeSurvivesRandomBytes) {
  SmokeRun(&fuzz::FuzzNormalize, 2.5, 0x4f1ULL);
}

TEST(FuzzSmokeTest, CodingSurvivesRandomBytes) {
  SmokeRun(&fuzz::FuzzCoding, 2.5, 0xc0dULL);
}

TEST(FuzzSmokeTest, MemorySubsystemSurvivesRandomOpPrograms) {
  SmokeRun(&fuzz::FuzzMemory, 2.5, 0xa7e4aULL);
}

}  // namespace
}  // namespace sketchlink

// libFuzzer target for common/coding.cc. Build with -DSKETCHLINK_FUZZ=ON
// (clang only: links -fsanitize=fuzzer). Run:
//   ./tests/fuzz/fuzz_coding -max_total_time=60

#include <cstddef>
#include <cstdint>

#include "fuzz_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  sketchlink::fuzz::FuzzCoding(data, size);
  return 0;
}

// libFuzzer target for the memory subsystem (common/{arena,pool,interner}).
// Build with -DSKETCHLINK_FUZZ=ON (clang only: links -fsanitize=fuzzer).
// Run:
//   ./tests/fuzz/fuzz_memory -max_total_time=60

#include <cstddef>
#include <cstdint>

#include "fuzz_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  sketchlink::fuzz::FuzzMemory(data, size);
  return 0;
}

// Steady-state allocation regression: once the per-thread scratches are
// warm, a full query through the engine — key extraction, sketch routing,
// sub-block resolution (the benched Table-4 path) — must perform ZERO heap
// allocations. Global operator new is replaced with a counting shim, so
// this test lives in its own binary.
//
// The count is armed only around the measured queries; gtest, workload
// construction and index build allocate freely outside the window.

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/presets.h"
#include "core/block_sketch.h"
#include "datagen/generators.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"

namespace {
std::atomic<uint64_t> g_armed_allocations{0};
std::atomic<bool> g_counting{false};

void* CountedAllocate(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_armed_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAllocate(size); }
void* operator new[](std::size_t size) { return CountedAllocate(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sketchlink {
namespace {

using datagen::DatasetKind;

TEST(ZeroAllocTest, WarmSubBlockQueriesDoNotTouchTheHeap) {
  const DatasetKind kind = DatasetKind::kDblp;
  datagen::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_entities = 200;
  spec.copies_per_entity = 5;
  spec.max_perturb_ops = 3;
  spec.seed = 99;
  const datagen::Workload workload = datagen::MakeWorkload(spec);

  auto blocker = MakeStandardBlocker(kind);
  RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  RecordStore store;
  // Default ResolveMode::kSubBlock — the paper's Sec. 5 semantics and the
  // configuration bench_table4 measures.
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  LinkageEngine engine(blocker.get(), &matcher, similarity);
  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());

  KeyScratch keys;
  QueryScratch scratch;
  // Two warm-up passes over the full query set: every buffer (key strings,
  // dedupe set, match vector, normalization scratch) reaches its high-water
  // capacity before counting starts.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Record& query : workload.q.records()) {
      ASSERT_TRUE(engine.ResolveOneInto(query, &keys, &scratch).ok());
    }
  }

  g_armed_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  for (const Record& query : workload.q.records()) {
    const Status status = engine.ResolveOneInto(query, &keys, &scratch);
    if (!status.ok()) break;  // reported below, outside the armed window
  }
  g_counting.store(false, std::memory_order_seq_cst);

  EXPECT_EQ(g_armed_allocations.load(std::memory_order_relaxed), 0u)
      << "steady-state queries allocated on the heap";
  // Results are still real: re-run one query and check it resolves.
  ASSERT_TRUE(
      engine.ResolveOneInto(workload.q.records().front(), &keys, &scratch)
          .ok());
}

}  // namespace
}  // namespace sketchlink

// Span-tracing integration: a full SBlockSketch pipeline (tiny mu, so
// queries probe the spill store) run under a trace-everything Tracer, then
// the SpanBuffer is checked for correct cross-layer parenting — a kv span
// whose ancestor chain passes through a sketch span and terminates at an
// engine/query root, plus parented phase traces for build and resolve.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "kv/db.h"
#include "kv/env.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"
#include "obs/spans.h"

namespace sketchlink {
namespace {

using obs::SpanRecord;

struct Chain {
  const SpanRecord* root = nullptr;
  const SpanRecord* sketch = nullptr;
  const SpanRecord* kv = nullptr;
};

/// Finds one kv span whose rootward walk passes a sketch span and ends at
/// an `engine`/`root_name` root — the cross-layer parenting contract.
bool FindChain(const std::vector<SpanRecord>& spans,
               const std::string& root_name, Chain* chain) {
  std::map<uint64_t, std::map<uint64_t, const SpanRecord*>> by_trace;
  for (const SpanRecord& span : spans) {
    by_trace[span.trace_id][span.span_id] = &span;
  }
  for (const SpanRecord& span : spans) {
    if (span.category != "kv") continue;
    const auto& by_span = by_trace[span.trace_id];
    const SpanRecord* sketch_hop = nullptr;
    const SpanRecord* cursor = &span;
    for (size_t guard = 0; guard <= by_span.size(); ++guard) {
      if (cursor->parent_id == 0) break;
      const auto it = by_span.find(cursor->parent_id);
      if (it == by_span.end()) {
        cursor = nullptr;
        break;
      }
      cursor = it->second;
      if (cursor->category == "sketch" && sketch_hop == nullptr) {
        sketch_hop = cursor;
      }
    }
    if (cursor != nullptr && sketch_hop != nullptr &&
        cursor->category == "engine" && cursor->name == root_name &&
        cursor->parent_id == 0) {
      chain->root = cursor;
      chain->sketch = sketch_hop;
      chain->kv = &span;
      return true;
    }
  }
  return false;
}

TEST(TraceIntegrationTest, EngineSketchKvSpansParentCorrectly) {
  obs::Tracer::Options trace_options;
  trace_options.sample_period = 1;  // admit every query
  trace_options.keep_period = 1;    // keep every trace
  trace_options.buffer_capacity = 1 << 16;
  // The build phase trace spans every insert; at the default cap its late-
  // ending parents (insert_batch) would be dropped while early children
  // survive, orphaning them. Lift the cap — this test checks parenting,
  // the cap has its own test.
  trace_options.max_spans_per_trace = 1 << 20;
  obs::Tracer tracer(trace_options);

  datagen::WorkloadSpec spec;
  spec.kind = datagen::DatasetKind::kNcvr;
  spec.num_entities = 80;
  spec.copies_per_entity = 6;
  spec.max_perturb_ops = 3;
  spec.seed = 4242;
  const datagen::Workload workload = datagen::MakeWorkload(spec);
  const auto blocker = MakeStandardBlocker(spec.kind);
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);
  const GroundTruth truth(workload.a);

  const std::string dir = ::testing::TempDir() + "/trace_integration";
  ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());
  auto db = kv::Db::Open(dir);
  ASSERT_TRUE(db.ok());
  SBlockSketchOptions matcher_options;
  matcher_options.mu = 16;  // tiny: forces constant spilling
  RecordStore store;
  SBlockSketchMatcher matcher(matcher_options, db->get(), similarity,
                              &store);

  EngineOptions engine_options;
  engine_options.tracer = &tracer;
  LinkageEngine engine(blocker.get(), &matcher, similarity, engine_options);
  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
  ASSERT_TRUE(engine.ResolveAll(workload.q, truth).ok());

  const std::vector<SpanRecord> spans = tracer.buffer().Snapshot();
  ASSERT_FALSE(spans.empty());

  // At least one sampled query must show the full engine->sketch->kv
  // chain: the query probed a spilled sub-block, and the spill-store read
  // parented through the sketch span to the query root.
  Chain query_chain;
  ASSERT_TRUE(FindChain(spans, "query", &query_chain))
      << "no engine/query -> sketch -> kv chain in " << spans.size()
      << " spans";
  EXPECT_EQ(query_chain.root->parent_id, 0u);
  EXPECT_NE(query_chain.sketch->trace_id, 0u);
  EXPECT_EQ(query_chain.kv->trace_id, query_chain.root->trace_id);

  // The build phase trace shows the same layering under insert batches:
  // evictions during BuildIndex write through the WAL.
  Chain build_chain;
  EXPECT_TRUE(FindChain(spans, "build_index", &build_chain))
      << "no engine/build_index -> sketch -> kv chain";

  // Phase roots exist for both forced traces.
  bool saw_resolve_all = false;
  for (const SpanRecord& span : spans) {
    if (span.name == "resolve_all" && span.parent_id == 0) {
      saw_resolve_all = true;
    }
  }
  EXPECT_TRUE(saw_resolve_all);

  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}

TEST(TraceIntegrationTest, DisabledTracerRecordsNothing) {
  obs::Tracer::Options trace_options;
  trace_options.sample_period = 0;
  obs::Tracer tracer(trace_options);

  datagen::WorkloadSpec spec;
  spec.kind = datagen::DatasetKind::kNcvr;
  spec.num_entities = 40;
  spec.copies_per_entity = 4;
  spec.seed = 7;
  const datagen::Workload workload = datagen::MakeWorkload(spec);
  const auto blocker = MakeStandardBlocker(spec.kind);
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);
  const GroundTruth truth(workload.a);

  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  EngineOptions engine_options;
  engine_options.tracer = &tracer;
  LinkageEngine engine(blocker.get(), &matcher, similarity, engine_options);
  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
  ASSERT_TRUE(engine.ResolveAll(workload.q, truth).ok());

  EXPECT_EQ(tracer.buffer().total_recorded(), 0u);
  EXPECT_EQ(tracer.metrics().traces_started.value(), 0u);
}

}  // namespace
}  // namespace sketchlink

// LinkageEngine-level tests: phase timing, report plumbing, and engine
// behaviour around edge cases (empty data sets, unseen queries, repeated
// builds).

#include <gtest/gtest.h>

#include <memory>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink {
namespace {

using datagen::DatasetKind;

datagen::Workload SmallWorkload() {
  datagen::WorkloadSpec spec;
  spec.kind = DatasetKind::kNcvr;
  spec.num_entities = 50;
  spec.copies_per_entity = 4;
  spec.seed = 31337;
  return datagen::MakeWorkload(spec);
}

TEST(EngineTest, ReportFieldsArePopulated) {
  const datagen::Workload workload = SmallWorkload();
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  LinkageEngine engine(blocker.get(), &matcher, similarity);

  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report->method, "BlockSketch");
  EXPECT_EQ(report->blocking, "standard");
  EXPECT_GE(report->blocking_seconds, 0.0);
  EXPECT_GT(report->matching_seconds, 0.0);
  EXPECT_NEAR(report->avg_query_seconds,
              report->matching_seconds / workload.q.size(), 1e-12);
  EXPECT_GT(report->comparisons, 0u);
  EXPECT_GT(report->matcher_memory_bytes, 0u);
  EXPECT_GT(report->quality.true_pairs, 0u);
}

TEST(EngineTest, EmptyQuerySetYieldsEmptyReport) {
  const datagen::Workload workload = SmallWorkload();
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  LinkageEngine engine(blocker.get(), &matcher, similarity);
  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());

  Dataset empty_q(workload.q.schema());
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(empty_q, truth);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->quality.true_pairs, 0u);
  EXPECT_EQ(report->quality.reported_pairs, 0u);
  EXPECT_DOUBLE_EQ(report->avg_query_seconds, 0.0);
}

TEST(EngineTest, EmptyIndexResolvesToNothing) {
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  LinkageEngine engine(blocker.get(), &matcher, similarity);

  Record query;
  query.id = 1;
  query.fields = {"JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH"};
  auto matches = engine.ResolveOne(query);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(EngineTest, IncrementalBuildsAccumulate) {
  const datagen::Workload workload = SmallWorkload();
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  LinkageEngine engine(blocker.get(), &matcher, similarity);

  // Feed A in two halves; resolution must see both.
  Dataset first_half(workload.a.schema());
  Dataset second_half(workload.a.schema());
  for (size_t i = 0; i < workload.a.size(); ++i) {
    (i % 2 == 0 ? first_half : second_half).Add(workload.a[i]);
  }
  ASSERT_TRUE(engine.BuildIndex(first_half).ok());
  const double after_first = engine.blocking_seconds();
  ASSERT_TRUE(engine.BuildIndex(second_half).ok());
  EXPECT_GE(engine.blocking_seconds(), after_first);

  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->quality.correct_pairs, 0u);
}

TEST(EngineTest, VerifiedModeIsSubsetOfSubBlockMode) {
  // kVerified filters the sub-block result by the similarity threshold, so
  // per query its result set is a subset and precision can only rise.
  const datagen::Workload workload = SmallWorkload();
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr),
                                    0.75);
  const GroundTruth truth(workload.a);

  RecordStore store_raw;
  BlockSketchMatcher raw(BlockSketchOptions(), similarity, &store_raw,
                         ResolveMode::kSubBlock);
  LinkageEngine engine_raw(blocker.get(), &raw, similarity);
  ASSERT_TRUE(engine_raw.BuildIndex(workload.a).ok());
  auto raw_report = engine_raw.ResolveAll(workload.q, truth);
  ASSERT_TRUE(raw_report.ok());

  RecordStore store_verified;
  BlockSketchMatcher verified(BlockSketchOptions(), similarity,
                              &store_verified, ResolveMode::kVerified);
  LinkageEngine engine_verified(blocker.get(), &verified, similarity);
  ASSERT_TRUE(engine_verified.BuildIndex(workload.a).ok());
  auto verified_report = engine_verified.ResolveAll(workload.q, truth);
  ASSERT_TRUE(verified_report.ok());

  EXPECT_LE(verified_report->quality.reported_pairs,
            raw_report->quality.reported_pairs);
  EXPECT_GE(verified_report->quality.precision,
            raw_report->quality.precision - 1e-9);
  EXPECT_LE(verified_report->quality.recall,
            raw_report->quality.recall + 1e-9);
}

}  // namespace
}  // namespace sketchlink

#include <gtest/gtest.h>

#include "linkage/similarity.h"

namespace sketchlink {
namespace {

Record MakeRecord(std::vector<std::string> fields) {
  Record record;
  record.id = 1;
  record.fields = std::move(fields);
  return record;
}

TEST(FieldComparatorTest, ExactComparator) {
  EXPECT_DOUBLE_EQ(
      CompareFieldValues(FieldComparatorKind::kExact, "SAME", "SAME"), 1.0);
  EXPECT_DOUBLE_EQ(
      CompareFieldValues(FieldComparatorKind::kExact, "SAME", "SAMe"), 0.0);
}

TEST(FieldComparatorTest, NumericComparator) {
  EXPECT_DOUBLE_EQ(
      CompareFieldValues(FieldComparatorKind::kNumeric, "100", "100"), 1.0);
  EXPECT_NEAR(
      CompareFieldValues(FieldComparatorKind::kNumeric, "100", "90"), 0.9,
      1e-9);
  EXPECT_DOUBLE_EQ(
      CompareFieldValues(FieldComparatorKind::kNumeric, "100", "0"), 0.0);
  // Hugely different magnitudes floor near zero (1 - 999/1000).
  EXPECT_NEAR(
      CompareFieldValues(FieldComparatorKind::kNumeric, "1", "1000"), 0.001,
      1e-9);
  EXPECT_DOUBLE_EQ(
      CompareFieldValues(FieldComparatorKind::kNumeric, "0", "1000"), 0.0);
  // Decimal values.
  EXPECT_NEAR(
      CompareFieldValues(FieldComparatorKind::kNumeric, "4.5", "4.05"), 0.9,
      1e-9);
}

TEST(FieldComparatorTest, NumericFallsBackToJaroWinkler) {
  // Non-numeric content: behaves like the JW comparator.
  EXPECT_DOUBLE_EQ(
      CompareFieldValues(FieldComparatorKind::kNumeric, "ABC", "ABC"), 1.0);
  EXPECT_GT(
      CompareFieldValues(FieldComparatorKind::kNumeric, "JOHNSON", "JOHNSN"),
      0.9);
}

TEST(FieldComparatorTest, MongeElkanForgivesTokenOrder) {
  EXPECT_DOUBLE_EQ(CompareFieldValues(FieldComparatorKind::kMongeElkan,
                                      "JOHNSON JAMES", "JAMES JOHNSON"),
                   1.0);
}

TEST(FieldComparatorTest, SmithWatermanIgnoresFlanks) {
  EXPECT_DOUBLE_EQ(CompareFieldValues(FieldComparatorKind::kSmithWaterman,
                                      "DR JOHN SMITH MD", "JOHN SMITH"),
                   1.0);
}

TEST(TypedSimilarityTest, WeightedMixture) {
  // Field 0: exact id-like code, weight 2; field 1: JW name, weight 1.
  RecordSimilarity similarity(
      {FieldSpec{0, FieldComparatorKind::kExact, 2.0},
       FieldSpec{1, FieldComparatorKind::kJaroWinkler, 1.0}},
      0.75);
  const Record a = MakeRecord({"CODE1", "JOHNSON"});
  const Record same_code = MakeRecord({"CODE1", "XXXXXXX"});
  const Record diff_code = MakeRecord({"CODE2", "JOHNSON"});
  // Exact code dominates via its weight.
  EXPECT_GT(similarity.Similarity(a, same_code), 0.6);
  // JW contributes only a third of the mass.
  EXPECT_LT(similarity.Similarity(a, diff_code), 0.75);
}

TEST(TypedSimilarityTest, NumericFieldFixesJwOnDigits) {
  // Plain-JW scoring of numeric lab results is deceptively high; the typed
  // comparator is not fooled.
  RecordSimilarity jw({0, 1}, 0.75);
  RecordSimilarity typed({FieldSpec{0, FieldComparatorKind::kJaroWinkler},
                          FieldSpec{1, FieldComparatorKind::kNumeric}},
                         0.75);
  const Record a = MakeRecord({"ALBUMIN", "151.72"});
  const Record b = MakeRecord({"ALBUMIN", "165.04"});
  EXPECT_GT(jw.Similarity(a, b), 0.80);       // JW is fooled
  EXPECT_LT(typed.Similarity(a, b), 0.99);    // numeric difference counted
  EXPECT_GT(typed.Similarity(a, b), 0.85);    // ...but values ARE close
  const Record c = MakeRecord({"ALBUMIN", "15.72"});
  EXPECT_LT(typed.Similarity(a, c), 0.6);     // order-of-magnitude error
}

TEST(TypedSimilarityTest, IndexListConstructorMatchesLegacyBehaviour) {
  RecordSimilarity legacy({0, 1}, 0.75);
  RecordSimilarity typed({FieldSpec{0}, FieldSpec{1}}, 0.75);
  const Record a = MakeRecord({"JAMES", "JOHNSON"});
  const Record b = MakeRecord({"JAMS", "JOHNSONN"});
  EXPECT_DOUBLE_EQ(legacy.Similarity(a, b), typed.Similarity(a, b));
  EXPECT_EQ(legacy.match_fields(), typed.match_fields());
}

TEST(TypedSimilarityTest, ZeroWeightsYieldZero) {
  RecordSimilarity similarity(
      {FieldSpec{0, FieldComparatorKind::kExact, 0.0}}, 0.5);
  const Record a = MakeRecord({"X"});
  EXPECT_DOUBLE_EQ(similarity.Similarity(a, a), 0.0);
}

}  // namespace
}  // namespace sketchlink

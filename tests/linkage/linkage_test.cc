#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "kv/env.h"
#include "linkage/metrics.h"
#include "linkage/record_store.h"
#include "linkage/similarity.h"

namespace sketchlink {
namespace {

Record MakeRecord(RecordId id, uint64_t entity,
                  std::vector<std::string> fields) {
  Record record;
  record.id = id;
  record.entity_id = entity;
  record.fields = std::move(fields);
  return record;
}

TEST(RecordSimilarityTest, IdenticalRecordsScoreOne) {
  RecordSimilarity similarity({0, 1});
  const Record a = MakeRecord(1, 1, {"JAMES", "JOHNSON"});
  EXPECT_DOUBLE_EQ(similarity.Similarity(a, a), 1.0);
  EXPECT_TRUE(similarity.Matches(a, a));
}

TEST(RecordSimilarityTest, AveragesAcrossFields) {
  RecordSimilarity similarity({0, 1}, 0.75);
  const Record a = MakeRecord(1, 1, {"JAMES", "JOHNSON"});
  const Record b = MakeRecord(2, 2, {"JAMES", "XXXXXXX"});
  const double sim = similarity.Similarity(a, b);
  EXPECT_GT(sim, 0.4);
  EXPECT_LT(sim, 0.75);
  EXPECT_FALSE(similarity.Matches(a, b));
}

TEST(RecordSimilarityTest, NormalizesBeforeComparing) {
  RecordSimilarity similarity({0});
  const Record a = MakeRecord(1, 1, {"  james  "});
  const Record b = MakeRecord(2, 2, {"JAMES"});
  EXPECT_DOUBLE_EQ(similarity.Similarity(a, b), 1.0);
}

TEST(RecordSimilarityTest, MissingFieldsTreatedAsEmpty) {
  RecordSimilarity similarity({0, 3});
  const Record a = MakeRecord(1, 1, {"JAMES"});
  const Record b = MakeRecord(2, 2, {"JAMES"});
  // Field 3 absent on both: Jaro("", "") = 1.
  EXPECT_DOUBLE_EQ(similarity.Similarity(a, b), 1.0);
}

TEST(RecordSimilarityTest, KeyValuesJoinsNormalizedFields) {
  RecordSimilarity similarity({0, 1});
  const Record a = MakeRecord(1, 1, {" james ", "o'brien"});
  EXPECT_EQ(similarity.KeyValues(a), "JAMES#O'BRIEN");
}

TEST(RecordSimilarityTest, PerturbedRecordStaysAboveThreshold) {
  RecordSimilarity similarity({0, 1, 2, 3}, 0.75);
  const Record a =
      MakeRecord(1, 1, {"JAMES", "JOHNSON", "100 MAIN ST", "RALEIGH"});
  const Record b =
      MakeRecord(2, 1, {"JAMS", "JOHNSONN", "100 MIAN ST", "RALEIGH"});
  EXPECT_TRUE(similarity.Matches(a, b));
}

TEST(RecordStoreTest, InMemoryPutGet) {
  RecordStore store;
  ASSERT_TRUE(store.Put(MakeRecord(7, 1, {"X"})).ok());
  auto record = store.Get(7);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->fields[0], "X");
  EXPECT_TRUE(store.Get(8).status().IsNotFound());
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecordStoreTest, OverwriteKeepsLatest) {
  RecordStore store;
  ASSERT_TRUE(store.Put(MakeRecord(1, 1, {"OLD"})).ok());
  ASSERT_TRUE(store.Put(MakeRecord(1, 1, {"NEW"})).ok());
  auto record = store.Get(1);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->fields[0], "NEW");
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecordStoreTest, ViewsSurviveInsertsPastAnyCapacity) {
  // Regression for the string_view-into-reallocating-storage hazard: a
  // reader holds zero-copy views while inserts force the backing arena
  // through many block growths. Every held view must keep its address and
  // bytes (the DESIGN.md §12 stability contract GetView is built on).
  RecordStore store;
  constexpr RecordId kHeld = 1;
  ASSERT_TRUE(
      store.Put(MakeRecord(kHeld, 1, {"JAMES", "JOHNSON", "RALEIGH"})).ok());
  auto held = store.GetView(kHeld);
  ASSERT_TRUE(held.ok());
  const char* held_data = held->field(0).data();

  for (RecordId id = 2; id <= 4000; ++id) {
    ASSERT_TRUE(store
                    .Put(MakeRecord(id, id,
                                    {"FILLER-" + std::to_string(id),
                                     std::string(64, 'x')}))
                    .ok());
  }

  EXPECT_EQ(held->field(0), "JAMES");
  EXPECT_EQ(held->field(1), "JOHNSON");
  EXPECT_EQ(held->field(2), "RALEIGH");
  // Not just equal content — the very same bytes (nothing was reallocated).
  EXPECT_EQ(held->field(0).data(), held_data);
  // A fresh view still resolves the same payload.
  auto fresh = store.GetView(kHeld);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->field(0).data(), held_data);
}

TEST(RecordStoreTest, OldViewsStayReadableAfterOverwrite) {
  // Overwriting an id must not invalidate views opened on the old payload:
  // they keep showing the bytes they were opened on (stale-but-safe), while
  // new views see the replacement.
  RecordStore store;
  ASSERT_TRUE(store.Put(MakeRecord(5, 1, {"OLD"})).ok());
  auto old_view = store.GetView(5);
  ASSERT_TRUE(old_view.ok());
  ASSERT_TRUE(store.Put(MakeRecord(5, 1, {"NEW"})).ok());
  EXPECT_EQ(old_view->field(0), "OLD");
  auto new_view = store.GetView(5);
  ASSERT_TRUE(new_view.ok());
  EXPECT_EQ(new_view->field(0), "NEW");
}

TEST(RecordStoreTest, ConcurrentReadersHoldViewsUnderLiveInserts) {
  // The serving-plane shape: query threads verify candidates through views
  // while inserts land. TSan-checked in the tier-1 sanitizer presets.
  RecordStore store;
  constexpr RecordId kSeeded = 100;
  for (RecordId id = 1; id <= kSeeded; ++id) {
    ASSERT_TRUE(
        store.Put(MakeRecord(id, id, {"SEED-" + std::to_string(id)})).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (RecordId id = kSeeded + 1; id <= kSeeded + 2000; ++id) {
      if (!store.Put(MakeRecord(id, id, {std::string(40, 'w')})).ok()) break;
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t probes = 0;
      while (!stop.load(std::memory_order_acquire) || probes < 1000) {
        const RecordId id = 1 + (probes % kSeeded);
        auto view = store.GetView(id);
        ASSERT_TRUE(view.ok());
        ASSERT_EQ(view->field(0), "SEED-" + std::to_string(id));
        if (++probes >= 500000) break;  // paranoia bound
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(store.size(), kSeeded + 2000u);
}

TEST(RecordStoreTest, KvBackedWritesThrough) {
  const std::string dir = ::testing::TempDir() + "/record_store_kv";
  ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());
  auto db = kv::Db::Open(dir);
  ASSERT_TRUE(db.ok());
  {
    RecordStore store(db->get());
    ASSERT_TRUE(store.Put(MakeRecord(3, 1, {"DURABLE"})).ok());
  }
  // A fresh store over the same DB sees the record (cache empty -> KV read).
  RecordStore fresh(db->get());
  auto record = fresh.Get(3);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->fields[0], "DURABLE");
  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}

TEST(GroundTruthTest, EntityLookupAndCounts) {
  Dataset dataset;
  dataset.Add(MakeRecord(1, 100, {}));
  dataset.Add(MakeRecord(2, 100, {}));
  dataset.Add(MakeRecord(3, 200, {}));
  GroundTruth truth(dataset);
  EXPECT_EQ(truth.EntityOf(1), 100u);
  EXPECT_EQ(truth.EntityOf(99), 0u);
  EXPECT_EQ(truth.EntityCount(100), 2u);
  EXPECT_EQ(truth.EntityCount(999), 0u);
  EXPECT_EQ(truth.num_records(), 3u);
}

TEST(QualityScorerTest, PerfectResult) {
  Dataset dataset;
  dataset.Add(MakeRecord(1, 100, {}));
  dataset.Add(MakeRecord(2, 100, {}));
  GroundTruth truth(dataset);
  QualityScorer scorer(&truth);
  scorer.AddQueryResult(MakeRecord(50, 100, {}), {1, 2});
  const QualityMetrics metrics = scorer.Finalize();
  EXPECT_EQ(metrics.true_pairs, 2u);
  EXPECT_EQ(metrics.reported_pairs, 2u);
  EXPECT_EQ(metrics.correct_pairs, 2u);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.f1, 1.0);
}

TEST(QualityScorerTest, FalsePositivesHurtPrecisionOnly) {
  Dataset dataset;
  dataset.Add(MakeRecord(1, 100, {}));
  dataset.Add(MakeRecord(2, 200, {}));
  GroundTruth truth(dataset);
  QualityScorer scorer(&truth);
  scorer.AddQueryResult(MakeRecord(50, 100, {}), {1, 2});  // 2 is wrong
  const QualityMetrics metrics = scorer.Finalize();
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.5);
}

TEST(QualityScorerTest, MissesHurtRecallOnly) {
  Dataset dataset;
  dataset.Add(MakeRecord(1, 100, {}));
  dataset.Add(MakeRecord(2, 100, {}));
  GroundTruth truth(dataset);
  QualityScorer scorer(&truth);
  scorer.AddQueryResult(MakeRecord(50, 100, {}), {1});
  const QualityMetrics metrics = scorer.Finalize();
  EXPECT_DOUBLE_EQ(metrics.recall, 0.5);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
}

TEST(QualityScorerTest, EmptyResultsGiveZeroRates) {
  Dataset dataset;
  dataset.Add(MakeRecord(1, 100, {}));
  GroundTruth truth(dataset);
  QualityScorer scorer(&truth);
  scorer.AddQueryResult(MakeRecord(50, 100, {}), {});
  const QualityMetrics metrics = scorer.Finalize();
  EXPECT_DOUBLE_EQ(metrics.recall, 0.0);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.0);
  EXPECT_DOUBLE_EQ(metrics.f1, 0.0);
}

TEST(QualityScorerTest, AccumulatesAcrossQueries) {
  Dataset dataset;
  dataset.Add(MakeRecord(1, 100, {}));
  dataset.Add(MakeRecord(2, 200, {}));
  GroundTruth truth(dataset);
  QualityScorer scorer(&truth);
  scorer.AddQueryResult(MakeRecord(50, 100, {}), {1});
  scorer.AddQueryResult(MakeRecord(51, 200, {}), {2});
  const QualityMetrics metrics = scorer.Finalize();
  EXPECT_EQ(metrics.true_pairs, 2u);
  EXPECT_EQ(metrics.correct_pairs, 2u);
  EXPECT_DOUBLE_EQ(metrics.f1, 1.0);
}

}  // namespace
}  // namespace sketchlink

// Determinism-under-parallelism tests: the engine must produce bit-identical
// match sets, comparison counts and quality metrics at every thread count
// (ISSUE: parallel matching pipeline). Covers the BlockSketch and
// SBlockSketch matchers end to end, including per-query ResolveOne checks.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "kv/env.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink {
namespace {

using datagen::DatasetKind;

datagen::Workload MediumWorkload() {
  datagen::WorkloadSpec spec;
  spec.kind = DatasetKind::kNcvr;
  spec.num_entities = 200;
  spec.copies_per_entity = 6;
  spec.seed = 90210;
  return datagen::MakeWorkload(spec);
}

struct RunOutput {
  LinkageReport report;
  std::vector<std::vector<RecordId>> per_query;
};

RunOutput RunBlockSketch(const datagen::Workload& workload, size_t threads) {
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  EngineOptions options;
  options.num_threads = threads;
  LinkageEngine engine(blocker.get(), &matcher, similarity, options);

  RunOutput out;
  EXPECT_TRUE(engine.BuildIndex(workload.a).ok());
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  EXPECT_TRUE(report.ok());
  out.report = *report;
  // Per-query results after the parallel phase: resolution only reads the
  // sketch, so the answers must match the parallel run's scoring exactly.
  for (const Record& query : workload.q.records()) {
    auto matches = engine.ResolveOne(query);
    EXPECT_TRUE(matches.ok());
    out.per_query.push_back(std::move(*matches));
  }
  return out;
}

TEST(ParallelEngineTest, BlockSketchIdenticalAcrossThreadCounts) {
  const datagen::Workload workload = MediumWorkload();
  const RunOutput reference = RunBlockSketch(workload, 1);
  EXPECT_EQ(reference.report.threads, 1u);
  EXPECT_GT(reference.report.queries_per_second, 0.0);

  for (size_t threads : {size_t{2}, size_t{8}}) {
    const RunOutput run = RunBlockSketch(workload, threads);
    EXPECT_EQ(run.report.threads, threads);
    EXPECT_EQ(run.per_query, reference.per_query) << "threads=" << threads;
    EXPECT_EQ(run.report.quality.true_pairs,
              reference.report.quality.true_pairs);
    EXPECT_EQ(run.report.quality.reported_pairs,
              reference.report.quality.reported_pairs);
    EXPECT_EQ(run.report.quality.correct_pairs,
              reference.report.quality.correct_pairs);
    EXPECT_DOUBLE_EQ(run.report.quality.recall,
                     reference.report.quality.recall);
    EXPECT_DOUBLE_EQ(run.report.quality.precision,
                     reference.report.quality.precision);
  }
}

TEST(ParallelEngineTest, BlockSketchComparisonsIdenticalAcrossThreadCounts) {
  // comparisons() is read before the extra ResolveOne sweep here, so the
  // counter totals of build + ResolveAll are compared exactly.
  const datagen::Workload workload = MediumWorkload();
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  const GroundTruth truth(workload.a);

  uint64_t reference_comparisons = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    RecordStore store;
    BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store,
                               ResolveMode::kVerified);
    EngineOptions options;
    options.num_threads = threads;
    LinkageEngine engine(blocker.get(), &matcher, similarity, options);
    ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
    auto report = engine.ResolveAll(workload.q, truth);
    ASSERT_TRUE(report.ok());
    if (threads == 1) {
      reference_comparisons = report->comparisons;
    } else {
      EXPECT_EQ(report->comparisons, reference_comparisons)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelEngineTest, SBlockSketchIdenticalAcrossThreadCounts) {
  const datagen::Workload workload = MediumWorkload();
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  const GroundTruth truth(workload.a);

  struct Output {
    QualityMetrics quality;
    std::vector<std::vector<RecordId>> per_query;
  };
  const auto run_at = [&](size_t threads) {
    const std::string dir =
        "/tmp/sketchlink_parallel_engine_" + std::to_string(threads);
    (void)kv::RemoveDirRecursively(dir);
    auto db = kv::Db::Open(dir);
    EXPECT_TRUE(db.ok());
    Output out;
    {
      SBlockSketchOptions options;
      options.mu = 64;  // forces spills so the kv store is on the hot path
      RecordStore store;
      SBlockSketchMatcher matcher(options, db->get(), similarity, &store);
      EngineOptions engine_options;
      engine_options.num_threads = threads;
      LinkageEngine engine(blocker.get(), &matcher, similarity,
                           engine_options);
      EXPECT_TRUE(engine.BuildIndex(workload.a).ok());
      auto report = engine.ResolveAll(workload.q, truth);
      EXPECT_TRUE(report.ok());
      out.quality = report->quality;
      for (const Record& query : workload.q.records()) {
        auto matches = engine.ResolveOne(query);
        EXPECT_TRUE(matches.ok());
        out.per_query.push_back(std::move(*matches));
      }
    }
    (void)kv::RemoveDirRecursively(dir);
    return out;
  };

  const Output reference = run_at(1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const Output run = run_at(threads);
    EXPECT_EQ(run.quality.true_pairs, reference.quality.true_pairs);
    EXPECT_EQ(run.quality.reported_pairs, reference.quality.reported_pairs);
    EXPECT_EQ(run.quality.correct_pairs, reference.quality.correct_pairs);
    EXPECT_EQ(run.per_query, reference.per_query) << "threads=" << threads;
  }
}

TEST(ParallelEngineTest, SequentialMatchersStillWorkThroughBatchPath) {
  // EO keeps the default InsertBatch/SupportsConcurrentResolve: a
  // multi-threaded engine must fall back to sequential resolution and still
  // produce a valid report.
  const datagen::Workload workload = MediumWorkload();
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);
  const RecordSimilarity similarity(MatchFieldsFor(DatasetKind::kNcvr));
  const GroundTruth truth(workload.a);

  RecordStore store;
  NaiveBlockMatcher naive(similarity, &store);
  EXPECT_TRUE(naive.SupportsConcurrentResolve());

  EngineOptions options;
  options.num_threads = 4;
  LinkageEngine engine(blocker.get(), &naive, similarity, options);
  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
  auto report = engine.ResolveAll(workload.q, truth);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->quality.true_pairs, 0u);
  EXPECT_GT(report->comparisons, 0u);
}

}  // namespace
}  // namespace sketchlink

#include "linkage/pprl_matcher.h"

#include <gtest/gtest.h>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "linkage/engine.h"
#include "linkage/metrics.h"
#include "linkage/similarity.h"

namespace sketchlink {
namespace {

using datagen::DatasetKind;

TEST(PprlMatcherTest, EncodingSimilarityBounds) {
  BitVector a(100);
  BitVector b(100);
  EXPECT_DOUBLE_EQ(PprlMatcher::EncodingSimilarity(a, b), 1.0);
  for (size_t i = 0; i < 100; ++i) a.SetBit(i);
  EXPECT_DOUBLE_EQ(PprlMatcher::EncodingSimilarity(a, b), 0.0);
}

TEST(PprlMatcherTest, MatchesPerturbedEncodingsOnly) {
  auto blocker = MakeLshBlocker(DatasetKind::kNcvr);
  PprlMatcher matcher(blocker.get(), /*similarity_threshold=*/0.9);

  Record base;
  base.id = 1;
  base.entity_id = 1;
  base.fields = {"JAMES", "JOHNSON", "100 MAIN ST", "RALEIGH"};
  ASSERT_TRUE(matcher.Insert(base, blocker->Keys(base), "").ok());

  Record other;
  other.id = 2;
  other.entity_id = 2;
  other.fields = {"OLIVIA", "GUTIERREZ", "9 PINE RD", "ASHEVILLE"};
  ASSERT_TRUE(matcher.Insert(other, blocker->Keys(other), "").ok());

  Record query = base;
  query.id = 100;
  query.fields[1] = "JOHNSONN";  // one typo
  auto matches = matcher.Resolve(query, blocker->Keys(query), "");
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0], 1u);
}

TEST(PprlMatcherTest, EndToEndQualityTracksPlaintextLinkage) {
  // The PPRL promise: near-plaintext quality while only encodings cross the
  // boundary. Compare against nothing fancier than a sanity floor here; the
  // paper-level comparison lives in the benches.
  datagen::WorkloadSpec spec;
  spec.kind = DatasetKind::kNcvr;
  spec.num_entities = 200;
  spec.copies_per_entity = 6;
  spec.max_perturb_ops = 3;
  spec.seed = 99;
  const datagen::Workload workload = datagen::MakeWorkload(spec);
  auto blocker = MakeLshBlocker(spec.kind);
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);

  PprlMatcher matcher(blocker.get(), 0.9);
  LinkageEngine engine(blocker.get(), &matcher, similarity);
  ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->quality.recall, 0.5) << report->quality.recall;
  EXPECT_GT(report->quality.precision, 0.5) << report->quality.precision;
}

TEST(PprlMatcherTest, ThresholdSweepTradesRecallForPrecision) {
  datagen::WorkloadSpec spec;
  spec.kind = DatasetKind::kNcvr;
  spec.num_entities = 120;
  spec.copies_per_entity = 5;
  spec.seed = 7;
  const datagen::Workload workload = datagen::MakeWorkload(spec);
  auto blocker = MakeLshBlocker(spec.kind);
  const RecordSimilarity similarity(MatchFieldsFor(spec.kind), 0.75);
  const GroundTruth truth(workload.a);

  double previous_recall = 2.0;
  for (double threshold : {0.80, 0.90, 0.97}) {
    PprlMatcher matcher(blocker.get(), threshold);
    LinkageEngine engine(blocker.get(), &matcher, similarity);
    ASSERT_TRUE(engine.BuildIndex(workload.a).ok());
    auto report = engine.ResolveAll(workload.q, truth);
    ASSERT_TRUE(report.ok());
    // Tightening the Hamming threshold can only shrink the result set.
    EXPECT_LE(report->quality.recall, previous_recall + 1e-9);
    previous_recall = report->quality.recall;
  }
}

TEST(PprlMatcherTest, EmptyIndexResolvesEmpty) {
  auto blocker = MakeLshBlocker(DatasetKind::kLab);
  PprlMatcher matcher(blocker.get(), 0.9);
  Record query;
  query.id = 1;
  query.fields = {"ALBUMIN", "4.2", "2015"};
  auto matches = matcher.Resolve(query, blocker->Keys(query), "");
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

}  // namespace
}  // namespace sketchlink

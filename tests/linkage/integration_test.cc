// End-to-end integration tests: generator -> blocking -> summarization ->
// matching -> quality scoring, exercising the same pipeline the benchmark
// harness uses for the paper's Figs. 7-9.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/edge_ordering.h"
#include "baselines/inv_index.h"
#include "baselines/oracle.h"
#include "blocking/presets.h"
#include "core/block_sketch.h"
#include "datagen/generators.h"
#include "kv/env.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink {
namespace {

using datagen::DatasetKind;

struct Pipeline {
  datagen::Workload workload;
  std::unique_ptr<StandardBlocker> blocker;
  RecordSimilarity similarity;
  GroundTruth truth;

  Pipeline(DatasetKind kind, size_t entities, size_t copies)
      : workload(datagen::MakeWorkload([&] {
          datagen::WorkloadSpec spec;
          spec.kind = kind;
          spec.num_entities = entities;
          spec.copies_per_entity = copies;
          spec.max_perturb_ops = 3;
          spec.seed = 4242;
          return spec;
        }())),
        blocker(MakeStandardBlocker(kind)),
        similarity(MatchFieldsFor(kind), 0.75),
        truth(workload.a) {}

  LinkageReport Run(OnlineMatcher* matcher) {
    LinkageEngine engine(blocker.get(), matcher, similarity);
    EXPECT_TRUE(engine.BuildIndex(workload.a).ok());
    auto report = engine.ResolveAll(workload.q, truth);
    EXPECT_TRUE(report.ok());
    return report.ok() ? *report : LinkageReport{};
  }
};

TEST(IntegrationTest, BlockSketchEndToEndQuality) {
  Pipeline pipeline(DatasetKind::kNcvr, 150, 8);
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), pipeline.similarity,
                             &store);
  const LinkageReport report = pipeline.Run(&matcher);
  // Standard blocking on perturbed data cannot be perfect, but the sketch
  // must recover a solid fraction of true pairs with high precision.
  EXPECT_GT(report.quality.recall, 0.35) << report.quality.recall;
  EXPECT_GT(report.quality.precision, 0.8) << report.quality.precision;
  EXPECT_GT(report.comparisons, 0u);
}

TEST(IntegrationTest, BlockSketchRecallTracksNaiveScanCheaply) {
  // The naive full-block scan verifies every block member with the
  // similarity threshold; BlockSketch reports its target sub-block without
  // per-candidate verification (Sec. 5 semantics). Its recall must track
  // the block contents (Lemma 5.1's 1 - delta of the blocking ceiling)
  // while issuing far fewer similarity computations.
  Pipeline pipeline(DatasetKind::kNcvr, 120, 8);
  RecordStore naive_store;
  NaiveBlockMatcher naive(pipeline.similarity, &naive_store);
  const LinkageReport naive_report = pipeline.Run(&naive);

  RecordStore sketch_store;
  BlockSketchMatcher sketch(BlockSketchOptions(), pipeline.similarity,
                            &sketch_store);
  const LinkageReport sketch_report = pipeline.Run(&sketch);

  EXPECT_GT(sketch_report.quality.recall,
            naive_report.quality.recall * 0.85);
}

TEST(IntegrationTest, EoRecallAtLeastBlockSketchAndPrecisionBelow) {
  // Fig. 7a/7b: EO formulates every pair in the target block, so its recall
  // bounds BlockSketch's from above; Fig. 7d: under LSH blocking (where
  // blocks are impure) BlockSketch's sub-block routing buys it clearly
  // better precision than EO's exhaustive formulation.
  Pipeline pipeline(DatasetKind::kNcvr, 400, 10);
  auto lsh = MakeLshBlocker(DatasetKind::kNcvr);

  RecordStore sketch_store;
  BlockSketchMatcher sketch(BlockSketchOptions(), pipeline.similarity,
                            &sketch_store);
  LinkageEngine sketch_engine(lsh.get(), &sketch, pipeline.similarity);
  ASSERT_TRUE(sketch_engine.BuildIndex(pipeline.workload.a).ok());
  auto sketch_report =
      sketch_engine.ResolveAll(pipeline.workload.q, pipeline.truth);
  ASSERT_TRUE(sketch_report.ok());

  RecordStore eo_store;
  Oracle oracle;
  EdgeOrderingMatcher eo(EoOptions(), pipeline.similarity, &eo_store,
                         &oracle);
  LinkageEngine eo_engine(lsh.get(), &eo, pipeline.similarity);
  ASSERT_TRUE(eo_engine.BuildIndex(pipeline.workload.a).ok());
  auto eo_report = eo_engine.ResolveAll(pipeline.workload.q, pipeline.truth);
  ASSERT_TRUE(eo_report.ok());

  EXPECT_GE(eo_report->quality.recall, sketch_report->quality.recall - 0.02);
  EXPECT_GT(sketch_report->quality.precision, eo_report->quality.precision);
}

TEST(IntegrationTest, InvRecallBelowBlockSketch) {
  // Fig. 7a: INV trails on recall because double metaphone cannot bridge
  // heavily perturbed values.
  Pipeline pipeline(DatasetKind::kNcvr, 120, 8);

  RecordStore sketch_store;
  BlockSketchMatcher sketch(BlockSketchOptions(), pipeline.similarity,
                            &sketch_store);
  const LinkageReport sketch_report = pipeline.Run(&sketch);

  RecordStore inv_store;
  InvIndexMatcher inv(InvOptions(), pipeline.similarity, &inv_store);
  const LinkageReport inv_report = pipeline.Run(&inv);

  EXPECT_LT(inv_report.quality.recall, sketch_report.quality.recall);
}

TEST(IntegrationTest, LshBlockingBeatsStandardRecallForBlockSketch) {
  // Fig. 7b: redundancy lifts recall.
  Pipeline pipeline(DatasetKind::kNcvr, 100, 6);

  RecordStore std_store;
  BlockSketchMatcher std_matcher(BlockSketchOptions(), pipeline.similarity,
                                 &std_store);
  const LinkageReport std_report = pipeline.Run(&std_matcher);

  auto lsh = MakeLshBlocker(DatasetKind::kNcvr);
  RecordStore lsh_store;
  BlockSketchMatcher lsh_matcher(BlockSketchOptions(), pipeline.similarity,
                                 &lsh_store);
  LinkageEngine engine(lsh.get(), &lsh_matcher, pipeline.similarity);
  ASSERT_TRUE(engine.BuildIndex(pipeline.workload.a).ok());
  auto lsh_report = engine.ResolveAll(pipeline.workload.q, pipeline.truth);
  ASSERT_TRUE(lsh_report.ok());

  EXPECT_GT(lsh_report->quality.recall, std_report.quality.recall);
}

TEST(IntegrationTest, SBlockSketchMatchesBlockSketchQuality) {
  // Fig. 9: the streaming variant trades time (spills) but not quality.
  Pipeline pipeline(DatasetKind::kLab, 100, 6);

  RecordStore mem_store;
  BlockSketchMatcher mem_matcher(BlockSketchOptions(), pipeline.similarity,
                                 &mem_store);
  const LinkageReport mem_report = pipeline.Run(&mem_matcher);

  const std::string dir = ::testing::TempDir() + "/integration_sbs";
  ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());
  auto db = kv::Db::Open(dir);
  ASSERT_TRUE(db.ok());
  SBlockSketchOptions streaming_options;
  streaming_options.mu = 16;  // tiny: forces constant spilling
  RecordStore stream_store;
  SBlockSketchMatcher stream_matcher(streaming_options, db->get(),
                                     pipeline.similarity, &stream_store);
  const LinkageReport stream_report = pipeline.Run(&stream_matcher);

  EXPECT_NEAR(stream_report.quality.recall, mem_report.quality.recall, 0.05);
  EXPECT_NEAR(stream_report.quality.precision, mem_report.quality.precision,
              0.05);
  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}

class AllKindsEndToEnd : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(AllKindsEndToEnd, BlockSketchProducesUsefulResults) {
  Pipeline pipeline(GetParam(), 100, 6);
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), pipeline.similarity,
                             &store);
  const LinkageReport report = pipeline.Run(&matcher);
  // LAB is the paper's hardest data set (Sec. 7.2): its 6-char blocking
  // keys and short weakly-discriminative fields depress both rates relative
  // to DBLP/NCVR, so its floor is lower here too.
  const bool lab = GetParam() == DatasetKind::kLab;
  EXPECT_GT(report.quality.recall, lab ? 0.2 : 0.3)
      << datagen::DatasetKindName(GetParam());
  EXPECT_GT(report.quality.precision, lab ? 0.15 : 0.5)
      << datagen::DatasetKindName(GetParam());
  EXPECT_GT(report.quality.f1, lab ? 0.15 : 0.3);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKindsEndToEnd,
                         ::testing::Values(DatasetKind::kDblp,
                                           DatasetKind::kNcvr,
                                           DatasetKind::kLab));

}  // namespace
}  // namespace sketchlink

#include "blocking/minhash_blocker.h"

#include <gtest/gtest.h>

#include <set>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "datagen/perturb.h"

namespace sketchlink {
namespace {

Record MakeNcvr(RecordId id, std::string given, std::string surname,
                std::string address, std::string town) {
  Record record;
  record.id = id;
  record.entity_id = id;
  record.fields = {std::move(given), std::move(surname), std::move(address),
                   std::move(town)};
  return record;
}

MinHashBlocker MakeBlocker(size_t bands = 8, size_t rows = 4) {
  MinHashParams params;
  params.num_bands = bands;
  params.rows_per_band = rows;
  return MinHashBlocker(params, MatchFieldsFor(datagen::DatasetKind::kNcvr));
}

TEST(MinHashBlockerTest, OneKeyPerBandWithPrefix) {
  const MinHashBlocker blocker = MakeBlocker(6, 3);
  const Record record = MakeNcvr(1, "JAMES", "JOHNSON", "1 MAIN ST",
                                 "RALEIGH");
  const auto keys = blocker.Keys(record);
  ASSERT_EQ(keys.size(), 6u);
  for (size_t band = 0; band < keys.size(); ++band) {
    EXPECT_EQ(keys[band].rfind("B" + std::to_string(band) + "_", 0), 0u)
        << keys[band];
  }
  EXPECT_EQ(blocker.keys_per_record(), 6u);
  EXPECT_EQ(blocker.name(), "minhash-lsh");
}

TEST(MinHashBlockerTest, DeterministicAndIdentityPreserving) {
  const MinHashBlocker blocker = MakeBlocker();
  const Record a = MakeNcvr(1, "JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH");
  const Record b = MakeNcvr(2, "JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH");
  EXPECT_EQ(blocker.Keys(a), blocker.Keys(a));
  EXPECT_EQ(blocker.Keys(a), blocker.Keys(b));  // same values, same keys
  EXPECT_EQ(blocker.Signature(a), blocker.Signature(b));
}

TEST(MinHashBlockerTest, SignatureAgreementTracksJaccard) {
  const MinHashBlocker blocker = MakeBlocker(16, 1);  // 16 raw min-hashes
  const Record base = MakeNcvr(1, "JAMES", "JOHNSON", "100 MAIN ST",
                               "RALEIGH");
  const Record close = MakeNcvr(2, "JAMES", "JOHNSN", "100 MAIN ST",
                                "RALEIGH");
  const Record far = MakeNcvr(3, "OLIVIA", "GUTIERREZ", "9 PINE RD",
                              "ASHEVILLE");
  const auto sig_base = blocker.Signature(base);
  const auto sig_close = blocker.Signature(close);
  const auto sig_far = blocker.Signature(far);
  size_t agree_close = 0;
  size_t agree_far = 0;
  for (size_t i = 0; i < sig_base.size(); ++i) {
    agree_close += sig_base[i] == sig_close[i];
    agree_far += sig_base[i] == sig_far[i];
  }
  EXPECT_GT(agree_close, agree_far);
  EXPECT_GT(agree_close, sig_base.size() / 2);
}

TEST(MinHashBlockerTest, PerturbedRecordsShareSomeKey) {
  MinHashParams params;
  params.num_bands = 10;
  params.rows_per_band = 3;
  const MinHashBlocker blocker(
      params, MatchFieldsFor(datagen::DatasetKind::kNcvr));
  datagen::Perturbator perturbator(17, 2);
  const Dataset base =
      datagen::GenerateBase(datagen::DatasetKind::kNcvr, 100, 5, 0.6);
  int shared = 0;
  for (size_t i = 0; i < base.size(); ++i) {
    const Record copy = perturbator.PerturbRecord(base[i], 10000 + i);
    const auto keys_a = blocker.Keys(base[i]);
    const auto keys_b = blocker.Keys(copy);
    const std::set<std::string> set_a(keys_a.begin(), keys_a.end());
    for (const std::string& key : keys_b) {
      if (set_a.count(key)) {
        ++shared;
        break;
      }
    }
  }
  EXPECT_GT(shared, 80);
}

TEST(MinHashBlockerTest, UnrelatedRecordsRarelyCollide) {
  const MinHashBlocker blocker = MakeBlocker(8, 4);
  const Record a = MakeNcvr(1, "JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH");
  const Record b = MakeNcvr(2, "OLIVIA", "GUTIERREZ", "99 PINE ST",
                            "ASHEVILLE");
  const auto keys_a = blocker.Keys(a);
  const auto keys_b = blocker.Keys(b);
  int collisions = 0;
  for (size_t i = 0; i < keys_a.size(); ++i) {
    if (keys_a[i] == keys_b[i]) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(MinHashBlockerTest, KeyValuesJoinNormalizedFields) {
  const MinHashBlocker blocker = MakeBlocker();
  const Record record = MakeNcvr(1, " james ", "o'brien", "1 Main St",
                                 "raleigh");
  EXPECT_EQ(blocker.KeyValues(record),
            "JAMES#O'BRIEN#1 MAIN ST#RALEIGH");
}

}  // namespace
}  // namespace sketchlink

#include "blocking/sorted_neighborhood.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "blocking/presets.h"
#include "datagen/generators.h"

namespace sketchlink {
namespace {

Record MakeNcvr(RecordId id, std::string given, std::string surname) {
  Record record;
  record.id = id;
  record.entity_id = id;
  record.fields = {std::move(given), std::move(surname), "1 MAIN ST",
                   "RALEIGH"};
  return record;
}

std::unique_ptr<SortedNeighborhoodIndex> MakeIndex(size_t window) {
  return std::make_unique<SortedNeighborhoodIndex>(
      MakeStandardBlocker(datagen::DatasetKind::kNcvr), window);
}

TEST(SortedNeighborhoodTest, EmptyIndexHasNoCandidates) {
  auto index = MakeIndex(3);
  EXPECT_TRUE(index->Candidates(MakeNcvr(1, "ANY", "ONE")).empty());
  EXPECT_EQ(index->size(), 0u);
}

TEST(SortedNeighborhoodTest, ExactKeyIsAlwaysACandidate) {
  auto index = MakeIndex(2);
  index->Insert(MakeNcvr(1, "JAMES", "JOHNSON"));
  index->Insert(MakeNcvr(2, "MARY", "WILLIAMS"));
  const auto candidates = index->Candidates(MakeNcvr(9, "JAMES", "JOHNSON"));
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), RecordId{1}),
            candidates.end());
}

TEST(SortedNeighborhoodTest, NeighborsWithinWindowAreFound) {
  auto index = MakeIndex(2);
  // Sort keys: ALICE#A.. < BOB#B.. < CARL#C.. < DAVE#D.. < ERIN#E..
  index->Insert(MakeNcvr(1, "ALICE", "ADAMS"));
  index->Insert(MakeNcvr(2, "BOB", "BAKER"));
  index->Insert(MakeNcvr(3, "CARL", "CLARK"));
  index->Insert(MakeNcvr(4, "DAVE", "DAVIS"));
  index->Insert(MakeNcvr(5, "ERIN", "EVANS"));
  const auto candidates = index->Candidates(MakeNcvr(9, "CARL", "CLARK"));
  // Window 2 around CARL: BOB, ALICE backwards; CARL, DAVE forwards.
  std::vector<RecordId> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<RecordId>{1, 2, 3, 4}));
}

TEST(SortedNeighborhoodTest, CandidateCountBoundedByTwoWindows) {
  auto index = MakeIndex(3);
  for (int i = 0; i < 100; ++i) {
    index->Insert(MakeNcvr(i + 1, "NAME" + std::to_string(i), "SURNAME"));
  }
  const auto candidates =
      index->Candidates(MakeNcvr(999, "NAME50", "SURNAME"));
  EXPECT_LE(candidates.size(), 2u * index->window());
  EXPECT_GE(candidates.size(), index->window());
}

TEST(SortedNeighborhoodTest, FirstCharacterTypoEscapesTheWindow) {
  // The documented weakness (paper Sec. 2): 'JONES' vs 'KONES' sort far
  // apart, so sorted-neighborhood never pairs them once enough records sit
  // between.
  auto index = MakeIndex(2);
  index->Insert(MakeNcvr(1, "JAMES", "JONES"));
  for (int i = 0; i < 50; ++i) {
    index->Insert(MakeNcvr(100 + i, "JAMESA" + std::to_string(i), "FILL"));
  }
  const auto candidates = index->Candidates(MakeNcvr(999, "KAMES", "JONES"));
  EXPECT_EQ(std::find(candidates.begin(), candidates.end(), RecordId{1}),
            candidates.end());
}

TEST(SortedNeighborhoodTest, QueryBeyondEndsClamped) {
  auto index = MakeIndex(5);
  index->Insert(MakeNcvr(1, "MIDDLE", "NAME"));
  // Query sorting before/after everything still returns in-range results.
  EXPECT_EQ(index->Candidates(MakeNcvr(9, "AAAA", "AAAA")).size(), 1u);
  EXPECT_EQ(index->Candidates(MakeNcvr(9, "ZZZZ", "ZZZZ")).size(), 1u);
}

TEST(SortedNeighborhoodTest, MemoryGrowsWithRecords) {
  auto index = MakeIndex(2);
  const size_t before = index->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; ++i) {
    index->Insert(MakeNcvr(i, "N" + std::to_string(i), "S"));
  }
  EXPECT_GT(index->ApproximateMemoryUsage(), before + 1000 * 8);
}

}  // namespace
}  // namespace sketchlink

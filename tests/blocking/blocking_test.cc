#include <gtest/gtest.h>

#include <set>
#include <string>

#include "blocking/lsh_blocker.h"
#include "blocking/presets.h"
#include "blocking/standard_blocker.h"
#include "datagen/generators.h"
#include "datagen/perturb.h"

namespace sketchlink {
namespace {

Record MakeNcvr(RecordId id, std::string given, std::string surname,
                std::string address, std::string town) {
  Record record;
  record.id = id;
  record.entity_id = id;
  record.fields = {std::move(given), std::move(surname), std::move(address),
                   std::move(town)};
  return record;
}

TEST(StandardBlockerTest, NcvrPresetKey) {
  auto blocker = MakeStandardBlocker(datagen::DatasetKind::kNcvr);
  const Record record = MakeNcvr(1, "James", "Johnson", "1 Main St",
                                 "Raleigh");
  // given_name + surname[50%]: JAMES + JOHN (ceil(7*0.5)=4).
  EXPECT_EQ(blocker->Key(record), "JAMES#JOHN");
  EXPECT_EQ(blocker->Keys(record).size(), 1u);
  EXPECT_EQ(blocker->keys_per_record(), 1u);
}

TEST(StandardBlockerTest, LabPresetUsesSixCharPrefixPlusResult) {
  auto blocker = MakeStandardBlocker(datagen::DatasetKind::kLab);
  Record record;
  record.id = 1;
  record.fields = {"CREATININE", "1.0 MG/DL", "2015"};
  EXPECT_EQ(blocker->Key(record), "CREATI#10 MGDL");
}

TEST(StandardBlockerTest, KeyValuesAreUntruncatedBlockingFields) {
  auto ncvr = MakeStandardBlocker(datagen::DatasetKind::kNcvr);
  const Record record = MakeNcvr(1, "James", "Johnson", "1 Main St",
                                 "Raleigh");
  // Key truncates the surname, key values do not.
  EXPECT_EQ(ncvr->Key(record), "JAMES#JOHN");
  EXPECT_EQ(ncvr->KeyValues(record), "JAMES#JOHNSON");
}

TEST(StandardBlockerTest, DblpPresetCombinesAuthorAndVenue) {
  auto blocker = MakeStandardBlocker(datagen::DatasetKind::kDblp);
  Record record;
  record.id = 1;
  record.fields = {"JOHNSON JAMES", "VLDB", "2001"};
  // author[50%]: ceil(13*0.5)=7 chars of "JOHNSON JAMES" -> "JOHNSON".
  EXPECT_EQ(blocker->Key(record), "JOHNSON#VLDB");
}

TEST(StandardBlockerTest, MissingFieldsYieldEmptyComponents) {
  StandardBlocker blocker({KeyPart{0, 0, 1.0}, KeyPart{5, 0, 1.0}});
  Record record;
  record.fields = {"ONLY"};
  EXPECT_EQ(blocker.Key(record), "ONLY#");
}

TEST(StandardBlockerTest, NormalizationAppliesBeforeTruncation) {
  StandardBlocker blocker({KeyPart{0, 0, 0.5}});
  Record record;
  record.fields = {"  o'brien  "};
  // Normalized: O'BRIEN (7 chars) -> first 4.
  EXPECT_EQ(blocker.Key(record), "O'BR");
}

TEST(StandardBlockerTest, IdenticalKeysForExactDuplicates) {
  auto blocker = MakeStandardBlocker(datagen::DatasetKind::kNcvr);
  const Record a = MakeNcvr(1, "MARY", "WILLIAMS", "2 Oak Ave", "DURHAM");
  const Record b = MakeNcvr(2, "MARY", "WILLIAMS", "9 Elm St", "CARY");
  EXPECT_EQ(blocker->Key(a), blocker->Key(b));
}

TEST(MatchFieldsTest, PerKindSelections) {
  EXPECT_EQ(MatchFieldsFor(datagen::DatasetKind::kDblp),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(MatchFieldsFor(datagen::DatasetKind::kNcvr),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(MatchFieldsFor(datagen::DatasetKind::kLab),
            (std::vector<int>{0, 1}));
}

TEST(LshBlockerTest, EmitsOneKeyPerTable) {
  LshParams params;
  params.num_tables = 6;
  auto blocker = MakeLshBlocker(datagen::DatasetKind::kNcvr, params);
  const Record record = MakeNcvr(1, "JAMES", "JOHNSON", "1 MAIN ST",
                                 "RALEIGH");
  const auto keys = blocker->Keys(record);
  ASSERT_EQ(keys.size(), 6u);
  EXPECT_EQ(blocker->keys_per_record(), 6u);
  // Keys carry the table prefix (composite HashTableNo_Key format).
  for (size_t t = 0; t < keys.size(); ++t) {
    EXPECT_EQ(keys[t].rfind("T" + std::to_string(t) + "_", 0), 0u) << keys[t];
  }
}

TEST(LshBlockerTest, DeterministicKeys) {
  auto blocker = MakeLshBlocker(datagen::DatasetKind::kNcvr);
  const Record record = MakeNcvr(1, "JAMES", "JOHNSON", "1 MAIN ST",
                                 "RALEIGH");
  EXPECT_EQ(blocker->Keys(record), blocker->Keys(record));
}

TEST(LshBlockerTest, IdenticalRecordsShareAllKeys) {
  auto blocker = MakeLshBlocker(datagen::DatasetKind::kNcvr);
  const Record a = MakeNcvr(1, "JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH");
  const Record b = MakeNcvr(2, "JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH");
  EXPECT_EQ(blocker->Keys(a), blocker->Keys(b));
}

TEST(LshBlockerTest, PerturbedRecordsShareSomeKey) {
  // The redundancy property that gives LSH blocking its recall: small
  // perturbations keep at least one of the L keys intact with high
  // probability.
  LshParams params;
  params.num_tables = 10;
  params.bits_per_key = 18;
  auto blocker = MakeLshBlocker(datagen::DatasetKind::kNcvr, params);
  datagen::Perturbator perturbator(11, 2);
  int with_shared_key = 0;
  const int trials = 100;
  const Dataset base =
      datagen::GenerateBase(datagen::DatasetKind::kNcvr, trials, 3, 0.6);
  for (int i = 0; i < trials; ++i) {
    const Record& original = base[i];
    const Record copy = perturbator.PerturbRecord(original, 10000 + i);
    const auto keys_a = blocker->Keys(original);
    const auto keys_b = blocker->Keys(copy);
    std::set<std::string> set_a(keys_a.begin(), keys_a.end());
    bool shared = false;
    for (const std::string& key : keys_b) {
      if (set_a.count(key)) {
        shared = true;
        break;
      }
    }
    if (shared) ++with_shared_key;
  }
  EXPECT_GT(with_shared_key, 80) << "LSH recall collapsed";
}

TEST(LshBlockerTest, UnrelatedRecordsRarelyCollide) {
  LshParams params;
  params.num_tables = 8;
  params.bits_per_key = 24;
  auto blocker = MakeLshBlocker(datagen::DatasetKind::kNcvr, params);
  const Record a = MakeNcvr(1, "JAMES", "JOHNSON", "1 MAIN ST", "RALEIGH");
  const Record b = MakeNcvr(2, "OLIVIA", "GUTIERREZ", "99 PINE ST",
                            "ASHEVILLE");
  const auto keys_a = blocker->Keys(a);
  const auto keys_b = blocker->Keys(b);
  int collisions = 0;
  for (size_t t = 0; t < keys_a.size(); ++t) {
    if (keys_a[t] == keys_b[t]) ++collisions;
  }
  EXPECT_LE(collisions, 1);
}

TEST(LshBlockerTest, PositionsAreDistinctAndSorted) {
  LshParams params;
  params.num_tables = 4;
  params.bits_per_key = 30;
  HammingLshBlocker blocker(params, {0, 1});
  for (size_t t = 0; t < params.num_tables; ++t) {
    const auto& positions = blocker.TablePositions(t);
    ASSERT_EQ(positions.size(), params.bits_per_key);
    for (size_t i = 1; i < positions.size(); ++i) {
      EXPECT_LT(positions[i - 1], positions[i]);
      EXPECT_LT(positions[i], params.embedding_bits);
    }
  }
}

}  // namespace
}  // namespace sketchlink

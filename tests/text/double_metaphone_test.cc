#include "text/double_metaphone.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace sketchlink::text {
namespace {

TEST(DoubleMetaphoneTest, PaperExample) {
  // The paper's footnote: 'SMITH' and 'SMYTH' are both encoded as 'SM0'.
  EXPECT_EQ(DoubleMetaphonePrimary("SMITH"), "SM0");
  EXPECT_EQ(DoubleMetaphonePrimary("SMYTH"), "SM0");
  // Secondary acknowledges the Germanic pronunciation.
  EXPECT_EQ(DoubleMetaphone("SMITH").secondary, "XMT");
}

TEST(DoubleMetaphoneTest, CommonSurnames) {
  EXPECT_EQ(DoubleMetaphonePrimary("JOHNSON"), "JNSN");
  EXPECT_EQ(DoubleMetaphonePrimary("WILLIAMS"), "ALMS");
  EXPECT_EQ(DoubleMetaphonePrimary("JONES"), "JNS");
  EXPECT_EQ(DoubleMetaphonePrimary("MILLER"), "MLR");
  EXPECT_EQ(DoubleMetaphonePrimary("GARCIA"), "KRS");
  EXPECT_EQ(DoubleMetaphone("GARCIA").secondary, "KRX");
}

TEST(DoubleMetaphoneTest, SpellingVariantsCollide) {
  EXPECT_EQ(DoubleMetaphonePrimary("KATHERINE"),
            DoubleMetaphonePrimary("CATHERINE"));
  EXPECT_EQ(DoubleMetaphonePrimary("STEVEN") ==
                DoubleMetaphonePrimary("STEPHEN"),
            true);
  EXPECT_EQ(DoubleMetaphonePrimary("PHILIP"),
            DoubleMetaphonePrimary("FILIP"));
}

TEST(DoubleMetaphoneTest, SilentLeadingLetters) {
  EXPECT_EQ(DoubleMetaphonePrimary("KNIGHT")[0], 'N');
  EXPECT_EQ(DoubleMetaphonePrimary("PSYCHOLOGY")[0], 'S');
  EXPECT_EQ(DoubleMetaphonePrimary("WRIGHT")[0], 'R');
  EXPECT_EQ(DoubleMetaphonePrimary("GNOME")[0], 'N');
}

TEST(DoubleMetaphoneTest, InitialXEncodesAsS) {
  EXPECT_EQ(DoubleMetaphonePrimary("XAVIER")[0], 'S');
}

TEST(DoubleMetaphoneTest, VowelsOnlyAtStart) {
  EXPECT_EQ(DoubleMetaphonePrimary("AUBREY")[0], 'A');
  // Interior vowels vanish.
  EXPECT_EQ(DoubleMetaphonePrimary("EEEE"), "A");
}

TEST(DoubleMetaphoneTest, EmptyAndNonAlpha) {
  EXPECT_EQ(DoubleMetaphonePrimary(""), "");
  EXPECT_EQ(DoubleMetaphonePrimary("12345"), "");
  EXPECT_EQ(DoubleMetaphonePrimary("SMITH42"), "SM0");
}

TEST(DoubleMetaphoneTest, CaseInsensitive) {
  EXPECT_EQ(DoubleMetaphonePrimary("smith"), DoubleMetaphonePrimary("SMITH"));
}

TEST(DoubleMetaphoneTest, MaxLengthRespected) {
  const auto codes = DoubleMetaphone("SCHWARZENEGGER", 8);
  EXPECT_LE(codes.primary.size(), 8u);
  const auto short_codes = DoubleMetaphone("SCHWARZENEGGER", 4);
  EXPECT_LE(short_codes.primary.size(), 4u);
}

TEST(DoubleMetaphoneTest, PrimaryEqualsSecondaryForUnambiguousWords) {
  const auto codes = DoubleMetaphone("MILLER");
  EXPECT_EQ(codes.primary, codes.secondary);
}

TEST(DoubleMetaphoneTest, ThRendersTheta) {
  EXPECT_EQ(DoubleMetaphonePrimary("THIN")[0], '0');
  // Germanic contexts keep the T.
  EXPECT_EQ(DoubleMetaphonePrimary("THOMAS")[0], 'T');
}

class MetaphoneStability : public ::testing::TestWithParam<const char*> {};

TEST_P(MetaphoneStability, NonEmptyAndIdempotentInput) {
  const std::string word = GetParam();
  const auto codes = DoubleMetaphone(word);
  EXPECT_FALSE(codes.primary.empty()) << word;
  // Encoding is a pure function.
  EXPECT_EQ(codes.primary, DoubleMetaphone(word).primary);
}

INSTANTIATE_TEST_SUITE_P(
    Names, MetaphoneStability,
    ::testing::Values("SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES",
                      "GARCIA", "RODRIGUEZ", "MARTINEZ", "HERNANDEZ",
                      "LOPEZ", "GONZALEZ", "WILSON", "ANDERSON", "THOMAS",
                      "TAYLOR", "MOORE", "JACKSON", "MARTIN", "LEE",
                      "PEREZ", "THOMPSON", "WHITE", "HARRIS", "SANCHEZ",
                      "CLARK", "RAMIREZ", "LEWIS", "ROBINSON", "WALKER",
                      "YOUNG", "ALLEN", "KING", "WRIGHT", "SCOTT",
                      "TORRES", "NGUYEN", "HILL", "FLORES", "GREEN",
                      "ADAMS", "NELSON", "BAKER", "HALL", "RIVERA",
                      "CAMPBELL", "MITCHELL", "CZERNY", "SCHMIDT",
                      "WICZ", "CAESAR", "CHIANTI", "MICHAEL", "GHISLANE",
                      "HUGH", "LAUGH", "MCLAUGHLIN", "EDGE", "EDGAR",
                      "JOSE", "CABRILLO", "DUMB", "CAMPBELL", "RASPBERRY",
                      "SUGAR", "ISLAND", "SCHOOL", "SCHERMERHORN",
                      "TION", "THAMES", "ZHAO", "BREAUX", "ARNOW",
                      "FILIPOWICZ"));

}  // namespace
}  // namespace sketchlink::text

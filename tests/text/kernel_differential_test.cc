// Differential property harness for the src/simd kernel layer: every kernel
// tier this CPU can run (scalar, SSE4.2, AVX2) must return *bit-identical*
// results to the scalar references in src/text, across randomized corpora of
// ASCII, arbitrary-byte (UTF-8-ish), long, short, empty, and all-equal
// strings. The RNG seed is logged on every run and can be pinned with
// SKETCHLINK_TEST_SEED, so any failure is replayable.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "simd/bit_profile.h"
#include "simd/dispatch.h"
#include "simd/jaro_pattern.h"
#include "simd/kernels.h"
#include "simd/score_batch.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/qgram.h"

namespace sketchlink {
namespace {

/// Per-test pair budgets. Each TEST below iterates exactly its constant, and
/// HarnessMetMillionPairBudget asserts the static sum — ctest launches every
/// case in its own process, so a runtime accumulator cannot see the whole
/// suite. g_pairs still tracks the live count for in-process sanity checks.
constexpr size_t kJaroPairs = 250000;
constexpr size_t kJaroFallbackPairs = 50000;
constexpr size_t kMyersPairs = 200000;
constexpr size_t kBlockedMyersPairs = 20000;
constexpr size_t kBoundedPairs = 100000;
constexpr size_t kDiceIters = 50000;      // x6 q values = 300k pairs
constexpr size_t kPruneBoundPairs = 100000;
constexpr size_t kBatchIters = 3000;      // x3 tiers, >= 1 candidate each

size_t g_pairs = 0;

uint64_t TestSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("SKETCHLINK_TEST_SEED");
    const uint64_t s =
        env != nullptr ? std::strtoull(env, nullptr, 10) : 20260805ULL;
    std::cerr << "[kernel_differential] seed=" << s
              << " (override with SKETCHLINK_TEST_SEED)\n";
    return s;
  }();
  return seed;
}

std::vector<const simd::KernelOps*> AllTiers() {
  std::vector<const simd::KernelOps*> tiers;
  for (int level = 0; level <= 2; ++level) {
    const simd::KernelOps* ops =
        simd::OpsForLevel(static_cast<simd::KernelLevel>(level));
    if (ops != nullptr) tiers.push_back(ops);
  }
  EXPECT_GE(tiers.size(), 1u);
  return tiers;
}

enum class Alphabet {
  kLowercase,      // name-like ASCII
  kBytes,          // arbitrary bytes 0..255 (exercises UTF-8 payloads)
  kTiny,           // {a, b}: maximal duplicate grams / transpositions
  kAllEqual,       // one repeated character
};

std::string RandomString(Rng& rng, size_t len, Alphabet alphabet) {
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    switch (alphabet) {
      case Alphabet::kLowercase:
        s[i] = static_cast<char>('a' + rng.UniformIndex(26));
        break;
      case Alphabet::kBytes:
        s[i] = static_cast<char>(rng.NextUint64() & 0xff);
        break;
      case Alphabet::kTiny:
        s[i] = static_cast<char>('a' + rng.UniformIndex(2));
        break;
      case Alphabet::kAllEqual:
        s[i] = 'z';
        break;
    }
  }
  return s;
}

Alphabet RandomAlphabet(Rng& rng) {
  switch (rng.UniformIndex(8)) {
    case 0:
    case 1:
      return Alphabet::kBytes;
    case 2:
      return Alphabet::kTiny;
    case 3:
      return Alphabet::kAllEqual;
    default:
      return Alphabet::kLowercase;
  }
}

/// A pair biased toward the interesting regimes: empties, equal strings,
/// near-duplicates (the record-linkage case), unrelated strings, and exact
/// word-boundary lengths (63/64/65 hit the single-word Myers and Jaro
/// window-mask edges).
std::pair<std::string, std::string> RandomPair(Rng& rng, size_t max_len) {
  const Alphabet alphabet = RandomAlphabet(rng);
  size_t len_a = rng.UniformIndex(max_len + 1);
  if (rng.UniformIndex(16) == 0) len_a = 63 + rng.UniformIndex(3);
  std::string a = RandomString(rng, len_a, alphabet);
  switch (rng.UniformIndex(8)) {
    case 0:
      return {a, std::string()};
    case 1:
      return {std::string(), a};
    case 2:
      return {a, a};
    case 3:
    case 4: {
      // Perturb a few positions / append — near-duplicates.
      std::string b = a;
      const size_t edits = 1 + rng.UniformIndex(3);
      for (size_t e = 0; e < edits && !b.empty(); ++e) {
        const size_t pos = rng.UniformIndex(b.size());
        switch (rng.UniformIndex(3)) {
          case 0:
            b[pos] = static_cast<char>('a' + rng.UniformIndex(26));
            break;
          case 1:
            b.erase(pos, 1);
            break;
          default:
            b.insert(pos, 1, static_cast<char>('a' + rng.UniformIndex(26)));
            break;
        }
      }
      return {std::move(a), std::move(b)};
    }
    default:
      return {std::move(a),
              RandomString(rng, rng.UniformIndex(max_len + 1), alphabet)};
  }
}

TEST(KernelDifferentialTest, JaroMatchesScalarOnEveryTier) {
  Rng rng(TestSeed() ^ 0x1a401ULL);
  const auto tiers = AllTiers();
  size_t fits = 0;
  for (size_t iter = 0; iter < kJaroPairs; ++iter) {
    auto [a, b] = RandomPair(rng, 64);
    simd::JaroPattern pattern;
    simd::BuildJaroPattern(b, &pattern);
    ++g_pairs;
    if (!pattern.fits) continue;  // covered by JaroWrapperFallsBack
    ++fits;
    const double expected = text::Jaro(a, b);
    for (const simd::KernelOps* ops : tiers) {
      const double got = ops->jaro(a, b, pattern);
      ASSERT_EQ(expected, got)
          << ops->name << " Jaro(\"" << a << "\", \"" << b << "\")";
    }
  }
  // The corpus must actually exercise the bit-parallel path.
  EXPECT_GT(fits, kJaroPairs * 3 / 5);
}

TEST(KernelDifferentialTest, JaroWrapperFallsBackBeyondKernelLimits) {
  Rng rng(TestSeed() ^ 0xfa11bacULL);
  for (size_t iter = 0; iter < kJaroFallbackPairs; ++iter) {
    // Long strings (> 64) and byte alphabets (> 32 distinct) force the
    // text::Jaro fallback inside the wrapper.
    auto [a, b] = RandomPair(rng, 120);
    ++g_pairs;
    ASSERT_EQ(text::Jaro(a, b), simd::Jaro(a, b)) << a << " / " << b;
    ASSERT_EQ(text::JaroWinkler(a, b), simd::JaroWinkler(a, b));
    ASSERT_EQ(text::JaroWinklerDistance(a, b),
              simd::JaroWinklerDistance(a, b));
  }
}

TEST(KernelDifferentialTest, MyersLevenshteinMatchesDpOnEveryTier) {
  Rng rng(TestSeed() ^ 0x1e7ULL);
  const auto tiers = AllTiers();
  for (size_t iter = 0; iter < kMyersPairs; ++iter) {
    auto [a, b] = RandomPair(rng, 80);
    ++g_pairs;
    const size_t expected = text::Levenshtein(a, b);
    for (const simd::KernelOps* ops : tiers) {
      ASSERT_EQ(expected, ops->levenshtein(a, b))
          << ops->name << " lev(\"" << a << "\", \"" << b << "\")";
    }
  }
}

TEST(KernelDifferentialTest, BlockedMyersMatchesDpOnLongStrings) {
  Rng rng(TestSeed() ^ 0xb10cULL);
  const auto tiers = AllTiers();
  for (size_t iter = 0; iter < kBlockedMyersPairs; ++iter) {
    // Both sides > 64 forces the multi-word recurrence (up to 5 blocks).
    const size_t len_a = 65 + rng.UniformIndex(240);
    const size_t len_b = 65 + rng.UniformIndex(240);
    const Alphabet alphabet = RandomAlphabet(rng);
    const std::string a = RandomString(rng, len_a, alphabet);
    std::string b = alphabet == Alphabet::kAllEqual
                        ? RandomString(rng, len_b, alphabet)
                        : a.substr(0, std::min(len_b, a.size()));
    b.resize(len_b, 'q');
    if (rng.CoinFlip()) b = RandomString(rng, len_b, alphabet);
    ++g_pairs;
    const size_t expected = text::Levenshtein(a, b);
    for (const simd::KernelOps* ops : tiers) {
      ASSERT_EQ(expected, ops->levenshtein(a, b)) << ops->name;
    }
  }
}

TEST(KernelDifferentialTest, BoundedLevenshteinHonorsContractOnEveryTier) {
  Rng rng(TestSeed() ^ 0xb0edULL);
  const auto tiers = AllTiers();
  for (size_t iter = 0; iter < kBoundedPairs; ++iter) {
    auto [a, b] = RandomPair(rng, 48);
    const size_t max_distance = rng.UniformIndex(10);
    ++g_pairs;
    const size_t expected = text::BoundedLevenshtein(a, b, max_distance);
    for (const simd::KernelOps* ops : tiers) {
      ASSERT_EQ(expected, ops->levenshtein_bounded(a, b, max_distance))
          << ops->name << " max=" << max_distance;
    }
  }
}

TEST(KernelDifferentialTest, BitProfileDiceAndJaccardMatchQgramOnEveryTier) {
  Rng rng(TestSeed() ^ 0xd1ceULL);
  const auto tiers = AllTiers();
  // q = 1 hits the empty-profile conventions, 2 is the sketch default,
  // 7 is the widest packed gram, 8/9 exercise the wide-string fallback.
  const size_t qs[] = {1, 2, 3, 7, 8, 9};
  for (size_t iter = 0; iter < kDiceIters; ++iter) {
    auto [a, b] = RandomPair(rng, 48);
    for (const size_t q : qs) {
      const simd::BitProfile pa = simd::MakeBitProfile(a, q);
      const simd::BitProfile pb = simd::MakeBitProfile(b, q);
      ++g_pairs;
      // The scalar reference distances, computed with the exact expression
      // shapes of SketchPolicy::ProfileDistance / text::QGramJaccard.
      const double dice = text::QGramDice(a, b, q);
      const double expected_dice_distance =
          (pa.total == 0 && pb.total == 0) ? 0.0
          : (pa.total == 0 || pb.total == 0) ? 1.0
                                             : 1.0 - dice;
      const double expected_jaccard = text::QGramJaccard(a, b, q);
      for (const simd::KernelOps* ops : tiers) {
        ASSERT_EQ(expected_dice_distance, ops->profile_dice_distance(pa, pb))
            << ops->name << " q=" << q << " a=\"" << a << "\" b=\"" << b
            << "\"";
        ASSERT_EQ(expected_jaccard, ops->profile_jaccard(pa, pb))
            << ops->name << " q=" << q << " a=\"" << a << "\" b=\"" << b
            << "\"";
      }
    }
  }
}

TEST(KernelDifferentialTest, PruneBoundsNeverExceedExactDistances) {
  Rng rng(TestSeed() ^ 0x9b0edULL);
  const auto tiers = AllTiers();
  for (size_t iter = 0; iter < kPruneBoundPairs; ++iter) {
    auto [a, b] = RandomPair(rng, 64);
    const simd::BitProfile pa = simd::MakeBitProfile(a, 2);
    const simd::BitProfile pb = simd::MakeBitProfile(b, 2);
    ++g_pairs;
    const uint32_t len_a = static_cast<uint32_t>(a.size());
    const uint32_t len_b = static_cast<uint32_t>(b.size());
    const double jw_exact = text::JaroWinklerDistance(a, b);
    const double lev_exact = a.empty() && b.empty()
                                 ? 0.0
                                 : static_cast<double>(text::Levenshtein(a, b)) /
                                       static_cast<double>(
                                           std::max(a.size(), b.size()));
    for (const simd::KernelOps* ops : tiers) {
      double jw_bound = 0.0;
      double lev_bound = 0.0;
      ops->jw_length_bounds(len_a, &len_b, 1, &jw_bound);
      ops->lev_length_bounds(len_a, &len_b, 1, &lev_bound);
      ASSERT_LE(jw_bound, jw_exact) << ops->name << " " << a << "/" << b;
      ASSERT_LE(lev_bound, lev_exact) << ops->name;
      const double dice_bound = ops->dice_distance_bound(pa, pb);
      const double dice_exact = ops->profile_dice_distance(pa, pb);
      ASSERT_LE(dice_bound, dice_exact) << ops->name;
    }
  }
}

TEST(KernelDifferentialTest, BatchScoreEqualsScalarArgminScan) {
  Rng rng(TestSeed() ^ 0xba7c4ULL);
  // Every dispatch tier must produce the same argmin as a plain scalar scan
  // with the strict `<` update rule of SketchPolicy::ChooseSubBlock.
  for (int level = 0; level <= 2; ++level) {
    const simd::KernelLevel requested = static_cast<simd::KernelLevel>(level);
    if (simd::OpsForLevel(requested) == nullptr) continue;
    ASSERT_EQ(simd::SetActiveLevelForTesting(requested), requested);
    for (size_t iter = 0; iter < kBatchIters; ++iter) {
      const size_t n = 1 + rng.UniformIndex(24);
      std::vector<std::string> reps;
      std::vector<simd::JaroPattern> patterns(n);
      std::vector<simd::BitProfile> profiles(n);
      auto [query, first] = RandomPair(rng, 40);
      reps.push_back(first);
      for (size_t i = 1; i < n; ++i) {
        reps.push_back(RandomPair(rng, 40).second);
      }
      std::vector<simd::BatchCandidate> candidates(n);
      for (size_t i = 0; i < n; ++i) {
        simd::BuildJaroPattern(reps[i], &patterns[i]);
        profiles[i] = simd::MakeBitProfile(reps[i], 2);
        candidates[i] = {reps[i], &patterns[i], &profiles[i]};
      }
      const simd::BitProfile query_profile = simd::MakeBitProfile(query, 2);
      g_pairs += n;

      const simd::BatchQuery jw(simd::BatchMetric::kJaroWinkler, query);
      const simd::BatchQuery dice(simd::BatchMetric::kQGramDice, query,
                                  &query_profile);
      const simd::BatchQuery lev(simd::BatchMetric::kLevenshtein, query);
      for (const simd::BatchQuery* batch : {&jw, &dice, &lev}) {
        size_t best_index = SIZE_MAX;
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < n; ++i) {
          const double d = batch->Distance(candidates[i]);
          if (d < best) {
            best = d;
            best_index = i;
          }
        }
        const simd::BatchResult result =
            batch->Score(candidates.data(), n);
        ASSERT_EQ(best_index, result.best_index)
            << "metric=" << static_cast<int>(batch->metric())
            << " level=" << level << " query=\"" << query << "\"";
        ASSERT_EQ(best, result.best_distance);
        ASSERT_EQ(result.evaluated + result.pruned, n);
      }
    }
  }
  simd::ResetActiveLevelForTesting();
}

TEST(KernelDifferentialTest, HarnessMetMillionPairBudget) {
  // Static sum of the per-test budgets above (every test iterates exactly
  // its constant; the batch test contributes at least one pair per iter per
  // tier). ctest runs each case in its own process, so this is the only
  // process-independent way to state the suite-wide budget.
  constexpr size_t kSuitePairs = kJaroPairs + kJaroFallbackPairs +
                                 kMyersPairs + kBlockedMyersPairs +
                                 kBoundedPairs + kDiceIters * 6 +
                                 kPruneBoundPairs + kBatchIters * 3;
  static_assert(kSuitePairs >= 1000000u,
                "the differential harness is sized to prove >= 1M pairs");
  EXPECT_GE(kSuitePairs, 1000000u);
}

}  // namespace
}  // namespace sketchlink

#include "text/smith_waterman.h"

#include <gtest/gtest.h>

#include "text/jaro.h"

namespace sketchlink::text {
namespace {

TEST(SmithWatermanTest, IdenticalStringsScoreFullMatch) {
  EXPECT_EQ(SmithWaterman("JOHNSON", "JOHNSON"), 14);  // 7 * match(2)
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("JOHNSON", "JOHNSON"), 1.0);
}

TEST(SmithWatermanTest, EmptyInputs) {
  EXPECT_EQ(SmithWaterman("", "ABC"), 0);
  EXPECT_EQ(SmithWaterman("ABC", ""), 0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", "ABC"), 0.0);
}

TEST(SmithWatermanTest, DisjointAlphabetsScoreAtMostOneMismatchChain) {
  EXPECT_EQ(SmithWaterman("AAAA", "BBBB"), 0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("AAAA", "BBBB"), 0.0);
}

TEST(SmithWatermanTest, LocalAlignmentIgnoresFlankingJunk) {
  // The local property: embedded exact substring scores as if alone.
  const double embedded =
      SmithWatermanSimilarity("DR JOHN SMITH MD PHD", "JOHN SMITH");
  EXPECT_DOUBLE_EQ(embedded, 1.0);
  // Jaro-Winkler punishes the same pair heavily.
  EXPECT_LT(JaroWinkler("DR JOHN SMITH MD PHD", "JOHN SMITH"), 0.9);
}

TEST(SmithWatermanTest, SymmetricScore) {
  EXPECT_EQ(SmithWaterman("KITTEN", "SITTING"),
            SmithWaterman("SITTING", "KITTEN"));
}

TEST(SmithWatermanTest, TypoCostsOneAlignmentStep) {
  const int clean = SmithWaterman("JOHNSON", "JOHNSON");
  const int typo = SmithWaterman("JOHNSON", "JOHNSSON");  // insertion
  EXPECT_LT(typo, clean + 1);
  EXPECT_GE(typo, clean - 3);
  EXPECT_GT(SmithWatermanSimilarity("JOHNSON", "JOHNSSON"), 0.8);
}

TEST(SmithWatermanTest, CustomScores) {
  SwScores harsh;
  harsh.match = 1;
  harsh.mismatch = -10;
  harsh.gap = -10;
  // Longest common substring semantics under harsh penalties.
  EXPECT_EQ(SmithWaterman("ABCXXDEF", "ABCYYDEF", harsh), 3);  // "ABC"/"DEF"
}

TEST(SmithWatermanTest, SimilarityBounded) {
  const char* samples[] = {"A", "AB", "JOHN", "JOHNSON", "XQZW", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      const double sim = SmithWatermanSimilarity(a, b);
      EXPECT_GE(sim, 0.0) << a << "/" << b;
      EXPECT_LE(sim, 1.0) << a << "/" << b;
    }
  }
}

}  // namespace
}  // namespace sketchlink::text

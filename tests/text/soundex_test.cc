#include "text/soundex.h"

#include <gtest/gtest.h>

namespace sketchlink::text {
namespace {

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(Soundex("ROBERT"), "R163");
  EXPECT_EQ(Soundex("RUPERT"), "R163");
  EXPECT_EQ(Soundex("ASHCRAFT"), "A261");  // H is transparent
  EXPECT_EQ(Soundex("ASHCROFT"), "A261");
  EXPECT_EQ(Soundex("TYMCZAK"), "T522");
  EXPECT_EQ(Soundex("PFISTER"), "P236");
  EXPECT_EQ(Soundex("HONEYMAN"), "H555");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("robert"), Soundex("ROBERT"));
  EXPECT_EQ(Soundex("RoBeRt"), "R163");
}

TEST(SoundexTest, IgnoresNonAlpha) {
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBRIEN"));
  EXPECT_EQ(Soundex("SMITH-JONES"), Soundex("SMITHJONES"));
}

TEST(SoundexTest, EmptyAndNonAlphaInputs) {
  EXPECT_EQ(Soundex(""), "0000");
  EXPECT_EQ(Soundex("123"), "0000");
}

TEST(SoundexTest, PadsShortCodes) {
  EXPECT_EQ(Soundex("A"), "A000");
  EXPECT_EQ(Soundex("LEE"), "L000");
}

TEST(SoundexTest, SpellingVariantsCollide) {
  EXPECT_EQ(Soundex("SMITH"), Soundex("SMYTH"));
  EXPECT_EQ(Soundex("JOHNSON"), Soundex("JONSON"));
}

}  // namespace
}  // namespace sketchlink::text

#include "text/monge_elkan.h"

#include <gtest/gtest.h>

#include "text/jaro.h"

namespace sketchlink::text {
namespace {

TEST(MongeElkanTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("JAMES JOHNSON", "JAMES JOHNSON"),
                   1.0);
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("", ""), 1.0);
}

TEST(MongeElkanTest, EmptyVsNonEmpty) {
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("", "JAMES"), 0.0);
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("JAMES", ""), 0.0);
}

TEST(MongeElkanTest, TokenReorderingIsForgiven) {
  // The property plain Jaro-Winkler lacks: swapped name order.
  const double me = MongeElkanJaroWinkler("JOHNSON JAMES", "JAMES JOHNSON");
  const double jw = JaroWinkler("JOHNSON JAMES", "JAMES JOHNSON");
  EXPECT_DOUBLE_EQ(me, 1.0);
  EXPECT_LT(jw, 1.0);
}

TEST(MongeElkanTest, PartialTokenOverlap) {
  // One shared token of two: score ~ (1.0 + weak) / 2.
  const double sim = MongeElkanJaroWinkler("JAMES JOHNSON", "JAMES XQZWV");
  EXPECT_GT(sim, 0.5);
  EXPECT_LT(sim, 0.9);
}

TEST(MongeElkanTest, AsymmetryAndSymmetricVariant) {
  const TokenSimilarityFn inner = [](std::string_view a, std::string_view b) {
    return JaroWinkler(a, b);
  };
  // "A" vs "A B": every token of the left has a perfect partner (score 1);
  // the reverse direction averages in the unmatched token.
  const double left = MongeElkan("JAMES", "JAMES JOHNSON", inner);
  const double right = MongeElkan("JAMES JOHNSON", "JAMES", inner);
  EXPECT_DOUBLE_EQ(left, 1.0);
  EXPECT_LT(right, 1.0);
  EXPECT_DOUBLE_EQ(SymmetricMongeElkan("JAMES", "JAMES JOHNSON", inner),
                   1.0);
}

TEST(MongeElkanTest, WhitespaceHandling) {
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("  JAMES   JOHNSON  ",
                                         "JAMES JOHNSON"),
                   1.0);
}

TEST(MongeElkanTest, TypoToleranceThroughInnerSimilarity) {
  const double sim =
      MongeElkanJaroWinkler("JAMES JOHNSON RALEIGH", "JAMES JOHNSN RALEIGH");
  EXPECT_GT(sim, 0.9);
}

TEST(MongeElkanTest, CustomInnerSimilarity) {
  // Exact-match inner: ME degenerates to token-overlap fraction.
  const TokenSimilarityFn exact = [](std::string_view a, std::string_view b) {
    return a == b ? 1.0 : 0.0;
  };
  EXPECT_DOUBLE_EQ(MongeElkan("A B C D", "A C", exact), 0.5);
  EXPECT_DOUBLE_EQ(MongeElkan("A C", "A B C D", exact), 1.0);
}

}  // namespace
}  // namespace sketchlink::text

#include "text/jaro.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace sketchlink::text {
namespace {

TEST(JaroTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(Jaro("MARTHA", "MARTHA"), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("", ""), 1.0);
}

TEST(JaroTest, CompletelyDifferent) {
  EXPECT_DOUBLE_EQ(Jaro("ABC", "XYZ"), 0.0);
}

TEST(JaroTest, EmptyVersusNonEmpty) {
  EXPECT_DOUBLE_EQ(Jaro("", "ABC"), 0.0);
  EXPECT_DOUBLE_EQ(Jaro("ABC", ""), 0.0);
}

TEST(JaroTest, ClassicTextbookValues) {
  // Winkler's canonical examples.
  EXPECT_NEAR(Jaro("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(Jaro("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(Jaro("DWAYNE", "DUANE"), 0.822222, 1e-5);
}

TEST(JaroWinklerTest, ClassicTextbookValues) {
  EXPECT_NEAR(JaroWinkler("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinkler("DIXON", "DICKSONX"), 0.813333, 1e-5);
  EXPECT_NEAR(JaroWinkler("DWAYNE", "DUANE"), 0.840000, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostNeverHurts) {
  Rng rng(55);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    for (size_t i = 0, n = 1 + rng.UniformUint64(10); i < n; ++i) {
      a.push_back(static_cast<char>('a' + rng.UniformUint64(6)));
    }
    for (size_t i = 0, n = 1 + rng.UniformUint64(10); i < n; ++i) {
      b.push_back(static_cast<char>('a' + rng.UniformUint64(6)));
    }
    EXPECT_GE(JaroWinkler(a, b) + 1e-12, Jaro(a, b)) << a << " vs " << b;
  }
}

TEST(JaroWinklerTest, SymmetricOnRandomInputs) {
  Rng rng(57);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    for (size_t i = 0, n = rng.UniformUint64(12); i < n; ++i) {
      a.push_back(static_cast<char>('a' + rng.UniformUint64(5)));
    }
    for (size_t i = 0, n = rng.UniformUint64(12); i < n; ++i) {
      b.push_back(static_cast<char>('a' + rng.UniformUint64(5)));
    }
    EXPECT_NEAR(JaroWinkler(a, b), JaroWinkler(b, a), 1e-12);
  }
}

TEST(JaroWinklerTest, BoundedInUnitInterval) {
  Rng rng(59);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    for (size_t i = 0, n = rng.UniformUint64(15); i < n; ++i) {
      a.push_back(static_cast<char>('a' + rng.UniformUint64(26)));
    }
    for (size_t i = 0, n = rng.UniformUint64(15); i < n; ++i) {
      b.push_back(static_cast<char>('a' + rng.UniformUint64(26)));
    }
    const double sim = JaroWinkler(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

TEST(JaroWinklerDistanceTest, ComplementOfSimilarity) {
  EXPECT_DOUBLE_EQ(JaroWinklerDistance("SAME", "SAME"), 0.0);
  EXPECT_NEAR(JaroWinklerDistance("MARTHA", "MARHTA"), 1.0 - 0.961111, 1e-5);
}

TEST(JaroWinklerTest, TypoStaysAboveMatchThreshold) {
  // The paper's matching threshold is 0.75; small perturbations of realistic
  // names must stay above it or the whole pipeline would find nothing.
  EXPECT_GT(JaroWinkler("JOHNSON", "JOHNSN"), 0.75);
  EXPECT_GT(JaroWinkler("WILLIAMS", "WILIAMS"), 0.75);
  EXPECT_GT(JaroWinkler("RODRIGUEZ", "RODRIGEUZ"), 0.75);
}

}  // namespace
}  // namespace sketchlink::text

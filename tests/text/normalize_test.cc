#include "text/normalize.h"

#include <gtest/gtest.h>

namespace sketchlink::text {
namespace {

TEST(NormalizeTest, UpperAndLower) {
  EXPECT_EQ(ToUpperAscii("Hello World"), "HELLO WORLD");
  EXPECT_EQ(ToLowerAscii("Hello World"), "hello world");
  EXPECT_EQ(ToUpperAscii(""), "");
}

TEST(NormalizeTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(NormalizeFieldTest, UppercasesAndCollapsesWhitespace) {
  EXPECT_EQ(NormalizeField("  john   smith "), "JOHN SMITH");
}

TEST(NormalizeFieldTest, DropsNoiseCharacters) {
  EXPECT_EQ(NormalizeField("O'Brien, Jr."), "O'BRIEN JR");
  EXPECT_EQ(NormalizeField("smith-jones"), "SMITH-JONES");
  EXPECT_EQ(NormalizeField("a\tb"), "A B");
  EXPECT_EQ(NormalizeField("@#$%"), "");
}

TEST(NormalizeFieldTest, KeepsDigits) {
  EXPECT_EQ(NormalizeField("123 Main St."), "123 MAIN ST");
}

TEST(PrefixTest, ClampsToLength) {
  EXPECT_EQ(Prefix("JOHNSON", 3), "JOH");
  EXPECT_EQ(Prefix("AB", 10), "AB");
  EXPECT_EQ(Prefix("", 5), "");
}

TEST(FractionPrefixTest, HalfTakesCeiling) {
  EXPECT_EQ(FractionPrefix("JOHNSON", 0.5), "JOHN");  // ceil(3.5) = 4
  EXPECT_EQ(FractionPrefix("ABCD", 0.5), "AB");
  EXPECT_EQ(FractionPrefix("A", 0.5), "A");  // at least one char
}

TEST(FractionPrefixTest, BoundaryFractions) {
  EXPECT_EQ(FractionPrefix("ABCD", 1.0), "ABCD");
  EXPECT_EQ(FractionPrefix("ABCD", 0.0), "");
  EXPECT_EQ(FractionPrefix("", 0.5), "");
}

}  // namespace
}  // namespace sketchlink::text

// Exhaustive small-alphabet audit of src/text/edit_distance.cc: EVERY pair
// of strings up to length 6 over {a,b} (and up to length 4 over {a,b,c}) is
// checked against naive full-matrix references — Levenshtein, the banded
// BoundedLevenshtein at every max_distance in [0, 8], and the DamerauOsa
// transposition recurrence. The band seal / threshold early-exit / adjacent
// transposition edges are exactly where banded DPs historically break, so
// this closes them by enumeration instead of sampling. The bit-parallel
// Myers kernels ride along: every tier must equal the naive matrix too.

#include "text/edit_distance.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simd/dispatch.h"

namespace sketchlink::text {
namespace {

/// Textbook full-matrix Levenshtein; no rolling rows, no band, no early
/// exit — deliberately too slow and too simple to be wrong.
size_t NaiveLevenshtein(const std::string& a, const std::string& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<std::vector<size_t>> d(n + 1, std::vector<size_t>(m + 1));
  for (size_t i = 0; i <= n; ++i) d[i][0] = i;
  for (size_t j = 0; j <= m; ++j) d[0][j] = j;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] =
          std::min({d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost});
    }
  }
  return d[n][m];
}

/// Textbook full-matrix optimal string alignment (restricted
/// Damerau-Levenshtein).
size_t NaiveOsa(const std::string& a, const std::string& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<std::vector<size_t>> d(n + 1, std::vector<size_t>(m + 1));
  for (size_t i = 0; i <= n; ++i) d[i][0] = i;
  for (size_t j = 0; j <= m; ++j) d[0][j] = j;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] =
          std::min({d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[n][m];
}

/// All strings over the first `alphabet` lowercase letters with length in
/// [0, max_len], in length-then-lexicographic order.
std::vector<std::string> AllStrings(size_t alphabet, size_t max_len) {
  std::vector<std::string> out{""};
  size_t begin = 0;
  for (size_t len = 1; len <= max_len; ++len) {
    const size_t end = out.size();
    for (size_t s = begin; s < end; ++s) {
      for (size_t c = 0; c < alphabet; ++c) {
        out.push_back(out[s] + static_cast<char>('a' + c));
      }
    }
    begin = end;
  }
  return out;
}

std::vector<const simd::KernelOps*> AllTiers() {
  std::vector<const simd::KernelOps*> tiers;
  for (int level = 0; level <= 2; ++level) {
    const simd::KernelOps* ops =
        simd::OpsForLevel(static_cast<simd::KernelLevel>(level));
    if (ops != nullptr) tiers.push_back(ops);
  }
  return tiers;
}

void AuditAllPairs(size_t alphabet, size_t max_len) {
  const std::vector<std::string> strings = AllStrings(alphabet, max_len);
  const auto tiers = AllTiers();
  ASSERT_GE(tiers.size(), 1u);
  size_t pairs = 0;
  for (const std::string& a : strings) {
    for (const std::string& b : strings) {
      ++pairs;
      const size_t lev = NaiveLevenshtein(a, b);
      ASSERT_EQ(lev, Levenshtein(a, b)) << "\"" << a << "\" / \"" << b << "\"";
      ASSERT_EQ(NaiveOsa(a, b), DamerauOsa(a, b))
          << "\"" << a << "\" / \"" << b << "\"";
      for (const simd::KernelOps* ops : tiers) {
        ASSERT_EQ(lev, ops->levenshtein(a, b))
            << ops->name << " \"" << a << "\" / \"" << b << "\"";
      }
      // Contract: exact distance when <= max_distance, max_distance + 1
      // otherwise — for EVERY threshold, including 0 and values far past
      // the true distance.
      for (size_t max_distance = 0; max_distance <= 8; ++max_distance) {
        const size_t expected = lev <= max_distance ? lev : max_distance + 1;
        ASSERT_EQ(expected, BoundedLevenshtein(a, b, max_distance))
            << "\"" << a << "\" / \"" << b << "\" max=" << max_distance;
        for (const simd::KernelOps* ops : tiers) {
          ASSERT_EQ(expected, ops->levenshtein_bounded(a, b, max_distance))
              << ops->name << " \"" << a << "\" / \"" << b
              << "\" max=" << max_distance;
        }
      }
    }
  }
  // 2^0..2^6 sums to 127 strings -> 16129 pairs; the audit must have
  // actually enumerated them.
  ASSERT_EQ(pairs, strings.size() * strings.size());
}

TEST(EditDistanceExhaustiveTest, BinaryAlphabetUpToLengthSix) {
  // {a, b} maximizes repeated characters and adjacent transpositions — the
  // regime where the OSA recurrence and the Myers carry chain are stressed.
  AuditAllPairs(2, 6);
}

TEST(EditDistanceExhaustiveTest, TernaryAlphabetUpToLengthFour) {
  AuditAllPairs(3, 4);
}

TEST(EditDistanceExhaustiveTest, TranspositionEdgeCases) {
  // Hand-picked adjacent-transposition shapes around the d[i-2][j-2] + 1
  // branch: OSA may not reuse a transposed pair ("restricted" property).
  EXPECT_EQ(DamerauOsa("ab", "ba"), 1u);
  EXPECT_EQ(DamerauOsa("abc", "acb"), 1u);
  EXPECT_EQ(DamerauOsa("abcd", "badc"), 2u);
  // The classic OSA-vs-full-Damerau witness: full Damerau gives 2 ("ca" ->
  // "ac" -> "abc"), OSA must give 3 because edits may not cross a
  // transposed pair.
  EXPECT_EQ(DamerauOsa("ca", "abc"), 3u);
  // Same-character "transposition" must not double-count.
  EXPECT_EQ(DamerauOsa("aa", "aa"), 0u);
  EXPECT_EQ(DamerauOsa("aab", "aba"), 1u);
}

}  // namespace
}  // namespace sketchlink::text

#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/random.h"

namespace sketchlink::text {
namespace {

TEST(LevenshteinTest, ClassicCases) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("JONES", "KONES"), 1u);
  EXPECT_EQ(Levenshtein("same", "same"), 0u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(Levenshtein("saturday", "sunday"),
            Levenshtein("sunday", "saturday"));
}

TEST(BoundedLevenshteinTest, AgreesWithExactWithinBound) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedLevenshtein("abc", "abc", 2), 0u);
  EXPECT_EQ(BoundedLevenshtein("abc", "abd", 2), 1u);
}

TEST(BoundedLevenshteinTest, ExceedingBoundReturnsBoundPlusOne) {
  EXPECT_EQ(BoundedLevenshtein("aaaa", "bbbb", 2), 3u);
  EXPECT_EQ(BoundedLevenshtein("abcdefgh", "x", 3), 4u);
}

TEST(BoundedLevenshteinTest, LengthGapShortCircuit) {
  EXPECT_EQ(BoundedLevenshtein("a", "abcdefghij", 3), 4u);
}

TEST(BoundedLevenshteinTest, PropertyMatchesExactOnRandomStrings) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string a;
    std::string b;
    const size_t len_a = rng.UniformUint64(12);
    const size_t len_b = rng.UniformUint64(12);
    for (size_t i = 0; i < len_a; ++i) {
      a.push_back(static_cast<char>('a' + rng.UniformUint64(4)));
    }
    for (size_t i = 0; i < len_b; ++i) {
      b.push_back(static_cast<char>('a' + rng.UniformUint64(4)));
    }
    const size_t exact = Levenshtein(a, b);
    for (size_t bound : {0u, 1u, 2u, 4u, 8u, 16u}) {
      const size_t bounded = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(bounded, bound) << a << " vs " << b << " bound " << bound;
      }
    }
  }
}

TEST(DamerauOsaTest, TranspositionCostsOne) {
  EXPECT_EQ(DamerauOsa("ab", "ba"), 1u);
  EXPECT_EQ(DamerauOsa("JOHN", "JOHN"), 0u);
  EXPECT_EQ(DamerauOsa("JOHN", "JOHNN"), 1u);
  EXPECT_EQ(DamerauOsa("SMITH", "SMTIH"), 1u);  // Levenshtein would say 2
  EXPECT_EQ(Levenshtein("SMITH", "SMTIH"), 2u);
}

TEST(DamerauOsaTest, NeverExceedsLevenshtein) {
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    for (size_t i = 0, n = rng.UniformUint64(10); i < n; ++i) {
      a.push_back(static_cast<char>('a' + rng.UniformUint64(3)));
    }
    for (size_t i = 0, n = rng.UniformUint64(10); i < n; ++i) {
      b.push_back(static_cast<char>('a' + rng.UniformUint64(3)));
    }
    EXPECT_LE(DamerauOsa(a, b), Levenshtein(a, b));
  }
}

TEST(LevenshteinSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abcx"), 0.75, 1e-9);
}

// Triangle inequality is a metric property Levenshtein must satisfy; the
// sub-block ring logic of BlockSketch leans on distances behaving sanely.
class LevenshteinMetricProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LevenshteinMetricProperty, TriangleInequality) {
  auto [seed, alphabet] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  for (int trial = 0; trial < 200; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      for (size_t i = 0, n = rng.UniformUint64(8); i < n; ++i) {
        str.push_back(static_cast<char>(
            'a' + rng.UniformUint64(static_cast<uint64_t>(alphabet))));
      }
    }
    const size_t ab = Levenshtein(s[0], s[1]);
    const size_t bc = Levenshtein(s[1], s[2]);
    const size_t ac = Levenshtein(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, LevenshteinMetricProperty,
                         ::testing::Values(std::make_tuple(1, 2),
                                           std::make_tuple(2, 3),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(4, 26)));

}  // namespace
}  // namespace sketchlink::text

#include "text/qgram.h"

#include <gtest/gtest.h>

namespace sketchlink::text {
namespace {

TEST(QGramTest, PaddedBigramsOfShortString) {
  const auto grams = QGrams("AB", 2, /*pad=*/true);
  // #A, AB, B$
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "#A");
  EXPECT_EQ(grams[1], "AB");
  EXPECT_EQ(grams[2], "B$");
}

TEST(QGramTest, UnpaddedGrams) {
  const auto grams = QGrams("ABCD", 2, /*pad=*/false);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "AB");
  EXPECT_EQ(grams[2], "CD");
}

TEST(QGramTest, EmptyStringPadded) {
  const auto grams = QGrams("", 2, /*pad=*/true);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "#$");
}

TEST(QGramTest, EmptyStringUnpadded) {
  EXPECT_TRUE(QGrams("", 2, /*pad=*/false).empty());
}

TEST(QGramTest, ZeroQYieldsNothing) {
  EXPECT_TRUE(QGrams("abc", 0).empty());
}

TEST(QGramTest, TrigramCount) {
  // padded length = 3-1 + 5 + 3-1 = 9 -> 7 grams
  EXPECT_EQ(QGrams("SMITH", 3, true).size(), 7u);
}

TEST(QGramDiceTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(QGramDice("SMITH", "SMITH"), 1.0);
  EXPECT_DOUBLE_EQ(QGramDice("", ""), 1.0);
}

TEST(QGramDiceTest, DisjointStrings) {
  EXPECT_DOUBLE_EQ(QGramDice("AAAA", "BBBB"), 0.0);
}

TEST(QGramDiceTest, SimilarStringsScoreHigh) {
  EXPECT_GT(QGramDice("JOHNSON", "JOHNSN"), 0.7);
  EXPECT_LT(QGramDice("JOHNSON", "WILLIAMS"), 0.3);
}

TEST(QGramDiceTest, MultisetSemantics) {
  // Repeated grams must not be double counted on one side only.
  const double sim = QGramDice("AAA", "A");
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
}

TEST(QGramJaccardTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(QGramJaccard("SMITH", "SMITH"), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("AAAA", "BBBB"), 0.0);
  const double j = QGramJaccard("JOHNSON", "JOHNSTON");
  EXPECT_GT(j, 0.4);
  EXPECT_LT(j, 1.0);
}

TEST(QGramJaccardTest, NeverExceedsDice) {
  // Jaccard <= Dice for any pair (J = D / (2 - D)).
  const char* pairs[][2] = {{"JOHNSON", "JOHNSTON"},
                            {"SMITH", "SMYTHE"},
                            {"ABC", "ABD"},
                            {"HELLO", "WORLD"}};
  for (const auto& pair : pairs) {
    EXPECT_LE(QGramJaccard(pair[0], pair[1]),
              QGramDice(pair[0], pair[1]) + 1e-12);
  }
}

}  // namespace
}  // namespace sketchlink::text

#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace sketchlink {
namespace {

TEST(StopwatchTest, ElapsedIsMonotone) {
  Stopwatch watch;
  const uint64_t first = watch.ElapsedNanos();
  const uint64_t second = watch.ElapsedNanos();
  EXPECT_GE(second, first);
}

TEST(StopwatchTest, MeasuresSleep) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.ElapsedMillis(), 15u);
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), 10u);
}

TEST(StopwatchTest, UnitConversionsAgree) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const uint64_t nanos = watch.ElapsedNanos();
  EXPECT_NEAR(static_cast<double>(watch.ElapsedMicros()),
              static_cast<double>(nanos) / 1000.0, 2000.0);
  EXPECT_NEAR(watch.ElapsedSeconds(), static_cast<double>(nanos) * 1e-9,
              0.01);
}

}  // namespace
}  // namespace sketchlink

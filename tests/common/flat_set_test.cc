// Tests for the open-addressing id set used as the per-query candidate
// dedupe: set semantics against a reference, O(1) generation-stamp Clear
// that keeps the backing array, and growth behavior.

#include "common/flat_set.h"

#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace sketchlink {
namespace {

TEST(FlatIdSetTest, InsertReportsFirstOccurrence) {
  FlatIdSet set;
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Insert(7));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(42));
  EXPECT_TRUE(set.Contains(7));
  EXPECT_FALSE(set.Contains(1));
}

TEST(FlatIdSetTest, ClearForgetsElementsButKeepsCapacity) {
  FlatIdSet set;
  for (uint64_t i = 0; i < 100; ++i) set.Insert(i);
  const size_t warm_capacity = set.capacity();
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.capacity(), warm_capacity);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(set.Contains(i)) << i;
    EXPECT_TRUE(set.Insert(i)) << i;
  }
  EXPECT_EQ(set.capacity(), warm_capacity);  // warm: no regrow
}

TEST(FlatIdSetTest, MatchesReferenceSetUnderRandomChurn) {
  FlatIdSet set;
  std::unordered_set<uint64_t> reference;
  Rng rng(0xf1a7);
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 300; ++i) {
      // Sequential-ish ids plus a random high-entropy tail: record ids in
      // practice are dense, which is the clustering the mixer must spread.
      const uint64_t id = rng.CoinFlip() ? rng.UniformIndex(500)
                                         : rng.NextUint64();
      const bool inserted = set.Insert(id);
      const bool reference_inserted = reference.insert(id).second;
      ASSERT_EQ(inserted, reference_inserted) << "id " << id;
    }
    ASSERT_EQ(set.size(), reference.size());
    for (const uint64_t id : reference) ASSERT_TRUE(set.Contains(id));
    set.Clear();
    reference.clear();
  }
}

TEST(FlatIdSetTest, GrowthPreservesMembership) {
  FlatIdSet set(/*initial_capacity=*/16);
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 10000; ++i) {
    ids.push_back(i * 2654435761u);
    ASSERT_TRUE(set.Insert(ids.back()));
  }
  EXPECT_GT(set.capacity(), 16u);
  for (const uint64_t id : ids) ASSERT_TRUE(set.Contains(id));
  EXPECT_EQ(set.size(), ids.size());
}

TEST(FlatIdSetTest, ZeroIsAValidElement) {
  // Slot emptiness is tracked by generation stamps, not a sentinel id, so
  // id 0 must behave like any other value.
  FlatIdSet set;
  EXPECT_FALSE(set.Contains(0));
  EXPECT_TRUE(set.Insert(0));
  EXPECT_TRUE(set.Contains(0));
  EXPECT_FALSE(set.Insert(0));
  set.Clear();
  EXPECT_FALSE(set.Contains(0));
}

}  // namespace
}  // namespace sketchlink

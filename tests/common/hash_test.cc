#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace sketchlink {
namespace {

TEST(HashTest, Fnv1aKnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, MurmurDeterministic) {
  EXPECT_EQ(Murmur3_64("hello", 0), Murmur3_64("hello", 0));
  EXPECT_EQ(Murmur3_128("hello", 7), Murmur3_128("hello", 7));
}

TEST(HashTest, MurmurSeedChangesOutput) {
  EXPECT_NE(Murmur3_64("hello", 0), Murmur3_64("hello", 1));
}

TEST(HashTest, MurmurInputChangesOutput) {
  EXPECT_NE(Murmur3_64("hello", 0), Murmur3_64("hellp", 0));
  EXPECT_NE(Murmur3_64("", 0), Murmur3_64("x", 0));
}

TEST(HashTest, MurmurHandlesAllTailLengths) {
  // Exercise every switch-case tail (lengths 0..16 cross one block).
  std::set<uint64_t> hashes;
  std::string input;
  for (int len = 0; len <= 40; ++len) {
    hashes.insert(Murmur3_64(input, 0));
    input.push_back(static_cast<char>('a' + (len % 26)));
  }
  EXPECT_EQ(hashes.size(), 41u);  // all distinct
}

TEST(HashTest, MurmurLowCollisionOnSequentialKeys) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 100000; ++i) {
    hashes.insert(Murmur3_64("key" + std::to_string(i), 0));
  }
  EXPECT_EQ(hashes.size(), 100000u);
}

TEST(DoubleHasherTest, ProbesStayInRange) {
  DoubleHasher hasher("record-linkage", 3);
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_LT(hasher.Probe(i, 1000), 1000u);
  }
}

TEST(DoubleHasherTest, ProbesCoverPowerOfTwoRange) {
  // With odd step, probes over a power-of-two range must hit every slot.
  DoubleHasher hasher("cover", 1);
  std::set<uint64_t> seen;
  for (uint32_t i = 0; i < 64; ++i) {
    seen.insert(hasher.Probe(i, 64));
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(DoubleHasherTest, DifferentKeysDifferentProbes) {
  DoubleHasher a("alpha", 0);
  DoubleHasher b("beta", 0);
  int same = 0;
  for (uint32_t i = 0; i < 16; ++i) {
    if (a.Probe(i, 1 << 20) == b.Probe(i, 1 << 20)) ++same;
  }
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace sketchlink

#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace sketchlink {
namespace {

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(100);
    pool.RunShards(hits.size(), [&](size_t shard) { ++hits[shard]; });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroShardsIsANoop) {
  ThreadPool pool(4);
  pool.RunShards(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunShards(7, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 7u * 50u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeDisjointly) {
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    ThreadPool pool(threads);
    for (size_t n : {size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        ASSERT_LE(begin, end);
        for (size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
    }
  }
}

TEST(ThreadPoolTest, PropagatesShardException) {
  ThreadPool pool(4);
  std::atomic<size_t> completed{0};
  EXPECT_THROW(
      pool.RunShards(16,
                     [&](size_t shard) {
                       if (shard == 5) throw std::runtime_error("boom");
                       ++completed;
                     }),
      std::runtime_error);
  // Every other shard still ran: the pool stays usable after a failure.
  EXPECT_EQ(completed.load(), 15u);
  std::atomic<size_t> after{0};
  pool.RunShards(4, [&](size_t) { ++after; });
  EXPECT_EQ(after.load(), 4u);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace sketchlink

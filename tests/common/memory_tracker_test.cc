#include "common/memory_tracker.h"

#include <gtest/gtest.h>

namespace sketchlink {
namespace {

TEST(MemoryTrackerTest, AddAndSubtract) {
  MemoryTracker tracker;
  EXPECT_EQ(tracker.bytes(), 0u);
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.bytes(), 150u);
  tracker.Subtract(30);
  EXPECT_EQ(tracker.bytes(), 120u);
}

TEST(MemoryTrackerTest, SubtractClampsAtZero) {
  MemoryTracker tracker;
  tracker.Add(10);
  tracker.Subtract(100);
  EXPECT_EQ(tracker.bytes(), 0u);
}

TEST(MemoryTrackerTest, Reset) {
  MemoryTracker tracker;
  tracker.Add(512);
  tracker.Reset();
  EXPECT_EQ(tracker.bytes(), 0u);
}

TEST(MemoryTrackerTest, ShortStringHasNoHeap) {
  std::string sso = "short";
  EXPECT_EQ(StringHeapBytes(sso), 0u);
}

TEST(MemoryTrackerTest, LongStringCountsHeap) {
  std::string heap(100, 'x');
  EXPECT_GE(StringHeapBytes(heap), 101u);
  EXPECT_GE(StringFootprint(heap), sizeof(std::string) + 101);
}

TEST(FormatBytesTest, HumanReadableUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(FormatBytes(uint64_t{5} << 30), "5.00 GB");
}

}  // namespace
}  // namespace sketchlink

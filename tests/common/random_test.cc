#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace sketchlink {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, CoinFlipRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.CoinFlip()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.2)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.2, 0.01);
}

TEST(RngTest, GeometricSkipEdgeCases) {
  Rng rng(17);
  EXPECT_EQ(rng.GeometricSkip(1.0), 0u);
  EXPECT_EQ(rng.GeometricSkip(0.0), UINT64_MAX);
  EXPECT_EQ(rng.GeometricSkip(-0.5), UINT64_MAX);
}

TEST(RngTest, GeometricSkipMeanMatchesTheory) {
  // E[skip] = (1-p)/p.
  const double p = 0.1;
  Rng rng(19);
  double total = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(rng.GeometricSkip(p));
  }
  EXPECT_NEAR(total / trials, (1.0 - p) / p, 0.2);
}

TEST(BernoulliSamplerTest, SamplingRateMatchesP) {
  const double p = 0.01;
  BernoulliSampler sampler(p, 23);
  const uint64_t stream = 1000000;
  uint64_t sampled = 0;
  for (uint64_t i = 0; i < stream; ++i) {
    if (sampler.NextSample()) ++sampled;
  }
  EXPECT_EQ(sampler.seen(), stream);
  EXPECT_EQ(sampler.sampled(), sampled);
  EXPECT_NEAR(static_cast<double>(sampled) / static_cast<double>(stream), p,
              p * 0.2);
}

TEST(BernoulliSamplerTest, ZeroProbabilityNeverSamples) {
  BernoulliSampler sampler(0.0, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(sampler.NextSample());
}

TEST(BernoulliSamplerTest, FullProbabilityAlwaysSamples) {
  BernoulliSampler sampler(1.0, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(sampler.NextSample());
}

TEST(ZipfSamplerTest, StaysInRange) {
  ZipfSampler zipf(100, 1.0, 31);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(ZipfSamplerTest, SkewFavorsSmallRanks) {
  ZipfSampler zipf(1000, 1.0, 37);
  std::map<uint64_t, int> counts;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Next()];
  // Rank 0 should dominate rank 99 by roughly 100x under s = 1.
  const int head = counts[0];
  const int tail = counts[99];
  EXPECT_GT(head, 20 * std::max(tail, 1));
}

TEST(ZipfSamplerTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(10, 0.0, 41);
  std::map<uint64_t, int> counts;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Next()];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.1, 0.02);
  }
}

TEST(ZipfSamplerTest, SingleElementDomain) {
  ZipfSampler zipf(1, 1.5, 43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(), 0u);
}

class ZipfSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewSweep, FrequenciesAreMonotoneInRank) {
  const double skew = GetParam();
  ZipfSampler zipf(50, skew, 47);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Next()];
  // Aggregate into buckets to smooth noise, then demand monotone decrease.
  const int head = counts[0] + counts[1] + counts[2] + counts[3] + counts[4];
  int tail = 0;
  for (int i = 45; i < 50; ++i) tail += counts[i];
  EXPECT_GT(head, tail);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

}  // namespace
}  // namespace sketchlink

#include "common/maintenance_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sketchlink {
namespace {

TEST(MaintenanceQueueTest, RunsJobsInSubmissionOrder) {
  MaintenanceQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Submit([&order, i] { order.push_back(i); });
  }
  queue.Drain();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(MaintenanceQueueTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    MaintenanceQueue queue;
    for (int i = 0; i < 100; ++i) {
      queue.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(MaintenanceQueueTest, IdleQueueNeverStartsAThread) {
  MaintenanceQueue queue;
  EXPECT_EQ(queue.depth(), 0u);
  queue.Drain();  // no worker yet: must not hang
}

TEST(MaintenanceQueueTest, ConcurrentSubmittersAllComplete) {
  MaintenanceQueue queue;
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        queue.Submit([&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  queue.Drain();
  EXPECT_EQ(ran.load(), 800);
}

}  // namespace
}  // namespace sketchlink

#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace sketchlink {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, UINT32_MAX);
  std::string_view input(buf);
  uint32_t value;
  ASSERT_TRUE(GetFixed32(&input, &value));
  EXPECT_EQ(value, 0u);
  ASSERT_TRUE(GetFixed32(&input, &value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(GetFixed32(&input, &value));
  EXPECT_EQ(value, 0xdeadbeef);
  ASSERT_TRUE(GetFixed32(&input, &value));
  EXPECT_EQ(value, UINT32_MAX);
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  const uint64_t values[] = {0, 1, 1ULL << 40, UINT64_MAX};
  for (uint64_t v : values) PutFixed64(&buf, v);
  std::string_view input(buf);
  for (uint64_t expected : values) {
    uint64_t value;
    ASSERT_TRUE(GetFixed64(&input, &value));
    EXPECT_EQ(value, expected);
  }
}

TEST(CodingTest, FixedUnderflowFails) {
  std::string buf = "abc";
  std::string_view input(buf);
  uint32_t v32;
  EXPECT_FALSE(GetFixed32(&input, &v32));
  uint64_t v64;
  std::string_view input2(buf);
  EXPECT_FALSE(GetFixed64(&input2, &v64));
}

TEST(CodingTest, Varint64RoundTripBoundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384};
  for (int shift = 3; shift < 64; shift += 7) {
    values.push_back((1ULL << shift) - 1);
    values.push_back(1ULL << shift);
  }
  values.push_back(UINT64_MAX);

  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  std::string_view input(buf);
  for (uint64_t expected : values) {
    uint64_t value;
    ASSERT_TRUE(GetVarint64(&input, &value));
    EXPECT_EQ(value, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint32RejectsOversizedValue) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  std::string_view input(buf);
  uint32_t value;
  EXPECT_FALSE(GetVarint32(&input, &value));
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.pop_back();
  std::string_view input(buf);
  uint64_t value;
  EXPECT_FALSE(GetVarint64(&input, &value));
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{16384}, uint64_t{1} << 40, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, std::string(1000, 'z'));
  std::string_view input(buf);
  std::string_view value;
  ASSERT_TRUE(GetLengthPrefixed(&input, &value));
  EXPECT_EQ(value, "");
  ASSERT_TRUE(GetLengthPrefixed(&input, &value));
  EXPECT_EQ(value, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&input, &value));
  EXPECT_EQ(value.size(), 1000u);
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.pop_back();
  std::string_view input(buf);
  std::string_view value;
  EXPECT_FALSE(GetLengthPrefixed(&input, &value));
}

TEST(CodingTest, Crc32cKnownVector) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aaU);
  // "123456789" -> 0xe3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283U);
}

TEST(CodingTest, Crc32cExtendMatchesWhole) {
  const std::string data = "summarization algorithms for record linkage";
  const uint32_t whole = Crc32c(data);
  uint32_t split = Crc32c(data.substr(0, 10));
  split = Crc32cExtend(split, data.substr(10));
  EXPECT_EQ(whole, split);
}

TEST(CodingTest, Crc32cDetectsCorruption) {
  std::string data = "payload";
  const uint32_t before = Crc32c(data);
  data[3] ^= 0x01;
  EXPECT_NE(before, Crc32c(data));
}

}  // namespace
}  // namespace sketchlink

#include "common/status.h"

#include <gtest/gtest.h>

namespace sketchlink {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, FactoryCodesMatchPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("key 7").ToString(), "not_found: key 7");
  EXPECT_EQ(Status::Corruption().ToString(), "corruption");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CopyAndMovePreserveContent) {
  Status original = Status::IOError("disk gone");
  Status copy = original;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk gone");
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string(100, 'x'));
  ASSERT_TRUE(result.ok());
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 100u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad"); };
  auto wrapper = [&]() -> Status {
    SKETCHLINK_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsCorruption());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "failed_precondition");
}

}  // namespace
}  // namespace sketchlink

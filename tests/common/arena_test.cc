// Property tests for the bump-pointer arena (DESIGN.md §12): address
// stability across block growth, reuse-after-Reset poisoning (ASan-visible
// when built with it, 0xCD clobber otherwise), and Scope rewind semantics.

#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

#if defined(__SANITIZE_ADDRESS__)
#define SKETCHLINK_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SKETCHLINK_TEST_ASAN 1
#endif
#endif

namespace sketchlink {
namespace {

TEST(ArenaTest, CopyStringRoundTrips) {
  Arena arena;
  const std::string_view copy = arena.CopyString("hello arena");
  EXPECT_EQ(copy, "hello arena");
  EXPECT_TRUE(arena.CopyString("").empty());
  EXPECT_GE(arena.bytes_allocated(), copy.size());
}

TEST(ArenaTest, AllocationsNeverMoveAcrossBlockGrowth) {
  // Small blocks force many chained backing allocations; every previously
  // returned view must keep its address and bytes. This is the contract
  // RecordStore::GetView relies on for zero-copy reads under inserts.
  Arena arena(/*block_bytes=*/512);
  std::vector<std::string> originals;
  std::vector<std::string_view> views;
  Rng rng(20260809);
  for (size_t i = 0; i < 2000; ++i) {
    std::string s(1 + rng.UniformIndex(96), 'a');
    for (auto& c : s) c = static_cast<char>('a' + rng.UniformIndex(26));
    originals.push_back(s);
    views.push_back(arena.CopyString(originals.back()));
  }
  for (size_t i = 0; i < originals.size(); ++i) {
    ASSERT_EQ(views[i], originals[i]) << "view " << i << " moved or corrupted";
  }
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, AlignedAllocationRespectsAlignment) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u}) {
    void* p = arena.Allocate(24, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
  uint64_t* array = arena.AllocateArray<uint64_t>(7);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(array) % alignof(uint64_t), 0u);
  for (size_t i = 0; i < 7; ++i) array[i] = i;  // must be writable
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/512);
  const std::string big(8 * 1024, 'x');
  const std::string_view copy = arena.CopyString(big);
  EXPECT_EQ(copy, big);
  // A small allocation afterwards still works and neither moves the other.
  const std::string_view little = arena.CopyString("little");
  EXPECT_EQ(copy, big);
  EXPECT_EQ(little, "little");
}

TEST(ArenaTest, ResetRecyclesBlocksWithoutNewReservation) {
  Arena arena(/*block_bytes=*/1024);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) arena.CopyString(std::string(100, 'r'));
    arena.Reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
  }
  const size_t reserved_after_warmup = arena.bytes_reserved();
  for (int i = 0; i < 64; ++i) arena.CopyString(std::string(100, 'r'));
  // Steady state: recycled blocks cover the same workload, no growth.
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup);
}

TEST(ArenaTest, ResetPoisonsRecycledBytes) {
  Arena arena;
  const std::string_view stale = arena.CopyString("still reachable?");
  const char* data = stale.data();
  arena.Reset();
#ifdef SKETCHLINK_TEST_ASAN
  // Under ASan the recycled range is poisoned: any read must fault. Death
  // tests fork, so the ASan report aborts the child, not this process.
  EXPECT_DEATH({ volatile char c = data[0]; (void)c; }, "poison");
#else
  // Without ASan the bytes are clobbered with the 0xCD pattern so stale
  // views read recognizable garbage instead of silently working.
  for (size_t i = 0; i < stale.size(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(data[i]), 0xCD) << "byte " << i;
  }
#endif
}

TEST(ArenaTest, ScopeRewindsAllocationAccounting) {
  Arena arena;
  arena.CopyString("outer");
  const size_t outer_allocated = arena.bytes_allocated();
  {
    Arena::Scope scope(&arena);
    arena.CopyString(std::string(512, 's'));
    EXPECT_GT(arena.bytes_allocated(), outer_allocated);
  }
  EXPECT_EQ(arena.bytes_allocated(), outer_allocated);
}

TEST(ArenaTest, ScopeReusesRewoundSpace) {
  Arena arena;
  arena.CopyString("anchor");
  const void* first;
  {
    Arena::Scope scope(&arena);
    first = arena.Allocate(64, 1);
  }
  // The rewound bytes are handed out again: per-query scratch scopes cost
  // no net arena growth.
  void* second = arena.Allocate(64, 1);
  EXPECT_EQ(first, second);
}

TEST(ArenaTest, ScopeRewindPoisonsInnerBytes) {
  Arena arena;
  arena.CopyString("outer");
  const char* inner_data;
  size_t inner_size;
  {
    Arena::Scope scope(&arena);
    const std::string_view inner = arena.CopyString("scope-local bytes");
    inner_data = inner.data();
    inner_size = inner.size();
  }
#ifdef SKETCHLINK_TEST_ASAN
  EXPECT_DEATH({ volatile char c = inner_data[0]; (void)c; }, "poison");
#else
  for (size_t i = 0; i < inner_size; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(inner_data[i]), 0xCD);
  }
#endif
}

TEST(ArenaTest, ScopeOnEmptyArenaRewindsToEmpty) {
  Arena arena;
  {
    Arena::Scope scope(&arena);
    arena.CopyString("created inside the scope");
  }
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Blocks created inside the scope stay reserved for reuse.
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.CopyString("fresh"), "fresh");
}

}  // namespace
}  // namespace sketchlink

// Tests for epoch-based reclamation (common/epoch.h) and the
// epoch-protected hash table built on it (common/epoch_hash_table.h).
//
// These tests share the process-wide EpochManager; each one flushes it
// before making assertions about pending retirees so earlier tests cannot
// bleed through.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/epoch_hash_table.h"

namespace sketchlink {
namespace {

using epoch::EpochManager;
using epoch::ReadGuard;

TEST(EpochManagerTest, RetireRunsAfterFlushWithNoReaders) {
  EpochManager& manager = EpochManager::Global();
  manager.Flush();
  bool freed = false;
  manager.Retire([&freed] { freed = true; });
  EXPECT_FALSE(freed);  // amortized: one retiree does not trigger a pass
  manager.Flush();
  EXPECT_TRUE(freed);
  EXPECT_EQ(manager.pending_retired(), 0u);
}

TEST(EpochManagerTest, ActiveReaderPinsRetiree) {
  EpochManager& manager = EpochManager::Global();
  manager.Flush();

  std::atomic<bool> freed{false};
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    ReadGuard guard;
    reader_in.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_in.load()) std::this_thread::yield();

  // Retired while the reader's critical section is open: must not free yet.
  manager.Retire([&freed] { freed = true; });
  manager.Retire([] {});  // force a reclamation attempt via a second retiree
  EXPECT_FALSE(freed.load());

  release_reader.store(true);
  reader.join();
  manager.Flush();
  EXPECT_TRUE(freed.load());
}

TEST(EpochManagerTest, NestedGuardsCountAsOneCriticalSection) {
  EpochManager& manager = EpochManager::Global();
  manager.Flush();
  {
    ReadGuard outer;
    {
      ReadGuard inner;
    }
    // Still inside the outer guard: the epoch stays published. We cannot
    // Flush here (it would wait on ourselves); just retire.
    manager.Retire([] {});
  }
  manager.Flush();
  EXPECT_EQ(manager.pending_retired(), 0u);
}

TEST(EpochManagerTest, ManyThreadsRetireAndReadConcurrently) {
  EpochManager& manager = EpochManager::Global();
  manager.Flush();
  std::atomic<int> freed{0};
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ReadGuard guard;
        manager.Retire([&freed] { freed.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  manager.Flush();
  EXPECT_EQ(freed.load(), 4 * kPerThread);
}

TEST(EpochHashTableTest, InsertFindErase) {
  EpochHashTable<int> table;
  EXPECT_EQ(table.Find("a"), nullptr);
  table.Insert("a", std::make_shared<int>(1));
  table.Insert("b", std::make_shared<int>(2));
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.Find("a"), nullptr);
  EXPECT_EQ(*table.Find("a"), 1);
  EXPECT_EQ(*table.Find("b"), 2);
  EXPECT_TRUE(table.Erase("a"));
  EXPECT_FALSE(table.Erase("a"));
  EXPECT_EQ(table.Find("a"), nullptr);
  EXPECT_EQ(*table.Find("b"), 2);  // probe chain survives the tombstone
  EXPECT_EQ(table.size(), 1u);
  epoch::EpochManager::Global().Flush();
}

TEST(EpochHashTableTest, GrowsPastInitialCapacityAndShedsTombstones) {
  EpochHashTable<int> table(/*initial_capacity=*/16);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    table.Insert(key, std::make_shared<int>(i));
    if (i % 2 == 0) table.Erase(key);  // churn: tombstones must not leak
  }
  EXPECT_EQ(table.size(), 250u);
  for (int i = 0; i < 500; ++i) {
    auto found = table.Find("key" + std::to_string(i));
    if (i % 2 == 0) {
      EXPECT_EQ(found, nullptr) << i;
    } else {
      ASSERT_NE(found, nullptr) << i;
      EXPECT_EQ(*found, i);
    }
  }
  size_t visited = 0;
  table.ForEach([&](const std::string& key, const std::shared_ptr<int>& v) {
    EXPECT_EQ(key, "key" + std::to_string(*v));
    ++visited;
  });
  EXPECT_EQ(visited, 250u);
  epoch::EpochManager::Global().Flush();
}

TEST(EpochHashTableTest, ErasedValueSurvivesThroughSharedPtr) {
  EpochHashTable<std::string> table;
  table.Insert("k", std::make_shared<std::string>("payload"));
  std::shared_ptr<std::string> held;
  {
    ReadGuard guard;
    held = table.Find("k");
  }
  table.Erase("k");
  epoch::EpochManager::Global().Flush();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "payload");  // the snapshot outlives the erase
}

// One writer mutates while reader threads continuously probe under guards.
// Run under TSan this is the core data-race check for the table; the
// assertions themselves check that readers only ever see fully published
// values.
TEST(EpochHashTableTest, ConcurrentReadersSeeConsistentEntries) {
  EpochHashTable<int> table;
  std::atomic<bool> stop{false};
  constexpr int kKeys = 64;

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kKeys; ++i) {
          ReadGuard guard;
          auto found = table.Find("key" + std::to_string(i));
          if (found != nullptr) {
            // Values are immutable after publish: always the key's index.
            ASSERT_EQ(*found, i);
          }
        }
      }
    });
  }

  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      table.Insert("key" + std::to_string(i), std::make_shared<int>(i));
    }
    for (int i = 0; i < kKeys; ++i) {
      table.Erase("key" + std::to_string(i));
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  epoch::EpochManager::Global().Flush();
}

}  // namespace
}  // namespace sketchlink

// Property tests for the slab pool: node reuse, live accounting, destructor
// discipline, and the always-on double-free / foreign-pointer detection
// (deterministic aborts, not an ASan-only behavior).

#include "common/pool.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sketchlink {
namespace {

struct Tracked {
  explicit Tracked(int* counter) : counter(counter) { ++*counter; }
  ~Tracked() { --*counter; }
  int* counter;
  char padding[24] = {};
};

TEST(PoolTest, NewRunsConstructorAndFreeRunsDestructor) {
  Pool<Tracked> pool;
  int live_objects = 0;
  Tracked* t = pool.New(&live_objects);
  EXPECT_EQ(live_objects, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.Free(t);
  EXPECT_EQ(live_objects, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolTest, FreedNodeIsReusedBeforeNewSlab) {
  Pool<std::string> pool;
  std::string* a = pool.New("first");
  pool.Free(a);
  std::string* b = pool.New("second");
  // LIFO free list: the node just freed is the next one handed out.
  EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_EQ(*b, "second");
  pool.Free(b);
}

TEST(PoolTest, CapacityGrowsBySlabs) {
  Pool<int> pool(/*nodes_per_slab=*/8);
  EXPECT_EQ(pool.capacity(), 0u);
  std::vector<int*> nodes;
  for (int i = 0; i < 9; ++i) nodes.push_back(pool.New(i));
  // Nine live nodes forced a second slab of eight.
  EXPECT_EQ(pool.capacity(), 16u);
  EXPECT_EQ(pool.live(), 9u);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(*nodes[i], static_cast<int>(i));
    pool.Free(nodes[i]);
  }
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolTest, ChurnReachesSteadyStateCapacity) {
  Pool<int> pool(/*nodes_per_slab=*/16);
  for (int round = 0; round < 50; ++round) {
    std::vector<int*> nodes;
    for (int i = 0; i < 12; ++i) nodes.push_back(pool.New(i));
    for (int* n : nodes) pool.Free(n);
  }
  // Churn below one slab's worth of nodes never allocates a second slab.
  EXPECT_EQ(pool.capacity(), 16u);
}

using PoolDeathTest = ::testing::Test;

TEST(PoolDeathTest, DoubleFreeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Pool<int> pool;
  int* p = pool.New(7);
  pool.Free(p);
  EXPECT_DEATH(pool.Free(p), "double-free");
}

TEST(PoolDeathTest, ForeignPointerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Pool<int> pool;
  // Something that never came from this pool: its hidden state word cannot
  // hold the live tag (aligned storage with a zeroed header word ahead of
  // the payload position).
  alignas(16) unsigned char fake[64] = {};
  EXPECT_DEATH(pool.Free(reinterpret_cast<int*>(fake + 32)),
               "double-free|foreign pointer");
}

}  // namespace
}  // namespace sketchlink

// Property tests for the string interner: dense 1-based ids, id stability
// (a published id never remaps), lock-free readers against a live writer.
// The concurrent cases are the TSan targets — the tier-1 TSan preset runs
// them with the race detector on.

#include "common/interner.h"

#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

namespace sketchlink {
namespace {

TEST(StringInternerTest, IdsAreDenseAndStable) {
  StringInterner interner;
  EXPECT_EQ(interner.size(), 0u);
  const StringInterner::Id a = interner.Intern("alpha");
  const StringInterner::Id b = interner.Intern("beta");
  EXPECT_EQ(a, 1u);  // 1-based, interning order
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(interner.Intern("alpha"), a);  // idempotent
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.View(a), "alpha");
  EXPECT_EQ(interner.View(b), "beta");
}

TEST(StringInternerTest, FindNeverInternsAndMissesAreInvalid) {
  StringInterner interner;
  EXPECT_EQ(interner.Find("ghost"), StringInterner::kInvalidId);
  EXPECT_EQ(interner.size(), 0u);
  const StringInterner::Id id = interner.Intern("real");
  EXPECT_EQ(interner.Find("real"), id);
  EXPECT_EQ(interner.Find("ghost"), StringInterner::kInvalidId);
}

TEST(StringInternerTest, ViewsStayValidAcrossTableGrowth) {
  StringInterner interner;
  // Force multiple COW table growths and several directory chunks, then
  // check every early view/id still resolves — ids are never remapped and
  // arena-backed bytes never move.
  std::vector<std::string> strings;
  std::vector<StringInterner::Id> ids;
  std::vector<std::string_view> views;
  for (int i = 0; i < 10000; ++i) {
    strings.push_back("key-" + std::to_string(i));
    ids.push_back(interner.Intern(strings.back()));
    if (i < 100) views.push_back(interner.View(ids.back()));
  }
  EXPECT_EQ(interner.size(), 10000u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(views[static_cast<size_t>(i)], strings[static_cast<size_t>(i)]);
    ASSERT_EQ(interner.Find(strings[static_cast<size_t>(i)]),
              ids[static_cast<size_t>(i)]);
  }
}

TEST(StringInternerTest, EmptyStringIsInternable) {
  StringInterner interner;
  const StringInterner::Id id = interner.Intern("");
  EXPECT_NE(id, StringInterner::kInvalidId);
  EXPECT_EQ(interner.Intern(""), id);
  EXPECT_EQ(interner.Find(""), id);
  EXPECT_TRUE(interner.View(id).empty());
}

TEST(StringInternerTest, ConcurrentInternersAgreeOnIds) {
  // Several writers intern overlapping key sets while readers probe. Every
  // thread records the id it observed per string; at the end all observers
  // must agree and the table must round-trip — the "id stability under
  // concurrent interning" property.
  StringInterner interner;
  constexpr int kThreads = 4;
  constexpr int kKeys = 400;
  std::vector<std::unordered_map<std::string, StringInterner::Id>> seen(
      kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &interner, &seen] {
      // Each thread walks the shared key space from a different offset so
      // writers collide on the same strings in different orders.
      for (int i = 0; i < kKeys; ++i) {
        const int k = (i + t * 101) % kKeys;
        const std::string key = "shared-" + std::to_string(k);
        const StringInterner::Id id = interner.Intern(key);
        ASSERT_NE(id, StringInterner::kInvalidId);
        ASSERT_EQ(interner.View(id), key);
        seen[static_cast<size_t>(t)][key] = id;
        // Reader-side probe of a key another thread likely owns.
        const std::string other = "shared-" + std::to_string((k + 7) % kKeys);
        const StringInterner::Id found = interner.Find(other);
        if (found != StringInterner::kInvalidId) {
          ASSERT_EQ(interner.View(found), other);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(interner.size(), static_cast<size_t>(kKeys));
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(seen[static_cast<size_t>(t)].size(), seen[0].size());
    for (const auto& [key, id] : seen[0]) {
      ASSERT_EQ(seen[static_cast<size_t>(t)].at(key), id)
          << "threads disagree on id of " << key;
    }
  }
}

TEST(StringInternerTest, ConcurrentReadersUnderLiveWriter) {
  StringInterner interner;
  std::atomic<bool> stop{false};
  std::atomic<uint32_t> published{0};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      interner.Intern("stream-" + std::to_string(i));
      published.store(static_cast<uint32_t>(i + 1),
                      std::memory_order_release);
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t probes = 0;
      while (!stop.load(std::memory_order_acquire) || probes < 1000) {
        const uint32_t limit = published.load(std::memory_order_acquire);
        if (limit == 0) continue;
        const uint32_t i = static_cast<uint32_t>(probes % limit);
        const std::string key = "stream-" + std::to_string(i);
        // Find may race with the insert of *later* keys, but any id it
        // returns must already be fully published.
        const StringInterner::Id id = interner.Find(key);
        if (id != StringInterner::kInvalidId) {
          ASSERT_EQ(interner.View(id), key);
        }
        ++probes;
        if (probes >= 2000000) break;  // paranoia bound
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(interner.size(), 20000u);
}

}  // namespace
}  // namespace sketchlink

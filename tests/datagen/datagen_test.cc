#include <gtest/gtest.h>

#include <set>
#include <string>

#include "datagen/generators.h"
#include "datagen/name_pools.h"
#include "datagen/perturb.h"
#include "text/edit_distance.h"

namespace sketchlink::datagen {
namespace {

TEST(NamePoolsTest, PoolsAreNonEmptyAndUppercase) {
  for (const Pool& pool :
       {Surnames(), GivenNames(), Towns(), Streets(), Venues(), TitleWords(),
        Assays(), AssayResults()}) {
    ASSERT_GT(pool.size, 10u);
    for (size_t i = 0; i < pool.size; ++i) {
      for (char c : pool.values[i]) {
        EXPECT_FALSE(c >= 'a' && c <= 'z')
            << "lowercase in pool value " << pool.values[i];
      }
    }
  }
}

TEST(NamePoolsTest, SurnamesAreDistinct) {
  const Pool pool = Surnames();
  std::set<std::string_view> seen(pool.values, pool.values + pool.size);
  EXPECT_EQ(seen.size(), pool.size);
}

TEST(PerturbatorTest, OpsChangeStringBoundedly) {
  Perturbator perturbator(1, /*max_ops=*/1, /*min_ops=*/1);
  for (int i = 0; i < 200; ++i) {
    std::string value = "JOHNSON";
    perturbator.ApplyRandomOp(&value);
    // One op moves edit distance by at most 1 (substitute/delete/insert) or
    // is a transposition (OSA distance 1).
    EXPECT_LE(text::DamerauOsa("JOHNSON", value), 1u) << value;
  }
}

TEST(PerturbatorTest, PerturbRecordKeepsEntityChangesId) {
  Record base;
  base.id = 5;
  base.entity_id = 5;
  base.fields = {"JAMES", "JOHNSON", "100 MAIN ST", "RALEIGH"};
  Perturbator perturbator(2);
  const Record copy = perturbator.PerturbRecord(base, 999);
  EXPECT_EQ(copy.id, 999u);
  EXPECT_EQ(copy.entity_id, 5u);
  EXPECT_EQ(copy.fields.size(), base.fields.size());
}

TEST(PerturbatorTest, MaxOpsBoundsTotalDamage) {
  Record base;
  base.id = 1;
  base.entity_id = 1;
  base.fields = {"ABCDEFGHIJ"};
  Perturbator perturbator(3, /*max_ops=*/4, /*min_ops=*/1);
  for (int i = 0; i < 200; ++i) {
    const Record copy = perturbator.PerturbRecord(base, 2);
    // Each op is 1 Levenshtein edit except transpose (2), so 4 ops move the
    // string by at most 8. (Restricted-OSA distance can overcount op
    // sequences, so it is not a valid bound here.)
    EXPECT_LE(text::Levenshtein(base.fields[0], copy.fields[0]), 8u)
        << copy.fields[0];
  }
}

TEST(PerturbatorTest, EmptyFieldSurvives) {
  Perturbator perturbator(5);
  std::string empty;
  for (int i = 0; i < 50; ++i) perturbator.ApplyRandomOp(&empty);
  // Deletes/substitutes/transposes on empty strings are no-ops; inserts may
  // grow it. Just verify no crash and sane size.
  EXPECT_LE(empty.size(), 50u);
}

TEST(PerturbatorTest, DeterministicForSeed) {
  Record base;
  base.id = 1;
  base.entity_id = 1;
  base.fields = {"JOHNSON", "RALEIGH"};
  Perturbator a(123);
  Perturbator b(123);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.PerturbRecord(base, 10 + i).fields,
              b.PerturbRecord(base, 10 + i).fields);
  }
}

TEST(GeneratorsTest, KindNamesAndSchemas) {
  EXPECT_EQ(DatasetKindName(DatasetKind::kDblp), "DBLP");
  EXPECT_EQ(DatasetKindName(DatasetKind::kNcvr), "NCVR");
  EXPECT_EQ(DatasetKindName(DatasetKind::kLab), "LAB");
  EXPECT_EQ(SchemaFor(DatasetKind::kDblp).num_fields(), 3u);
  EXPECT_EQ(SchemaFor(DatasetKind::kNcvr).num_fields(), 4u);
  EXPECT_EQ(SchemaFor(DatasetKind::kLab).num_fields(), 3u);
}

class GenerateBaseAllKinds : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GenerateBaseAllKinds, ProducesWellFormedRecords) {
  const Dataset dataset = GenerateBase(GetParam(), 500, 42, 0.8);
  ASSERT_EQ(dataset.size(), 500u);
  const size_t expected_fields = SchemaFor(GetParam()).num_fields();
  std::set<uint64_t> entities;
  for (const Record& record : dataset.records()) {
    EXPECT_EQ(record.fields.size(), expected_fields);
    EXPECT_GT(record.id, 0u);
    EXPECT_EQ(record.id, record.entity_id);  // base records are entities
    EXPECT_FALSE(record.fields[0].empty());
    entities.insert(record.entity_id);
  }
  EXPECT_EQ(entities.size(), 500u);
}

TEST_P(GenerateBaseAllKinds, DeterministicForSeed) {
  const Dataset a = GenerateBase(GetParam(), 100, 7, 0.8);
  const Dataset b = GenerateBase(GetParam(), 100, 7, 0.8);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fields, b[i].fields);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, GenerateBaseAllKinds,
                         ::testing::Values(DatasetKind::kDblp,
                                           DatasetKind::kNcvr,
                                           DatasetKind::kLab));

TEST(GeneratorsTest, WorkloadSizesFollowSpec) {
  WorkloadSpec spec;
  spec.kind = DatasetKind::kNcvr;
  spec.num_entities = 50;
  spec.copies_per_entity = 10;
  const Workload workload = MakeWorkload(spec);
  EXPECT_EQ(workload.q.size(), 50u);
  EXPECT_EQ(workload.a.size(), 500u);
  // Every A record maps back to a Q entity; ids are disjoint from Q's.
  for (const Record& record : workload.a.records()) {
    EXPECT_GE(record.entity_id, 1u);
    EXPECT_LE(record.entity_id, 50u);
    EXPECT_GT(record.id, 50u);
  }
}

TEST(GeneratorsTest, WorkloadPerturbationIsBounded) {
  WorkloadSpec spec;
  spec.kind = DatasetKind::kNcvr;
  spec.num_entities = 20;
  spec.copies_per_entity = 5;
  spec.max_perturb_ops = 4;
  const Workload workload = MakeWorkload(spec);
  for (const Record& copy : workload.a.records()) {
    const Record& base = workload.q[copy.entity_id - 1];
    size_t total_damage = 0;
    for (size_t f = 0; f < base.fields.size(); ++f) {
      total_damage += text::Levenshtein(base.fields[f], copy.fields[f]);
    }
    // <= 4 ops, each at most 2 Levenshtein edits (transpose).
    EXPECT_LE(total_damage, 8u);
  }
}

TEST(GeneratorsTest, ZipfSkewConcentratesKeys) {
  const Dataset skewed = GenerateBase(DatasetKind::kNcvr, 2000, 9, 1.0);
  std::set<std::string> surnames;
  for (const Record& record : skewed.records()) {
    surnames.insert(record.fields[1]);
  }
  // With strong skew, far fewer distinct surnames than records.
  EXPECT_LT(surnames.size(), 400u);
}

TEST(GeneratorsTest, StreamDrawsFromBaseEntities) {
  const Dataset base = GenerateBase(DatasetKind::kLab, 30, 3, 0.5);
  const Dataset stream = MakeStream(base, 200, 4, 99);
  ASSERT_EQ(stream.size(), 200u);
  for (const Record& record : stream.records()) {
    EXPECT_GE(record.entity_id, 1u);
    EXPECT_LE(record.entity_id, 30u);
    EXPECT_GE(record.id, 1'000'000'000ULL);
  }
}

TEST(GeneratorsTest, StreamFromEmptyBaseIsEmpty) {
  Dataset empty(SchemaFor(DatasetKind::kLab));
  EXPECT_TRUE(MakeStream(empty, 100, 4, 1).empty());
}

}  // namespace
}  // namespace sketchlink::datagen

#include "skiplist/skip_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"

namespace sketchlink {
namespace {

using StringList = SkipList<std::string, int>;

TEST(SkipListTest, EmptyList) {
  StringList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Find("x"), nullptr);
  EXPECT_EQ(list.First(), nullptr);
  EXPECT_EQ(list.FindLessOrEqual("x"), nullptr);
  EXPECT_FALSE(list.NewIterator().Valid());
}

TEST(SkipListTest, InsertAndFind) {
  StringList list;
  list.InsertOrAssign("b", 2);
  list.InsertOrAssign("a", 1);
  list.InsertOrAssign("c", 3);
  EXPECT_EQ(list.size(), 3u);
  ASSERT_NE(list.Find("a"), nullptr);
  EXPECT_EQ(list.Find("a")->value, 1);
  EXPECT_EQ(list.Find("b")->value, 2);
  EXPECT_EQ(list.Find("c")->value, 3);
  EXPECT_EQ(list.Find("d"), nullptr);
}

TEST(SkipListTest, InsertOrAssignOverwrites) {
  StringList list;
  list.InsertOrAssign("k", 1);
  list.InsertOrAssign("k", 2);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.Find("k")->value, 2);
}

TEST(SkipListTest, IterationIsSorted) {
  StringList list(7);
  const std::vector<std::string> keys = {"delta", "alpha", "echo", "bravo",
                                         "charlie"};
  for (size_t i = 0; i < keys.size(); ++i) {
    list.InsertOrAssign(keys[i], static_cast<int>(i));
  }
  std::vector<std::string> seen;
  for (auto it = list.NewIterator(); it.Valid(); it.Next()) {
    seen.push_back(it.key());
  }
  std::vector<std::string> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected);
}

TEST(SkipListTest, FindLessOrEqualSemantics) {
  StringList list;
  for (const char* key : {"b", "d", "f"}) list.InsertOrAssign(key, 0);
  EXPECT_EQ(list.FindLessOrEqual("a"), nullptr);  // before first
  ASSERT_NE(list.FindLessOrEqual("b"), nullptr);
  EXPECT_EQ(list.FindLessOrEqual("b")->key, "b");  // exact
  EXPECT_EQ(list.FindLessOrEqual("c")->key, "b");  // between
  EXPECT_EQ(list.FindLessOrEqual("e")->key, "d");
  EXPECT_EQ(list.FindLessOrEqual("z")->key, "f");  // after last
}

TEST(SkipListTest, IteratorSeek) {
  StringList list;
  for (const char* key : {"apple", "banana", "cherry"}) {
    list.InsertOrAssign(key, 0);
  }
  auto it = list.NewIterator();
  it.Seek("b");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "banana");
  it.Seek("cherry");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "cherry");
  it.Seek("zzz");
  EXPECT_FALSE(it.Valid());
  it.SeekToFirst();
  EXPECT_EQ(it.key(), "apple");
}

TEST(SkipListTest, ClearEmptiesAndReuses) {
  StringList list;
  for (int i = 0; i < 100; ++i) list.InsertOrAssign(std::to_string(i), i);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.Find("5"), nullptr);
  list.InsertOrAssign("again", 1);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_NE(list.Find("again"), nullptr);
}

TEST(SkipListTest, RandomizedAgainstStdMap) {
  SkipList<std::string, uint64_t> list(13);
  std::map<std::string, uint64_t> reference;
  Rng rng(13);
  for (int op = 0; op < 20000; ++op) {
    const std::string key = "k" + std::to_string(rng.UniformUint64(3000));
    const uint64_t value = rng.NextUint64();
    list.InsertOrAssign(key, value);
    reference[key] = value;
  }
  EXPECT_EQ(list.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto* node = list.Find(key);
    ASSERT_NE(node, nullptr) << key;
    EXPECT_EQ(node->value, value);
  }
  // Ordered iteration must agree with std::map exactly.
  auto it = list.NewIterator();
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), key);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, RandomizedFindLessOrEqualAgainstStdMap) {
  SkipList<std::string, int> list(17);
  std::map<std::string, int> reference;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.UniformUint64(5000));
    list.InsertOrAssign(key, 0);
    reference[key] = 0;
  }
  for (int probe = 0; probe < 5000; ++probe) {
    const std::string key = "k" + std::to_string(rng.UniformUint64(6000));
    auto* node = list.FindLessOrEqual(key);
    auto it = reference.upper_bound(key);
    if (it == reference.begin()) {
      EXPECT_EQ(node, nullptr) << key;
    } else {
      --it;
      ASSERT_NE(node, nullptr) << key;
      EXPECT_EQ(node->key, it->first) << key;
    }
  }
}

TEST(SkipListTest, HeightGrowsLogarithmically) {
  StringList list(23);
  for (int i = 0; i < 10000; ++i) list.InsertOrAssign(std::to_string(i), i);
  // With p = 1/2, expected height ~ log2(10000) ~ 13.3; allow generous slack.
  EXPECT_GE(list.height(), 8);
  EXPECT_LE(list.height(), 20);
}

TEST(SkipListTest, IntegerKeysWork) {
  SkipList<int, std::string> list;
  list.InsertOrAssign(5, "five");
  list.InsertOrAssign(1, "one");
  list.InsertOrAssign(9, "nine");
  EXPECT_EQ(list.FindLessOrEqual(7)->value, "five");
  EXPECT_EQ(list.FindLessOrEqual(9)->value, "nine");
  EXPECT_EQ(list.FindLessOrEqual(0), nullptr);
}

TEST(SkipListTest, MemoryGrowsWithNodes) {
  StringList list;
  const size_t empty_bytes = list.ApproximateNodeMemory();
  for (int i = 0; i < 1000; ++i) list.InsertOrAssign(std::to_string(i), i);
  EXPECT_GT(list.ApproximateNodeMemory(), empty_bytes + 1000 * sizeof(void*));
}

}  // namespace
}  // namespace sketchlink

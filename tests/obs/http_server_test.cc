#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/spans.h"

namespace sketchlink::obs {
namespace {

/// Sends `raw` bytes to the server and returns everything it answers.
/// Bypasses HttpGet so malformed requests can be exercised.
std::string RawRequest(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>(HttpServer::Options());  // port 0
    server_->AddHandler("/hello", [](const HttpRequest& request) {
      HttpResponse response;
      response.body = "hello " + request.query + "\n";
      return response;
    });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, GoldenResponse) {
  const std::string response =
      RawRequest(server_->port(), "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; charset=utf-8\r\n"
            "Content-Length: 7\r\n"
            "Connection: close\r\n"
            "\r\n"
            "hello \n");
}

TEST_F(HttpServerTest, QueryStringIsSplitOffThePath) {
  std::string body;
  ASSERT_TRUE(
      HttpGet("127.0.0.1", server_->port(), "/hello?a=1", &body).ok());
  EXPECT_EQ(body, "hello a=1\n");
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  std::string body;
  int code = 0;
  EXPECT_FALSE(
      HttpGet("127.0.0.1", server_->port(), "/nope", &body, &code).ok());
  EXPECT_EQ(code, 404);
}

TEST_F(HttpServerTest, NonGetIs405) {
  const std::string response = RawRequest(
      server_->port(), "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 405 ", 0), 0u) << response;
}

TEST_F(HttpServerTest, MalformedRequestsGet400) {
  EXPECT_EQ(RawRequest(server_->port(), "definitely not http\r\n\r\n")
                .rfind("HTTP/1.1 400 ", 0),
            0u);
  EXPECT_EQ(RawRequest(server_->port(), "GET\r\n\r\n").rfind("HTTP/1.1 400 ", 0),
            0u);
  EXPECT_EQ(RawRequest(server_->port(), "GET hello HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 400 ", 0),
            0u);  // target must start with '/'
  EXPECT_EQ(RawRequest(server_->port(), "GET /hello SPDY/3\r\n\r\n")
                .rfind("HTTP/1.1 400 ", 0),
            0u);
}

TEST_F(HttpServerTest, ServesAfterAMalformedRequest) {
  RawRequest(server_->port(), "garbage\r\n\r\n");
  std::string body;
  EXPECT_TRUE(HttpGet("127.0.0.1", server_->port(), "/hello", &body).ok());
}

// Regression: a client that connects and then stalls mid-request used to
// wedge the serial accept loop forever (blocking recv with no deadline),
// taking every telemetry endpoint down with it. With the per-connection IO
// timeout the stalled request is answered 408 and the server moves on.
TEST(HttpServerStandaloneTest, StalledClientCannotWedgeTheServer) {
  HttpServer::Options options;
  options.io_timeout_ms = 300;
  HttpServer server(options);
  server.AddHandler("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong\n";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // Stall: open a connection, send half a request line, and go silent.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, "GET /pi", 7, 0), 7);

  // A well-behaved client issued while the stall is live must still be
  // served (the stalled connection is cut after io_timeout_ms at worst).
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/ping", &body).ok());
  EXPECT_EQ(body, "pong\n");

  // The stalled connection itself is answered 408 and closed, not left
  // half-open.
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 408 ", 0), 0u) << response;
}

TEST(HttpServerStandaloneTest, PortInUseFailsToStart) {
  HttpServer first((HttpServer::Options()));
  ASSERT_TRUE(first.Start().ok());
  HttpServer::Options clashing;
  clashing.port = first.port();
  HttpServer second(clashing);
  const Status status = second.Start();
  EXPECT_TRUE(status.IsIOError()) << status.ToString();

  // reuse_address must not weaken the live-listener conflict: SO_REUSEADDR
  // only skips the TIME_WAIT linger, it cannot steal a bound port.
  clashing.reuse_address = true;
  HttpServer third(clashing);
  const Status reuse_status = third.Start();
  EXPECT_TRUE(reuse_status.IsIOError()) << reuse_status.ToString();
}

TEST(HttpServerStandaloneTest, ReuseAddressRebindsAfterStop) {
  // Restart-on-the-same-port scenario: the first incarnation served a
  // connection (so the port has residual TIME_WAIT state), then stopped.
  HttpServer::Options options;
  options.reuse_address = true;
  auto first = std::make_unique<HttpServer>(options);
  first->AddHandler("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  ASSERT_TRUE(first->Start().ok());
  const uint16_t port = first->port();
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", port, "/healthz", &body).ok());
  first.reset();

  HttpServer::Options rebind;
  rebind.port = port;
  rebind.reuse_address = true;
  HttpServer second(rebind);
  const Status status = second.Start();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(second.port(), port);
}

TEST(HttpServerStandaloneTest, StopIsIdempotentAndRestartable) {
  HttpServer server((HttpServer::Options()));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());  // already running
  server.Stop();
  server.Stop();
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
}

TEST(TelemetryHandlersTest, ServesMetricsTracesAndHealth) {
  MetricRegistry registry;
  Counter demo;
  demo.Add(5);
  auto reg = registry.AddCounter(
      MetricId("sketchlink_demo_total", "Demo", {{"instance", "t"}}), &demo);

  Tracer::Options trace_everything;
  trace_everything.sample_period = 1;
  trace_everything.keep_period = 1;
  Tracer tracer(trace_everything);
  {
    TraceScope trace = tracer.StartTrace("engine", "query");
    Span span("sketch", "candidates");
  }

  HttpServer server((HttpServer::Options()));
  RegisterTelemetryHandlers(&server, &registry, &tracer);
  ASSERT_TRUE(server.Start().ok());

  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &body).ok());
  EXPECT_EQ(body, "ok\n");

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/metrics", &body).ok());
  EXPECT_NE(body.find("# TYPE sketchlink_demo_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("sketchlink_demo_total{instance=\"t\"} 5"),
            std::string::npos);

  ASSERT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/metrics.json", &body).ok());
  EXPECT_NE(body.find("\"name\": \"sketchlink_demo_total\""),
            std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/traces", &body).ok());
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"candidates\""), std::string::npos);
}

}  // namespace
}  // namespace sketchlink::obs

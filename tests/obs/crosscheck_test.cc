// Cross-checks the historical stats() accessors against the registry
// snapshot: the stat structs are thin views over the same instruments the
// registry exports, so after a quiesced workload every field must be
// byte-identical to the corresponding exported counter (and the live gauges
// must equal the accessors they wrap).

#include <string>
#include <utility>
#include <vector>

#include "core/sharded_sketch.h"
#include "gtest/gtest.h"
#include "kv/db.h"
#include "kv/env.h"
#include "obs/registry.h"

namespace sketchlink {
namespace {

std::vector<std::pair<std::string, std::string>> MakeEntries(size_t n,
                                                             size_t distinct) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t block = i % distinct;
    std::string value = "smith#john#" + std::to_string(block);
    if (i % 3 == 1) value[1] = 'y';
    if (i % 5 == 2) value += "x";
    out.emplace_back("key" + std::to_string(block), std::move(value));
  }
  return out;
}

uint64_t CounterValue(const obs::RegistrySnapshot& snap,
                      std::string_view name, std::string_view instance) {
  const obs::MetricSnapshot* metric = snap.Find(name, instance);
  EXPECT_NE(metric, nullptr) << name << " instance=" << instance;
  if (metric == nullptr) return UINT64_MAX;
  EXPECT_EQ(metric->kind, obs::MetricKind::kCounter) << name;
  return metric->counter_value;
}

double GaugeValue(const obs::RegistrySnapshot& snap, std::string_view name,
                  std::string_view instance) {
  const obs::MetricSnapshot* metric = snap.Find(name, instance);
  EXPECT_NE(metric, nullptr) << name << " instance=" << instance;
  if (metric == nullptr) return -1.0;
  EXPECT_EQ(metric->kind, obs::MetricKind::kGauge) << name;
  return metric->gauge_value;
}

TEST(CrosscheckTest, BlockSketchStatsMatchRegistrySnapshot) {
  obs::MetricRegistry registry;
  ShardedBlockSketch sketch;
  const auto registrations = sketch.RegisterMetrics(&registry, "xb");

  const auto entries = MakeEntries(600, 40);
  for (size_t i = 0; i < entries.size(); ++i) {
    sketch.Insert(entries[i].first, entries[i].second,
                  static_cast<RecordId>(i + 1));
  }
  for (size_t i = 0; i < 200; ++i) {
    sketch.Candidates(entries[i].first, entries[i].second);
  }

  // Quiesced: the view and the exported closure read the same instruments,
  // so every field must agree exactly.
  const BlockSketchStats stats = sketch.stats();
  const obs::RegistrySnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(stats.inserts,
            CounterValue(snap, "sketchlink_sketch_inserts_total", "xb"));
  EXPECT_EQ(stats.queries,
            CounterValue(snap, "sketchlink_sketch_queries_total", "xb"));
  EXPECT_EQ(stats.representative_comparisons,
            CounterValue(snap,
                         "sketchlink_sketch_representative_comparisons_total",
                         "xb"));
  EXPECT_EQ(stats.blocks_created,
            CounterValue(snap, "sketchlink_sketch_blocks_created_total",
                         "xb"));
  EXPECT_EQ(stats.candidates_returned,
            CounterValue(snap, "sketchlink_sketch_candidates_returned_total",
                         "xb"));
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.queries, 0u);

  EXPECT_DOUBLE_EQ(GaugeValue(snap, "sketchlink_sketch_blocks", "xb"),
                   static_cast<double>(sketch.num_blocks()));
  EXPECT_DOUBLE_EQ(GaugeValue(snap, "sketchlink_sketch_memory_bytes", "xb"),
                   static_cast<double>(sketch.ApproximateMemoryUsage()));

  // Latency timing was armed by RegisterMetrics (enabled registry), so the
  // exported histogram carries the sampled operations.
  const obs::MetricSnapshot* latency =
      snap.Find("sketchlink_sketch_query_latency_nanos", "xb");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->kind, obs::MetricKind::kHistogram);
  EXPECT_GT(latency->histogram.count(), 0u);
}

TEST(CrosscheckTest, SBlockSketchStatsMatchRegistrySnapshot) {
  const std::string dir = ::testing::TempDir() + "/obs_crosscheck_spill";
  ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());

  obs::MetricRegistry registry;
  auto db = kv::Db::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // A tiny memory budget over few stripes forces evictions, disk loads and
  // (with an unknown key) query misses, so every counter is exercised.
  SBlockSketchOptions options;
  options.mu = 8;
  // Heap-held so the sketch (and its background spill worker) can be torn
  // down before the Db it spills into; destroying the Db first races the
  // maintenance thread's WAL appends.
  auto sketch_ptr = std::make_unique<ShardedSBlockSketch>(
      options, db->get(), DefaultKeyDistance(), 2);
  ShardedSBlockSketch& sketch = *sketch_ptr;
  const auto registrations = sketch.RegisterMetrics(&registry, "xs");

  const auto entries = MakeEntries(400, 60);
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_TRUE(sketch
                    .Insert(entries[i].first, entries[i].second,
                            static_cast<RecordId>(i + 1))
                    .ok());
  }
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(sketch.Candidates(entries[i].first, entries[i].second).ok());
  }
  const std::string missing_key = "never_inserted";
  const std::string missing_values = "none#none#none";
  ASSERT_TRUE(sketch.Candidates(missing_key, missing_values).ok());

  const SBlockSketchStats stats = sketch.stats();
  const obs::RegistrySnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(stats.inserts,
            CounterValue(snap, "sketchlink_sketch_inserts_total", "xs"));
  EXPECT_EQ(stats.queries,
            CounterValue(snap, "sketchlink_sketch_queries_total", "xs"));
  EXPECT_EQ(stats.live_hits,
            CounterValue(snap, "sketchlink_sketch_live_hits_total", "xs"));
  EXPECT_EQ(stats.disk_loads,
            CounterValue(snap, "sketchlink_sketch_disk_loads_total", "xs"));
  EXPECT_EQ(stats.evictions,
            CounterValue(snap, "sketchlink_sketch_evictions_total", "xs"));
  EXPECT_EQ(stats.query_misses,
            CounterValue(snap, "sketchlink_sketch_query_misses_total", "xs"));
  EXPECT_EQ(stats.representative_comparisons,
            CounterValue(snap,
                         "sketchlink_sketch_representative_comparisons_total",
                         "xs"));
  EXPECT_EQ(stats.candidates_returned,
            CounterValue(snap, "sketchlink_sketch_candidates_returned_total",
                         "xs"));
  // The workload was sized to hit the interesting paths, not just agree
  // trivially at zero.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.disk_loads, 0u);
  EXPECT_EQ(stats.query_misses, 1u);

  EXPECT_DOUBLE_EQ(GaugeValue(snap, "sketchlink_sketch_live_blocks", "xs"),
                   static_cast<double>(sketch.num_live_blocks()));
  EXPECT_DOUBLE_EQ(GaugeValue(snap, "sketchlink_sketch_memory_bytes", "xs"),
                   static_cast<double>(sketch.ApproximateMemoryUsage()));

  sketch_ptr.reset();  // joins the spill worker while the Db is still alive
  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}

TEST(CrosscheckTest, DbStatsMatchRegistrySnapshot) {
  const std::string dir = ::testing::TempDir() + "/obs_crosscheck_db";
  ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());

  obs::MetricRegistry registry;
  kv::Options options;
  options.registry = &registry;
  options.metrics_instance = "xk";
  options.memtable_bytes = 2048;  // tiny: forces flushes (and sstable reads)
  auto db = kv::Db::Open(dir, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  const std::string value(128, 'v');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i), value).ok());
  }
  std::string out;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*db)->Get("key" + std::to_string(i), &out).ok());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*db)->Get("missing" + std::to_string(i), &out).IsNotFound());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*db)->Delete("key" + std::to_string(i)).ok());
  }

  const kv::DbStats stats = (*db)->stats();
  const obs::RegistrySnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(stats.puts, CounterValue(snap, "sketchlink_kv_puts_total", "xk"));
  EXPECT_EQ(stats.gets, CounterValue(snap, "sketchlink_kv_gets_total", "xk"));
  EXPECT_EQ(stats.deletes,
            CounterValue(snap, "sketchlink_kv_deletes_total", "xk"));
  EXPECT_EQ(stats.memtable_hits,
            CounterValue(snap, "sketchlink_kv_memtable_hits_total", "xk"));
  EXPECT_EQ(stats.sstable_reads,
            CounterValue(snap, "sketchlink_kv_sstable_reads_total", "xk"));
  EXPECT_EQ(stats.bloom_skips,
            CounterValue(snap, "sketchlink_kv_bloom_skips_total", "xk"));
  EXPECT_EQ(stats.flushes,
            CounterValue(snap, "sketchlink_kv_flushes_total", "xk"));
  EXPECT_EQ(stats.compactions,
            CounterValue(snap, "sketchlink_kv_compactions_total", "xk"));
  EXPECT_EQ(stats.puts, 200u);
  EXPECT_EQ(stats.gets, 210u);
  EXPECT_EQ(stats.deletes, 5u);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.sstable_reads, 0u);

  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}

}  // namespace
}  // namespace sketchlink

#include "obs/url.h"

#include <string>

#include "gtest/gtest.h"

namespace sketchlink::obs {
namespace {

TEST(PercentDecodeTest, DecodesEscapesAndPlus) {
  EXPECT_EQ(PercentDecode("a%20b"), "a b");
  EXPECT_EQ(PercentDecode("%41%42%43"), "ABC");
  EXPECT_EQ(PercentDecode("a+b+c"), "a b c");
  EXPECT_EQ(PercentDecode("%7e"), "~");  // lower-case hex digits
  EXPECT_EQ(PercentDecode("%7E"), "~");
  EXPECT_EQ(PercentDecode(""), "");
  EXPECT_EQ(PercentDecode("plain"), "plain");
}

TEST(PercentDecodeTest, MalformedEscapesPassThroughVerbatim) {
  EXPECT_EQ(PercentDecode("%"), "%");
  EXPECT_EQ(PercentDecode("%2"), "%2");        // truncated
  EXPECT_EQ(PercentDecode("%zz"), "%zz");      // not hex
  EXPECT_EQ(PercentDecode("%2x"), "%2x");      // second digit bad
  EXPECT_EQ(PercentDecode("a%"), "a%");        // trailing percent
  EXPECT_EQ(PercentDecode("100%+done"), "100% done");
}

TEST(QueryParamsTest, ParsesSimplePairs) {
  const QueryParams params = QueryParams::Parse("a=1&b=two");
  EXPECT_EQ(params.size(), 2u);
  EXPECT_EQ(params.Get("a"), "1");
  EXPECT_EQ(params.Get("b"), "two");
  EXPECT_FALSE(params.Get("c").has_value());
}

TEST(QueryParamsTest, EmptyQueryHasNoParams) {
  EXPECT_EQ(QueryParams::Parse("").size(), 0u);
  EXPECT_EQ(QueryParams::Parse("&&&").size(), 0u);
}

TEST(QueryParamsTest, DuplicateKeysAreAllKeptFirstWins) {
  const QueryParams params = QueryParams::Parse("k=first&k=second&k=third");
  EXPECT_EQ(params.size(), 3u);
  EXPECT_EQ(params.Get("k"), "first");
  EXPECT_EQ(params.items()[1].second, "second");
  EXPECT_EQ(params.items()[2].second, "third");
}

TEST(QueryParamsTest, BareFlagIsPresentWithEmptyValue) {
  const QueryParams params = QueryParams::Parse("verbose&limit=5");
  EXPECT_TRUE(params.Has("verbose"));
  EXPECT_EQ(params.Get("verbose"), "");
  EXPECT_EQ(params.GetInt("limit", 0), 5u);
}

TEST(QueryParamsTest, PercentDecodingAppliesToKeysAndValues) {
  const QueryParams params = QueryParams::Parse("my%20key=a%26b&plus=1+2");
  EXPECT_EQ(params.Get("my key"), "a&b");
  EXPECT_EQ(params.Get("plus"), "1 2");
}

TEST(QueryParamsTest, EncodedDelimitersDoNotSplitPairs) {
  // %26 is '&' and %3D is '=' — decoding happens after splitting, so they
  // stay inside the value instead of creating phantom pairs.
  const QueryParams params = QueryParams::Parse("v=a%26b%3Dc");
  EXPECT_EQ(params.size(), 1u);
  EXPECT_EQ(params.Get("v"), "a&b=c");
}

TEST(QueryParamsTest, ValueMayContainEquals) {
  const QueryParams params = QueryParams::Parse("expr=a=b=c");
  EXPECT_EQ(params.Get("expr"), "a=b=c");
}

TEST(QueryParamsTest, GetIntFallsBackOnGarbage) {
  const QueryParams params =
      QueryParams::Parse("n=42&neg=-1&text=abc&empty=");
  EXPECT_EQ(params.GetInt("n", 7), 42u);
  EXPECT_EQ(params.GetInt("neg", 7), 7u);    // negative is not non-negative
  EXPECT_EQ(params.GetInt("text", 7), 7u);
  EXPECT_EQ(params.GetInt("empty", 7), 7u);
  EXPECT_EQ(params.GetInt("absent", 7), 7u);
}

TEST(QueryParamsTest, MalformedEscapeInQueryIsTolerated) {
  const QueryParams params = QueryParams::Parse("bad=%zz&good=1");
  EXPECT_EQ(params.Get("bad"), "%zz");
  EXPECT_EQ(params.GetInt("good", 0), 1u);
}

}  // namespace
}  // namespace sketchlink::obs

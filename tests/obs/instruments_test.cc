#include "obs/instruments.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sketchlink::obs {
namespace {

TEST(CounterTest, IncAddAndMerge) {
  Counter a;
  EXPECT_EQ(a.value(), 0u);
  a.Inc();
  a.Add(41);
  EXPECT_EQ(a.value(), 42u);

  Counter b;
  b.Add(8);
  b.Merge(a);
  EXPECT_EQ(b.value(), 50u);
  EXPECT_EQ(a.value(), 42u);  // merge reads, never mutates the source
}

TEST(GaugeTest, AddSubSet) {
  Gauge gauge;
  gauge.Add(10);
  gauge.Sub(3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Sub(10);
  EXPECT_EQ(gauge.value(), -3);  // signed: transient negatives are valid
  gauge.Set(5);
  EXPECT_EQ(gauge.value(), 5);
}

TEST(RelaxedMaxTest, KeepsLargest) {
  RelaxedMax max;
  max.Update(7);
  max.Update(3);
  EXPECT_EQ(max.value(), 7u);
  max.Update(100);
  EXPECT_EQ(max.value(), 100u);
}

// --- Bucket boundaries --------------------------------------------------

TEST(HistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  // Every power of two opens a new bucket; its predecessor closes one.
  for (size_t bit = 1; bit < 64; ++bit) {
    const uint64_t pow = uint64_t{1} << bit;
    EXPECT_EQ(Histogram::BucketIndex(pow), bit + 1) << "value 2^" << bit;
    EXPECT_EQ(Histogram::BucketIndex(pow - 1), bit) << "value 2^" << bit
                                                    << " - 1";
  }
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  for (uint64_t value : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{3},
                         uint64_t{17}, uint64_t{1023}, uint64_t{1024},
                         uint64_t{123456789}, UINT64_MAX}) {
    const size_t index = Histogram::BucketIndex(value);
    EXPECT_GE(value, HistogramSnapshot::BucketLowerBound(index));
    EXPECT_LE(value, HistogramSnapshot::BucketUpperBound(index));
  }
  // Buckets tile the axis with no gaps or overlaps.
  for (size_t i = 1; i < kHistogramBuckets - 1; ++i) {
    EXPECT_EQ(HistogramSnapshot::BucketLowerBound(i + 1),
              HistogramSnapshot::BucketUpperBound(i) + 1);
  }
}

// --- Recording and percentiles ------------------------------------------

TEST(HistogramTest, RecordSumMaxCount) {
  Histogram hist;
  hist.Record(0);
  hist.Record(1);
  hist.Record(3);
  hist.Record(1000);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.sum, 1004u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);   // 0
  EXPECT_EQ(snap.buckets[1], 1u);   // 1
  EXPECT_EQ(snap.buckets[2], 1u);   // 3
  EXPECT_EQ(snap.buckets[10], 1u);  // 1000 in [512, 1023]
  EXPECT_DOUBLE_EQ(snap.Mean(), 251.0);
}

TEST(HistogramTest, PercentileIsEmptySafe) {
  const HistogramSnapshot empty;
  EXPECT_EQ(empty.Percentile(0.5), 0u);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
}

TEST(HistogramTest, PercentileExactAtBucketBoundary) {
  // All samples share the value 7 = the inclusive upper bound of bucket 3,
  // so the reported percentile is exact, not an overestimate.
  Histogram hist;
  for (int i = 0; i < 8; ++i) hist.Record(7);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.Percentile(0.50), 7u);
  EXPECT_EQ(snap.Percentile(0.99), 7u);
}

TEST(HistogramTest, PercentileClampedToObservedMax) {
  // 5 lands in bucket [4, 7]; the upper bound overshoots the sample, so the
  // estimate clamps to the observed max.
  Histogram hist;
  hist.Record(5);
  EXPECT_EQ(hist.Snapshot().Percentile(0.99), 5u);
}

TEST(HistogramTest, PercentileNearestRankGuarantee) {
  // Values 1..100: the estimate must never undershoot the true nearest-rank
  // percentile and can overshoot by at most one bucket width (2x).
  Histogram hist;
  for (uint64_t v = 1; v <= 100; ++v) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();
  for (double p : {0.50, 0.90, 0.95, 0.99}) {
    const uint64_t true_value =
        static_cast<uint64_t>(p * 100.0 + 0.9999);  // nearest rank == value
    const uint64_t estimate = snap.Percentile(p);
    EXPECT_GE(estimate, true_value) << "p=" << p;
    EXPECT_LE(estimate, 2 * true_value) << "p=" << p;
  }
  // p99: rank 99 falls in bucket [64, 127], clamped to the observed max.
  EXPECT_EQ(snap.Percentile(0.99), 100u);
}

// --- Merge exactness (the sharded-aggregation regression) ---------------

TEST(HistogramTest, MergeIsExactUnionOfSamples) {
  Histogram a;
  Histogram b;
  Histogram expected;
  for (uint64_t v : {1ull, 3ull, 900ull}) {
    a.Record(v);
    expected.Record(v);
  }
  for (uint64_t v : {2ull, 70000ull}) {
    b.Record(v);
    expected.Record(v);
  }
  a.Merge(b);
  const HistogramSnapshot merged = a.Snapshot();
  const HistogramSnapshot want = expected.Snapshot();
  EXPECT_EQ(merged.buckets, want.buckets);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.max, want.max);
}

TEST(HistogramTest, MergedPercentileIsNotAnAverageOfShardPercentiles) {
  // Regression for the sharded-stats aggregation: shard A is uniformly
  // fast, shard B uniformly slow. The p99 of the union is the slow value;
  // averaging per-shard p99s would report something in between and
  // under-report tail latency by ~2x.
  Histogram fast_shard;
  Histogram slow_shard;
  for (int i = 0; i < 50; ++i) fast_shard.Record(1);
  for (int i = 0; i < 50; ++i) slow_shard.Record(1 << 20);

  const uint64_t fast_p99 = fast_shard.Snapshot().p99();
  const uint64_t slow_p99 = slow_shard.Snapshot().p99();
  const uint64_t averaged = (fast_p99 + slow_p99) / 2;

  HistogramSnapshot merged = fast_shard.Snapshot();
  merged.Merge(slow_shard.Snapshot());
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_EQ(merged.p99(), uint64_t{1} << 20);  // the union's true tail
  EXPECT_NE(merged.p99(), averaged);
  EXPECT_GT(merged.p99(), averaged);
}

TEST(HistogramTest, MergeSnapshotMatchesMerge) {
  Histogram a;
  Histogram b;
  for (uint64_t v : {4ull, 5ull, 6ull}) a.Record(v);
  for (uint64_t v : {1000ull, 2000ull}) b.Record(v);

  Histogram via_snapshot;
  via_snapshot.MergeSnapshot(a.Snapshot());
  via_snapshot.MergeSnapshot(b.Snapshot());

  a.Merge(b);
  EXPECT_EQ(via_snapshot.Snapshot().buckets, a.Snapshot().buckets);
  EXPECT_EQ(via_snapshot.Snapshot().sum, a.Snapshot().sum);
  EXPECT_EQ(via_snapshot.Snapshot().max, a.Snapshot().max);
}

// --- StripedHistogram ---------------------------------------------------

TEST(StripedHistogramTest, SnapshotIsExactUnionAcrossThreads) {
  StripedHistogram striped;
  Histogram expected;
  for (uint64_t v : {10ull, 20ull, 30ull}) {
    striped.Record(v);
    expected.Record(v);
  }
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&striped, t] {
      for (int i = 0; i < kPerThread; ++i) {
        striped.Record(static_cast<uint64_t>(t * 1000 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected.Record(static_cast<uint64_t>(t * 1000 + i));
    }
  }
  const HistogramSnapshot got = striped.Snapshot();
  const HistogramSnapshot want = expected.Snapshot();
  EXPECT_EQ(got.buckets, want.buckets);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.max, want.max);
  EXPECT_EQ(striped.count(), want.count());
}

// --- LatencyTimer -------------------------------------------------------

TEST(LatencyTimerTest, NullHistogramDoesNothing) {
  LatencyTimer timer(nullptr);
  EXPECT_FALSE(timer.enabled());
  EXPECT_EQ(timer.Stop(), 0u);
}

TEST(LatencyTimerTest, StopRecordsOnceAndDetaches) {
  Histogram hist;
  LatencyTimer timer(&hist);
  EXPECT_TRUE(timer.enabled());
  timer.Stop();
  timer.Stop();  // idempotent: detached after the first stop
  EXPECT_EQ(hist.count(), 1u);
}

TEST(LatencyTimerTest, DestructorRecords) {
  Histogram hist;
  { LatencyTimer timer(&hist); }
  EXPECT_EQ(hist.count(), 1u);
}

TEST(LatencyTimerTest, CancelDropsTheMeasurement) {
  Histogram hist;
  {
    LatencyTimer timer(&hist);
    timer.Cancel();
  }
  EXPECT_EQ(hist.count(), 0u);
}

TEST(LatencyTimerTest, StripedVariantRecords) {
  StripedHistogram hist;
  { StripedLatencyTimer timer(&hist); }
  EXPECT_EQ(hist.count(), 1u);
}

// --- Sampling gate ------------------------------------------------------

TEST(SamplingTest, HitsEveryPeriodPerCallSite) {
  // This test is this call site's only user, so the thread-local tick
  // starts at zero here: hit on the first call, then every 2^log2-th.
  const uint32_t period = 1u << kLatencySamplePeriodLog2;
  int hits = 0;
  for (uint32_t i = 0; i < 2 * period; ++i) {
    if (SKETCHLINK_OBS_SAMPLE_HIT()) ++hits;
  }
  EXPECT_EQ(hits, 2);
}

TEST(SamplingTest, CallSitesHaveIndependentTicks) {
  // Two interleaved sites must not steal each other's ticks: each still
  // hits exactly once per period.
  const uint32_t period = 1u << kLatencySamplePeriodLog2;
  int hits_a = 0;
  int hits_b = 0;
  for (uint32_t i = 0; i < period; ++i) {
    if (SKETCHLINK_OBS_SAMPLE_HIT()) ++hits_a;
    if (SKETCHLINK_OBS_SAMPLE_HIT()) ++hits_b;
  }
  EXPECT_EQ(hits_a, 1);
  EXPECT_EQ(hits_b, 1);
}

}  // namespace
}  // namespace sketchlink::obs

#include "obs/registry.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sketchlink::obs {
namespace {

TEST(MetricRegistryTest, SnapshotCarriesKindsAndValues) {
  MetricRegistry registry;
  Counter counter;
  counter.Add(42);
  Gauge gauge;
  gauge.Set(-7);
  Histogram hist;
  hist.Record(3);
  hist.Record(1000);

  auto r1 = registry.AddCounter(
      MetricId("test_events_total", "Events", {{"instance", "a"}}), &counter);
  auto r2 = registry.AddGauge(MetricId("test_depth", "Depth"), &gauge);
  auto r3 = registry.AddHistogram(MetricId("test_latency_nanos", "Latency"),
                                  &hist);
  auto r4 = registry.AddCallbackGauge(MetricId("test_live", "Live value"),
                                      [] { return 2.5; });
  EXPECT_EQ(registry.num_metrics(), 4u);

  const RegistrySnapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);

  const MetricSnapshot* events = snap.Find("test_events_total", "a");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->kind, MetricKind::kCounter);
  EXPECT_EQ(events->counter_value, 42u);
  EXPECT_EQ(events->id.help, "Events");

  const MetricSnapshot* depth = snap.Find("test_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(depth->gauge_value, -7.0);

  const MetricSnapshot* latency = snap.Find("test_latency_nanos");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->kind, MetricKind::kHistogram);
  EXPECT_EQ(latency->histogram.count(), 2u);
  EXPECT_EQ(latency->histogram.sum, 1003u);

  const MetricSnapshot* live = snap.Find("test_live");
  ASSERT_NE(live, nullptr);
  EXPECT_DOUBLE_EQ(live->gauge_value, 2.5);

  // Find with a wrong instance label or unknown name comes back empty.
  EXPECT_EQ(snap.Find("test_events_total", "b"), nullptr);
  EXPECT_EQ(snap.Find("no_such_metric"), nullptr);
}

TEST(MetricRegistryTest, SnapshotIsPullBased) {
  MetricRegistry registry;
  Counter counter;
  auto reg = registry.AddCounter(MetricId("pull_total", "Pull"), &counter);
  EXPECT_EQ(registry.TakeSnapshot().Find("pull_total")->counter_value, 0u);
  counter.Add(5);
  // No re-registration needed: the closure reads the live instrument.
  EXPECT_EQ(registry.TakeSnapshot().Find("pull_total")->counter_value, 5u);
}

TEST(MetricRegistryTest, RegistrationDropDeregisters) {
  MetricRegistry registry;
  Counter counter;
  {
    Registration reg =
        registry.AddCounter(MetricId("scoped_total", "Scoped"), &counter);
    EXPECT_TRUE(reg.active());
    EXPECT_EQ(registry.num_metrics(), 1u);
  }
  EXPECT_EQ(registry.num_metrics(), 0u);
  EXPECT_EQ(registry.TakeSnapshot().metrics.size(), 0u);
}

TEST(MetricRegistryTest, RegistrationMoveTransfersOwnership) {
  MetricRegistry registry;
  Counter counter;
  Registration first =
      registry.AddCounter(MetricId("moved_total", "Moved"), &counter);
  Registration second = std::move(first);
  EXPECT_FALSE(first.active());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(second.active());
  EXPECT_EQ(registry.num_metrics(), 1u);

  // Move-assignment over an active registration releases the old one.
  Registration third =
      registry.AddCounter(MetricId("moved_too_total", "Moved too"), &counter);
  EXPECT_EQ(registry.num_metrics(), 2u);
  third = std::move(second);
  EXPECT_EQ(registry.num_metrics(), 1u);
  EXPECT_TRUE(third.active());
}

TEST(MetricRegistryTest, ReleaseIsIdempotent) {
  MetricRegistry registry;
  Counter counter;
  Registration reg =
      registry.AddCounter(MetricId("released_total", "Released"), &counter);
  reg.Release();
  EXPECT_FALSE(reg.active());
  EXPECT_EQ(registry.num_metrics(), 0u);
  reg.Release();  // no-op
  EXPECT_EQ(registry.num_metrics(), 0u);
}

TEST(MetricRegistryTest, SnapshotPreservesRegistrationOrder) {
  MetricRegistry registry;
  Counter a;
  Counter b;
  Counter c;
  auto r1 = registry.AddCounter(MetricId("order_a", ""), &a);
  auto r2 = registry.AddCounter(MetricId("order_b", ""), &b);
  auto r3 = registry.AddCounter(MetricId("order_c", ""), &c);
  r2.Release();
  const RegistrySnapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].id.name, "order_a");
  EXPECT_EQ(snap.metrics[1].id.name, "order_c");
}

TEST(NullRegistryTest, IsInertAndZeroCost) {
  NullRegistry* null_registry = NullRegistry::Get();
  ASSERT_NE(null_registry, nullptr);
  EXPECT_EQ(null_registry, NullRegistry::Get());  // shared instance
  EXPECT_FALSE(null_registry->enabled());
  EXPECT_EQ(null_registry->trace_ring(), nullptr);
  EXPECT_EQ(null_registry->slow_op_threshold_nanos(), UINT64_MAX);

  Counter counter;
  Registration reg =
      null_registry->AddCounter(MetricId("dropped_total", "Dropped"), &counter);
  EXPECT_FALSE(reg.active());
  EXPECT_EQ(null_registry->TakeSnapshot().metrics.size(), 0u);

  // TraceSlow never records (threshold is UINT64_MAX and the ring is null).
  null_registry->TraceSlow("test", "op", UINT64_MAX);
}

TEST(NullRegistryTest, TimingEnabledGate) {
  EXPECT_FALSE(TimingEnabled(nullptr));
  EXPECT_FALSE(TimingEnabled(NullRegistry::Get()));
  MetricRegistry registry;
  EXPECT_TRUE(TimingEnabled(&registry));
}

TEST(DefaultRegistryTest, IsASharedEnabledInstance) {
  MetricRegistry& a = DefaultRegistry();
  MetricRegistry& b = DefaultRegistry();
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(a.enabled());
}

// --- Trace ring ---------------------------------------------------------

TEST(TraceRingTest, RecordsInOrderUntilFull) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  ring.Record("engine", "q1", 100);
  ring.Record("engine", "q2", 200);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sequence, 0u);
  EXPECT_EQ(events[0].category, "engine");
  EXPECT_EQ(events[0].label, "q1");
  EXPECT_EQ(events[0].duration_nanos, 100u);
  EXPECT_EQ(events[1].sequence, 1u);
  EXPECT_EQ(ring.total_recorded(), 2u);
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDrops) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    ring.Record("kv", "op" + std::to_string(i), i * 10);
  }
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // oldest two overwritten
  // Oldest-first, sequences are the process-lifetime ordinals 2..5, so the
  // consumer can compute drops: total_recorded - capacity.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, i + 2);
    EXPECT_EQ(events[i].label, "op" + std::to_string(i + 2));
  }
  EXPECT_EQ(ring.total_recorded(), 6u);
}

TEST(TraceRingTest, ZeroCapacityClampsToOne) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Record("a", "x", 1);
  ring.Record("a", "y", 2);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label, "y");
}

TEST(MetricRegistryTest, TraceSlowFiltersBelowThreshold) {
  MetricRegistry::Options options;
  options.slow_op_threshold_nanos = 1000;
  options.trace_capacity = 8;
  MetricRegistry registry(options);
  EXPECT_EQ(registry.slow_op_threshold_nanos(), 1000u);

  registry.TraceSlow("engine", "fast", 999);
  EXPECT_EQ(registry.trace_ring()->Snapshot().size(), 0u);
  registry.TraceSlow("engine", "at_threshold", 1000);
  registry.TraceSlow("engine", "slow", 5000);
  const auto events = registry.trace_ring()->Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].label, "at_threshold");
  EXPECT_EQ(events[1].label, "slow");
}

// --- Concurrency (exercised under TSan via the sanitizer presets) --------

TEST(MetricRegistryTest, ConcurrentRegisterUpdateSnapshotUnregister) {
  MetricRegistry registry;
  Counter shared_counter;
  Histogram shared_hist;
  auto keep_counter = registry.AddCounter(
      MetricId("concurrent_total", "Shared counter"), &shared_counter);
  auto keep_hist = registry.AddHistogram(
      MetricId("concurrent_latency_nanos", "Shared histogram"), &shared_hist);

  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::atomic<bool> stop{false};

  // One thread snapshots continuously while the others update shared
  // instruments, churn registrations, and write the trace ring.
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const RegistrySnapshot snap = registry.TakeSnapshot();
      for (const MetricSnapshot& metric : snap.metrics) {
        if (metric.kind == MetricKind::kHistogram) {
          // count() derives from buckets, so it is always self-consistent.
          EXPECT_LE(metric.histogram.count(),
                    static_cast<uint64_t>(kThreads) * kIterations);
        }
      }
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &shared_counter, &shared_hist, t] {
      Counter own_counter;
      for (int i = 0; i < kIterations; ++i) {
        shared_counter.Inc();
        shared_hist.Record(static_cast<uint64_t>(i));
        Registration churn = registry.AddCounter(
            MetricId("churn_total", "Churn",
                     {{"thread", std::to_string(t)}}),
            &own_counter);
        own_counter.Inc();
        registry.TraceSlow("test", "churn",
                           registry.slow_op_threshold_nanos() + 1);
        // `churn` drops here: deregistration races with TakeSnapshot.
      }
    });
  }
  for (auto& worker : workers) worker.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const RegistrySnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.Find("concurrent_total")->counter_value,
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(snap.Find("concurrent_latency_nanos")->histogram.count(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.num_metrics(), 2u);  // all churn registrations dropped
  EXPECT_EQ(registry.trace_ring()->total_recorded(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace sketchlink::obs

#include "obs/http_message.h"

#include <string>

#include "gtest/gtest.h"

namespace sketchlink::obs {
namespace {

using State = HttpRequestParser::State;

TEST(HttpRequestParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("GET /metrics?limit=5 HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_EQ(request.query, "limit=5");
  EXPECT_EQ(request.Header("host"), "x");
  EXPECT_TRUE(request.body.empty());
  EXPECT_TRUE(parser.keep_alive());
}

TEST(HttpRequestParserTest, ParsesPostBodyAcrossFeeds) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("POST /v1/x HTTP/1.1\r\nContent-Le"),
            State::kNeedMore);
  EXPECT_EQ(parser.Feed("ngth: 11\r\n\r\nhello"), State::kNeedMore);
  EXPECT_EQ(parser.Feed(" world"), State::kComplete);
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpRequestParserTest, ByteAtATimeFeedStillParses) {
  const std::string raw =
      "POST /p HTTP/1.1\r\nContent-Length: 2\r\nX-K: v\r\n\r\nok";
  HttpRequestParser parser;
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    EXPECT_EQ(parser.Feed(raw.substr(i, 1)), State::kNeedMore) << i;
  }
  EXPECT_EQ(parser.Feed(raw.substr(raw.size() - 1)), State::kComplete);
  EXPECT_EQ(parser.request().body, "ok");
  EXPECT_EQ(parser.request().Header("x-k"), "v");
}

TEST(HttpRequestParserTest, HeaderNamesAreLowerCasedValuesTrimmed) {
  HttpRequestParser parser;
  parser.Feed("GET / HTTP/1.1\r\nX-Mixed-CASE:   padded value  \r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().Header("x-mixed-case"), "padded value");
  EXPECT_EQ(parser.request().Header("absent"), "");
}

TEST(HttpRequestParserTest, PipelinedSurplusIsReclaimable) {
  HttpRequestParser parser;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\ntrailing");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/a");
  const std::string leftover = parser.TakeLeftover();
  parser.Reset();
  EXPECT_EQ(parser.Feed(leftover), State::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.TakeLeftover(), "trailing");
}

TEST(HttpRequestParserTest, MalformedRequestLineIs400) {
  for (const char* raw :
       {"definitely not http\r\n\r\n", "GET\r\n\r\n",
        "GET missing-slash HTTP/1.1\r\n\r\n", "GET /x SPDY/3\r\n\r\n"}) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Feed(raw), State::kError) << raw;
    EXPECT_EQ(parser.error_status(), 400) << raw;
  }
}

TEST(HttpRequestParserTest, OversizedHeaderBlockIs431) {
  HttpRequestParser parser(/*max_head_bytes=*/128);
  std::string raw = "GET / HTTP/1.1\r\nX-Big: ";
  raw += std::string(256, 'a');
  EXPECT_EQ(parser.Feed(raw), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpRequestParserTest, OversizedDeclaredBodyIs413WithoutBuffering) {
  HttpRequestParser parser(/*max_head_bytes=*/1024, /*max_body_bytes=*/16);
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpRequestParserTest, TransferEncodingIs501) {
  HttpRequestParser parser;
  EXPECT_EQ(
      parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpRequestParserTest, ErrorStateIsSticky) {
  HttpRequestParser parser;
  parser.Feed("bogus\r\n\r\n");
  ASSERT_EQ(parser.state(), State::kError);
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\n\r\n"), State::kError);
  parser.Reset();
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\n\r\n"), State::kComplete);
}

TEST(HttpRequestParserTest, KeepAliveSemantics) {
  {
    HttpRequestParser parser;
    parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_FALSE(parser.keep_alive());
  }
  {
    HttpRequestParser parser;
    parser.Feed("GET / HTTP/1.0\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_FALSE(parser.keep_alive());
  }
  {
    HttpRequestParser parser;
    parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_TRUE(parser.keep_alive());
  }
}

TEST(HttpRequestParserTest, StartedDistinguishesIdleFromStalled) {
  HttpRequestParser parser;
  EXPECT_FALSE(parser.started());  // idle keep-alive connection
  parser.Feed("GET /slow");
  EXPECT_TRUE(parser.started());   // mid-request: a stall is now a timeout
  parser.Feed(" HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.started());
}

TEST(SerializeHttpResponseTest, GoldenBytesMatchHistoricalServer) {
  HttpResponse response;
  response.body = "hello \n";
  EXPECT_EQ(SerializeHttpResponse(response, /*keep_alive=*/false),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; charset=utf-8\r\n"
            "Content-Length: 7\r\n"
            "Connection: close\r\n"
            "\r\n"
            "hello \n");
}

TEST(SerializeHttpResponseTest, ExtraHeadersAndKeepAlive) {
  HttpResponse response;
  response.status = 429;
  response.content_type = "application/json";
  response.body = "{}";
  response.headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeHttpResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
}

TEST(HttpReasonPhraseTest, CoversServingPlaneStatuses) {
  EXPECT_STREQ(HttpReasonPhrase(200), "OK");
  EXPECT_STREQ(HttpReasonPhrase(201), "Created");
  EXPECT_STREQ(HttpReasonPhrase(400), "Bad Request");
  EXPECT_STREQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_STREQ(HttpReasonPhrase(408), "Request Timeout");
  EXPECT_STREQ(HttpReasonPhrase(429), "Too Many Requests");
  EXPECT_STREQ(HttpReasonPhrase(503), "Service Unavailable");
}

}  // namespace
}  // namespace sketchlink::obs

#include "obs/spans.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/trace_context.h"

namespace sketchlink::obs {
namespace {

Tracer::Options TraceEverything() {
  Tracer::Options options;
  options.sample_period = 1;  // admit every trace
  options.keep_period = 1;    // keep every admitted trace
  return options;
}

/// Spans of `trace_id`, keyed by name, from a buffer snapshot.
std::map<std::string, SpanRecord> SpansByName(
    const std::vector<SpanRecord>& spans, uint64_t trace_id) {
  std::map<std::string, SpanRecord> out;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == trace_id) out[span.name] = span;
  }
  return out;
}

TEST(SpanTest, NoAmbientContextMeansInactive) {
  EXPECT_FALSE(CurrentTraceContext().active());
  Span span("engine", "query");
  EXPECT_FALSE(span.active());
}

TEST(SpanTest, SingleThreadParenting) {
  Tracer tracer(TraceEverything());
  uint64_t trace_id = 0;
  {
    TraceScope trace = tracer.StartTrace("engine", "query");
    ASSERT_TRUE(trace.active());
    trace_id = trace.trace_id();
    Span outer("sketch", "candidates");
    { Span inner("kv", "get"); }
  }
  const auto spans = SpansByName(tracer.buffer().Snapshot(), trace_id);
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord& root = spans.at("query");
  const SpanRecord& outer = spans.at("candidates");
  const SpanRecord& inner = spans.at("get");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.span_id, 1u);
  EXPECT_EQ(outer.parent_id, root.span_id);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_GE(root.duration_nanos, outer.duration_nanos);
  EXPECT_GE(outer.duration_nanos, inner.duration_nanos);
  EXPECT_GE(outer.start_steady_nanos, root.start_steady_nanos);
  EXPECT_GE(inner.start_steady_nanos, outer.start_steady_nanos);
}

TEST(SpanTest, ScopeRestoresEnclosingContext) {
  Tracer tracer(TraceEverything());
  TraceScope phase = tracer.StartTrace("engine", "resolve_all");
  const TraceContext phase_context = CurrentTraceContext();
  {
    TraceScope query = tracer.StartTrace("engine", "query");
    EXPECT_NE(CurrentTraceContext().trace_id, phase_context.trace_id);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, phase_context.trace_id);
  EXPECT_EQ(CurrentTraceContext().span_id, phase_context.span_id);
}

// Spans created inside pool shards must parent to the span that submitted
// the batch, at every thread count (1 = sequential path, no batch at all).
class SpanPoolParentingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SpanPoolParentingTest, ParallelForSpansParentToSubmitter) {
  const size_t threads = GetParam();
  Tracer tracer(TraceEverything());
  ThreadPool pool(threads);
  uint64_t trace_id = 0;
  {
    TraceScope trace = tracer.StartTrace("engine", "build_index");
    trace_id = trace.trace_id();
    pool.ParallelFor(64, [&](size_t begin, size_t end) {
      Span span("engine", "prepare_chunk");
      volatile size_t sink = 0;
      for (size_t i = begin; i < end; ++i) sink += i;
    });
  }
  const auto spans = tracer.buffer().Snapshot();
  uint64_t root_span_id = 0;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == trace_id && span.name == "build_index") {
      root_span_id = span.span_id;
    }
  }
  ASSERT_NE(root_span_id, 0u);
  size_t chunks = 0;
  std::set<uint64_t> span_ids;
  for (const SpanRecord& span : spans) {
    if (span.trace_id != trace_id || span.name != "prepare_chunk") continue;
    ++chunks;
    EXPECT_EQ(span.parent_id, root_span_id);
    EXPECT_TRUE(span_ids.insert(span.span_id).second) << "duplicate span id";
  }
  EXPECT_EQ(chunks, std::min<size_t>(threads, 64));
}

TEST_P(SpanPoolParentingTest, NestedTraceInsideShardKeepsOwnIdentity) {
  // A head-sampled per-query trace started inside a shard (the ResolveAll
  // shape) must not adopt the phase trace's identity.
  const size_t threads = GetParam();
  Tracer tracer(TraceEverything());
  ThreadPool pool(threads);
  uint64_t phase_id = 0;
  std::mutex mu;
  std::set<uint64_t> query_ids;
  {
    TraceScope phase = tracer.StartTrace("engine", "resolve_all");
    phase_id = phase.trace_id();
    pool.RunShards(8, [&](size_t) {
      TraceScope query = tracer.StartTrace("engine", "query");
      ASSERT_TRUE(query.active());
      Span span("sketch", "candidates");
      std::lock_guard<std::mutex> lock(mu);
      query_ids.insert(query.trace_id());
    });
  }
  EXPECT_EQ(query_ids.size(), 8u);
  EXPECT_EQ(query_ids.count(phase_id), 0u);
  // Every query's candidates span parents to ITS query root, not the phase.
  for (uint64_t query_id : query_ids) {
    const auto spans = SpansByName(tracer.buffer().Snapshot(), query_id);
    ASSERT_EQ(spans.size(), 2u) << "trace " << query_id;
    EXPECT_EQ(spans.at("candidates").parent_id, spans.at("query").span_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SpanPoolParentingTest,
                         ::testing::Values(1, 2, 8));

TEST(TracerTest, HeadSamplingAdmitsOneInPeriod) {
  Tracer::Options options;
  options.sample_period = 8;
  options.keep_period = 1;
  Tracer tracer(options);
  for (int i = 0; i < 64; ++i) {
    TraceScope trace = tracer.StartTrace("engine", "query");
  }
  EXPECT_EQ(tracer.metrics().traces_admitted.value(), 8u);
  EXPECT_EQ(tracer.metrics().traces_started.value(), 64u);
}

TEST(TracerTest, UnadmittedScopeMasksEnclosingTrace) {
  Tracer::Options options;
  options.sample_period = 4;
  options.keep_period = 1;
  Tracer tracer(options);
  uint64_t phase_id = 0;
  {
    TraceScope phase = tracer.StartTrace("engine", "resolve_all", true);
    phase_id = phase.trace_id();
    for (int i = 0; i < 8; ++i) {
      TraceScope query = tracer.StartTrace("engine", "query");
      Span span("sketch", "candidates");
    }
  }
  const std::vector<SpanRecord> spans = tracer.buffer().Snapshot();
  // Un-admitted queries mask the phase context, so the phase trace holds
  // only its root — no stray candidates spans leaked into it.
  size_t phase_spans = 0;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == phase_id) ++phase_spans;
    if (span.name == "candidates") EXPECT_NE(span.trace_id, phase_id);
  }
  EXPECT_EQ(phase_spans, 1u);
  // 8 consecutive ticks at period 4 admit exactly 2 query traces, each
  // with its own root + candidates pair.
  EXPECT_EQ(tracer.metrics().traces_admitted.value(), 3u);  // phase + 2
  size_t candidates = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == "candidates") ++candidates;
  }
  EXPECT_EQ(candidates, 2u);
}

TEST(TracerTest, SamplePeriodZeroDisablesEverything) {
  Tracer::Options options;
  options.sample_period = 0;
  Tracer tracer(options);
  TraceScope forced = tracer.StartTrace("engine", "build_index", true);
  EXPECT_FALSE(forced.active());
  EXPECT_EQ(tracer.metrics().traces_admitted.value(), 0u);
  EXPECT_EQ(tracer.buffer().total_recorded(), 0u);
}

TEST(TracerTest, ErrorTracesAlwaysKept) {
  Tracer::Options options;
  options.sample_period = 1;
  options.keep_period = 0;         // keep nothing probabilistically
  options.slowest_per_window = 0;  // keep nothing for being slow
  Tracer tracer(options);
  {
    TraceScope dropped = tracer.StartTrace("engine", "query");
  }
  EXPECT_EQ(tracer.buffer().total_recorded(), 0u);
  {
    TraceScope kept = tracer.StartTrace("engine", "query");
    Span span("kv", "wal_append");
    span.MarkError();
  }
  EXPECT_EQ(tracer.metrics().traces_error.value(), 1u);
  const auto spans = tracer.buffer().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  bool saw_error_span = false;
  for (const SpanRecord& span : spans) {
    if (span.name == "wal_append") {
      EXPECT_TRUE(span.error);
      saw_error_span = true;
    }
  }
  EXPECT_TRUE(saw_error_span);
}

TEST(TracerTest, SlowestTracesOfWindowAlwaysKept) {
  Tracer::Options options;
  options.sample_period = 1;
  options.keep_period = 0;  // tail keep must come from the slowest-N rule
  options.slowest_per_window = 2;
  options.window_traces = 1000;
  Tracer tracer(options);
  // First two traces seed the heap (trivially slowest-so-far), then a
  // conspicuously slow trace must displace one of them.
  { TraceScope t = tracer.StartTrace("engine", "fast_a"); }
  { TraceScope t = tracer.StartTrace("engine", "fast_b"); }
  {
    TraceScope t = tracer.StartTrace("engine", "slow");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(tracer.metrics().traces_kept.value(), 3u);
  bool saw_slow = false;
  for (const SpanRecord& span : tracer.buffer().Snapshot()) {
    if (span.name == "slow") saw_slow = true;
  }
  EXPECT_TRUE(saw_slow);
}

TEST(TracerTest, KeepPeriodRetainsProbabilistically) {
  Tracer::Options options;
  options.sample_period = 1;
  options.keep_period = 4;
  options.slowest_per_window = 0;
  Tracer tracer(options);
  for (int i = 0; i < 32; ++i) {
    TraceScope t = tracer.StartTrace("engine", "query");
  }
  EXPECT_EQ(tracer.metrics().traces_kept.value(), 8u);
}

TEST(TracerTest, PerTraceSpanCapDropsAndCounts) {
  Tracer::Options options;
  options.sample_period = 1;
  options.keep_period = 1;
  options.max_spans_per_trace = 4;
  Tracer tracer(options);
  uint64_t trace_id = 0;
  {
    TraceScope trace = tracer.StartTrace("engine", "query");
    trace_id = trace.trace_id();
    for (int i = 0; i < 10; ++i) {
      Span span("sketch", "candidates");
    }
  }
  EXPECT_EQ(tracer.metrics().spans_dropped.value(), 6u);
  // 4 capped child spans + the root (which bypasses the cap).
  EXPECT_EQ(SpansByName(tracer.buffer().Snapshot(), trace_id).size(), 2u);
  size_t count = 0;
  for (const SpanRecord& span : tracer.buffer().Snapshot()) {
    if (span.trace_id == trace_id) ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(TracerTest, RegisterMetricsExportsCounters) {
  MetricRegistry registry;
  Tracer tracer(TraceEverything());
  auto regs = tracer.RegisterMetrics(&registry, "test");
  { TraceScope t = tracer.StartTrace("engine", "query"); }
  const RegistrySnapshot snapshot = registry.TakeSnapshot();
  const MetricSnapshot* admitted =
      snapshot.Find("sketchlink_trace_admitted_total", "test");
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(admitted->counter_value, 1u);
  const MetricSnapshot* kept =
      snapshot.Find("sketchlink_trace_kept_total", "test");
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->counter_value, 1u);
}

TEST(SpanBufferTest, WraparoundKeepsNewestAndCountsTotal) {
  SpanBuffer buffer(4);
  for (uint64_t i = 0; i < 10; ++i) {
    SpanRecord span;
    span.trace_id = 1;
    span.span_id = i;
    std::vector<SpanRecord> batch;
    batch.push_back(std::move(span));
    buffer.Record(std::move(batch));
  }
  EXPECT_EQ(buffer.total_recorded(), 10u);
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first order of the 4 newest spans: ids 6, 7, 8, 9.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].span_id, 6 + i);
  }
}

TEST(SpanBufferTest, ConcurrentRecordVsSnapshotStress) {
  // TSan target: writers batch-append while readers snapshot. Asserts only
  // invariants that hold under wraparound (size bound, monotone total).
  SpanBuffer buffer(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&buffer, &stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<SpanRecord> batch(3);
        for (SpanRecord& span : batch) {
          span.trace_id = static_cast<uint64_t>(w) + 1;
          span.span_id = ++i;
        }
        buffer.Record(std::move(batch));
      }
    });
  }
  uint64_t last_total = 0;
  for (int i = 0; i < 200; ++i) {
    const auto spans = buffer.Snapshot();
    EXPECT_LE(spans.size(), 64u);
    const uint64_t total = buffer.total_recorded();
    EXPECT_GE(total, last_total);
    last_total = total;
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(buffer.total_recorded() % 3, 0u);
}

TEST(TraceRingStressTest, ConcurrentRecordVsSnapshot) {
  // TSan companion to SpanBufferTest.ConcurrentRecordVsSnapshotStress for
  // the slow-op ring: concurrent Record wraparound against Snapshot reads.
  TraceRing ring(32);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&ring, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ring.Record("stress", "op", 1000);
      }
    });
  }
  uint64_t last_total = 0;
  for (int i = 0; i < 200; ++i) {
    const auto events = ring.Snapshot();
    EXPECT_LE(events.size(), 32u);
    // Snapshot is sequence-sorted; sequences must be strictly increasing.
    for (size_t e = 1; e < events.size(); ++e) {
      EXPECT_LT(events[e - 1].sequence, events[e].sequence);
    }
    const uint64_t total = ring.total_recorded();
    EXPECT_GE(total, last_total);
    last_total = total;
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

TEST(ChromeTraceExportTest, Golden) {
  SpanRecord root;
  root.trace_id = 7;
  root.span_id = 1;
  root.parent_id = 0;
  root.category = "engine";
  root.name = "query";
  root.start_steady_nanos = 2'000;
  root.start_unix_micros = 1700000000000000;
  root.duration_nanos = 5'500;
  root.thread_ordinal = 3;
  root.error = true;
  EXPECT_EQ(ExportChromeTraceJson({root}),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
            "  {\"name\": \"query\", \"cat\": \"engine\", \"ph\": \"X\", "
            "\"ts\": 2, \"dur\": 5.5, \"pid\": 1, \"tid\": 3, \"args\": "
            "{\"trace_id\": 7, \"span_id\": 1, \"parent_span_id\": 0, "
            "\"start_unix_micros\": 1700000000000000, \"error\": true}}\n"
            "]}\n");
}

TEST(ChromeTraceExportTest, EmptyGolden) {
  EXPECT_EQ(ExportChromeTraceJson({}),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n]}\n");
}

}  // namespace
}  // namespace sketchlink::obs

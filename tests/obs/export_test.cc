#include "obs/export.h"

#include <algorithm>
#include <chrono>
#include <regex>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/instruments.h"
#include "obs/registry.h"
#include "obs/trace_ring.h"

namespace sketchlink::obs {
namespace {

MetricSnapshot MakeCounter(const std::string& name, const std::string& help,
                           uint64_t value,
                           std::vector<std::pair<std::string, std::string>>
                               labels = {}) {
  MetricSnapshot metric;
  metric.id = MetricId(name, help, std::move(labels));
  metric.kind = MetricKind::kCounter;
  metric.counter_value = value;
  return metric;
}

MetricSnapshot MakeGauge(const std::string& name, double value) {
  MetricSnapshot metric;
  metric.id = MetricId(name, "");
  metric.kind = MetricKind::kGauge;
  metric.gauge_value = value;
  return metric;
}

MetricSnapshot MakeHistogram(
    const std::string& name, const std::string& help,
    std::initializer_list<uint64_t> samples,
    std::vector<std::pair<std::string, std::string>> labels = {}) {
  Histogram hist;
  for (uint64_t sample : samples) hist.Record(sample);
  MetricSnapshot metric;
  metric.id = MetricId(name, help, std::move(labels));
  metric.kind = MetricKind::kHistogram;
  metric.histogram = hist.Snapshot();
  return metric;
}

// --- Prometheus text format (goldens) -----------------------------------

TEST(PrometheusExportTest, CounterGolden) {
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(MakeCounter("sketchlink_demo_total",
                                         "Demo events", 42,
                                         {{"instance", "a"}}));
  EXPECT_EQ(ExportPrometheusText(snapshot),
            "# HELP sketchlink_demo_total Demo events\n"
            "# TYPE sketchlink_demo_total counter\n"
            "sketchlink_demo_total{instance=\"a\"} 42\n");
}

TEST(PrometheusExportTest, GaugeWithoutHelpOrLabelsGolden) {
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(MakeGauge("demo_depth", 2.5));
  EXPECT_EQ(ExportPrometheusText(snapshot),
            "# TYPE demo_depth gauge\n"
            "demo_depth 2.5\n");
}

TEST(PrometheusExportTest, HistogramCumulativeBucketsGolden) {
  // Samples 0, 1, 3, 1000 land in buckets with upper bounds 0, 1, 3 and
  // 1023; empty buckets between them are elided (legal in the cumulative
  // encoding), +Inf closes the series, and _count equals the +Inf bucket.
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(MakeHistogram("demo_latency_nanos", "Latency",
                                           {0, 1, 3, 1000},
                                           {{"instance", "a"}}));
  EXPECT_EQ(
      ExportPrometheusText(snapshot),
      "# HELP demo_latency_nanos Latency\n"
      "# TYPE demo_latency_nanos histogram\n"
      "demo_latency_nanos_bucket{instance=\"a\",le=\"0\"} 1\n"
      "demo_latency_nanos_bucket{instance=\"a\",le=\"1\"} 2\n"
      "demo_latency_nanos_bucket{instance=\"a\",le=\"3\"} 3\n"
      "demo_latency_nanos_bucket{instance=\"a\",le=\"1023\"} 4\n"
      "demo_latency_nanos_bucket{instance=\"a\",le=\"+Inf\"} 4\n"
      "demo_latency_nanos_sum{instance=\"a\"} 1004\n"
      "demo_latency_nanos_count{instance=\"a\"} 4\n");
}

TEST(PrometheusExportTest, EmptyHistogramStillEmitsInfSumCount) {
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(MakeHistogram("empty_nanos", "", {}));
  EXPECT_EQ(ExportPrometheusText(snapshot),
            "# TYPE empty_nanos histogram\n"
            "empty_nanos_bucket{le=\"+Inf\"} 0\n"
            "empty_nanos_sum 0\n"
            "empty_nanos_count 0\n");
}

TEST(PrometheusExportTest, FamilyHeaderEmittedOncePerName) {
  // Two instances of the same family: HELP/TYPE once, two samples.
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(
      MakeCounter("shared_total", "Shared", 1, {{"instance", "a"}}));
  snapshot.metrics.push_back(
      MakeCounter("shared_total", "Shared", 2, {{"instance", "b"}}));
  EXPECT_EQ(ExportPrometheusText(snapshot),
            "# HELP shared_total Shared\n"
            "# TYPE shared_total counter\n"
            "shared_total{instance=\"a\"} 1\n"
            "shared_total{instance=\"b\"} 2\n");
}

TEST(PrometheusExportTest, SanitizesMetricAndLabelNames) {
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(
      MakeCounter("bad-name.metric", "", 1, {{"label-key", "v"}}));
  snapshot.metrics.push_back(MakeCounter("9lives", "", 2));
  EXPECT_EQ(ExportPrometheusText(snapshot),
            "# TYPE bad_name_metric counter\n"
            "bad_name_metric{label_key=\"v\"} 1\n"
            "# TYPE _lives counter\n"
            "_lives 2\n");
}

TEST(PrometheusExportTest, EscapesLabelValues) {
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(
      MakeCounter("escaped_total", "", 1,
                  {{"path", "a\\b"}, {"quote", "say \"hi\""}, {"nl", "x\ny"}}));
  EXPECT_EQ(ExportPrometheusText(snapshot),
            "# TYPE escaped_total counter\n"
            "escaped_total{path=\"a\\\\b\",quote=\"say \\\"hi\\\"\","
            "nl=\"x\\ny\"} 1\n");
}

TEST(PrometheusExportTest, EscapesHelpText) {
  // HELP escapes backslash and newline (quotes are legal in HELP, unlike
  // in label values); a raw newline would let hostile help text inject
  // arbitrary exposition lines.
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(MakeCounter(
      "hostile_total", "path C:\\tmp\nfake_metric 1", 7));
  EXPECT_EQ(ExportPrometheusText(snapshot),
            "# HELP hostile_total path C:\\\\tmp\\nfake_metric 1\n"
            "# TYPE hostile_total counter\n"
            "hostile_total 7\n");
}

TEST(PrometheusExportTest, HostileLabelValuesStayOnOneLine) {
  // Regression: every hostile byte class in one label set — the sample must
  // still be exactly one well-formed line.
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(MakeCounter(
      "hostile_total", "", 1,
      {{"v", "a\\b\"c\nd"}, {"w", "\n\n\\\\\"\""}}));
  const std::string text = ExportPrometheusText(snapshot);
  EXPECT_EQ(text,
            "# TYPE hostile_total counter\n"
            "hostile_total{v=\"a\\\\b\\\"c\\nd\",w=\"\\n\\n\\\\\\\\\\\"\\\"\"}"
            " 1\n");
  // No raw newline sneaks inside any line: line count == 2.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(PrometheusExportTest, RegistrySanitizesNamesAtRegistration) {
  // The registration-time half of the belt-and-suspenders pair: hostile
  // metric/label names are canonicalized before they are stored, so
  // snapshot consumers (Find, validators) see the sanitized spelling.
  MetricRegistry registry;
  Counter counter;
  auto reg = registry.AddCounter(
      MetricId("bad name-total", "", {{"bad key!", "value"}}), &counter);
  const RegistrySnapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.metrics.size(), 1u);
  EXPECT_EQ(snapshot.metrics[0].id.name, "bad_name_total");
  ASSERT_EQ(snapshot.metrics[0].id.labels.size(), 1u);
  EXPECT_EQ(snapshot.metrics[0].id.labels[0].first, "bad_key_");
  EXPECT_EQ(snapshot.metrics[0].id.labels[0].second, "value");
}

TEST(PrometheusExportTest, EveryLineMatchesTheTextFormat) {
  // Belt-and-braces check mirroring the CI smoke validator: every emitted
  // line is either a HELP/TYPE comment or a `name{labels} value` sample.
  MetricRegistry registry;
  Counter counter;
  counter.Add(3);
  Gauge gauge;
  gauge.Set(7);
  Histogram hist;
  hist.Record(5);
  hist.Record(90000);
  auto r1 = registry.AddCounter(
      MetricId("fmt_total", "Some counter", {{"instance", "x"}}), &counter);
  auto r2 = registry.AddGauge(MetricId("fmt_level", "Some gauge"), &gauge);
  auto r3 =
      registry.AddHistogram(MetricId("fmt_nanos", "Some histogram"), &hist);

  const std::string text = ExportPrometheusText(registry.TakeSnapshot());
  const std::regex comment(
      R"(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+)");
  const std::regex sample(
      R"([a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eEinfa]+)");
  std::istringstream lines(text);
  std::string line;
  size_t checked = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, comment)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample)) << line;
    }
    ++checked;
  }
  EXPECT_GE(checked, 12u);  // 3 families: headers + samples
}

// --- JSON export (goldens) ----------------------------------------------

TEST(JsonExportTest, CounterAndGaugeGolden) {
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(
      MakeCounter("demo_total", "", 42, {{"instance", "a"}}));
  snapshot.metrics.push_back(MakeGauge("demo_depth", 2.5));
  EXPECT_EQ(ExportJson(snapshot),
            "{\n"
            "  \"metrics\": [\n"
            "    {\"name\": \"demo_total\", \"labels\": {\"instance\": "
            "\"a\"}, \"kind\": \"counter\", \"value\": 42},\n"
            "    {\"name\": \"demo_depth\", \"kind\": \"gauge\", \"value\": "
            "2.5}\n"
            "  ]\n"
            "}\n");
}

TEST(JsonExportTest, HistogramGolden) {
  RegistrySnapshot snapshot;
  snapshot.metrics.push_back(
      MakeHistogram("lat_nanos", "", {1, 1, 3, 1000}));
  // p50: rank 2 of 4 -> bucket le=1; p95/p99: rank 4 -> bucket [512,1023],
  // clamped to the observed max 1000. mean = 1005/4 = 251.25.
  EXPECT_EQ(ExportJson(snapshot),
            "{\n"
            "  \"metrics\": [\n"
            "    {\"name\": \"lat_nanos\", \"kind\": \"histogram\", "
            "\"count\": 4, \"sum\": 1005, \"max\": 1000, \"mean\": 251.25, "
            "\"p50\": 1, \"p95\": 1000, \"p99\": 1000, \"buckets\": "
            "[{\"le\": 1, \"count\": 2}, {\"le\": 3, \"count\": 1}, "
            "{\"le\": 1023, \"count\": 1}]}\n"
            "  ]\n"
            "}\n");
}

TEST(JsonExportTest, EmptySnapshotGolden) {
  EXPECT_EQ(ExportJson(RegistrySnapshot()), "{\n  \"metrics\": [\n  ]\n}\n");
}

// --- Trace export -------------------------------------------------------

TEST(TraceExportTest, Golden) {
  // Fixed events (not ring-recorded) so the timestamp fields are stable.
  TraceEvent first;
  first.sequence = 0;
  first.category = "engine";
  first.label = "query";
  first.start_steady_nanos = 1000;
  first.start_unix_micros = 1700000000000000;
  first.duration_nanos = 25000000;
  TraceEvent second;
  second.sequence = 1;
  second.category = "kv";
  second.label = "compaction";
  second.start_steady_nanos = 2000;
  second.start_unix_micros = 1700000000100000;
  second.duration_nanos = 40000000;
  EXPECT_EQ(ExportTraceJson({first, second}),
            "[\n"
            "  {\"sequence\": 0, \"category\": \"engine\", \"label\": "
            "\"query\", \"start_steady_nanos\": 1000, \"start_unix_micros\": "
            "1700000000000000, \"duration_nanos\": 25000000},\n"
            "  {\"sequence\": 1, \"category\": \"kv\", \"label\": "
            "\"compaction\", \"start_steady_nanos\": 2000, "
            "\"start_unix_micros\": 1700000000100000, \"duration_nanos\": "
            "40000000}\n"
            "]\n");
}

TEST(TraceExportTest, RingStampsStartTimes) {
  // Record computes start = now - duration for both clocks; the steady
  // start must land before "after" and the unix start must be a plausible
  // recent wall time (not zero).
  TraceRing ring(4);
  ring.Record("engine", "query", 25000000);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const uint64_t steady_after =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count());
  EXPECT_GT(events[0].start_steady_nanos, 0u);
  EXPECT_LT(events[0].start_steady_nanos, steady_after);
  EXPECT_GT(events[0].start_unix_micros, 1000000000000000u);  // after ~2001
}

TEST(TraceExportTest, EmptyGolden) {
  EXPECT_EQ(ExportTraceJson({}), "[\n]\n");
}

// --- WriteFile ----------------------------------------------------------

TEST(WriteFileTest, RoundTripsAndReportsBadPaths) {
  const std::string path = ::testing::TempDir() + "/obs_export_test.txt";
  ASSERT_TRUE(WriteFile(path, "hello metrics\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t read = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, read), "hello metrics\n");
  std::remove(path.c_str());

  EXPECT_FALSE(WriteFile("/no/such/dir/metrics.prom", "x").ok());
}

}  // namespace
}  // namespace sketchlink::obs

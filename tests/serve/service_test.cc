#include "serve/service.h"

#include <filesystem>
#include <string>

#include "gtest/gtest.h"
#include "serve/json.h"

namespace sketchlink::serve {
namespace {

Server::Request MakeRequest(std::string name = "", std::string body = "") {
  Server::Request request;
  if (!name.empty()) request.params.emplace_back("name", std::move(name));
  request.http.body = std::move(body);
  return request;
}

class LinkageServiceTest : public ::testing::Test {
 protected:
  LinkageServiceTest() {
    options_.scratch_dir =
        (std::filesystem::temp_directory_path() / "sketchlink_service_test")
            .string();
    std::filesystem::remove_all(options_.scratch_dir);
    options_.max_indexes = 3;
    options_.max_batch_records = 100;
    service_ = std::make_unique<LinkageService>(options_);
  }

  ~LinkageServiceTest() override {
    service_.reset();
    std::filesystem::remove_all(options_.scratch_dir);
  }

  obs::HttpResponse Create(const std::string& name,
                           const std::string& config = "{}") {
    return service_->CreateIndex(MakeRequest(name, config));
  }

  // Three NCVR-shaped records: two near-duplicates plus one distinct.
  obs::HttpResponse InsertFixture(const std::string& name) {
    return service_->InsertRecords(MakeRequest(
        name,
        R"({"records":[
             {"id":1,"fields":["ALICE","SMITH","RALEIGH","27601","F","1980"]},
             {"id":2,"fields":["ALICE","SMYTH","RALEIGH","27601","F","1980"]},
             {"id":3,"fields":["BOB","JONES","DURHAM","27701","M","1955"]}]})"));
  }

  LinkageService::Options options_;
  std::unique_ptr<LinkageService> service_;
};

TEST_F(LinkageServiceTest, CreateAppliesConfigAndEchoesIt) {
  const obs::HttpResponse response = Create(
      "t1",
      R"({"kind":"ncvr","lambda":500,"delta":0.1,"theta":0.25,"mu":64,
          "distance":"jw","threshold":0.8,"stripes":4})");
  EXPECT_EQ(response.status, 201) << response.body;
  const Json body = Json::Parse(response.body).value();
  EXPECT_EQ(body.GetString("name", ""), "t1");
  EXPECT_EQ(body.GetString("kind", ""), "NCVR");
  EXPECT_EQ(body.GetUint("lambda", 0), 500u);
  EXPECT_EQ(body.GetUint("mu", 0), 64u);
  EXPECT_EQ(body.GetUint("stripes", 0), 4u);
  EXPECT_DOUBLE_EQ(body.GetNumber("threshold", 0), 0.8);
  EXPECT_GT(body.GetUint("rho", 0), 0u);  // derived block width is reported
  EXPECT_EQ(service_->num_indexes(), 1u);
}

TEST_F(LinkageServiceTest, CreateRejectsBadInput) {
  EXPECT_EQ(Create("bad name").status, 400);           // space in name
  EXPECT_EQ(Create(std::string(65, 'a')).status, 400); // too long
  EXPECT_EQ(Create("x", R"({"kind":"martian"})").status, 400);
  EXPECT_EQ(Create("x", R"({"distance":"cosine"})").status, 400);
  EXPECT_EQ(Create("x", R"({"delta":8})").status, 400);
  EXPECT_EQ(Create("x", R"({"threshold":0})").status, 400);
  EXPECT_EQ(Create("x", R"({"stripes":10000})").status, 400);
  EXPECT_EQ(Create("x", R"({"lambda":0})").status, 400);
  EXPECT_EQ(Create("x", "{nope").status, 400);         // malformed JSON
  EXPECT_EQ(Create("x", "[1,2]").status, 400);         // not an object
  EXPECT_EQ(service_->num_indexes(), 0u);              // nothing leaked
}

TEST_F(LinkageServiceTest, CreateEnforcesUniqueNamesAndCap) {
  EXPECT_EQ(Create("a").status, 201);
  EXPECT_EQ(Create("a").status, 409);  // duplicate
  EXPECT_EQ(Create("b").status, 201);
  EXPECT_EQ(Create("c").status, 201);
  EXPECT_EQ(Create("d").status, 409);  // max_indexes = 3
  EXPECT_EQ(service_->num_indexes(), 3u);
}

TEST_F(LinkageServiceTest, InsertQueryDeleteLifecycle) {
  ASSERT_EQ(Create("life", R"({"threshold":0.8,"mu":64})").status, 201);
  const obs::HttpResponse inserted = InsertFixture("life");
  ASSERT_EQ(inserted.status, 200) << inserted.body;
  const Json insert_body = Json::Parse(inserted.body).value();
  EXPECT_EQ(insert_body.GetUint("inserted", 0), 3u);

  // Verified query: the exact duplicate of record 1 must come back with a
  // perfect score, the unrelated record 3 must not.
  const obs::HttpResponse verified = service_->Query(MakeRequest(
      "life",
      R"({"record":{"id":99,
           "fields":["ALICE","SMITH","RALEIGH","27601","F","1980"]},
          "verify":true})"));
  ASSERT_EQ(verified.status, 200) << verified.body;
  const Json verified_body = Json::Parse(verified.body).value();
  EXPECT_TRUE(verified_body.GetBool("verified", false));
  const Json* matches = verified_body.Find("matches");
  ASSERT_NE(matches, nullptr);
  ASSERT_GE(matches->array_items().size(), 1u);
  EXPECT_EQ(matches->array_items()[0].GetUint("id", 0), 1u);
  EXPECT_DOUBLE_EQ(matches->array_items()[0].GetNumber("score", 0), 1.0);
  for (const Json& match : matches->array_items()) {
    EXPECT_NE(match.GetUint("id", 0), 3u);
  }

  // Unverified query returns raw candidates without scores.
  const obs::HttpResponse raw = service_->Query(MakeRequest(
      "life",
      R"({"record":{"id":99,
           "fields":["ALICE","SMITH","RALEIGH","27601","F","1980"]},
          "verify":false})"));
  ASSERT_EQ(raw.status, 200);
  const Json raw_body = Json::Parse(raw.body).value();
  EXPECT_FALSE(raw_body.GetBool("verified", true));
  ASSERT_GE(raw_body.Find("matches")->array_items().size(), 1u);
  EXPECT_TRUE(
      raw_body.Find("matches")->array_items()[0].Find("score") == nullptr);

  // List reports per-index stats.
  const obs::HttpResponse listed = service_->ListIndexes(MakeRequest());
  ASSERT_EQ(listed.status, 200);
  const Json listed_body = Json::Parse(listed.body).value();
  ASSERT_EQ(listed_body.Find("indexes")->array_items().size(), 1u);
  const Json& entry = listed_body.Find("indexes")->array_items()[0];
  EXPECT_EQ(entry.GetString("name", ""), "life");
  EXPECT_EQ(entry.GetUint("records", 0), 3u);
  EXPECT_EQ(entry.GetUint("inserts", 0), 3u);
  EXPECT_GE(entry.GetUint("queries", 0), 2u);
  EXPECT_GT(entry.GetUint("memory_bytes", 0), 0u);

  // Delete drops the index, its routes answer 404, and the spill
  // directory is reclaimed.
  EXPECT_EQ(service_->DeleteIndex(MakeRequest("life")).status, 200);
  EXPECT_EQ(service_->DeleteIndex(MakeRequest("life")).status, 404);
  EXPECT_EQ(service_->Query(MakeRequest("life", R"({"record":{"id":1}})"))
                .status,
            404);
  EXPECT_EQ(service_->num_indexes(), 0u);
  size_t leftover_dirs = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(options_.scratch_dir)) {
    ++leftover_dirs;
  }
  EXPECT_EQ(leftover_dirs, 0u);  // the spill dir went with the index
}

TEST_F(LinkageServiceTest, InsertValidatesBatch) {
  ASSERT_EQ(Create("v").status, 201);
  EXPECT_EQ(service_->InsertRecords(MakeRequest("ghost", R"({"records":[]})"))
                .status,
            404);
  EXPECT_EQ(service_->InsertRecords(MakeRequest("v", "{nope")).status, 400);
  EXPECT_EQ(
      service_->InsertRecords(MakeRequest("v", R"({"records":42})")).status,
      400);
  // Record ids must be numeric.
  EXPECT_EQ(service_->InsertRecords(
                    MakeRequest("v", R"({"records":[{"id":"abc"}]})"))
                .status,
            400);
  // Too few fields for the blocking scheme.
  EXPECT_EQ(service_->InsertRecords(
                    MakeRequest(
                        "v", R"({"records":[{"id":1,"fields":["only"]}]})"))
                .status,
            400);
}

TEST_F(LinkageServiceTest, InsertEnforcesBatchCap) {
  options_.max_batch_records = 2;
  service_ = std::make_unique<LinkageService>(options_);
  ASSERT_EQ(Create("cap").status, 201);
  const obs::HttpResponse over = service_->InsertRecords(MakeRequest(
      "cap",
      R"({"records":[
           {"id":1,"fields":["A","B","C","D","E","F"]},
           {"id":2,"fields":["A","B","C","D","E","F"]},
           {"id":3,"fields":["A","B","C","D","E","F"]}]})"));
  EXPECT_EQ(over.status, 400) << over.body;
}

TEST_F(LinkageServiceTest, QueryHonorsLimit) {
  ASSERT_EQ(Create("lim", R"({"threshold":0.5,"mu":64})").status, 201);
  ASSERT_EQ(InsertFixture("lim").status, 200);
  const obs::HttpResponse limited = service_->Query(MakeRequest(
      "lim",
      R"({"record":{"id":99,
           "fields":["ALICE","SMITH","RALEIGH","27601","F","1980"]},
          "verify":true,"limit":1})"));
  ASSERT_EQ(limited.status, 200);
  EXPECT_EQ(
      Json::Parse(limited.body).value().Find("matches")->array_items().size(),
      1u);
}

TEST_F(LinkageServiceTest, QueryValidatesBody) {
  ASSERT_EQ(Create("q").status, 201);
  EXPECT_EQ(service_->Query(MakeRequest("q", "{nope")).status, 400);
  EXPECT_EQ(service_->Query(MakeRequest("q", "{}")).status, 400);  // no record
  EXPECT_EQ(
      service_->Query(MakeRequest("q", R"({"record":{"id":1}})")).status,
      400);  // no fields
}

TEST_F(LinkageServiceTest, IndexesAreIsolated) {
  ASSERT_EQ(Create("left", R"({"threshold":0.8,"mu":64})").status, 201);
  ASSERT_EQ(Create("right", R"({"threshold":0.8,"mu":64})").status, 201);
  ASSERT_EQ(InsertFixture("left").status, 200);

  // The sibling index sees none of left's records.
  const obs::HttpResponse response = service_->Query(MakeRequest(
      "right",
      R"({"record":{"id":99,
           "fields":["ALICE","SMITH","RALEIGH","27601","F","1980"]},
          "verify":false})"));
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(
      Json::Parse(response.body).value().GetUint("num_candidates", 99), 0u);
}

}  // namespace
}  // namespace sketchlink::serve

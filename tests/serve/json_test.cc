#include "serve/json.h"

#include <string>

#include "gtest/gtest.h"

namespace sketchlink::serve {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_TRUE(Json::Parse("true").value().bool_value());
  EXPECT_FALSE(Json::Parse("false").value().bool_value());
  EXPECT_DOUBLE_EQ(Json::Parse("3.5").value().number_value(), 3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("-2e3").value().number_value(), -2000.0);
  EXPECT_EQ(Json::Parse("\"hi\"").value().string_value(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::Parse(R"("a\"b\\c\/d\n\t")").value().string_value(),
            "a\"b\\c/d\n\t");
  EXPECT_EQ(Json::Parse("\"A\\u00e9\"").value().string_value(),
            "A\xc3\xa9");  // BMP escape -> UTF-8
}

TEST(JsonParseTest, NestedContainers) {
  const Result<Json> parsed =
      Json::Parse(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Json& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const Json* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_TRUE(a->array_items()[2].GetBool("b", false));
  EXPECT_TRUE(root.Find("c")->Find("d")->is_null());
}

TEST(JsonParseTest, MalformedInputsAreInvalidArgument) {
  // ("01" is tolerated: numbers go through strtod, which accepts leading
  // zeros — strictness there buys nothing for this plane.)
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
        "1.2.3", "{\"a\":1} trailing", "[1 2]", "nul"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

TEST(JsonParseTest, DepthCapRejectsHostileNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
  std::string shallow(10, '[');
  shallow += std::string(10, ']');
  EXPECT_TRUE(Json::Parse(shallow).ok());
}

TEST(JsonDumpTest, RoundTripsCompactly) {
  Json object = Json::Object();
  object.Set("id", Json::Int(12345678901234ull));
  object.Set("name", Json::Str("a\"b"));
  object.Set("score", Json::Number(0.8));
  Json array = Json::Array();
  array.Append(Json::Bool(true));
  array.Append(Json::Null());
  object.Set("tags", std::move(array));
  EXPECT_EQ(object.Dump(),
            R"({"id":12345678901234,"name":"a\"b","score":0.8,"tags":[true,null]})");
}

TEST(JsonDumpTest, NumbersUseShortestRoundTrip) {
  EXPECT_EQ(Json::Number(0.8).Dump(), "0.8");
  EXPECT_EQ(Json::Number(0.1).Dump(), "0.1");
  EXPECT_EQ(Json::Int(0).Dump(), "0");
  EXPECT_EQ(Json::Int(9007199254740992ull).Dump(), "9007199254740992");
  // Round trip is exact even when the short form is unavailable.
  const double awkward = 0.1 + 0.2;
  EXPECT_DOUBLE_EQ(
      Json::Parse(Json::Number(awkward).Dump()).value().number_value(),
      awkward);
}

TEST(JsonDumpTest, ControlCharactersAreEscaped) {
  EXPECT_EQ(Json::Str("a\001b\nc").Dump(), "\"a\\u0001b\\nc\"");
}

TEST(JsonAccessorsTest, TypedFallbacks) {
  const Json root =
      Json::Parse(R"({"n":5,"s":"x","b":true,"wrong":"nan"})").value();
  EXPECT_EQ(root.GetUint("n", 0), 5u);
  EXPECT_EQ(root.GetString("s", "d"), "x");
  EXPECT_TRUE(root.GetBool("b", false));
  EXPECT_EQ(root.GetUint("wrong", 9), 9u);     // wrong type -> fallback
  EXPECT_EQ(root.GetUint("absent", 9), 9u);
  EXPECT_EQ(root.GetString("n", "d"), "d");    // number is not a string
}

TEST(JsonParseTest, DuplicateKeysFirstWins) {
  const Json root = Json::Parse(R"({"k":1,"k":2})").value();
  EXPECT_EQ(root.GetUint("k", 0), 1u);
}

}  // namespace
}  // namespace sketchlink::serve

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/registry.h"
#include "obs/spans.h"
#include "serve/http_client.h"

namespace sketchlink::serve {
namespace {

using std::chrono::milliseconds;

/// Sends raw bytes and reads until the server closes the connection.
std::string RawRequest(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServerTest, RoutesWithParamsAndMethodSplit) {
  Server::Options options;
  options.num_workers = 2;
  Server server(options);
  server.AddRoute("GET", "/v1/items/{id}", [](const Server::Request& r) {
    obs::HttpResponse response;
    response.body = "item=" + std::string(r.Param("id"));
    return response;
  });
  server.AddRoute("POST", "/v1/items/{id}", [](const Server::Request& r) {
    obs::HttpResponse response;
    response.body = "posted " + r.http.body;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  auto get = Fetch("127.0.0.1", server.port(), "GET", "/v1/items/42");
  ASSERT_TRUE(get.ok()) << get.status().message();
  EXPECT_EQ(get.value().status, 200);
  EXPECT_EQ(get.value().body, "item=42");

  auto post =
      Fetch("127.0.0.1", server.port(), "POST", "/v1/items/42", "payload");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post.value().body, "posted payload");

  auto missing = Fetch("127.0.0.1", server.port(), "GET", "/v1/other");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  auto wrong_method =
      Fetch("127.0.0.1", server.port(), "DELETE", "/v1/items/42");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);

  // An empty {id} segment does not match the pattern.
  auto empty = Fetch("127.0.0.1", server.port(), "GET", "/v1/items/");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().status, 404);
}

TEST(ServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  Server::Options options;
  options.num_workers = 1;
  Server server(options);
  std::atomic<int> served{0};
  server.AddRoute("GET", "/count", [&](const Server::Request&) {
    obs::HttpResponse response;
    response.body = std::to_string(++served);
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  ClientConnection conn("127.0.0.1", server.port());
  for (int i = 1; i <= 5; ++i) {
    auto result = conn.RoundTrip("GET", "/count");
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result.value().body, std::to_string(i));
  }
  EXPECT_TRUE(conn.connected());  // all five rode the same socket
}

TEST(ServerTest, PipelinedRequestsAllGetResponses) {
  Server::Options options;
  options.num_workers = 1;
  Server server(options);
  server.AddRoute("GET", "/a", [](const Server::Request&) {
    obs::HttpResponse response;
    response.body = "A";
    return response;
  });
  server.AddRoute("GET", "/b", [](const Server::Request&) {
    obs::HttpResponse response;
    response.body = "B";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // Two requests in one write; the second carries Connection: close so the
  // server ends the connection after answering both in order.
  const std::string response = RawRequest(
      server.port(),
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const size_t first = response.find("\r\n\r\nA");
  const size_t second = response.find("\r\n\r\nB");
  EXPECT_NE(first, std::string::npos) << response;
  EXPECT_NE(second, std::string::npos) << response;
  EXPECT_LT(first, second);
}

TEST(ServerTest, QueueOverflowSheds429WithRetryAfter) {
  Server::Options options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.retry_after_seconds = 7;
  Server server(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  server.AddRoute("GET", "/slow", [&](const Server::Request&) {
    ++entered;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    obs::HttpResponse response;
    response.body = "done";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // First request occupies the only worker; once it is executing, the
  // second fills the queue. (Sent concurrently they could both be queued
  // before the worker wakes, and the second would be shed.)
  std::vector<std::thread> blocked;
  const auto expect_200 = [&] {
    auto result = Fetch("127.0.0.1", server.port(), "GET", "/slow", "", {},
                        /*timeout_ms=*/20'000);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.value().status, 200);
  };
  blocked.emplace_back(expect_200);
  while (entered.load() < 1) std::this_thread::sleep_for(milliseconds(1));
  blocked.emplace_back(expect_200);
  while (server.queue_depth() < 1) std::this_thread::sleep_for(milliseconds(1));

  // Queue is full: this one must be shed on the loop thread with 429 and
  // the advisory Retry-After, never reaching a worker.
  const std::string shed = RawRequest(
      server.port(), "GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(shed.rfind("HTTP/1.1 429 ", 0), 0u) << shed;
  EXPECT_NE(shed.find("Retry-After: 7\r\n"), std::string::npos) << shed;

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (auto& t : blocked) t.join();

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.responses_4xx, 1u);
  EXPECT_EQ(stats.responses_2xx, 2u);
  EXPECT_EQ(entered.load(), 2);  // the shed request never ran
}

TEST(ServerTest, ExpiredDeadlineSheds503WithoutExecuting) {
  obs::Tracer::Options trace_everything;
  trace_everything.sample_period = 1;
  trace_everything.keep_period = 1;
  obs::Tracer tracer(trace_everything);

  Server::Options options;
  options.num_workers = 1;
  options.tracer = &tracer;
  Server server(options);

  std::atomic<int> fast_runs{0};
  server.AddRoute("GET", "/hold", [&](const Server::Request&) {
    std::this_thread::sleep_for(milliseconds(300));
    obs::HttpResponse response;
    response.body = "held";
    return response;
  });
  server.AddRoute("GET", "/fast", [&](const Server::Request&) {
    ++fast_runs;
    obs::HttpResponse response;
    response.body = "fast";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // Occupy the worker for 300ms, then queue a request whose 1ms deadline
  // will be long gone when the worker gets to it.
  std::thread holder([&] {
    auto result = Fetch("127.0.0.1", server.port(), "GET", "/hold");
    EXPECT_TRUE(result.ok());
  });
  std::this_thread::sleep_for(milliseconds(50));
  auto expired = Fetch("127.0.0.1", server.port(), "GET", "/fast", "",
                       {{"X-Deadline-Ms", "1"}}, /*timeout_ms=*/20'000);
  holder.join();
  ASSERT_TRUE(expired.ok()) << expired.status().message();
  EXPECT_EQ(expired.value().status, 503);
  EXPECT_EQ(fast_runs.load(), 0);  // handler never ran

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.shed_deadline, 1u);

  // The shed is visible in the trace ring as an error-marked span.
  bool found = false;
  for (const auto& span : tracer.buffer().Snapshot()) {
    if (span.name == "shed_deadline" && span.error) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ServerTest, GracefulShutdownCompletesInFlightRequests) {
  Server::Options options;
  options.num_workers = 2;
  Server server(options);
  server.AddRoute("GET", "/slowish", [](const Server::Request&) {
    std::this_thread::sleep_for(milliseconds(200));
    obs::HttpResponse response;
    response.body = "finished";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::thread client([&] {
    auto result = Fetch("127.0.0.1", port, "GET", "/slowish", "", {},
                        /*timeout_ms=*/20'000);
    // The in-flight request completes normally even though Shutdown began
    // while its handler was sleeping.
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result.value().status, 200);
    EXPECT_EQ(result.value().body, "finished");
  });
  std::this_thread::sleep_for(milliseconds(50));
  server.Shutdown();
  client.join();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().executed, 1u);
}

TEST(ServerTest, HandlerExceptionBecomes500) {
  Server::Options options;
  options.num_workers = 1;
  Server server(options);
  server.AddRoute("GET", "/boom", [](const Server::Request&) -> obs::HttpResponse {
    throw std::runtime_error("kaboom");
  });
  ASSERT_TRUE(server.Start().ok());
  auto result = Fetch("127.0.0.1", server.port(), "GET", "/boom");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status, 500);
  EXPECT_EQ(server.stats().responses_5xx, 1u);
}

TEST(ServerTest, MalformedHttpIsRejectedByTheLoop) {
  Server::Options options;
  options.num_workers = 1;
  Server server(options);
  server.AddRoute("GET", "/x", [](const Server::Request&) {
    return obs::HttpResponse();
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(RawRequest(server.port(), "not http at all\r\n\r\n")
                .rfind("HTTP/1.1 400 ", 0),
            0u);
  // The server is still healthy afterwards.
  auto ok = Fetch("127.0.0.1", server.port(), "GET", "/x");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().status, 200);
}

TEST(ServerTest, RegistersServingMetrics) {
  obs::MetricRegistry registry;
  Server::Options options;
  options.num_workers = 1;
  options.registry = &registry;
  Server server(options);
  server.AddRoute("GET", "/x", [](const Server::Request&) {
    return obs::HttpResponse();
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(Fetch("127.0.0.1", server.port(), "GET", "/x").ok());

  EXPECT_NE(
      registry.TakeSnapshot().Find("serve_requests_admitted_total"),
      nullptr);
}

}  // namespace
}  // namespace sketchlink::serve

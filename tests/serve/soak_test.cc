// Concurrency soak of the serving plane: mixed insert/query traffic from
// 1, 2, and 8 client threads against one live server, plus a create/delete
// lifecycle race directly against the service. Sized to finish quickly on
// a small machine while still interleaving every lock in the path; run
// under ASan and TSan these tests are the data-race gate for the plane.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/registry.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/service.h"

namespace sketchlink::serve {
namespace {

class ServeSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scratch_ =
        (std::filesystem::temp_directory_path() / "sketchlink_soak_test")
            .string();
    std::filesystem::remove_all(scratch_);

    LinkageService::Options service_options;
    service_options.scratch_dir = scratch_;
    service_options.registry = &registry_;
    service_ = std::make_unique<LinkageService>(service_options);

    Server::Options server_options;
    server_options.num_workers = 4;
    server_options.max_queue = 256;
    server_options.registry = &registry_;
    server_ = std::make_unique<Server>(server_options);
    service_->RegisterRoutes(server_.get());
    ASSERT_TRUE(server_->Start().ok());

    auto created = Fetch("127.0.0.1", server_->port(), "POST",
                         "/v1/indexes/soak",
                         R"({"threshold":0.8,"mu":256,"stripes":8})");
    ASSERT_TRUE(created.ok()) << created.status().message();
    ASSERT_EQ(created.value().status, 201) << created.value().body;
  }

  void TearDown() override {
    server_.reset();
    service_.reset();
    std::filesystem::remove_all(scratch_);
  }

  static std::string RecordJson(uint64_t id) {
    const std::string first = id % 2 == 0 ? "ALICE" : "BOB";
    return R"({"id":)" + std::to_string(id) + R"(,"fields":[")" + first +
           R"(","SMITH","RALEIGH","276)" + std::to_string(id % 100) +
           R"(","F","1980"]})";
  }

  /// Runs `num_clients` keep-alive connections, each alternating batched
  /// inserts and verified queries. Every response must be 2xx.
  void RunMixedLoad(int num_clients, int ops_per_client) {
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        ClientConnection conn("127.0.0.1", server_->port());
        for (int op = 0; op < ops_per_client; ++op) {
          const uint64_t id =
              static_cast<uint64_t>(c) * 100'000 + static_cast<uint64_t>(op);
          Result<HttpResult> result =
              op % 2 == 0
                  ? conn.RoundTrip("POST", "/v1/indexes/soak/records",
                                   R"({"records":[)" + RecordJson(id) + "]}")
                  : conn.RoundTrip(
                        "POST", "/v1/indexes/soak/query",
                        R"({"record":)" + RecordJson(id) +
                            R"(,"verify":true,"limit":5})");
          if (!result.ok() || result.value().status != 200) {
            ++failures;
            ADD_FAILURE() << "client " << c << " op " << op << ": "
                          << (result.ok()
                                  ? std::to_string(result.value().status) +
                                        " " + result.value().body
                                  : std::string(result.status().message()));
            return;
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);

    const Server::Stats stats = server_->stats();
    EXPECT_EQ(stats.shed_queue_full, 0u);  // sized to never overflow
    EXPECT_EQ(stats.responses_5xx, 0u);
  }

  std::string scratch_;
  obs::MetricRegistry registry_;
  std::unique_ptr<LinkageService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeSoakTest, SingleClient) { RunMixedLoad(1, 40); }

TEST_F(ServeSoakTest, TwoClients) { RunMixedLoad(2, 30); }

TEST_F(ServeSoakTest, EightClients) { RunMixedLoad(8, 20); }

TEST_F(ServeSoakTest, QueriesObserveConcurrentInserts) {
  // One writer streams records while readers query; candidate counts only
  // grow, and nothing tears.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    ClientConnection conn("127.0.0.1", server_->port());
    for (uint64_t id = 0; id < 60; ++id) {
      auto result = conn.RoundTrip("POST", "/v1/indexes/soak/records",
                                   R"({"records":[)" + RecordJson(id * 2) +
                                       "]}");
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result.value().status, 200) << result.value().body;
    }
    done = true;
  });
  std::thread reader([&] {
    ClientConnection conn("127.0.0.1", server_->port());
    while (!done.load()) {
      auto result =
          conn.RoundTrip("POST", "/v1/indexes/soak/query",
                         R"({"record":)" + RecordJson(0) + "}");
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result.value().status, 200) << result.value().body;
    }
  });
  writer.join();
  reader.join();
}

TEST(ServiceLifecycleRaceTest, ConcurrentCreateDeleteIsSafe) {
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "sketchlink_race_test")
          .string();
  std::filesystem::remove_all(scratch);
  LinkageService::Options options;
  options.scratch_dir = scratch;
  options.max_indexes = 4;
  LinkageService service(options);

  // Hammer the same name from many threads: every response must be one of
  // the contract statuses, never a crash, never a leaked map entry.
  std::vector<std::thread> threads;
  std::atomic<int> unexpected{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        Server::Request request;
        request.params.emplace_back("name", "contested");
        request.http.body = R"({"mu":32})";
        if ((t + i) % 2 == 0) {
          const int status = service.CreateIndex(request).status;
          if (status != 201 && status != 409) ++unexpected;
        } else {
          const int status = service.DeleteIndex(request).status;
          if (status != 200 && status != 404) ++unexpected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_LE(service.num_indexes(), 1u);

  // Final delete (if present) reclaims every incarnation's spill dir: with
  // no index left alive the scratch root must be empty.
  Server::Request request;
  request.params.emplace_back("name", "contested");
  service.DeleteIndex(request);
  size_t leftover_dirs = 0;
  if (std::filesystem::exists(scratch)) {
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator(scratch)) {
      ++leftover_dirs;
    }
  }
  EXPECT_EQ(leftover_dirs, 0u);
  std::filesystem::remove_all(scratch);
}

}  // namespace
}  // namespace sketchlink::serve

#include "core/sharded_sketch.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "kv/env.h"
#include "text/qgram.h"

namespace sketchlink {
namespace {

/// Synthetic workload: `n` inserts spread over `distinct` blocking keys with
/// slightly perturbed key values.
std::vector<std::pair<std::string, std::string>> MakeEntries(size_t n,
                                                             size_t distinct) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  Rng rng(4711);
  for (size_t i = 0; i < n; ++i) {
    const size_t block = rng.UniformIndex(distinct);
    std::string value = "smith#john#" + std::to_string(block);
    if (i % 3 == 1) value[1] = 'y';
    if (i % 5 == 2) value += "x";
    out.emplace_back("key" + std::to_string(block), std::move(value));
  }
  return out;
}

std::vector<SketchInsert> AsInserts(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::vector<SketchInsert> inserts;
  inserts.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    inserts.push_back(SketchInsert{&entries[i].first, &entries[i].second,
                                   static_cast<RecordId>(i + 1)});
  }
  return inserts;
}

TEST(ShardedBlockSketchTest, InsertBatchIdenticalAtEveryPoolSize) {
  const auto entries = MakeEntries(3000, 80);
  const auto inserts = AsInserts(entries);

  // Reference: sequential drain (null pool). Snapshot the build-phase stats
  // before any queries mutate the counters.
  ShardedBlockSketch reference;
  reference.InsertBatch(inserts, nullptr);
  const BlockSketchStats ref_build_stats = reference.stats();

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    ShardedBlockSketch sketch;
    sketch.InsertBatch(inserts, &pool);

    EXPECT_EQ(sketch.num_blocks(), reference.num_blocks());
    EXPECT_EQ(sketch.stats().inserts, ref_build_stats.inserts);
    EXPECT_EQ(sketch.stats().blocks_created, ref_build_stats.blocks_created);
    EXPECT_EQ(sketch.stats().representative_comparisons,
              ref_build_stats.representative_comparisons);

    // Every query routes identically: the sub-sketch states are equal.
    for (const auto& [key, value] : entries) {
      EXPECT_EQ(sketch.Candidates(key, value), reference.Candidates(key, value))
          << "key=" << key;
    }
  }
}

TEST(ShardedBlockSketchTest, ConcurrentQueriesReturnConsistentResults) {
  const auto entries = MakeEntries(2000, 50);
  ShardedBlockSketch sketch;
  sketch.InsertBatch(AsInserts(entries), nullptr);

  // Expected answers from a sequential pass.
  std::vector<CandidateList> expected;
  expected.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    expected.push_back(sketch.Candidates(key, value));
  }

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (size_t t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = t; i < entries.size(); i += 8) {
        if (sketch.Candidates(entries[i].first, entries[i].second) !=
            expected[i]) {
          ++failures;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ShardedSBlockSketchTest, InsertBatchIdenticalAtEveryPoolSize) {
  const auto entries = MakeEntries(1500, 60);
  const auto inserts = AsInserts(entries);
  SBlockSketchOptions options;
  options.mu = 32;  // small budget: stripes evict and reload

  struct Run {
    std::vector<std::vector<RecordId>> answers;
    uint64_t inserts = 0;
  };
  const auto run_at = [&](size_t threads) {
    const std::string dir =
        "/tmp/sketchlink_sharded_test_" + std::to_string(threads);
    (void)kv::RemoveDirRecursively(dir);
    auto db = kv::Db::Open(dir);
    EXPECT_TRUE(db.ok());
    Run run;
    {
      ShardedSBlockSketch sketch(options, db->get());
      if (threads == 0) {
        EXPECT_TRUE(sketch.InsertBatch(inserts, nullptr).ok());
      } else {
        ThreadPool pool(threads);
        EXPECT_TRUE(sketch.InsertBatch(inserts, &pool).ok());
      }
      for (const auto& [key, value] : entries) {
        auto candidates = sketch.Candidates(key, value);
        EXPECT_TRUE(candidates.ok());
        run.answers.push_back(candidates->ToVector());
      }
      run.inserts = sketch.stats().inserts;
    }
    (void)kv::RemoveDirRecursively(dir);
    return run;
  };

  const Run reference = run_at(0);
  EXPECT_EQ(reference.inserts, inserts.size());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const Run run = run_at(threads);
    EXPECT_EQ(run.inserts, reference.inserts);
    EXPECT_EQ(run.answers, reference.answers) << "threads=" << threads;
  }
}

TEST(ShardedSBlockSketchTest, StripeMuBudgetsSumExactlyToMu) {
  // The ceil split used to hand every stripe ceil(mu/n), letting the
  // aggregate exceed the configured budget by up to n-1 blocks. The exact
  // split distributes the remainder instead.
  for (size_t mu : {size_t{1}, size_t{15}, size_t{16}, size_t{17},
                    size_t{100}, size_t{10000}}) {
    for (size_t stripes : {size_t{1}, size_t{3}, size_t{16}}) {
      size_t total = 0;
      for (size_t s = 0; s < stripes; ++s) {
        total += ShardedSBlockSketch::StripeMuBudget(mu, stripes, s);
      }
      if (mu >= stripes) {
        EXPECT_EQ(total, mu) << "mu=" << mu << " stripes=" << stripes;
      } else {
        // Degenerate small-mu case: every stripe needs at least one live
        // block to function, which is the documented floor.
        EXPECT_EQ(total, stripes);
      }
    }
  }
  EXPECT_EQ(ShardedSBlockSketch::StripeMuBudget(SIZE_MAX, 16, 3), SIZE_MAX);
}

TEST(ShardedSBlockSketchTest, ConcurrentMixedStress) {
  const std::string dir = "/tmp/sketchlink_sharded_stress";
  (void)kv::RemoveDirRecursively(dir);
  auto db = kv::Db::Open(dir);
  ASSERT_TRUE(db.ok());
  SBlockSketchOptions options;
  options.mu = 16;  // tiny: constant eviction/reload churn across stripes
  {
    ShardedSBlockSketch sketch(options, db->get());

    constexpr size_t kThreads = 8;
    constexpr size_t kOpsPerThread = 800;
    std::atomic<int> errors{0};
    std::vector<std::thread> workers;
    for (size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(t * 977 + 13);
        for (size_t i = 0; i < kOpsPerThread; ++i) {
          const std::string key = "blk" + std::to_string(rng.UniformIndex(90));
          const std::string value = "val#" + std::to_string(i % 17);
          if (i % 2 == 0) {
            if (!sketch
                     .Insert(key, value,
                             static_cast<RecordId>(t * kOpsPerThread + i))
                     .ok()) {
              ++errors;
            }
          } else {
            if (!sketch.Candidates(key, value).ok()) ++errors;
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();

    EXPECT_EQ(errors.load(), 0);
    EXPECT_TRUE(sketch.WaitForMaintenance().ok());
    EXPECT_EQ(sketch.stats().inserts, kThreads * kOpsPerThread / 2);
    EXPECT_EQ(sketch.stats().queries, kThreads * kOpsPerThread / 2);
    // The per-stripe budgets sum to exactly mu, so the aggregate holds the
    // global bound even under contention.
    EXPECT_LE(sketch.num_live_blocks(), options.mu);
  }
  (void)kv::RemoveDirRecursively(dir);
}

TEST(BlockSketchQGramTest, CachedProfilesMatchDirectDistance) {
  // The cached-profile fast path must route exactly like a policy that
  // recomputes 1 - QGramDice from the raw strings on every comparison.
  BlockSketchOptions cached_options;
  cached_options.distance_kind = KeyDistanceKind::kQGramDice;
  cached_options.qgram = 2;
  BlockSketch cached(cached_options);

  BlockSketchOptions direct_options;  // kJaroWinkler kind, custom fn below
  BlockSketch direct(direct_options, [](std::string_view a,
                                        std::string_view b) {
    return 1.0 - text::QGramDice(a, b, 2);
  });

  const auto entries = MakeEntries(2500, 40);
  for (size_t i = 0; i < entries.size(); ++i) {
    cached.Insert(entries[i].first, entries[i].second,
                  static_cast<RecordId>(i + 1));
    direct.Insert(entries[i].first, entries[i].second,
                  static_cast<RecordId>(i + 1));
  }

  EXPECT_EQ(cached.num_blocks(), direct.num_blocks());
  for (const auto& [key, value] : entries) {
    EXPECT_EQ(cached.Candidates(key, value), direct.Candidates(key, value))
        << "key=" << key << " value=" << value;
  }
  EXPECT_EQ(cached.stats().representative_comparisons,
            direct.stats().representative_comparisons);
}

}  // namespace
}  // namespace sketchlink

// Determinism regression for the batched kernel routing path: with kernels
// enabled, a ShardedBlockSketch built at 1, 2, and 8 threads must be
// IDENTICAL — same blocks, same candidates, same comparison counters — for
// every built-in distance kind and every dispatch tier this CPU offers. The
// kernel sketch is additionally cross-checked against a legacy sketch pinned
// to the scalar comparison loop (explicit KeyDistanceFn), which must route
// every record to the same sub-block.

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/sharded_sketch.h"
#include "simd/dispatch.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/qgram.h"

namespace sketchlink {
namespace {

std::vector<std::pair<std::string, std::string>> MakeEntries(size_t n,
                                                             size_t distinct) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  Rng rng(0xde7e21ULL);
  const char* surnames[] = {"smith", "johnson", "miller", "o'brien", "ng"};
  for (size_t i = 0; i < n; ++i) {
    const size_t block = rng.UniformIndex(distinct);
    std::string value = std::string(surnames[i % 5]) + "#john#" +
                        std::to_string(block * 37);
    if (i % 3 == 1) value[0] = 'z';
    if (i % 5 == 2) value += "xy";
    if (i % 11 == 3) value.clear();  // empty key values must route too
    out.emplace_back("key" + std::to_string(block), std::move(value));
  }
  return out;
}

std::vector<SketchInsert> AsInserts(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::vector<SketchInsert> inserts;
  inserts.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    inserts.push_back(SketchInsert{&entries[i].first, &entries[i].second,
                                   static_cast<RecordId>(i + 1)});
  }
  return inserts;
}

/// The scalar reference distance of a built-in kind, as an explicit
/// KeyDistanceFn — passing it pins the legacy comparison loop.
KeyDistanceFn ScalarFnFor(KeyDistanceKind kind, size_t qgram) {
  switch (kind) {
    case KeyDistanceKind::kJaroWinkler:
      return DefaultKeyDistance();
    case KeyDistanceKind::kQGramDice:
      // Exactly the cached-profile metric, recomputed from the raw strings
      // on every call (conventions included — QGrams pads, so even an empty
      // string has a non-empty profile for q >= 2).
      return [qgram](std::string_view a, std::string_view b) {
        QGramProfile pa = text::QGrams(a, qgram);
        std::sort(pa.begin(), pa.end());
        QGramProfile pb = text::QGrams(b, qgram);
        std::sort(pb.begin(), pb.end());
        return SketchPolicy::ProfileDistance(pa, pb);
      };
    case KeyDistanceKind::kLevenshtein:
      return [](std::string_view a, std::string_view b) {
        return text::NormalizedLevenshteinDistance(a, b);
      };
  }
  return DefaultKeyDistance();
}

class KernelRoutingDeterminismTest
    : public ::testing::TestWithParam<KeyDistanceKind> {
 protected:
  void TearDown() override { simd::ResetActiveLevelForTesting(); }
};

TEST_P(KernelRoutingDeterminismTest, IdenticalAcrossThreadsTiersAndScalar) {
  if (!simd::KernelsEnabled()) GTEST_SKIP() << "kernels disabled via env";
  const KeyDistanceKind kind = GetParam();
  BlockSketchOptions options;
  options.distance_kind = kind;

  const auto entries = MakeEntries(2500, 60);
  const auto inserts = AsInserts(entries);

  // Legacy scalar loop: an explicit KeyDistanceFn computing the same metric.
  // Built once; everything else must match it.
  BlockSketchOptions legacy_options = options;
  if (kind == KeyDistanceKind::kQGramDice) {
    // A custom fn must not be combined with kQGramDice (the cached-profile
    // path owns that metric); the equivalent legacy configuration computes
    // the dice distance from the raw strings under kJaroWinkler kind.
    legacy_options.distance_kind = KeyDistanceKind::kJaroWinkler;
  }
  ShardedBlockSketch legacy(legacy_options,
                            ScalarFnFor(kind, options.qgram));
  legacy.InsertBatch(inserts, nullptr);
  const BlockSketchStats legacy_stats = legacy.stats();

  for (int level = 0; level <= 3; ++level) {
    const simd::KernelLevel requested = static_cast<simd::KernelLevel>(level);
    if (simd::OpsForLevel(requested) == nullptr) continue;
    ASSERT_EQ(simd::SetActiveLevelForTesting(requested), requested);

    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ThreadPool pool(threads);
      ShardedBlockSketch sketch(options);  // empty fn: kernel path
      sketch.InsertBatch(inserts, &pool);

      EXPECT_EQ(sketch.num_blocks(), legacy.num_blocks())
          << "level=" << level << " threads=" << threads;
      // The historical comparisons accounting is identical on the kernel
      // path even when prune bounds skip evaluations.
      EXPECT_EQ(sketch.stats().representative_comparisons,
                legacy_stats.representative_comparisons)
          << "level=" << level << " threads=" << threads;

      for (const auto& [key, value] : entries) {
        ASSERT_EQ(sketch.Candidates(key, value),
                  legacy.Candidates(key, value))
            << "level=" << level << " threads=" << threads << " key=" << key
            << " value=" << value;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KernelRoutingDeterminismTest,
                         ::testing::Values(KeyDistanceKind::kJaroWinkler,
                                           KeyDistanceKind::kQGramDice,
                                           KeyDistanceKind::kLevenshtein),
                         [](const auto& info) {
                           switch (info.param) {
                             case KeyDistanceKind::kJaroWinkler:
                               return "JaroWinkler";
                             case KeyDistanceKind::kQGramDice:
                               return "QGramDice";
                             case KeyDistanceKind::kLevenshtein:
                               return "Levenshtein";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace sketchlink

// Tests for SkipBloom's cardinality estimators (Horvitz-Thompson over the
// Bernoulli sample): distinct-key count and range counts.

#include <gtest/gtest.h>

#include <string>

#include "core/skip_bloom.h"

namespace sketchlink {
namespace {

// Fixed-width keys so lexicographic ranges equal numeric ranges.
std::string PaddedKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "K%07d", i);
  return buf;
}

TEST(SkipBloomEstimateTest, DistinctCountWithinRelativeError) {
  const int n = 60000;
  SkipBloomOptions options;
  options.expected_keys = n;
  options.seed = 0xE5;
  SkipBloom synopsis(options);
  for (int i = 0; i < n; ++i) synopsis.Insert(PaddedKey(i));
  const double estimate = synopsis.EstimateDistinctKeys();
  // ~sqrt(60000) = 245 samples -> ~6-7% standard error; allow 25%, plus the
  // downward bias from Bloom-FP dedup skips.
  EXPECT_GT(estimate, n * 0.6) << estimate;
  EXPECT_LT(estimate, n * 1.3) << estimate;
}

TEST(SkipBloomEstimateTest, EmptySynopsisEstimatesZero) {
  SkipBloom synopsis;
  EXPECT_DOUBLE_EQ(synopsis.EstimateDistinctKeys(), 0.0);
  EXPECT_DOUBLE_EQ(synopsis.EstimateRangeCount("A", "Z"), 0.0);
}

TEST(SkipBloomEstimateTest, RangeCountTracksRangeWidth) {
  const int n = 60000;
  SkipBloomOptions options;
  options.expected_keys = n;
  options.seed = 0xE6;
  SkipBloom synopsis(options);
  for (int i = 0; i < n; ++i) synopsis.Insert(PaddedKey(i));

  // First half vs second half: both ~n/2.
  const double first_half =
      synopsis.EstimateRangeCount(PaddedKey(0), PaddedKey(n / 2 - 1));
  const double second_half =
      synopsis.EstimateRangeCount(PaddedKey(n / 2), PaddedKey(n - 1));
  EXPECT_GT(first_half, n * 0.25);
  EXPECT_LT(first_half, n * 0.8);
  EXPECT_GT(second_half, n * 0.25);
  EXPECT_LT(second_half, n * 0.8);
  // The halves sum to roughly the whole.
  EXPECT_NEAR(first_half + second_half, synopsis.EstimateDistinctKeys(),
              1e-6);
}

TEST(SkipBloomEstimateTest, DisjointRangeEstimatesZero) {
  SkipBloomOptions options;
  options.expected_keys = 10000;
  SkipBloom synopsis(options);
  for (int i = 0; i < 10000; ++i) synopsis.Insert(PaddedKey(i));
  EXPECT_DOUBLE_EQ(synopsis.EstimateRangeCount("Z", "ZZZZ"), 0.0);
  EXPECT_DOUBLE_EQ(synopsis.EstimateRangeCount("B", "A"), 0.0);  // hi < lo
}

TEST(SkipBloomEstimateTest, NarrowRangeSmallerThanWideRange) {
  const int n = 40000;
  SkipBloomOptions options;
  options.expected_keys = n;
  options.seed = 0xE7;
  SkipBloom synopsis(options);
  for (int i = 0; i < n; ++i) synopsis.Insert(PaddedKey(i));
  const double narrow =
      synopsis.EstimateRangeCount(PaddedKey(0), PaddedKey(n / 10));
  const double wide =
      synopsis.EstimateRangeCount(PaddedKey(0), PaddedKey(n - 1));
  EXPECT_LT(narrow, wide);
}

}  // namespace
}  // namespace sketchlink

#include "core/skip_bloom.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "baselines/map_summary.h"
#include "common/random.h"

namespace sketchlink {
namespace {

std::vector<std::string> MakeKeys(size_t n, uint64_t seed = 1) {
  // Name-like keys with duplicates and shared prefixes.
  static const char* stems[] = {"JOHNS", "JOHNSON", "JOHNSTON", "JORDAN",
                                "JOLLY", "SMITH",   "SMYTHE",   "WILLIAMS",
                                "BROWN", "GARCIA",  "MILLER",   "DAVIS"};
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string key = stems[rng.UniformIndex(std::size(stems))];
    key += std::to_string(rng.UniformUint64(n / 2 + 1));
    keys.push_back(std::move(key));
  }
  return keys;
}

SkipBloomOptions SmallOptions(uint64_t n) {
  SkipBloomOptions options;
  options.expected_keys = n;
  options.filters_per_block = 5;
  options.bloom_fp = 0.05;
  options.seed = 0xfeedULL;
  return options;
}

TEST(SkipBloomTest, EmptySynopsisRejectsEverything) {
  SkipBloom synopsis(SmallOptions(1000));
  EXPECT_FALSE(synopsis.Query("ANYTHING"));
  EXPECT_EQ(synopsis.stats().inserts, 0u);
}

TEST(SkipBloomTest, NoFalseNegatives) {
  // The defining guarantee (Sec. 4.2): if a key was inserted, Query must
  // return true — errors are one-sided.
  const auto keys = MakeKeys(20000);
  SkipBloom synopsis(SmallOptions(keys.size()));
  for (const auto& key : keys) synopsis.Insert(key);
  for (const auto& key : keys) {
    EXPECT_TRUE(synopsis.Query(key)) << key;
  }
}

TEST(SkipBloomTest, FalsePositiveRateIsBounded) {
  const auto keys = MakeKeys(20000);
  SkipBloom synopsis(SmallOptions(keys.size()));
  for (const auto& key : keys) synopsis.Insert(key);

  std::set<std::string> inserted(keys.begin(), keys.end());
  int false_positives = 0;
  int probes = 0;
  Rng rng(4242);
  for (int i = 0; i < 20000; ++i) {
    const std::string probe = "ABSENT" + std::to_string(rng.NextUint64());
    if (inserted.count(probe)) continue;
    ++probes;
    if (synopsis.Query(probe)) ++false_positives;
  }
  // Per-block error is bounded by 1 - (1-fp)^m = 1 - 0.95^5 ~ 0.226; the
  // observed rate on random probes should sit well under that bound.
  const double observed = static_cast<double>(false_positives) / probes;
  EXPECT_LT(observed, 0.25) << observed;
}

TEST(SkipBloomTest, SampledKeysAreSubsetAndRoughlySqrtN) {
  const size_t n = 40000;
  const auto keys = MakeKeys(n);
  SkipBloom synopsis(SmallOptions(n));
  for (const auto& key : keys) synopsis.Insert(key);

  const auto sampled = synopsis.SampledKeys();
  const std::set<std::string> universe(keys.begin(), keys.end());
  for (const auto& key : sampled) {
    EXPECT_TRUE(universe.count(key)) << key;
  }
  // With dedup on (default), sampling is Bernoulli(n^-1/2) over distinct
  // keys, further thinned by Bloom false positives during the membership
  // short-circuit; bound it loosely from both sides.
  const double expected = static_cast<double>(universe.size()) /
                          std::sqrt(static_cast<double>(n));
  EXPECT_GT(sampled.size(), expected * 0.1);
  EXPECT_LT(sampled.size(), expected * 2.0);

  // With dedup off (the paper's footnote-5 variant) every insert draws a
  // sampling decision: E[sampled] ~ inserts * n^-1/2 = sqrt(n).
  SkipBloomOptions raw_options = SmallOptions(n);
  raw_options.dedup_inserts = false;
  SkipBloom raw(raw_options);
  for (const auto& key : keys) raw.Insert(key);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  EXPECT_GT(raw.SampledKeys().size(), sqrt_n * 0.5);
  EXPECT_LT(raw.SampledKeys().size(), sqrt_n * 2.0);
}

TEST(SkipBloomTest, SampledKeysAreSorted) {
  const auto keys = MakeKeys(10000);
  SkipBloom synopsis(SmallOptions(keys.size()));
  for (const auto& key : keys) synopsis.Insert(key);
  const auto sampled = synopsis.SampledKeys();
  for (size_t i = 1; i < sampled.size(); ++i) {
    EXPECT_LE(sampled[i - 1], sampled[i]);
  }
}

TEST(SkipBloomTest, DuplicateInsertsStillQueryTrue) {
  SkipBloom synopsis(SmallOptions(100));
  for (int i = 0; i < 50; ++i) synopsis.Insert("SAMEKEY");
  EXPECT_TRUE(synopsis.Query("SAMEKEY"));
}

TEST(SkipBloomTest, KeysSmallerThanAllSampledAreFound) {
  // Keys sorting before every sampled key land in the sentinel block; they
  // must still be queryable.
  SkipBloomOptions options = SmallOptions(100);
  SkipBloom synopsis(options);
  synopsis.Insert("AAAA");  // likely absorbed by the sentinel block
  for (int i = 0; i < 200; ++i) {
    synopsis.Insert("M" + std::to_string(i));
  }
  EXPECT_TRUE(synopsis.Query("AAAA"));
}

TEST(SkipBloomTest, MemoryIsSublinearInKeys) {
  // The headline property (Fig. 6b): SkipBloom's footprint grows ~sqrt(n)
  // while a hash map grows linearly. Compare growth factors over a 16x
  // increase in keys.
  const size_t small_n = 4000;
  const size_t large_n = 64000;

  SkipBloom small_synopsis(SmallOptions(small_n));
  for (const auto& key : MakeKeys(small_n, 5)) small_synopsis.Insert(key);
  SkipBloom large_synopsis(SmallOptions(large_n));
  for (const auto& key : MakeKeys(large_n, 6)) large_synopsis.Insert(key);

  const double synopsis_growth =
      static_cast<double>(large_synopsis.ApproximateMemoryUsage()) /
      static_cast<double>(small_synopsis.ApproximateMemoryUsage());

  MapSummary small_map;
  for (const auto& key : MakeKeys(small_n, 5)) small_map.Insert(key);
  MapSummary large_map;
  for (const auto& key : MakeKeys(large_n, 6)) large_map.Insert(key);
  const double map_growth =
      static_cast<double>(large_map.ApproximateMemoryUsage()) /
      static_cast<double>(small_map.ApproximateMemoryUsage());

  // sqrt(16x) = 4x for the synopsis vs ~16x for the map.
  EXPECT_LT(synopsis_growth, map_growth * 0.7)
      << "synopsis " << synopsis_growth << "x, map " << map_growth << "x";
}

TEST(SkipBloomTest, StatsAreTracked) {
  SkipBloom synopsis(SmallOptions(1000));
  const auto keys = MakeKeys(1000);
  for (const auto& key : keys) synopsis.Insert(key);
  EXPECT_EQ(synopsis.stats().inserts, keys.size());
  (void)synopsis.Query("PROBE");
  EXPECT_EQ(synopsis.stats().queries, 1u);
  EXPECT_GT(synopsis.num_blocks(), 0u);
  EXPECT_GT(synopsis.num_filters(), 0u);
}

TEST(SkipBloomTest, HandOffReferencesKeepConsistency) {
  // Force the Fig. 2 scenario: insert many keys under one region so filters
  // fill up, then (by construction with a high sampling rate) new sampled
  // keys land between them and must still find older keys via references.
  SkipBloomOptions options;
  options.expected_keys = 64;  // p = 1/8: plenty of sampled keys
  options.filters_per_block = 2;
  options.bloom_fp = 0.01;
  options.seed = 0x123;
  SkipBloom synopsis(options);

  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back("KEY" + std::to_string(100000 + i));
  }
  for (const auto& key : keys) synopsis.Insert(key);
  for (const auto& key : keys) {
    EXPECT_TRUE(synopsis.Query(key)) << key;
  }
}

TEST(SkipBloomTest, ConjunctionQueriesCompositeKeys) {
  SkipBloom synopsis(SmallOptions(1000));
  synopsis.Insert("GIVEN:JAMES");
  synopsis.Insert("SURNAME:JOHNSON");
  synopsis.Insert("TOWN:RALEIGH");
  // All parts present -> true.
  EXPECT_TRUE(synopsis.QueryConjunction(
      {"GIVEN:JAMES", "SURNAME:JOHNSON", "TOWN:RALEIGH"}));
  // Any absent part fails the conjunction.
  EXPECT_FALSE(synopsis.QueryConjunction(
      {"GIVEN:JAMES", "SURNAME:NOTTHERE"}));
  // Empty conjunction is false by convention.
  EXPECT_FALSE(synopsis.QueryConjunction({}));
  // Single-element conjunction == plain query.
  EXPECT_TRUE(synopsis.QueryConjunction({"TOWN:RALEIGH"}));
}

class SkipBloomScaleSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SkipBloomScaleSweep, NoFalseNegativesAtEveryScale) {
  const size_t n = GetParam();
  const auto keys = MakeKeys(n, n);
  SkipBloom synopsis(SmallOptions(n));
  for (const auto& key : keys) synopsis.Insert(key);
  for (const auto& key : keys) {
    ASSERT_TRUE(synopsis.Query(key)) << key << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, SkipBloomScaleSweep,
                         ::testing::Values(10, 100, 1000, 10000, 50000));

}  // namespace
}  // namespace sketchlink

#include "core/block_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

namespace sketchlink {
namespace {

BlockSketchOptions SmallOptions() {
  BlockSketchOptions options;
  options.lambda = 3;
  options.delta = 0.1;
  options.theta = 0.25;
  options.seed = 0x77;
  return options;
}

TEST(BlockSketchOptionsTest, RhoFollowsLemma51) {
  BlockSketchOptions options;
  options.lambda = 3;
  options.delta = 0.1;
  // rho = ceil(3 * ln(10)) = ceil(6.907) = 7.
  EXPECT_EQ(options.rho(), 7u);
  options.delta = 0.5;
  EXPECT_EQ(options.rho(), 3u);  // ceil(3 * 0.693) = 3
  options.lambda = 5;
  options.delta = 0.01;
  EXPECT_EQ(options.rho(), 24u);  // ceil(5 * 4.605) = 24
}

TEST(SketchBlockTest, EncodeDecodeRoundTrip) {
  SketchBlock block(3);
  block.subs[0].representatives = {"JOHN#JONES", "JOHN#JONAS"};
  block.subs[0].members = {1, 2, 3};
  block.subs[2].members = {99};
  std::string encoded;
  block.EncodeTo(&encoded);
  std::string_view input(encoded);
  auto decoded = SketchBlock::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(input.empty());
  ASSERT_EQ(decoded->subs.size(), 3u);
  EXPECT_EQ(decoded->subs[0].representatives,
            block.subs[0].representatives);
  EXPECT_EQ(decoded->subs[0].members, block.subs[0].members);
  EXPECT_TRUE(decoded->subs[1].members.empty());
  EXPECT_EQ(decoded->subs[2].members, block.subs[2].members);
  EXPECT_EQ(decoded->TotalMembers(), 4u);
}

TEST(SketchBlockTest, DecodeTruncatedFails) {
  SketchBlock block(2);
  block.subs[0].members = {1, 2};
  std::string encoded;
  block.EncodeTo(&encoded);
  encoded.pop_back();
  std::string_view input(encoded);
  EXPECT_TRUE(SketchBlock::DecodeFrom(&input).status().IsCorruption());
}

TEST(BlockSketchTest, QueryUnknownBlockIsEmpty) {
  BlockSketch sketch(SmallOptions());
  EXPECT_TRUE(sketch.Candidates("NOPE", "NOPE#VALUES").empty());
  EXPECT_FALSE(sketch.HasBlock("NOPE"));
}

TEST(BlockSketchTest, InsertCreatesBlockAndRoutesMember) {
  BlockSketch sketch(SmallOptions());
  sketch.Insert("JOHN#JON", "JOHN#JONES", 1);
  EXPECT_TRUE(sketch.HasBlock("JOHN#JON"));
  EXPECT_EQ(sketch.num_blocks(), 1u);
  const auto block = sketch.FindBlock("JOHN#JON");
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->TotalMembers(), 1u);
  EXPECT_EQ(sketch.stats().blocks_created, 1u);
}

TEST(BlockSketchTest, SimilarKeysLandInSameSubBlock) {
  BlockSketch sketch(SmallOptions());
  // All of these are within theta of each other: they should co-locate and
  // a query for any of them should return the others.
  sketch.Insert("JOHN#JON", "JOHN#JONES", 1);
  sketch.Insert("JOHN#JON", "JOHN#JONAS", 2);
  sketch.Insert("JOHN#JON", "JOHN#JONES", 3);
  const auto candidates = sketch.Candidates("JOHN#JON", "JOHN#JONES");
  const std::set<RecordId> got(candidates.begin(), candidates.end());
  EXPECT_TRUE(got.count(1));
  EXPECT_TRUE(got.count(3));
}

TEST(BlockSketchTest, DistantKeysLandInDifferentSubBlocks) {
  BlockSketchOptions options = SmallOptions();
  BlockSketch sketch(options);
  // Key values close to the block key vs very far from it.
  sketch.Insert("JOHN#JON", "JOHN#JON", 1);          // distance ~0 -> ring 0
  sketch.Insert("JOHN#JON", "XQZW#VVKP", 2);         // huge distance -> ring 2
  const auto block = sketch.FindBlock("JOHN#JON");
  ASSERT_NE(block, nullptr);
  size_t populated = 0;
  for (const auto& sub : block->subs) {
    if (!sub.members.empty()) ++populated;
  }
  EXPECT_EQ(populated, 2u);
}

TEST(BlockSketchTest, RepresentativeCountCappedAtRho) {
  BlockSketchOptions options = SmallOptions();
  BlockSketch sketch(options);
  for (int i = 0; i < 500; ++i) {
    sketch.Insert("KEY", "KEY#VALUE" + std::to_string(i), i);
  }
  const auto block = sketch.FindBlock("KEY");
  ASSERT_NE(block, nullptr);
  for (const auto& sub : block->subs) {
    EXPECT_LE(sub.representatives.size(), options.rho());
  }
  EXPECT_EQ(block->TotalMembers(), 500u);
}

TEST(BlockSketchTest, ComparisonsPerQueryAreBoundedByLambdaRho) {
  // The core claim of Problem Statement 2: constant comparisons per
  // operation regardless of block size.
  BlockSketchOptions options = SmallOptions();
  BlockSketch sketch(options);
  for (int i = 0; i < 2000; ++i) {
    sketch.Insert("BIGBLOCK", "BIGBLOCK#V" + std::to_string(i % 7), i);
  }
  const uint64_t before = sketch.stats().representative_comparisons;
  (void)sketch.Candidates("BIGBLOCK", "BIGBLOCK#V3");
  const uint64_t per_query =
      sketch.stats().representative_comparisons - before;
  EXPECT_LE(per_query, options.lambda * options.rho());
  EXPECT_GE(per_query, 1u);
}

TEST(BlockSketchTest, MatchingPairDetectedWithHighProbability) {
  // Lemma 5.1 end-to-end: insert pairs of similar key-values into the same
  // block; the query must land in the sub-block that holds its match with
  // probability >= 1 - delta.
  BlockSketchOptions options = SmallOptions();
  options.delta = 0.1;
  BlockSketch sketch(options);

  const int pairs = 400;
  // Populate with varied values, one "planted" match per pair id.
  for (int i = 0; i < pairs; ++i) {
    const std::string value = "SMITH" + std::to_string(i) + "#JOHNSON";
    sketch.Insert("SMI#J", value, i);
  }
  int found = 0;
  for (int i = 0; i < pairs; ++i) {
    // Query with a lightly perturbed version of the planted value.
    const std::string value = "SMITH" + std::to_string(i) + "#JOHNSN";
    const auto candidates = sketch.Candidates("SMI#J", value);
    for (RecordId id : candidates) {
      if (id == static_cast<RecordId>(i)) {
        ++found;
        break;
      }
    }
  }
  const double hit_rate = static_cast<double>(found) / pairs;
  EXPECT_GE(hit_rate, 1.0 - options.delta - 0.08) << hit_rate;
}

TEST(BlockSketchTest, MemoryGrowsWithBlocks) {
  BlockSketch sketch(SmallOptions());
  const size_t empty_bytes = sketch.ApproximateMemoryUsage();
  for (int i = 0; i < 100; ++i) {
    sketch.Insert("BLOCK" + std::to_string(i), "VALUE", i);
  }
  EXPECT_GT(sketch.ApproximateMemoryUsage(), empty_bytes);
}

TEST(BlockSketchTest, CustomDistanceFunctionIsUsed) {
  // A constant-zero distance routes everything into sub-block 0.
  BlockSketchOptions options = SmallOptions();
  BlockSketch sketch(options,
                     [](std::string_view, std::string_view) { return 0.0; });
  sketch.Insert("K", "COMPLETELY", 1);
  sketch.Insert("K", "DIFFERENT", 2);
  sketch.Insert("K", "STRINGS", 3);
  const auto block = sketch.FindBlock("K");
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->subs[0].members.size(), 3u);
}

class LambdaSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LambdaSweep, SubBlockCountMatchesLambda) {
  BlockSketchOptions options = SmallOptions();
  options.lambda = GetParam();
  BlockSketch sketch(options);
  sketch.Insert("K", "K#V", 1);
  const auto block = sketch.FindBlock("K");
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->subs.size(), GetParam());
  // Query comparisons stay within lambda * rho.
  (void)sketch.Candidates("K", "K#V");
  EXPECT_LE(sketch.stats().representative_comparisons,
            2 * GetParam() * options.rho() + 2);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace sketchlink

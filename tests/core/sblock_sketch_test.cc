#include "core/sblock_sketch.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "kv/env.h"
#include "kv/fault_injection_env.h"

namespace sketchlink {
namespace {

class SBlockSketchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sbs_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(kv::RemoveDirRecursively(dir_).ok());
    auto db = kv::Db::Open(dir_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }
  void TearDown() override {
    db_.reset();
    (void)kv::RemoveDirRecursively(dir_);
  }

  SBlockSketchOptions Options(size_t mu) {
    SBlockSketchOptions options;
    options.mu = mu;
    options.w = 1.5;
    options.sketch.lambda = 3;
    options.sketch.delta = 0.1;
    options.sketch.theta = 0.25;
    options.sketch.seed = 0x99;
    return options;
  }

  std::string dir_;
  std::unique_ptr<kv::Db> db_;
};

TEST_F(SBlockSketchTest, EvictionScoreFormula) {
  // es = e^(w*xi - alpha); we test the (monotone) log form.
  // Fig. 5's example: k4 (xi=0, alpha=3) evicted before k2 (xi=6, alpha=10).
  const double k4 = SBlockSketch::EvictionScore(1.5, 0, 3);
  const double k2 = SBlockSketch::EvictionScore(1.5, 6, 10);
  const double k3 = SBlockSketch::EvictionScore(1.5, 1, 0);
  const double k1 = SBlockSketch::EvictionScore(1.5, 8, 2);
  EXPECT_LT(k4, k2);
  EXPECT_LT(k2, k3);
  EXPECT_LT(k3, k1);
  EXPECT_DOUBLE_EQ(k4, -3.0);
  EXPECT_DOUBLE_EQ(k2, -1.0);
  EXPECT_DOUBLE_EQ(k3, 1.5);
  EXPECT_DOUBLE_EQ(k1, 10.0);
}

TEST_F(SBlockSketchTest, InsertAndQueryWithoutEviction) {
  SBlockSketch sketch(Options(100), db_.get());
  ASSERT_TRUE(sketch.Insert("K1", "K1#VALUE", 1).ok());
  ASSERT_TRUE(sketch.Insert("K1", "K1#VALUE", 2).ok());
  auto candidates = sketch.Candidates("K1", "K1#VALUE");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 2u);
  EXPECT_EQ(sketch.num_live_blocks(), 1u);
  EXPECT_EQ(sketch.stats().evictions, 0u);
}

TEST_F(SBlockSketchTest, LiveBlocksNeverExceedMu) {
  const size_t mu = 8;
  SBlockSketch sketch(Options(mu), db_.get());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        sketch.Insert("KEY" + std::to_string(i), "V" + std::to_string(i), i)
            .ok());
    EXPECT_LE(sketch.num_live_blocks(), mu);
  }
  EXPECT_EQ(sketch.stats().evictions, 100u - mu);
}

TEST_F(SBlockSketchTest, EvictedBlocksAreFaultedBackIntact) {
  const size_t mu = 4;
  SBlockSketch sketch(Options(mu), db_.get());
  // Fill block A with members, then push it out with fresh blocks.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 100 + i).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(sketch.Insert("FILLER" + std::to_string(i), "F", i).ok());
  }
  // AAA must have been spilled by now; querying it reloads from the KV.
  auto candidates = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 5u);
  EXPECT_GT(sketch.stats().disk_loads, 0u);
}

TEST_F(SBlockSketchTest, HotBlocksSurviveEviction) {
  const size_t mu = 5;
  SBlockSketch sketch(Options(mu), db_.get());
  // Make HOT very selective (high xi).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sketch.Insert("HOT", "HOT#V", i).ok());
  }
  // Stream many one-shot cold blocks.
  uint64_t loads_before = sketch.stats().disk_loads;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sketch.Insert("COLD" + std::to_string(i), "C", 1000 + i).ok());
  }
  // HOT's eviction status (w*50 - alpha) dwarfs any cold block's; it should
  // never have been spilled, so touching it now causes no disk load.
  auto candidates = sketch.Candidates("HOT", "HOT#V");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(sketch.stats().disk_loads, loads_before);
  EXPECT_EQ(candidates->size(), 50u);
}

TEST_F(SBlockSketchTest, MemoryBoundedByMu) {
  // Problem Statement 3: memory stays O(mu * lambda) no matter how many
  // blocks stream through.
  const size_t mu = 16;
  SBlockSketch sketch(Options(mu), db_.get());
  size_t peak = 0;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        sketch
            .Insert("BLOCK" + std::to_string(i), "VAL" + std::to_string(i), i)
            .ok());
    peak = std::max(peak, sketch.ApproximateMemoryUsage());
  }
  // A full table at i=mu should cost about the same as at i=300.
  EXPECT_LE(sketch.ApproximateMemoryUsage(), peak);
  EXPECT_LE(sketch.num_live_blocks(), mu);
  // And far less than an unbounded variant would: rough sanity ceiling.
  EXPECT_LT(sketch.ApproximateMemoryUsage(), 200u * 1024u);
}

TEST_F(SBlockSketchTest, SurvivorsAgeOnEviction) {
  const size_t mu = 3;
  SBlockSketch sketch(Options(mu), db_.get());
  ASSERT_TRUE(sketch.Insert("A", "A", 1).ok());
  ASSERT_TRUE(sketch.Insert("B", "B", 2).ok());
  ASSERT_TRUE(sketch.Insert("C", "C", 3).ok());
  // Each new block now evicts the stalest untouched one: A first (all have
  // xi=1 but ages tie-break via map order; just assert global invariants).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sketch.Insert("NEW" + std::to_string(i), "N", 10 + i).ok());
  }
  EXPECT_EQ(sketch.num_live_blocks(), mu);
  EXPECT_EQ(sketch.stats().evictions, 10u);
}

TEST_F(SBlockSketchTest, LruPolicyEvictsLeastRecentlyUsed) {
  SBlockSketchOptions options = Options(2);
  options.policy = EvictionPolicy::kLru;
  SBlockSketch sketch(options, db_.get());
  ASSERT_TRUE(sketch.Insert("OLD", "O", 1).ok());
  ASSERT_TRUE(sketch.Insert("FRESH", "F", 2).ok());
  // Touch OLD so FRESH becomes the LRU victim.
  ASSERT_TRUE(sketch.Insert("OLD", "O", 3).ok());
  ASSERT_TRUE(sketch.Insert("NEWCOMER", "N", 4).ok());
  // OLD should still be live (no disk load when touched).
  const uint64_t loads_before = sketch.stats().disk_loads;
  auto candidates = sketch.Candidates("OLD", "O");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(sketch.stats().disk_loads, loads_before);
}

TEST_F(SBlockSketchTest, FifoPolicyEvictsOldestAdmission) {
  SBlockSketchOptions options = Options(2);
  options.policy = EvictionPolicy::kFifo;
  SBlockSketch sketch(options, db_.get());
  ASSERT_TRUE(sketch.Insert("FIRST", "F", 1).ok());
  ASSERT_TRUE(sketch.Insert("SECOND", "S", 2).ok());
  // Touching FIRST does not save it under FIFO.
  ASSERT_TRUE(sketch.Insert("FIRST", "F", 3).ok());
  ASSERT_TRUE(sketch.Insert("THIRD", "T", 4).ok());
  // FIRST was admitted earliest -> evicted; touching it now loads from disk.
  const uint64_t loads_before = sketch.stats().disk_loads;
  auto candidates = sketch.Candidates("FIRST", "F");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(sketch.stats().disk_loads, loads_before + 1);
}

TEST_F(SBlockSketchTest, StatsAreConsistent) {
  SBlockSketch sketch(Options(4), db_.get());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sketch.Insert("K" + std::to_string(i % 3), "V", i).ok());
  }
  EXPECT_EQ(sketch.stats().inserts, 10u);
  auto result = sketch.Candidates("K0", "V");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sketch.stats().queries, 1u);
  EXPECT_GT(sketch.stats().live_hits, 0u);
}

// Regression: querying a block key the stream never produced used to admit
// an empty block (evicting a live one when T was full) and seed its anchor
// from the *query's* key values. A miss must be a no-op returning nothing.
TEST_F(SBlockSketchTest, QueryMissReturnsEmptyWithoutAdmission) {
  SBlockSketch sketch(Options(2), db_.get());
  ASSERT_TRUE(sketch.Insert("A", "A#V", 1).ok());
  ASSERT_TRUE(sketch.Insert("B", "B#V", 2).ok());  // T is now full
  auto miss = sketch.Candidates("NEVER_SEEN", "QUERY#V");
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
  EXPECT_EQ(sketch.stats().query_misses, 1u);
  EXPECT_EQ(sketch.stats().evictions, 0u);      // nothing was pushed out
  EXPECT_EQ(sketch.num_live_blocks(), 2u);      // and nothing was admitted
  // Both real blocks are still live: touching them costs no disk load.
  const uint64_t loads = sketch.stats().disk_loads;
  ASSERT_TRUE(sketch.Candidates("A", "A#V").ok());
  ASSERT_TRUE(sketch.Candidates("B", "B#V").ok());
  EXPECT_EQ(sketch.stats().disk_loads, loads);
  // A later insert under that key starts a real block whose anchor comes
  // from the inserted record, not the earlier query probe.
  ASSERT_TRUE(sketch.Insert("NEVER_SEEN", "REAL#V", 3).ok());
  auto hit = sketch.Candidates("NEVER_SEEN", "REAL#V");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->size(), 1u);
}

TEST_F(SBlockSketchTest, QueryMissForSpilledBlockStillLoads) {
  // A miss means "exists nowhere" — spilled blocks must still fault in.
  SBlockSketch sketch(Options(1), db_.get());
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 1).ok());
  ASSERT_TRUE(sketch.Insert("BBB", "BBB#V", 2).ok());  // spills AAA
  auto candidates = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 1u);
  EXPECT_EQ(sketch.stats().query_misses, 0u);
}

// Regression: reloading a spilled block used to leave the spill entry in
// the KV store, so the next reload after more inserts resurrected the
// stale snapshot (and the store grew a dead copy per reload).
TEST_F(SBlockSketchTest, ReloadDeletesStaleSpillEntry) {
  const std::string spill_key = std::string("blk\x01") + "AAA";
  SBlockSketch sketch(Options(1), db_.get());
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 1).ok());
  ASSERT_TRUE(sketch.Insert("FILL", "F#V", 2).ok());  // spills AAA
  EXPECT_TRUE(db_->Contains(spill_key));
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 3).ok());  // reloads AAA
  EXPECT_FALSE(db_->Contains(spill_key));
  // The reloaded (now 2-member) block is the only truth; spill it again
  // and fault it back to prove no stale 1-member snapshot shadowed it.
  ASSERT_TRUE(sketch.Insert("FILL", "F#V", 4).ok());
  auto candidates = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 2u);
}

class SBlockSketchFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sbs_fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(kv::RemoveDirRecursively(dir_).ok());
    kv::Options options;
    options.env = &env_;
    auto db = kv::Db::Open(dir_, options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }
  void TearDown() override {
    db_.reset();
    (void)kv::RemoveDirRecursively(dir_);
  }

  SBlockSketchOptions Options(size_t mu) {
    SBlockSketchOptions options;
    options.mu = mu;
    options.sketch.lambda = 3;
    options.sketch.seed = 0x99;
    return options;
  }

  std::string dir_;
  kv::FaultInjectionEnv env_;
  std::unique_ptr<kv::Db> db_;
};

TEST_F(SBlockSketchFaultTest, EvictionFailureSurfacesAndLosesNothing) {
  SBlockSketch sketch(Options(1), db_.get());
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 1).ok());
  // The eviction's spill Put is the next WAL append; fail it.
  env_.FailNth(kv::IoOp::kAppend, 0, Status::IOError("injected spill"));
  EXPECT_TRUE(sketch.Insert("BBB", "BBB#V", 2).IsIOError());
  // AAA was never displaced and is still queryable without a disk load.
  auto candidates = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 1u);
  EXPECT_EQ(sketch.stats().disk_loads, 0u);
  // The store healed: the insert goes through on retry.
  ASSERT_TRUE(sketch.Insert("BBB", "BBB#V", 2).ok());
}

TEST_F(SBlockSketchFaultTest, SpillDeleteFailureKeepsReloadedBlockLive) {
  SBlockSketch sketch(Options(1), db_.get());
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 1).ok());
  ASSERT_TRUE(sketch.Insert("FILL", "F#V", 2).ok());  // spills AAA
  // Reloading AAA first spills FILL (append #0 lets that through), then
  // deletes AAA's spill entry (append #1 fails).
  env_.FailNth(kv::IoOp::kAppend, 1, Status::IOError("injected delete"));
  EXPECT_TRUE(sketch.Candidates("AAA", "AAA#V").status().IsIOError());
  // The error must not have lost the block: it is live and intact.
  auto candidates = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 1u);
}

class MuSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MuSweep, AllMembersRecoverableAtEveryMu) {
  const std::string dir = ::testing::TempDir() + "/sbs_mu_" +
                          std::to_string(GetParam());
  ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());
  auto db = kv::Db::Open(dir);
  ASSERT_TRUE(db.ok());
  SBlockSketchOptions options;
  options.mu = GetParam();
  options.sketch.seed = 0x31;
  SBlockSketch sketch(options, db->get());

  const int blocks = 40;
  const int per_block = 4;
  for (int b = 0; b < blocks; ++b) {
    for (int m = 0; m < per_block; ++m) {
      ASSERT_TRUE(sketch
                      .Insert("BLK" + std::to_string(b),
                              "BLK" + std::to_string(b) + "#V",
                              b * 100 + m)
                      .ok());
    }
  }
  // Every block's members are reachable regardless of spills.
  for (int b = 0; b < blocks; ++b) {
    auto candidates = sketch.Candidates("BLK" + std::to_string(b),
                                        "BLK" + std::to_string(b) + "#V");
    ASSERT_TRUE(candidates.ok());
    EXPECT_EQ(candidates->size(), static_cast<size_t>(per_block)) << b;
  }
  db->reset();
  (void)kv::RemoveDirRecursively(dir);
}

INSTANTIATE_TEST_SUITE_P(Mus, MuSweep, ::testing::Values(1, 2, 5, 20, 100));

}  // namespace
}  // namespace sketchlink

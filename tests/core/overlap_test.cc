#include "core/overlap.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sketchlink {
namespace {

// Builds two key sets with a controlled overlap fraction: `overlap` of B's
// keys also appear in A.
struct OverlapFixture {
  std::vector<std::string> keys_a;
  std::vector<std::string> keys_b;
};

OverlapFixture MakeFixture(size_t n, double overlap) {
  OverlapFixture fixture;
  const size_t shared = static_cast<size_t>(overlap * static_cast<double>(n));
  for (size_t i = 0; i < n; ++i) {
    fixture.keys_a.push_back("SHAREDORA" + std::to_string(i));
  }
  for (size_t i = 0; i < shared; ++i) {
    fixture.keys_b.push_back("SHAREDORA" + std::to_string(i));  // in A
  }
  for (size_t i = shared; i < n; ++i) {
    fixture.keys_b.push_back("ONLYB" + std::to_string(i));
  }
  return fixture;
}

SkipBloomOptions OptionsFor(size_t n) {
  SkipBloomOptions options;
  options.expected_keys = n;
  options.seed = 0xabcdULL;
  return options;
}

TEST(OverlapTest, ExactCoefficientBasics) {
  EXPECT_DOUBLE_EQ(ExactOverlapCoefficient({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(ExactOverlapCoefficient({"a"}, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(ExactOverlapCoefficient({"a"}, {"x"}), 0.0);
  EXPECT_DOUBLE_EQ(ExactOverlapCoefficient({}, {}), 0.0);
  // Duplicates collapse.
  EXPECT_DOUBLE_EQ(ExactOverlapCoefficient({"a", "a"}, {"a", "a", "b", "b"}),
                   0.5);
}

TEST(OverlapTest, RequiredSampleSizeFormula) {
  // (eps^2 * theta)^-1.
  EXPECT_EQ(RequiredSampleSize(0.1, 0.05), 2000u);
  EXPECT_EQ(RequiredSampleSize(0.05, 0.05), 8000u);
  EXPECT_GT(RequiredSampleSize(0.01), RequiredSampleSize(0.1));
}

TEST(OverlapTest, EstimateAgainstFullKeysIsAccurate) {
  const double true_overlap = 0.30;
  auto fixture = MakeFixture(20000, true_overlap);
  SkipBloom synopsis_a(OptionsFor(fixture.keys_a.size()));
  for (const auto& key : fixture.keys_a) synopsis_a.Insert(key);

  const auto estimate =
      EstimateOverlapAgainstKeys(synopsis_a, fixture.keys_b);
  EXPECT_EQ(estimate.sample_size, fixture.keys_b.size());
  // Full-key estimate errs only through Bloom false positives (upward).
  EXPECT_GE(estimate.coefficient, true_overlap - 0.02);
  EXPECT_LE(estimate.coefficient, true_overlap + 0.10);
}

class OverlapAccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(OverlapAccuracySweep, SynopsisPairEstimateTracksTruth) {
  // The Table 3 scenario: both custodians build synopses; B's sampled keys
  // are queried against A's synopsis. With ~sqrt(n) samples the estimate
  // carries Monte-Carlo error on top of the Bloom false positives.
  const double true_overlap = GetParam();
  const size_t n = 40000;
  auto fixture = MakeFixture(n, true_overlap);

  SkipBloom synopsis_a(OptionsFor(n));
  for (const auto& key : fixture.keys_a) synopsis_a.Insert(key);
  SkipBloom synopsis_b(OptionsFor(n));
  for (const auto& key : fixture.keys_b) synopsis_b.Insert(key);

  const auto estimate = EstimateOverlapCoefficient(synopsis_a, synopsis_b);
  EXPECT_GT(estimate.sample_size, 50u);  // ~sqrt(40000) = 200
  EXPECT_NEAR(estimate.coefficient, true_overlap, 0.12)
      << "sample " << estimate.sample_size << ", hits " << estimate.hits;
  const double exact =
      ExactOverlapCoefficient(fixture.keys_a, fixture.keys_b);
  EXPECT_NEAR(exact, true_overlap, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(TrueOverlaps, OverlapAccuracySweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(OverlapTest, EmptySynopsisBGivesZeroSample) {
  SkipBloom synopsis_a(OptionsFor(100));
  SkipBloom synopsis_b(OptionsFor(100));
  synopsis_a.Insert("X");
  const auto estimate = EstimateOverlapCoefficient(synopsis_a, synopsis_b);
  EXPECT_EQ(estimate.sample_size, 0u);
  EXPECT_DOUBLE_EQ(estimate.coefficient, 0.0);
}

TEST(OverlapTest, IdenticalSetsEstimateNearOne) {
  const size_t n = 20000;
  std::vector<std::string> keys;
  for (size_t i = 0; i < n; ++i) keys.push_back("SAME" + std::to_string(i));
  SkipBloom a(OptionsFor(n));
  SkipBloom b(OptionsFor(n));
  for (const auto& key : keys) {
    a.Insert(key);
    b.Insert(key);
  }
  const auto estimate = EstimateOverlapCoefficient(a, b);
  // No false negatives => every sampled key of B is found in A.
  EXPECT_DOUBLE_EQ(estimate.coefficient, 1.0);
}

}  // namespace
}  // namespace sketchlink

// Serialization tests for SkipBloom: the Fig. 3 protocol ships synopses
// between data custodians, so the decoded structure must answer queries
// identically to the original.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/overlap.h"
#include "core/skip_bloom.h"

namespace sketchlink {
namespace {

std::vector<std::string> MakeKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("SER" + std::to_string(rng.UniformUint64(n)));
  }
  return keys;
}

TEST(SkipBloomSerializationTest, RoundTripAnswersIdentically) {
  const auto keys = MakeKeys(20000, 11);
  SkipBloomOptions options;
  options.expected_keys = keys.size();
  SkipBloom original(options);
  for (const auto& key : keys) original.Insert(key);

  std::string encoded;
  original.EncodeTo(&encoded);
  std::string_view input(encoded);
  auto decoded = SkipBloom::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(input.empty());

  // Same positive AND negative answers on a mixed probe set (the decoded
  // synopsis preserves every bloom bit and annotation, so agreement is
  // exact, not just no-false-negative).
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const std::string probe =
        (i % 2 == 0) ? keys[rng.UniformIndex(keys.size())]
                     : "NOPE" + std::to_string(rng.NextUint64());
    EXPECT_EQ(original.Query(probe), (*decoded)->Query(probe)) << probe;
  }
  EXPECT_EQ(original.num_blocks(), (*decoded)->num_blocks());
  EXPECT_EQ(original.SampledKeys(), (*decoded)->SampledKeys());
}

TEST(SkipBloomSerializationTest, DecodedSynopsisDrivesOverlapEstimation) {
  // Custodian A ships its synopsis; custodian B runs the estimator against
  // the DECODED copy — the actual Fig. 3 deployment.
  const auto keys_a = MakeKeys(10000, 21);
  const auto keys_b = MakeKeys(10000, 21);  // identical universe
  SkipBloomOptions options;
  options.expected_keys = 10000;
  SkipBloom synopsis_a(options);
  for (const auto& key : keys_a) synopsis_a.Insert(key);
  SkipBloom synopsis_b(options);
  for (const auto& key : keys_b) synopsis_b.Insert(key);

  std::string wire;
  synopsis_a.EncodeTo(&wire);
  std::string_view input(wire);
  auto shipped = SkipBloom::DecodeFrom(&input);
  ASSERT_TRUE(shipped.ok());

  const auto direct = EstimateOverlapCoefficient(synopsis_a, synopsis_b);
  const auto remote = EstimateOverlapCoefficient(**shipped, synopsis_b);
  EXPECT_DOUBLE_EQ(direct.coefficient, remote.coefficient);
  EXPECT_DOUBLE_EQ(remote.coefficient, 1.0);  // identical universes
}

TEST(SkipBloomSerializationTest, DecodedSynopsisAcceptsFurtherInserts) {
  SkipBloomOptions options;
  options.expected_keys = 1000;
  SkipBloom original(options);
  for (int i = 0; i < 1000; ++i) original.Insert("OLD" + std::to_string(i));

  std::string encoded;
  original.EncodeTo(&encoded);
  std::string_view input(encoded);
  auto decoded = SkipBloom::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok());

  for (int i = 0; i < 500; ++i) (*decoded)->Insert("NEW" + std::to_string(i));
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE((*decoded)->Query("NEW" + std::to_string(i))) << i;
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE((*decoded)->Query("OLD" + std::to_string(i))) << i;
  }
}

TEST(SkipBloomSerializationTest, SharedFilterReferencesSurvive) {
  // Force hand-off references (small blocks, aggressive sampling), then
  // check the wire size reflects deduplicated filters: encoding a synopsis
  // twice must be deterministic.
  SkipBloomOptions options;
  options.expected_keys = 64;
  options.filters_per_block = 2;
  SkipBloom original(options);
  for (int i = 0; i < 2000; ++i) {
    original.Insert("KEY" + std::to_string(100000 + i));
  }
  std::string first;
  original.EncodeTo(&first);
  std::string second;
  original.EncodeTo(&second);
  EXPECT_EQ(first, second);

  std::string_view input(first);
  auto decoded = SkipBloom::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE((*decoded)->Query("KEY" + std::to_string(100000 + i))) << i;
  }
}

TEST(SkipBloomSerializationTest, CorruptionIsDetected) {
  SkipBloomOptions options;
  options.expected_keys = 500;
  SkipBloom original(options);
  for (int i = 0; i < 500; ++i) original.Insert("C" + std::to_string(i));
  std::string encoded;
  original.EncodeTo(&encoded);

  // Bad magic.
  {
    std::string bad = encoded;
    bad[0] ^= 0xff;
    std::string_view input(bad);
    EXPECT_TRUE(SkipBloom::DecodeFrom(&input).status().IsCorruption());
  }
  // Truncations at several depths.
  for (size_t keep : {size_t{2}, encoded.size() / 4, encoded.size() / 2,
                      encoded.size() - 3}) {
    std::string bad = encoded.substr(0, keep);
    std::string_view input(bad);
    EXPECT_FALSE(SkipBloom::DecodeFrom(&input).ok()) << keep;
  }
}

TEST(SkipBloomSerializationTest, WireSizeIsSublinear) {
  // The shipping argument of Sec. 4.3: the synopsis is much smaller than
  // the key set it summarizes.
  const size_t n = 50000;
  const auto keys = MakeKeys(n, 31);
  size_t raw_bytes = 0;
  for (const auto& key : keys) raw_bytes += key.size();
  SkipBloomOptions options;
  options.expected_keys = n;
  SkipBloom synopsis(options);
  for (const auto& key : keys) synopsis.Insert(key);
  std::string encoded;
  synopsis.EncodeTo(&encoded);
  EXPECT_LT(encoded.size(), raw_bytes / 2) << encoded.size();
}

}  // namespace
}  // namespace sketchlink

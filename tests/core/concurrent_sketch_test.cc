// Mixed read/write concurrency suite for the epoch-protected sketches:
//   - lock-free queries observe consistent snapshots while writers insert,
//     evict, and spill (run under the tier1-tsan preset to prove the
//     synchronization, not just the outcomes);
//   - the eviction queue stays bounded by the live set on a pure-hit
//     stream (regression: the hit path used to push one entry per access);
//   - a held CandidateList outlives the eviction of its block;
//   - write-behind re-admission cancels the queued spill without a disk
//     load;
//   - a FaultInjectionEnv sweep over every background-spill write proves a
//     failed spill poisons writes but never corrupts what readers see.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/maintenance_queue.h"
#include "common/random.h"
#include "core/block_sketch.h"
#include "core/sblock_sketch.h"
#include "gtest/gtest.h"
#include "kv/db.h"
#include "kv/env.h"
#include "kv/fault_injection_env.h"

namespace sketchlink {
namespace {

SBlockSketchOptions SmallOptions(size_t mu) {
  SBlockSketchOptions options;
  options.mu = mu;
  options.w = 1.5;
  options.sketch.lambda = 3;
  options.sketch.delta = 0.1;
  options.sketch.theta = 0.25;
  options.sketch.seed = 0x99;
  return options;
}

class ConcurrentSBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/concurrent_sketch_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(kv::RemoveDirRecursively(dir_).ok());
    auto db = kv::Db::Open(dir_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }
  void TearDown() override {
    db_.reset();
    (void)kv::RemoveDirRecursively(dir_);
  }

  std::string dir_;
  std::unique_ptr<kv::Db> db_;
};

// --- satellite: bounded eviction queue --------------------------------

TEST_F(ConcurrentSBlockTest, QueueStaysBoundedUnderPureHitStream) {
  // mu blocks, then a long stream of hits on those same blocks. The queue
  // must hold exactly one entry per live block no matter how many times
  // each block is accessed.
  const size_t mu = 8;
  SBlockSketch sketch(SmallOptions(mu), db_.get());
  for (size_t i = 0; i < mu; ++i) {
    const std::string key = "K" + std::to_string(i);
    ASSERT_TRUE(sketch.Insert(key, key + "#V", static_cast<RecordId>(i)).ok());
  }
  ASSERT_EQ(sketch.num_live_blocks(), mu);
  for (int round = 0; round < 2000; ++round) {
    const std::string key = "K" + std::to_string(round % mu);
    ASSERT_TRUE(
        sketch.Insert(key, key + "#V", static_cast<RecordId>(1000 + round))
            .ok());
    auto candidates = sketch.Candidates(key, key + "#V");
    ASSERT_TRUE(candidates.ok());
    EXPECT_EQ(sketch.eviction_queue_size(), mu) << "round=" << round;
  }
  EXPECT_EQ(sketch.stats().evictions, 0u);
}

TEST_F(ConcurrentSBlockTest, QueueStaysBoundedUnderChurn) {
  // Even with constant evict/reload churn the queue never exceeds the live
  // set: entries are pushed at admission and consumed at eviction.
  const size_t mu = 4;
  SBlockSketch sketch(SmallOptions(mu), db_.get());
  for (int i = 0; i < 400; ++i) {
    const std::string key = "K" + std::to_string(i % 23);
    ASSERT_TRUE(sketch.Insert(key, key + "#V", static_cast<RecordId>(i)).ok());
    EXPECT_LE(sketch.eviction_queue_size(), sketch.num_live_blocks());
  }
  EXPECT_GT(sketch.stats().evictions, 0u);
}

// --- tentpole: lock-free reads against a live writer -------------------

TEST(ConcurrentBlockSketchTest, ReadersSeeConsistentSnapshotsDuringInserts) {
  // One writer streams increasing record ids into a handful of blocks;
  // readers continuously query. Every returned candidate list must be a
  // consistent snapshot: strictly increasing ids (members are appended in
  // insertion order within a sub-block) that were all published before the
  // read returned. Run under TSan to prove the accesses are synchronized.
  BlockSketchOptions options;
  options.lambda = 3;
  options.seed = 0x99;
  BlockSketch sketch(options);

  constexpr int kKeys = 5;
  constexpr RecordId kPerKey = 4000;
  std::atomic<RecordId> published{0};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t * 31 + 7);
      while (!done.load(std::memory_order_acquire)) {
        const std::string key = "K" + std::to_string(rng.UniformIndex(kKeys));
        CandidateList list = sketch.Candidates(key, key + "#VALUE");
        // The writer publishes the round counter after inserting the round's
        // id into every key, so a reader may observe one id beyond it (the
        // round in progress) — but never more, and never out of order.
        const RecordId bound = published.load(std::memory_order_acquire) + 1;
        RecordId previous = 0;
        for (RecordId id : list) {
          if (id <= previous || id > bound) {
            ++violations;
            break;
          }
          previous = id;
        }
      }
    });
  }

  for (RecordId id = 1; id <= kPerKey; ++id) {
    for (int k = 0; k < kKeys; ++k) {
      const std::string key = "K" + std::to_string(k);
      sketch.Insert(key, key + "#VALUE", id);
    }
    // Ids inserted after this store may be seen by readers; ids up to it
    // must satisfy the bound check above.
    published.store(id, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_F(ConcurrentSBlockTest, MixedInsertQueryEvictSpillStress) {
  // The full mixed workload at 1, 2, and 8 threads: every op either
  // succeeds or is a clean error (none expected here), the budget holds,
  // and background maintenance drains clean. TSan covers the interleaving
  // of lock-free reads with evictions and write-behind spills.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const std::string dir = dir_ + "_t" + std::to_string(threads);
    ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());
    auto db = kv::Db::Open(dir);
    ASSERT_TRUE(db.ok());
    {
      MaintenanceQueue maintenance;
      SBlockSketch sketch(SmallOptions(6), db->get(), KeyDistanceFn(),
                          &maintenance);
      std::atomic<int> errors{0};
      std::vector<std::thread> workers;
      for (size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          Rng rng(t * 977 + 13);
          for (int i = 0; i < 600; ++i) {
            const std::string key = "B" + std::to_string(rng.UniformIndex(40));
            const std::string value = key + "#" + std::to_string(i % 13);
            if (i % 2 == 0) {
              if (!sketch.Insert(key, value, static_cast<RecordId>(i + 1))
                       .ok()) {
                ++errors;
              }
            } else {
              if (!sketch.Candidates(key, value).ok()) ++errors;
            }
          }
        });
      }
      for (auto& worker : workers) worker.join();
      EXPECT_EQ(errors.load(), 0);
      EXPECT_TRUE(sketch.WaitForMaintenance().ok());
      EXPECT_LE(sketch.num_live_blocks(), 6u);
      EXPECT_LE(sketch.eviction_queue_size(), sketch.num_live_blocks());
      EXPECT_GT(sketch.stats().evictions, 0u);
    }
    (void)kv::RemoveDirRecursively(dir);
  }
}

// --- read-side snapshot lifetime ---------------------------------------

TEST_F(ConcurrentSBlockTest, HeldCandidateListSurvivesEviction) {
  SBlockSketch sketch(SmallOptions(2), db_.get());
  for (RecordId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", id).ok());
  }
  auto held = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(held.ok());
  const std::vector<RecordId> before = held->ToVector();
  ASSERT_FALSE(before.empty());

  // Push AAA out of the live set (and keep churning afterwards).
  for (int i = 0; i < 20; ++i) {
    const std::string key = "FILL" + std::to_string(i);
    ASSERT_TRUE(
        sketch.Insert(key, key + "#V", static_cast<RecordId>(100 + i)).ok());
  }
  // The pinned snapshot is untouched by the eviction and the spill.
  EXPECT_EQ(held->ToVector(), before);
  // And the block faults back in intact.
  auto reloaded = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->ToVector(), before);
}

// --- write-behind buffer ------------------------------------------------

TEST_F(ConcurrentSBlockTest, ReAdmissionFromWriteBehindCancelsSpill) {
  // Stall the maintenance thread so the evicted block is provably still in
  // the kQueued state, then touch it again: re-admission must reclaim it
  // from the write-behind buffer — no disk load, spill job cancelled.
  MaintenanceQueue maintenance;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  maintenance.Submit([&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  });

  SBlockSketch sketch(SmallOptions(1), db_.get(), KeyDistanceFn(),
                      &maintenance);
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 1).ok());
  ASSERT_TRUE(sketch.Insert("BBB", "BBB#V", 2).ok());  // evicts AAA (queued)
  EXPECT_EQ(sketch.pending_spills(), 1u);

  auto candidates = sketch.Candidates("AAA", "AAA#V");  // re-admits AAA
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 1u);
  EXPECT_EQ(sketch.stats().disk_loads, 0u);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  EXPECT_TRUE(sketch.WaitForMaintenance().ok());
  // Both (interchangeable) spill jobs resolved; only BBB's spill remains
  // meaningful and AAA's was a no-op cancellation.
  EXPECT_EQ(sketch.pending_spills(), 0u);
}

// --- fault injection: spill failures poison writes, never reads ---------

class ConcurrentFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/concurrent_fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override { (void)kv::RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST_F(ConcurrentFaultTest, BackgroundSpillFailurePoisonsWritesNotReads) {
  ASSERT_TRUE(kv::RemoveDirRecursively(dir_).ok());
  kv::FaultInjectionEnv env;
  kv::Options db_options;
  db_options.env = &env;
  auto db = kv::Db::Open(dir_, db_options);
  ASSERT_TRUE(db.ok());

  MaintenanceQueue maintenance;
  SBlockSketch sketch(SmallOptions(1), db->get(), KeyDistanceFn(),
                      &maintenance);
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 1).ok());
  env.FailNth(kv::IoOp::kAppend, 0, Status::IOError("injected spill"));
  ASSERT_TRUE(sketch.Insert("BBB", "BBB#V", 2).ok());  // evicts AAA; spill dies
  EXPECT_TRUE(sketch.WaitForMaintenance().IsIOError());

  // Writes are poisoned (fail fast, nothing half-applied)...
  EXPECT_TRUE(sketch.Insert("CCC", "CCC#V", 3).IsIOError());
  // ...but every block is still fully readable: BBB live, AAA parked in
  // the write-behind buffer with its members intact.
  auto live = sketch.Candidates("BBB", "BBB#V");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->ToVector(), std::vector<RecordId>{2});
  auto parked = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(parked.ok());
  EXPECT_EQ(parked->ToVector(), std::vector<RecordId>{1});

  // Recovery: clear the sticky status; the parked block re-admits on its
  // next write and nothing was lost.
  sketch.ClearMaintenanceError();
  ASSERT_TRUE(sketch.Insert("AAA", "AAA#V", 4).ok());
  EXPECT_TRUE(sketch.WaitForMaintenance().ok());
  auto recovered = sketch.Candidates("AAA", "AAA#V");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->ToVector(), (std::vector<RecordId>{1, 4}));
}

TEST_F(ConcurrentFaultTest, SpillCrashPointSweepNeverCorruptsReads) {
  // Sweep the injected failure across every spill-store append of the
  // workload. Whatever write the failure lands on, the invariant holds:
  // accepted inserts stay readable, each from a well-formed snapshot —
  // served from the live table, the write-behind buffer, or the store.
  constexpr int kKeys = 12;
  constexpr uint64_t kSweep = 16;
  for (uint64_t fail_at = 0; fail_at < kSweep; ++fail_at) {
    const std::string dir = dir_ + "_n" + std::to_string(fail_at);
    ASSERT_TRUE(kv::RemoveDirRecursively(dir).ok());
    kv::FaultInjectionEnv env;
    kv::Options db_options;
    db_options.env = &env;
    auto db = kv::Db::Open(dir, db_options);
    ASSERT_TRUE(db.ok());
    env.FailNth(kv::IoOp::kAppend, fail_at,
                Status::IOError("injected @" + std::to_string(fail_at)));

    MaintenanceQueue maintenance;
    SBlockSketch sketch(SmallOptions(2), db->get(), KeyDistanceFn(),
                        &maintenance);
    // Bit-for-bit oracle: an unbounded BlockSketch fed exactly the accepted
    // inserts, in order. Evict/spill/decode round trips and write-behind
    // re-admissions must leave block state (anchors, reservoirs, members)
    // identical to never having evicted at all, and poisoned inserts must
    // fail fast without consuming routing randomness.
    BlockSketch reference(SmallOptions(2).sketch);
    std::set<int> accepted;
    // Two passes so reloads and re-spills happen mid-sweep.
    for (int pass = 0; pass < 2; ++pass) {
      for (int k = 0; k < kKeys; ++k) {
        const std::string key = "K" + std::to_string(k);
        const RecordId id = static_cast<RecordId>(pass * 100 + k + 1);
        const Status status = sketch.Insert(key, key + "#V", id);
        if (status.ok()) {
          reference.Insert(key, key + "#V", id);
          accepted.insert(k);
        } else {
          EXPECT_TRUE(status.IsIOError()) << status.ToString();
        }
      }
    }
    (void)sketch.WaitForMaintenance();  // drain; may report the injection

    for (int k : accepted) {
      const std::string key = "K" + std::to_string(k);
      auto candidates = sketch.Candidates(key, key + "#V");
      ASSERT_TRUE(candidates.ok())
          << "fail_at=" << fail_at << " key=" << key << ": "
          << candidates.status().ToString();
      EXPECT_EQ(candidates->ToVector(),
                reference.Candidates(key, key + "#V").ToVector())
          << "fail_at=" << fail_at << " key=" << key;
    }

    // After clearing the sticky failure the sketch is fully writable
    // again (the injection was one-shot).
    sketch.ClearMaintenanceError();
    ASSERT_TRUE(sketch.Insert("POST", "POST#V", 999).ok());
    EXPECT_TRUE(sketch.WaitForMaintenance().ok());
    (void)kv::RemoveDirRecursively(dir);
  }
}

}  // namespace
}  // namespace sketchlink

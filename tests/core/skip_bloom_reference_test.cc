// Randomized reference tests: SkipBloom against std::set ground truth over
// adversarial key streams (heavy duplicates, shared prefixes, skew, sorted
// and reverse-sorted arrival orders). The invariant under test is the
// structure's one guarantee: NO false negatives, ever.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/skip_bloom.h"

namespace sketchlink {
namespace {

enum class Order { kRandom, kSorted, kReversed };

std::vector<std::string> MakeStream(size_t n, double duplicate_rate,
                                    Order order, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> stream;
  stream.reserve(n);
  const size_t distinct =
      std::max<size_t>(static_cast<size_t>(n * (1.0 - duplicate_rate)), 1);
  for (size_t i = 0; i < n; ++i) {
    stream.push_back("K" + std::to_string(rng.UniformUint64(distinct)));
  }
  if (order == Order::kSorted) {
    std::sort(stream.begin(), stream.end());
  } else if (order == Order::kReversed) {
    std::sort(stream.begin(), stream.end(), std::greater<>());
  }
  return stream;
}

using RefParam = std::tuple<size_t /*n*/, double /*dup*/, int /*order*/>;

class SkipBloomReference : public ::testing::TestWithParam<RefParam> {};

TEST_P(SkipBloomReference, NoFalseNegativesAgainstStdSet) {
  const auto [n, duplicate_rate, order_int] = GetParam();
  const auto stream = MakeStream(n, duplicate_rate,
                                 static_cast<Order>(order_int), n + 13);

  SkipBloomOptions options;
  options.expected_keys = n;
  options.seed = n * 31 + 7;
  SkipBloom synopsis(options);
  std::set<std::string> reference;

  for (const std::string& key : stream) {
    synopsis.Insert(key);
    reference.insert(key);
  }

  // Every inserted key answers true.
  for (const std::string& key : reference) {
    ASSERT_TRUE(synopsis.Query(key))
        << key << " n=" << n << " dup=" << duplicate_rate;
  }

  // Spot-check false-positive sanity on definitely-absent keys (prefix
  // 'X' never occurs in the stream).
  int false_positives = 0;
  const int probes = 2000;
  Rng rng(n);
  for (int i = 0; i < probes; ++i) {
    if (synopsis.Query("X" + std::to_string(rng.NextUint64()))) {
      ++false_positives;
    }
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, SkipBloomReference,
    ::testing::Values(
        RefParam{500, 0.0, 0}, RefParam{500, 0.9, 0},
        RefParam{5000, 0.0, 0}, RefParam{5000, 0.5, 0},
        RefParam{5000, 0.95, 0}, RefParam{5000, 0.0, 1},
        RefParam{5000, 0.0, 2}, RefParam{20000, 0.5, 0},
        RefParam{20000, 0.5, 1}, RefParam{20000, 0.5, 2}));

TEST(SkipBloomReferenceTest, DedupOffAlsoHasNoFalseNegatives) {
  const auto stream = MakeStream(10000, 0.8, Order::kRandom, 99);
  SkipBloomOptions options;
  options.expected_keys = 10000;
  options.dedup_inserts = false;  // footnote-5 mode: duplicates re-inserted
  SkipBloom synopsis(options);
  std::set<std::string> reference;
  for (const std::string& key : stream) {
    synopsis.Insert(key);
    reference.insert(key);
  }
  for (const std::string& key : reference) {
    ASSERT_TRUE(synopsis.Query(key)) << key;
  }
  EXPECT_EQ(synopsis.stats().duplicate_skips, 0u);
}

TEST(SkipBloomReferenceTest, InterleavedInsertQueryConsistency) {
  // Queries interleaved with inserts must never un-learn earlier keys.
  SkipBloomOptions options;
  options.expected_keys = 5000;
  SkipBloom synopsis(options);
  std::vector<std::string> inserted;
  Rng rng(4242);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "IK" + std::to_string(rng.UniformUint64(3000));
    synopsis.Insert(key);
    inserted.push_back(key);
    if (i % 7 == 0) {
      const std::string& probe =
          inserted[rng.UniformIndex(inserted.size())];
      ASSERT_TRUE(synopsis.Query(probe)) << probe << " at step " << i;
    }
  }
}

TEST(SkipBloomReferenceTest, ExtremeOptionsStillCorrect) {
  // m = 1 filter per block, tiny fp, tiny expected_keys vs a larger stream:
  // capacity mis-estimation must degrade performance, not correctness.
  SkipBloomOptions options;
  options.expected_keys = 16;  // wildly under-provisioned
  options.filters_per_block = 1;
  options.bloom_fp = 0.001;
  SkipBloom synopsis(options);
  std::vector<std::string> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back("U" + std::to_string(i));
  for (const auto& key : keys) synopsis.Insert(key);
  for (const auto& key : keys) {
    ASSERT_TRUE(synopsis.Query(key)) << key;
  }
}

}  // namespace
}  // namespace sketchlink

// Differential test for the SoA representative layout (DESIGN.md §12): the
// streamed structure-of-arrays scoring path must be observationally
// IDENTICAL to the legacy gather path (BatchCandidate pointer-chasing),
// which stays in the tree as the oracle behind
// SketchPolicy::SetGatherRoutingForTesting. Both paths are driven through
// the full pipeline — datagen workload -> blocking -> sketch -> engine —
// and must produce bit-identical per-query result sets, comparison
// counters, and quality metrics at every thread count and on every SIMD
// dispatch tier this CPU offers (scalar through AVX-512).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/presets.h"
#include "core/block_sketch.h"
#include "datagen/generators.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"
#include "simd/dispatch.h"

namespace sketchlink {
namespace {

using datagen::DatasetKind;

datagen::Workload MakeCrosscheckWorkload(DatasetKind kind) {
  datagen::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_entities = 160;
  spec.copies_per_entity = 6;
  spec.max_perturb_ops = 3;
  spec.seed = 20260809;
  return datagen::MakeWorkload(spec);
}

struct RunResult {
  LinkageReport report;
  std::vector<std::vector<RecordId>> per_query;
};

/// One full pipeline run with the routing implementation pinned: gather
/// oracle when `gather`, default SoA otherwise. The flag is process-global,
/// so it is set for the whole run (build + resolve) and restored by the
/// fixture's TearDown.
RunResult RunPipeline(const datagen::Workload& workload,
                      const GroundTruth& truth, DatasetKind kind,
                      size_t threads, bool gather) {
  SketchPolicy::SetGatherRoutingForTesting(gather);
  auto blocker = MakeStandardBlocker(kind);
  RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  RecordStore store;
  BlockSketchMatcher matcher(BlockSketchOptions(), similarity, &store);
  EngineOptions options;
  options.num_threads = threads;
  LinkageEngine engine(blocker.get(), &matcher, similarity, options);

  RunResult out;
  EXPECT_TRUE(engine.BuildIndex(workload.a).ok());
  auto report = engine.ResolveAll(workload.q, truth);
  EXPECT_TRUE(report.ok());
  if (report.ok()) out.report = *report;

  out.per_query.reserve(workload.q.size());
  for (const Record& query : workload.q.records()) {
    auto matches = engine.ResolveOne(query);
    EXPECT_TRUE(matches.ok());
    out.per_query.push_back(matches.ok() ? *matches
                                         : std::vector<RecordId>{});
  }
  return out;
}

class LayoutCrosscheckTest : public ::testing::TestWithParam<DatasetKind> {
 protected:
  void TearDown() override {
    SketchPolicy::SetGatherRoutingForTesting(false);
    simd::ResetActiveLevelForTesting();
  }
};

TEST_P(LayoutCrosscheckTest, SoAMatchesGatherOracleAcrossThreadsAndTiers) {
  const DatasetKind kind = GetParam();
  const datagen::Workload workload = MakeCrosscheckWorkload(kind);
  const GroundTruth truth(workload.a);

  // The oracle is built once per tier on the gather path at one thread; the
  // SoA runs at every thread count must match it field for field.
  for (int level = 0; level <= 3; ++level) {
    const simd::KernelLevel requested = static_cast<simd::KernelLevel>(level);
    if (simd::KernelsEnabled()) {
      if (simd::OpsForLevel(requested) == nullptr) continue;
      ASSERT_EQ(simd::SetActiveLevelForTesting(requested), requested);
    } else if (level > 0) {
      break;  // kernels disabled via env: only the scalar pass is meaningful
    }

    const RunResult oracle =
        RunPipeline(workload, truth, kind, /*threads=*/1, /*gather=*/true);

    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      const RunResult soa =
          RunPipeline(workload, truth, kind, threads, /*gather=*/false);

      EXPECT_EQ(soa.report.comparisons, oracle.report.comparisons)
          << "level=" << level << " threads=" << threads;
      EXPECT_EQ(soa.report.quality.true_pairs,
                oracle.report.quality.true_pairs)
          << "level=" << level << " threads=" << threads;
      EXPECT_EQ(soa.report.quality.reported_pairs,
                oracle.report.quality.reported_pairs)
          << "level=" << level << " threads=" << threads;
      EXPECT_EQ(soa.report.quality.correct_pairs,
                oracle.report.quality.correct_pairs)
          << "level=" << level << " threads=" << threads;
      // Derived doubles must be bit-identical, not just close: both paths
      // compute them from the same integer counts.
      EXPECT_EQ(soa.report.quality.recall, oracle.report.quality.recall)
          << "level=" << level << " threads=" << threads;
      EXPECT_EQ(soa.report.quality.precision, oracle.report.quality.precision)
          << "level=" << level << " threads=" << threads;
      EXPECT_EQ(soa.report.quality.f1, oracle.report.quality.f1)
          << "level=" << level << " threads=" << threads;

      ASSERT_EQ(soa.per_query.size(), oracle.per_query.size());
      for (size_t i = 0; i < soa.per_query.size(); ++i) {
        ASSERT_EQ(soa.per_query[i], oracle.per_query[i])
            << "level=" << level << " threads=" << threads << " query#" << i;
      }
    }
  }
}

/// Restores the process-global routing flag and SIMD tier even when an
/// ASSERT returns out of the test early.
struct RoutingStateGuard {
  ~RoutingStateGuard() {
    SketchPolicy::SetGatherRoutingForTesting(false);
    simd::ResetActiveLevelForTesting();
  }
};

TEST(LayoutWireEncodeTest, WireEncodesIdenticalAcrossRoutingPaths) {
  // The SoA chunk is the immutable-after-publish unit, but the wire format
  // is the classic SketchBlock encode: a sketch built on the SoA path must
  // serialize every block bit-for-bit like one built on the gather oracle.
  RoutingStateGuard guard;
  const datagen::Workload workload =
      MakeCrosscheckWorkload(DatasetKind::kNcvr);
  auto blocker = MakeStandardBlocker(DatasetKind::kNcvr);

  for (int level = 0; level <= 3; ++level) {
    const simd::KernelLevel requested = static_cast<simd::KernelLevel>(level);
    if (simd::KernelsEnabled()) {
      if (simd::OpsForLevel(requested) == nullptr) continue;
      ASSERT_EQ(simd::SetActiveLevelForTesting(requested), requested);
    } else if (level > 0) {
      break;
    }

    SketchPolicy::SetGatherRoutingForTesting(true);
    BlockSketch oracle{BlockSketchOptions()};
    for (const Record& record : workload.a.records()) {
      oracle.Insert(blocker->Key(record), blocker->KeyValues(record),
                    record.id);
    }
    SketchPolicy::SetGatherRoutingForTesting(false);
    BlockSketch soa{BlockSketchOptions()};
    for (const Record& record : workload.a.records()) {
      soa.Insert(blocker->Key(record), blocker->KeyValues(record), record.id);
    }

    ASSERT_EQ(soa.num_blocks(), oracle.num_blocks()) << "level=" << level;
    for (const Record& record : workload.a.records()) {
      const std::string key = blocker->Key(record);
      auto oracle_block = oracle.FindBlock(key);
      auto soa_block = soa.FindBlock(key);
      ASSERT_NE(oracle_block, nullptr) << "level=" << level << " key=" << key;
      ASSERT_NE(soa_block, nullptr) << "level=" << level << " key=" << key;
      std::string oracle_bytes;
      oracle_block->EncodeTo(&oracle_bytes);
      std::string soa_bytes;
      soa_block->EncodeTo(&soa_bytes);
      ASSERT_EQ(soa_bytes, oracle_bytes)
          << "wire encode differs, level=" << level << " key=" << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, LayoutCrosscheckTest,
                         ::testing::Values(DatasetKind::kDblp,
                                           DatasetKind::kNcvr),
                         [](const auto& info) {
                           return std::string(
                               datagen::DatasetKindName(info.param));
                         });

}  // namespace
}  // namespace sketchlink

// Unit tests for SketchPolicy: the sub-block routing and representative
// reservoir logic shared by BlockSketch and SBlockSketch.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/block_sketch.h"

namespace sketchlink {
namespace {

// A transparent distance for routing tests: distance = |len(a) - len(b)|/10,
// so strings of controlled length land in controlled rings.
KeyDistanceFn LengthDistance() {
  return [](std::string_view a, std::string_view b) {
    const double la = static_cast<double>(a.size());
    const double lb = static_cast<double>(b.size());
    return std::abs(la - lb) / 10.0;
  };
}

BlockSketchOptions Options(size_t lambda = 3, double theta = 0.25) {
  BlockSketchOptions options;
  options.lambda = lambda;
  options.theta = theta;
  options.delta = 0.1;
  options.seed = 0xabc;
  return options;
}

TEST(SketchPolicyTest, EmptyBlockRoutesByRing) {
  SketchPolicy policy(Options(), LengthDistance());
  SketchBlock block(3);
  block.anchor = "1234";  // length 4
  uint64_t comparisons = 0;
  // Same length -> distance 0 -> ring 0.
  EXPECT_EQ(policy.ChooseSubBlock(block, "abcd", &comparisons), 0u);
  // Length 8 -> distance 0.4 -> ring floor(0.4/0.25) = 1.
  EXPECT_EQ(policy.ChooseSubBlock(block, "abcdefgh", &comparisons), 1u);
  // Length 20 -> distance 1.6 -> clamped to lambda-1 = 2.
  EXPECT_EQ(policy.ChooseSubBlock(block, std::string(20, 'x'), &comparisons),
            2u);
  EXPECT_EQ(comparisons, 3u);  // one anchor distance per call
}

TEST(SketchPolicyTest, SeededRingWinsUntilRepresented) {
  SketchPolicy policy(Options(), LengthDistance());
  SketchBlock block(3);
  block.anchor = "1234";
  // Ring 1 already has a representative of length 9.
  block.subs[1].representatives = {"123456789"};
  uint64_t comparisons = 0;
  // A length-8 key (ring 1, represented) routes by nearest representative:
  // only candidate is the ring-1 rep -> sub-block 1.
  EXPECT_EQ(policy.ChooseSubBlock(block, "abcdefgh", &comparisons), 1u);
  // A length-4 key maps to ring 0 which is EMPTY: it seeds ring 0 even
  // though a representative exists elsewhere.
  EXPECT_EQ(policy.ChooseSubBlock(block, "abcd", &comparisons), 0u);
}

TEST(SketchPolicyTest, NearestRepresentativeWins) {
  SketchPolicy policy(Options(), LengthDistance());
  SketchBlock block(3);
  block.anchor = "1234";
  block.subs[0].representatives = {"1234"};        // length 4
  block.subs[2].representatives = {std::string(18, 'r')};  // length 18
  uint64_t comparisons = 0;
  // Length 16: ring would be min(1.2/0.25, 2) = 2, which is represented;
  // among representatives the length-18 one is nearest -> sub 2.
  EXPECT_EQ(policy.ChooseSubBlock(block, std::string(16, 'q'), &comparisons),
            2u);
  // Length 5: ring 0 is represented; nearest rep is length 4 -> sub 0.
  EXPECT_EQ(policy.ChooseSubBlock(block, "abcde", &comparisons), 0u);
}

TEST(SketchPolicyTest, ComparisonsCountAnchorsAndReps) {
  SketchPolicy policy(Options(), LengthDistance());
  SketchBlock block(3);
  block.anchor = "1234";
  block.subs[0].representatives = {"a", "bb", "ccc"};
  block.subs[1].representatives = {"dddddddd"};
  uint64_t comparisons = 0;
  (void)policy.ChooseSubBlock(block, "abcd", &comparisons);
  // 1 anchor + 4 representatives.
  EXPECT_EQ(comparisons, 5u);
}

TEST(SketchPolicyTest, ReservoirFillsToRhoThenReplaces) {
  BlockSketchOptions options = Options();
  SketchPolicy policy(options, LengthDistance());
  SketchSubBlock sub;
  const size_t rho = options.rho();
  for (size_t i = 0; i < rho; ++i) {
    policy.MaybeAddRepresentative(&sub, "key" + std::to_string(i));
    EXPECT_EQ(sub.representatives.size(), i + 1);
  }
  // Beyond rho the size never grows; contents churn via coin-toss.
  std::set<std::string> all_seen(sub.representatives.begin(),
                                 sub.representatives.end());
  for (size_t i = 0; i < 200; ++i) {
    policy.MaybeAddRepresentative(&sub, "late" + std::to_string(i));
    EXPECT_EQ(sub.representatives.size(), rho);
  }
  // Some replacement must have happened (P(no heads in 200 tosses) ~ 0).
  bool replaced = false;
  for (const std::string& rep : sub.representatives) {
    if (!all_seen.count(rep)) replaced = true;
  }
  EXPECT_TRUE(replaced);
}

TEST(SketchPolicyTest, DefaultDistanceIsJaroWinkler) {
  const KeyDistanceFn distance = DefaultKeyDistance();
  EXPECT_DOUBLE_EQ(distance("SAME", "SAME"), 0.0);
  EXPECT_GT(distance("ABC", "XYZ"), 0.9);
  const double d = distance("JOHNSON", "JOHNSN");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 0.25);  // a one-typo pair stays within theta
}

TEST(SketchPolicyTest, LambdaOneAlwaysRoutesToZero) {
  SketchPolicy policy(Options(/*lambda=*/1), LengthDistance());
  SketchBlock block(1);
  block.anchor = "1234";
  uint64_t comparisons = 0;
  EXPECT_EQ(policy.ChooseSubBlock(block, std::string(40, 'z'), &comparisons),
            0u);
  block.subs[0].representatives = {"abc"};
  EXPECT_EQ(policy.ChooseSubBlock(block, "q", &comparisons), 0u);
}

}  // namespace
}  // namespace sketchlink

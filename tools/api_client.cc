// api_client: minimal HTTP client for exercising the serving plane from
// test scripts. Unlike metrics_dump (GET-only scraper) it can send any
// method plus a request body, and can assert the response status:
//
//   api_client METHOD URL [--body=JSON] [--body-file=PATH]
//              [--header=Name:Value]... [--expect-status=N]
//
// The response body is printed to stdout. Exit is 0 when the status
// matches --expect-status (or is 2xx when no expectation is given),
// 1 otherwise — so ctest scripts can assert both success and the
// 4xx/5xx contract of every endpoint through a real socket.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/http_client.h"

namespace {

using sketchlink::serve::Fetch;
using sketchlink::serve::HeaderList;
using sketchlink::serve::HttpResult;

int Fail(const std::string& message) {
  std::fprintf(stderr, "api_client: %s\n", message.c_str());
  return 1;
}

// Accepts http://HOST:PORT/PATH with a numeric IPv4 host.
bool ParseUrl(const std::string& url, std::string* host, uint16_t* port,
              std::string* path) {
  const std::string prefix = "http://";
  if (url.rfind(prefix, 0) != 0) return false;
  const size_t host_start = prefix.size();
  const size_t path_start = url.find('/', host_start);
  std::string authority = path_start == std::string::npos
                              ? url.substr(host_start)
                              : url.substr(host_start, path_start - host_start);
  *path = path_start == std::string::npos ? "/" : url.substr(path_start);
  const size_t colon = authority.rfind(':');
  if (colon == std::string::npos) return false;
  *host = authority.substr(0, colon);
  const long parsed = std::strtol(authority.c_str() + colon + 1, nullptr, 10);
  if (parsed <= 0 || parsed > 65535) return false;
  *port = static_cast<uint16_t>(parsed);
  return !host->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string method;
  std::string url;
  std::string body;
  HeaderList headers;
  int expect_status = -1;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--body=", 0) == 0) {
      body = arg.substr(7);
    } else if (arg.rfind("--body-file=", 0) == 0) {
      std::ifstream in(arg.substr(12), std::ios::binary);
      if (!in) return Fail("cannot read " + arg.substr(12));
      std::ostringstream contents;
      contents << in.rdbuf();
      body = contents.str();
    } else if (arg.rfind("--header=", 0) == 0) {
      const std::string header = arg.substr(9);
      const size_t colon = header.find(':');
      if (colon == std::string::npos) return Fail("bad --header: " + header);
      headers.emplace_back(header.substr(0, colon), header.substr(colon + 1));
    } else if (arg.rfind("--expect-status=", 0) == 0) {
      expect_status = std::atoi(arg.c_str() + 16);
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown flag: " + arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    return Fail("usage: api_client METHOD URL [--body=...] "
                "[--expect-status=N]");
  }
  method = positional[0];
  url = positional[1];

  std::string host;
  uint16_t port = 0;
  std::string path;
  if (!ParseUrl(url, &host, &port, &path)) {
    return Fail("bad url (want http://IP:PORT/path): " + url);
  }

  sketchlink::Result<HttpResult> result =
      Fetch(host, port, method, path, body, headers);
  if (!result.ok()) {
    return Fail(std::string(result.status().message()));
  }
  std::fwrite(result.value().body.data(), 1, result.value().body.size(),
              stdout);

  const int status = result.value().status;
  const bool ok = expect_status >= 0 ? status == expect_status
                                     : status >= 200 && status <= 299;
  if (!ok) {
    std::fprintf(stderr, "\napi_client: %s %s -> %d (expected %s)\n",
                 method.c_str(), url.c_str(), status,
                 expect_status >= 0 ? std::to_string(expect_status).c_str()
                                    : "2xx");
    return 1;
  }
  return 0;
}

# End-to-end smoke test of the linkage-as-a-service plane, run by ctest:
# start `sketchlink_cli api` in the background, then drive every endpoint
# through a real socket with `api_client` — index lifecycle (create,
# duplicate-create, insert, query verified/unverified, list, delete),
# every documented error status (400/404/405/409), and the multiplexed
# telemetry surface (/metrics /metrics.json /traces /healthz).

if(NOT DEFINED CLI OR NOT DEFINED CLIENT)
  message(FATAL_ERROR "pass -DCLI=<sketchlink_cli> -DCLIENT=<api_client>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/api_smoke_scratch")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

# Background launch through the shell (cmake cannot detach a child itself).
# --max-seconds bounds the server's life even if this script dies before
# reaching /quitquitquit, so a failed run cannot leak a listener.
execute_process(
  COMMAND bash -c "'${CLI}' api --port=0 --port-file='${WORK}/port' \
--scratch='${WORK}/indexes' --workers=2 --max-queue=64 \
--max-seconds=120 > '${WORK}/api.log' 2>&1 &"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not launch sketchlink_cli api")
endif()

set(PORT "")
foreach(attempt RANGE 300)
  if(EXISTS "${WORK}/port")
    file(READ "${WORK}/port" PORT)
    string(STRIP "${PORT}" PORT)
    if(NOT PORT STREQUAL "")
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(PORT STREQUAL "")
  set(LOG "")
  if(EXISTS "${WORK}/api.log")
    file(READ "${WORK}/api.log" LOG)
  endif()
  message(FATAL_ERROR "api did not publish a port; log:\n${LOG}")
endif()
set(BASE "http://127.0.0.1:${PORT}")

# call(<out_var> <expected_status> <method> <path> [api_client args...])
function(call out_var expect method path)
  execute_process(COMMAND "${CLIENT}" "${method}" "${BASE}${path}"
                          "--expect-status=${expect}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${method} ${path} (want ${expect}): ${out}${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# --- index lifecycle -------------------------------------------------------
call(CREATED 201 POST /v1/indexes/smoke
     "--body={\"kind\":\"ncvr\",\"lambda\":500,\"delta\":0.1,\"theta\":0.25,\
\"mu\":64,\"distance\":\"jw\",\"threshold\":0.8}")
foreach(want "\"name\":\"smoke\"" "\"rho\":" "\"threshold\":0.8")
  string(FIND "${CREATED}" "${want}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "create response missing ${want}: ${CREATED}")
  endif()
endforeach()

call(DUP 409 POST /v1/indexes/smoke "--body={\"kind\":\"ncvr\"}")
call(BADCFG 400 POST /v1/indexes/badcfg "--body={\"delta\":8}")
call(BADJSON 400 POST /v1/indexes/badjson "--body={nope")
call(BADNAME 400 POST "/v1/indexes/no%20spaces")

call(INSERTED 200 POST /v1/indexes/smoke/records
     "--body={\"records\":[\
{\"id\":1,\"fields\":[\"ALICE\",\"SMITH\",\"RALEIGH\",\"27601\",\"F\",\"1980\"]},\
{\"id\":2,\"fields\":[\"ALICE\",\"SMYTH\",\"RALEIGH\",\"27601\",\"F\",\"1980\"]},\
{\"id\":3,\"fields\":[\"BOB\",\"JONES\",\"DURHAM\",\"27701\",\"M\",\"1955\"]}]}")
if(NOT INSERTED MATCHES "\"inserted\":3")
  message(FATAL_ERROR "insert did not report 3 records: ${INSERTED}")
endif()
call(MISSING 404 POST /v1/indexes/ghost/records "--body={\"records\":[]}")

call(VERIFIED 200 POST /v1/indexes/smoke/query
     "--body={\"record\":{\"id\":99,\"fields\":[\"ALICE\",\"SMITH\",\
\"RALEIGH\",\"27601\",\"F\",\"1980\"]},\"verify\":true}")
if(NOT VERIFIED MATCHES "\"verified\":true" OR
   NOT VERIFIED MATCHES "{\"id\":1,\"score\":1}")
  message(FATAL_ERROR "verified query wrong: ${VERIFIED}")
endif()
call(RAW 200 POST /v1/indexes/smoke/query
     "--body={\"record\":{\"id\":99,\"fields\":[\"ALICE\",\"SMITH\",\
\"RALEIGH\",\"27601\",\"F\",\"1980\"]},\"verify\":false}")
if(NOT RAW MATCHES "\"verified\":false")
  message(FATAL_ERROR "unverified query wrong: ${RAW}")
endif()

call(LISTED 200 GET /v1/indexes)
if(NOT LISTED MATCHES "\"name\":\"smoke\"" OR
   NOT LISTED MATCHES "\"records\":3")
  message(FATAL_ERROR "list missing index stats: ${LISTED}")
endif()

# --- routing errors --------------------------------------------------------
call(NOPE 404 GET /v1/nope)
call(WRONG 405 PUT /v1/indexes/smoke)

# --- telemetry surface on the same port ------------------------------------
call(HEALTH 200 GET /healthz)
if(NOT HEALTH STREQUAL "ok\n")
  message(FATAL_ERROR "unexpected /healthz body: '${HEALTH}'")
endif()
call(PROM 200 GET /metrics)
foreach(family
    "# TYPE serve_requests_admitted_total counter"
    "# TYPE serve_request_latency_nanos histogram"
    "# TYPE sketchlink_sketch_inserts_total counter")
  string(FIND "${PROM}" "${family}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "missing family in /metrics: '${family}'")
  endif()
endforeach()
call(JSON 200 GET /metrics.json)
if(NOT JSON MATCHES "\"metrics\": \\[")
  message(FATAL_ERROR "/metrics.json missing expected structure")
endif()
call(TRACES 200 GET "/traces?limit=50")
if(NOT TRACES MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "/traces is not a Chrome trace_event dump")
endif()

# --- delete, then the name is gone -----------------------------------------
call(GONE 200 DELETE /v1/indexes/smoke)
call(GONE2 404 DELETE /v1/indexes/smoke)
call(GONE3 404 POST /v1/indexes/smoke/query "--body={\"record\":{\"id\":1}}")

# The spill directory must have been reclaimed with the index (spill dirs
# carry a per-incarnation suffix, so check for any leftover).
file(GLOB leftover_spill "${WORK}/indexes/*")
if(NOT leftover_spill STREQUAL "")
  message(FATAL_ERROR "spill dir survived index delete: ${leftover_spill}")
endif()

# Orderly shutdown: the server answers, then exits on its own.
call(BYE 200 POST /quitquitquit)
if(NOT BYE STREQUAL "bye\n")
  message(FATAL_ERROR "unexpected /quitquitquit body: '${BYE}'")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "api smoke OK")

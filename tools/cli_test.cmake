# End-to-end smoke test of sketchlink_cli, run by ctest:
#   generate -> synopsis x2 -> overlap -> link
# Fails on any non-zero exit or missing expected output.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to sketchlink_cli>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/cli_test_scratch")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_cli)
  execute_process(COMMAND "${CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sketchlink_cli ${ARGN} failed (${rc}): ${out}${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

run_cli(generate --kind=ncvr --entities=200 --copies=6
        --q=${WORK}/q.csv --a=${WORK}/a.csv --seed=7)
if(NOT EXISTS "${WORK}/q.csv" OR NOT EXISTS "${WORK}/a.csv")
  message(FATAL_ERROR "generate did not write the CSV files")
endif()

run_cli(synopsis --in=${WORK}/a.csv --out=${WORK}/a.sketch --kind=ncvr)
run_cli(synopsis --in=${WORK}/q.csv --out=${WORK}/q.sketch --kind=ncvr)

run_cli(overlap --a=${WORK}/a.sketch --b=${WORK}/q.sketch)
if(NOT LAST_OUTPUT MATCHES "overlap coefficient")
  message(FATAL_ERROR "overlap output missing coefficient: ${LAST_OUTPUT}")
endif()

run_cli(link --a=${WORK}/a.csv --q=${WORK}/q.csv --kind=ncvr
        --method=blocksketch --blocking=standard)
if(NOT LAST_OUTPUT MATCHES "recall")
  message(FATAL_ERROR "link output missing recall: ${LAST_OUTPUT}")
endif()

# Unknown commands and bad flags must fail loudly.
execute_process(COMMAND "${CLI}" frobnicate RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command unexpectedly succeeded")
endif()
execute_process(COMMAND "${CLI}" link --a=${WORK}/missing.csv
                --q=${WORK}/q.csv RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "link with missing input unexpectedly succeeded")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "sketchlink_cli end-to-end OK")

# End-to-end test of the live telemetry plane, run by ctest: start
# `sketchlink_cli serve` in the background, scrape every endpoint with
# `metrics_dump --url` (the plain-socket client), validate /metrics against
# the Prometheus grammar shared with metrics_dump_smoke, and check /traces
# for a correctly parented engine->sketch->kv span chain.

if(NOT DEFINED CLI OR NOT DEFINED TOOL)
  message(FATAL_ERROR "pass -DCLI=<sketchlink_cli> -DTOOL=<metrics_dump>")
endif()

include("${CMAKE_CURRENT_LIST_DIR}/prometheus_validator.cmake")

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/serve_test_scratch")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

# Background launch through the shell (cmake cannot detach a child itself).
# --max-seconds bounds the server's life even if this script dies before
# reaching /quitquitquit, so a failed run cannot leak a listener.
execute_process(
  COMMAND bash -c "'${CLI}' serve --kind=ncvr --entities=120 --copies=5 \
--method=sblocksketch --mu=30 --port=0 --port-file='${WORK}/port' \
--max-seconds=120 > '${WORK}/serve.log' 2>&1 &"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not launch sketchlink_cli serve")
endif()

# The port file is written only after the socket is accepting connections.
set(PORT "")
foreach(attempt RANGE 300)
  if(EXISTS "${WORK}/port")
    file(READ "${WORK}/port" PORT)
    string(STRIP "${PORT}" PORT)
    if(NOT PORT STREQUAL "")
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(PORT STREQUAL "")
  set(LOG "")
  if(EXISTS "${WORK}/serve.log")
    file(READ "${WORK}/serve.log" LOG)
  endif()
  message(FATAL_ERROR "serve did not publish a port; log:\n${LOG}")
endif()
set(BASE "http://127.0.0.1:${PORT}")

function(scrape path out_var)
  execute_process(COMMAND "${TOOL}" "--url=${BASE}${path}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "GET ${path} failed (${rc}): ${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

scrape(/healthz HEALTH)
if(NOT HEALTH STREQUAL "ok\n")
  message(FATAL_ERROR "unexpected /healthz body: '${HEALTH}'")
endif()

# The live scrape must satisfy the same grammar as a local dump, and the
# span-tracing counters must be visible alongside the pipeline families.
scrape(/metrics PROM)
validate_prometheus_text("${PROM}" 20)
foreach(family
    "# TYPE sketchlink_engine_query_latency_nanos histogram"
    "# TYPE sketchlink_kv_puts_total counter"
    "# TYPE sketchlink_trace_kept_total counter")
  string(FIND "${PROM}" "${family}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "missing expected family in live scrape: '${family}'")
  endif()
endforeach()

scrape(/metrics.json JSON)
if(NOT JSON MATCHES "\"metrics\": \\[" OR NOT JSON MATCHES "\"p99\"")
  message(FATAL_ERROR "live /metrics.json missing expected structure")
endif()

scrape(/traces TRACES)
if(NOT TRACES MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "live /traces is not a Chrome trace_event dump")
endif()
file(WRITE "${WORK}/traces.json" "${TRACES}")
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(COMMAND "${PYTHON3}"
                          "${CMAKE_CURRENT_LIST_DIR}/check_trace_parenting.py"
                          "${WORK}/traces.json"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace parenting check failed: ${out}${err}")
  endif()
  string(STRIP "${out}" out)
  message(STATUS "${out}")
else()
  message(WARNING "python3 not found — skipping trace parenting check")
endif()

# A 404 from the live server must surface as a scrape failure.
execute_process(COMMAND "${TOOL}" "--url=${BASE}/nope"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "GET /nope unexpectedly succeeded")
endif()

# Orderly shutdown: the server answers, then exits on its own.
scrape(/quitquitquit BYE)
if(NOT BYE STREQUAL "bye\n")
  message(FATAL_ERROR "unexpected /quitquitquit body: '${BYE}'")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "serve end-to-end OK")

// sketchlink command-line tool: drive the library's pipelines from the
// shell without writing C++.
//
//   sketchlink_cli generate --kind=ncvr --entities=1000 --copies=10 \
//       --q=q.csv --a=a.csv [--seed=42] [--max-ops=4]
//   sketchlink_cli synopsis --in=a.csv --out=a.sketch [--expected-keys=N]
//   sketchlink_cli overlap --a=a.sketch --b=b.sketch
//   sketchlink_cli link --a=a.csv --q=q.csv --kind=ncvr
//       [--method=blocksketch|eo|inv|naive] [--blocking=standard|lsh]
//   sketchlink_cli serve [--kind=ncvr] [--entities=500] [--copies=8]
//       [--method=sblocksketch|blocksketch] [--mu=50] [--threads=1]
//       [--port=0] [--port-file=PATH] [--reuse-addr]
//       [--sample-period=1] [--keep-period=1] [--max-seconds=0]
//   sketchlink_cli api [--port=0] [--port-file=PATH] [--reuse-addr]
//       [--workers=2] [--max-queue=128] [--deadline-ms=5000]
//       [--scratch=/tmp/sketchlink_api] [--max-indexes=16]
//       [--sample-period=1] [--keep-period=1] [--max-seconds=0]
//
// `generate` writes a Q/A workload as CSV; `synopsis` compiles a SkipBloom
// from a data set's blocking keys and serializes it (the artifact the
// Fig. 3 protocol ships between custodians); `overlap` estimates the
// overlap coefficient from two synopsis files; `link` runs a full
// blocking+matching experiment and prints the report; `serve` runs a
// traced pipeline and exposes /metrics, /metrics.json, /traces and
// /healthz over HTTP until /quitquitquit is hit (or --max-seconds
// elapses). serve defaults to trace-everything sampling so a scrape of
// /traces always shows parented engine→sketch→kv spans. `api` starts the
// concurrent linkage-as-a-service plane (src/serve): the /v1/indexes
// endpoints for multi-tenant create/insert/query/delete plus the same
// telemetry surface, all on one port, until POST /quitquitquit.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "baselines/edge_ordering.h"
#include "baselines/inv_index.h"
#include "baselines/oracle.h"
#include "blocking/presets.h"
#include "core/overlap.h"
#include "core/skip_bloom.h"
#include "datagen/generators.h"
#include "kv/db.h"
#include "kv/env.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"
#include "obs/http_server.h"
#include "obs/registry.h"
#include "obs/spans.h"
#include "serve/server.h"
#include "serve/service.h"

namespace sketchlink::cli {
namespace {

using datagen::DatasetKind;

// --flag=value argument parsing into a map.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& name, const std::string& fallback = "") {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

uint64_t GetInt(const std::map<std::string, std::string>& flags,
                const std::string& name, uint64_t fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback
                           : std::strtoull(it->second.c_str(), nullptr, 10);
}

bool ParseKind(const std::string& name, DatasetKind* kind) {
  if (name == "dblp") *kind = DatasetKind::kDblp;
  else if (name == "ncvr") *kind = DatasetKind::kNcvr;
  else if (name == "lab") *kind = DatasetKind::kLab;
  else return false;
  return true;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Generate(const std::map<std::string, std::string>& flags) {
  DatasetKind kind;
  if (!ParseKind(Get(flags, "kind", "ncvr"), &kind)) {
    return Fail("--kind must be dblp|ncvr|lab");
  }
  datagen::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_entities = GetInt(flags, "entities", 1000);
  spec.copies_per_entity = GetInt(flags, "copies", 10);
  spec.max_perturb_ops = static_cast<int>(GetInt(flags, "max-ops", 4));
  spec.seed = GetInt(flags, "seed", 42);
  const std::string q_path = Get(flags, "q", "q.csv");
  const std::string a_path = Get(flags, "a", "a.csv");

  const datagen::Workload workload = datagen::MakeWorkload(spec);
  Status status = workload.q.WriteCsv(q_path);
  if (!status.ok()) return Fail(status.ToString());
  status = workload.a.WriteCsv(a_path);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %zu query records to %s and %zu data records to %s\n",
              workload.q.size(), q_path.c_str(), workload.a.size(),
              a_path.c_str());
  return 0;
}

int Synopsis(const std::map<std::string, std::string>& flags) {
  const std::string in = Get(flags, "in");
  const std::string out = Get(flags, "out");
  if (in.empty() || out.empty()) return Fail("--in and --out are required");
  auto dataset = Dataset::ReadCsv(in);
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  DatasetKind kind;
  if (!ParseKind(Get(flags, "kind", "ncvr"), &kind)) {
    return Fail("--kind must be dblp|ncvr|lab");
  }
  auto blocker = MakeStandardBlocker(kind);

  SkipBloomOptions options;
  options.expected_keys =
      GetInt(flags, "expected-keys", dataset->size());
  SkipBloom synopsis(options);
  for (const Record& record : dataset->records()) {
    synopsis.Insert(blocker->Key(record));
  }
  std::string encoded;
  synopsis.EncodeTo(&encoded);
  Status status = kv::WriteStringToFileSync(out, encoded);
  if (!status.ok()) return Fail(status.ToString());
  std::printf(
      "summarized %zu records (%llu distinct-ish keys sampled into %zu "
      "blocks) into %s (%zu bytes)\n",
      dataset->size(),
      static_cast<unsigned long long>(synopsis.stats().sampled_keys),
      synopsis.num_blocks(), out.c_str(), encoded.size());
  return 0;
}

int Overlap(const std::map<std::string, std::string>& flags) {
  const std::string path_a = Get(flags, "a");
  const std::string path_b = Get(flags, "b");
  if (path_a.empty() || path_b.empty()) {
    return Fail("--a and --b synopsis files are required");
  }
  std::string bytes_a;
  std::string bytes_b;
  Status status = kv::ReadFileToString(path_a, &bytes_a);
  if (!status.ok()) return Fail(status.ToString());
  status = kv::ReadFileToString(path_b, &bytes_b);
  if (!status.ok()) return Fail(status.ToString());

  std::string_view view_a(bytes_a);
  auto synopsis_a = SkipBloom::DecodeFrom(&view_a);
  if (!synopsis_a.ok()) return Fail(synopsis_a.status().ToString());
  std::string_view view_b(bytes_b);
  auto synopsis_b = SkipBloom::DecodeFrom(&view_b);
  if (!synopsis_b.ok()) return Fail(synopsis_b.status().ToString());

  const OverlapEstimate estimate =
      EstimateOverlapCoefficient(**synopsis_a, **synopsis_b);
  std::printf(
      "estimated overlap coefficient |A∩B|/|B| = %.4f  (%zu sampled keys, "
      "%zu found in A)\n",
      estimate.coefficient, estimate.sample_size, estimate.hits);
  return 0;
}

int Link(const std::map<std::string, std::string>& flags) {
  DatasetKind kind;
  if (!ParseKind(Get(flags, "kind", "ncvr"), &kind)) {
    return Fail("--kind must be dblp|ncvr|lab");
  }
  auto a = Dataset::ReadCsv(Get(flags, "a", "a.csv"));
  if (!a.ok()) return Fail(a.status().ToString());
  auto q = Dataset::ReadCsv(Get(flags, "q", "q.csv"));
  if (!q.ok()) return Fail(q.status().ToString());

  const std::string blocking = Get(flags, "blocking", "standard");
  std::unique_ptr<Blocker> blocker;
  if (blocking == "standard") {
    blocker = MakeStandardBlocker(kind);
  } else if (blocking == "lsh") {
    blocker = MakeLshBlocker(kind);
  } else {
    return Fail("--blocking must be standard|lsh");
  }

  const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  RecordStore store;
  Oracle oracle;
  std::unique_ptr<OnlineMatcher> matcher;
  const std::string method = Get(flags, "method", "blocksketch");
  if (method == "blocksketch") {
    matcher = std::make_unique<BlockSketchMatcher>(BlockSketchOptions(),
                                                   similarity, &store);
  } else if (method == "eo") {
    matcher = std::make_unique<EdgeOrderingMatcher>(EoOptions(), similarity,
                                                    &store, &oracle);
  } else if (method == "inv") {
    matcher =
        std::make_unique<InvIndexMatcher>(InvOptions(), similarity, &store);
  } else if (method == "naive") {
    matcher = std::make_unique<NaiveBlockMatcher>(similarity, &store);
  } else {
    return Fail("--method must be blocksketch|eo|inv|naive");
  }

  LinkageEngine engine(blocker.get(), matcher.get(), similarity);
  Status status = engine.BuildIndex(*a);
  if (!status.ok()) return Fail(status.ToString());
  const GroundTruth truth(*a);
  auto report = engine.ResolveAll(*q, truth);
  if (!report.ok()) return Fail(report.status().ToString());

  std::printf("method           %s\n", report->method.c_str());
  std::printf("blocking         %s\n", report->blocking.c_str());
  std::printf("blocking time    %.3f s\n", report->blocking_seconds);
  std::printf("matching time    %.3f s (%.1f us/query)\n",
              report->matching_seconds, report->avg_query_seconds * 1e6);
  std::printf("comparisons      %llu\n",
              static_cast<unsigned long long>(report->comparisons));
  std::printf("matcher memory   %s\n",
              FormatBytes(report->matcher_memory_bytes).c_str());
  std::printf("recall           %.4f\n", report->quality.recall);
  std::printf("precision        %.4f\n", report->quality.precision);
  std::printf("f1               %.4f\n", report->quality.f1);
  return 0;
}

int Serve(const std::map<std::string, std::string>& flags) {
  DatasetKind kind;
  if (!ParseKind(Get(flags, "kind", "ncvr"), &kind)) {
    return Fail("--kind must be dblp|ncvr|lab");
  }
  const std::string method = Get(flags, "method", "sblocksketch");
  if (method != "blocksketch" && method != "sblocksketch") {
    return Fail("--method must be blocksketch|sblocksketch");
  }

  obs::MetricRegistry registry;
  // Trace-everything defaults: serve is a debugging surface, so a scrape of
  // /traces must deterministically show spans, not depend on sampling luck.
  obs::Tracer::Options trace_options;
  trace_options.sample_period =
      static_cast<uint32_t>(GetInt(flags, "sample-period", 1));
  trace_options.keep_period =
      static_cast<uint32_t>(GetInt(flags, "keep-period", 1));
  obs::Tracer tracer(trace_options);
  const auto tracer_regs = tracer.RegisterMetrics(&registry, "serve");

  datagen::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_entities = GetInt(flags, "entities", 500);
  spec.copies_per_entity = GetInt(flags, "copies", 8);
  spec.max_perturb_ops = 4;
  spec.seed = GetInt(flags, "seed", 42);
  const datagen::Workload workload = datagen::MakeWorkload(spec);

  auto blocker = MakeStandardBlocker(kind);
  const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  RecordStore store;

  // sblocksketch (the default) runs with a small mu so queries hit the
  // spill store — that is what puts kv children under the sketch spans.
  std::unique_ptr<kv::Db> spill_db;
  std::string scratch;
  std::unique_ptr<OnlineMatcher> matcher;
  if (method == "sblocksketch") {
    scratch = "/tmp/sketchlink_serve_spill";
    (void)kv::RemoveDirRecursively(scratch);
    (void)kv::CreateDirIfMissing(scratch);
    kv::Options db_options;
    db_options.registry = &registry;
    db_options.metrics_instance = "spill";
    auto db = kv::Db::Open(scratch, db_options);
    if (!db.ok()) return Fail(db.status().ToString());
    spill_db = std::move(*db);
    SBlockSketchOptions options;
    options.mu = GetInt(flags, "mu", 50);
    matcher = std::make_unique<SBlockSketchMatcher>(options, spill_db.get(),
                                                    similarity, &store);
  } else {
    matcher = std::make_unique<BlockSketchMatcher>(BlockSketchOptions(),
                                                   similarity, &store);
  }

  EngineOptions engine_options;
  engine_options.num_threads = GetInt(flags, "threads", 1);
  engine_options.registry = &registry;
  engine_options.metrics_instance = "serve";
  engine_options.tracer = &tracer;
  LinkageEngine engine(blocker.get(), matcher.get(), similarity,
                       engine_options);
  Status status = engine.BuildIndex(workload.a);
  if (!status.ok()) return Fail(status.ToString());
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("pipeline ready: %zu records indexed, %zu queries resolved "
              "(recall %.4f)\n",
              workload.a.size(), workload.q.size(), report->quality.recall);

  obs::HttpServer::Options server_options;
  server_options.port = static_cast<uint16_t>(GetInt(flags, "port", 0));
  // --reuse-addr lets a supervised restart rebind a fixed --port while the
  // previous incarnation's socket drains TIME_WAIT. Binding over a live
  // listener still fails either way.
  server_options.reuse_address = flags.count("reuse-addr") > 0;
  obs::HttpServer server(server_options);
  obs::RegisterTelemetryHandlers(&server, &registry, &tracer);

  std::mutex quit_mutex;
  std::condition_variable quit_cv;
  bool quit = false;
  server.AddHandler("/quitquitquit", [&](const obs::HttpRequest&) {
    {
      std::lock_guard<std::mutex> lock(quit_mutex);
      quit = true;
    }
    quit_cv.notify_all();
    obs::HttpResponse response;
    response.body = "bye\n";
    return response;
  });

  status = server.Start();
  if (!status.ok()) return Fail(status.ToString());
  std::printf("serving on http://127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::printf("endpoints: /metrics /metrics.json /traces /healthz "
              "/quitquitquit\n");
  std::fflush(stdout);

  // The port file is written after Start so a reader never sees a port
  // that is not yet accepting connections.
  const std::string port_file = Get(flags, "port-file");
  if (!port_file.empty()) {
    status = kv::WriteStringToFileSync(port_file,
                                       std::to_string(server.port()) + "\n");
    if (!status.ok()) return Fail(status.ToString());
  }

  const uint64_t max_seconds = GetInt(flags, "max-seconds", 0);
  {
    std::unique_lock<std::mutex> lock(quit_mutex);
    if (max_seconds == 0) {
      quit_cv.wait(lock, [&] { return quit; });
    } else {
      quit_cv.wait_for(lock, std::chrono::seconds(max_seconds),
                       [&] { return quit; });
    }
  }
  server.Stop();
  if (!scratch.empty()) (void)kv::RemoveDirRecursively(scratch);
  std::printf("stopped\n");
  return 0;
}

int Api(const std::map<std::string, std::string>& flags) {
  obs::MetricRegistry registry;
  // Trace-everything defaults, like `serve`: /traces must show served and
  // shed requests deterministically.
  obs::Tracer::Options trace_options;
  trace_options.sample_period =
      static_cast<uint32_t>(GetInt(flags, "sample-period", 1));
  trace_options.keep_period =
      static_cast<uint32_t>(GetInt(flags, "keep-period", 1));
  obs::Tracer tracer(trace_options);
  const auto tracer_regs = tracer.RegisterMetrics(&registry, "api");

  serve::LinkageService::Options service_options;
  service_options.scratch_dir = Get(flags, "scratch", "/tmp/sketchlink_api");
  service_options.max_indexes = GetInt(flags, "max-indexes", 16);
  service_options.registry = &registry;
  serve::LinkageService service(service_options);

  serve::Server::Options server_options;
  server_options.loop.port = static_cast<uint16_t>(GetInt(flags, "port", 0));
  server_options.loop.reuse_address = flags.count("reuse-addr") > 0;
  server_options.num_workers = GetInt(flags, "workers", 2);
  server_options.max_queue = GetInt(flags, "max-queue", 128);
  server_options.default_deadline_ms = GetInt(flags, "deadline-ms", 5000);
  server_options.registry = &registry;
  server_options.tracer = &tracer;
  serve::Server server(server_options);
  service.RegisterRoutes(&server);

  // Same telemetry surface as the scrape plane, multiplexed on this port.
  for (auto& [path, handler] : obs::TelemetryHandlers(&registry, &tracer)) {
    server.AddRoute("GET", path,
                    [h = std::move(handler)](const serve::Server::Request& r) {
                      return h(r.http);
                    });
  }

  std::mutex quit_mutex;
  std::condition_variable quit_cv;
  bool quit = false;
  const auto quit_handler = [&](const serve::Server::Request&) {
    {
      std::lock_guard<std::mutex> lock(quit_mutex);
      quit = true;
    }
    quit_cv.notify_all();
    obs::HttpResponse response;
    response.body = "bye\n";
    return response;
  };
  server.AddRoute("POST", "/quitquitquit", quit_handler);
  // GET variant so GET-only clients (metrics_dump --url) can stop the
  // server from test scripts.
  server.AddRoute("GET", "/quitquitquit", quit_handler);

  const Status status = server.Start();
  if (!status.ok()) return Fail(status.ToString());
  std::printf("api serving on http://127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::printf("endpoints: /v1/indexes /v1/indexes/{name} "
              "/v1/indexes/{name}/records /v1/indexes/{name}/query "
              "/metrics /metrics.json /traces /healthz /quitquitquit\n");
  std::fflush(stdout);

  // Port file written after Start: a reader never sees a port that is not
  // yet accepting connections.
  const std::string port_file = Get(flags, "port-file");
  if (!port_file.empty()) {
    const Status write = kv::WriteStringToFileSync(
        port_file, std::to_string(server.port()) + "\n");
    if (!write.ok()) return Fail(write.ToString());
  }

  const uint64_t max_seconds = GetInt(flags, "max-seconds", 0);
  {
    std::unique_lock<std::mutex> lock(quit_mutex);
    if (max_seconds == 0) {
      quit_cv.wait(lock, [&] { return quit; });
    } else {
      quit_cv.wait_for(lock, std::chrono::seconds(max_seconds),
                       [&] { return quit; });
    }
  }
  server.Shutdown();
  std::printf("stopped\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sketchlink_cli "
               "<generate|synopsis|overlap|link|serve|api> "
               "[--flag=value ...]\n(see the header of tools/sketchlink_cli"
               ".cc for the full flag reference)\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return Generate(flags);
  if (command == "synopsis") return Synopsis(flags);
  if (command == "overlap") return Overlap(flags);
  if (command == "link") return Link(flags);
  if (command == "serve") return Serve(flags);
  if (command == "api") return Api(flags);
  return Usage();
}

}  // namespace
}  // namespace sketchlink::cli

int main(int argc, char** argv) { return sketchlink::cli::Main(argc, argv); }

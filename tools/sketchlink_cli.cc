// sketchlink command-line tool: drive the library's pipelines from the
// shell without writing C++.
//
//   sketchlink_cli generate --kind=ncvr --entities=1000 --copies=10 \
//       --q=q.csv --a=a.csv [--seed=42] [--max-ops=4]
//   sketchlink_cli synopsis --in=a.csv --out=a.sketch [--expected-keys=N]
//   sketchlink_cli overlap --a=a.sketch --b=b.sketch
//   sketchlink_cli link --a=a.csv --q=q.csv --kind=ncvr
//       [--method=blocksketch|eo|inv|naive] [--blocking=standard|lsh]
//
// `generate` writes a Q/A workload as CSV; `synopsis` compiles a SkipBloom
// from a data set's blocking keys and serializes it (the artifact the
// Fig. 3 protocol ships between custodians); `overlap` estimates the
// overlap coefficient from two synopsis files; `link` runs a full
// blocking+matching experiment and prints the report.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "baselines/edge_ordering.h"
#include "baselines/inv_index.h"
#include "baselines/oracle.h"
#include "blocking/presets.h"
#include "core/overlap.h"
#include "core/skip_bloom.h"
#include "datagen/generators.h"
#include "kv/env.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"

namespace sketchlink::cli {
namespace {

using datagen::DatasetKind;

// --flag=value argument parsing into a map.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& name, const std::string& fallback = "") {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

uint64_t GetInt(const std::map<std::string, std::string>& flags,
                const std::string& name, uint64_t fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback
                           : std::strtoull(it->second.c_str(), nullptr, 10);
}

bool ParseKind(const std::string& name, DatasetKind* kind) {
  if (name == "dblp") *kind = DatasetKind::kDblp;
  else if (name == "ncvr") *kind = DatasetKind::kNcvr;
  else if (name == "lab") *kind = DatasetKind::kLab;
  else return false;
  return true;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Generate(const std::map<std::string, std::string>& flags) {
  DatasetKind kind;
  if (!ParseKind(Get(flags, "kind", "ncvr"), &kind)) {
    return Fail("--kind must be dblp|ncvr|lab");
  }
  datagen::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_entities = GetInt(flags, "entities", 1000);
  spec.copies_per_entity = GetInt(flags, "copies", 10);
  spec.max_perturb_ops = static_cast<int>(GetInt(flags, "max-ops", 4));
  spec.seed = GetInt(flags, "seed", 42);
  const std::string q_path = Get(flags, "q", "q.csv");
  const std::string a_path = Get(flags, "a", "a.csv");

  const datagen::Workload workload = datagen::MakeWorkload(spec);
  Status status = workload.q.WriteCsv(q_path);
  if (!status.ok()) return Fail(status.ToString());
  status = workload.a.WriteCsv(a_path);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %zu query records to %s and %zu data records to %s\n",
              workload.q.size(), q_path.c_str(), workload.a.size(),
              a_path.c_str());
  return 0;
}

int Synopsis(const std::map<std::string, std::string>& flags) {
  const std::string in = Get(flags, "in");
  const std::string out = Get(flags, "out");
  if (in.empty() || out.empty()) return Fail("--in and --out are required");
  auto dataset = Dataset::ReadCsv(in);
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  DatasetKind kind;
  if (!ParseKind(Get(flags, "kind", "ncvr"), &kind)) {
    return Fail("--kind must be dblp|ncvr|lab");
  }
  auto blocker = MakeStandardBlocker(kind);

  SkipBloomOptions options;
  options.expected_keys =
      GetInt(flags, "expected-keys", dataset->size());
  SkipBloom synopsis(options);
  for (const Record& record : dataset->records()) {
    synopsis.Insert(blocker->Key(record));
  }
  std::string encoded;
  synopsis.EncodeTo(&encoded);
  Status status = kv::WriteStringToFileSync(out, encoded);
  if (!status.ok()) return Fail(status.ToString());
  std::printf(
      "summarized %zu records (%llu distinct-ish keys sampled into %zu "
      "blocks) into %s (%zu bytes)\n",
      dataset->size(),
      static_cast<unsigned long long>(synopsis.stats().sampled_keys),
      synopsis.num_blocks(), out.c_str(), encoded.size());
  return 0;
}

int Overlap(const std::map<std::string, std::string>& flags) {
  const std::string path_a = Get(flags, "a");
  const std::string path_b = Get(flags, "b");
  if (path_a.empty() || path_b.empty()) {
    return Fail("--a and --b synopsis files are required");
  }
  std::string bytes_a;
  std::string bytes_b;
  Status status = kv::ReadFileToString(path_a, &bytes_a);
  if (!status.ok()) return Fail(status.ToString());
  status = kv::ReadFileToString(path_b, &bytes_b);
  if (!status.ok()) return Fail(status.ToString());

  std::string_view view_a(bytes_a);
  auto synopsis_a = SkipBloom::DecodeFrom(&view_a);
  if (!synopsis_a.ok()) return Fail(synopsis_a.status().ToString());
  std::string_view view_b(bytes_b);
  auto synopsis_b = SkipBloom::DecodeFrom(&view_b);
  if (!synopsis_b.ok()) return Fail(synopsis_b.status().ToString());

  const OverlapEstimate estimate =
      EstimateOverlapCoefficient(**synopsis_a, **synopsis_b);
  std::printf(
      "estimated overlap coefficient |A∩B|/|B| = %.4f  (%zu sampled keys, "
      "%zu found in A)\n",
      estimate.coefficient, estimate.sample_size, estimate.hits);
  return 0;
}

int Link(const std::map<std::string, std::string>& flags) {
  DatasetKind kind;
  if (!ParseKind(Get(flags, "kind", "ncvr"), &kind)) {
    return Fail("--kind must be dblp|ncvr|lab");
  }
  auto a = Dataset::ReadCsv(Get(flags, "a", "a.csv"));
  if (!a.ok()) return Fail(a.status().ToString());
  auto q = Dataset::ReadCsv(Get(flags, "q", "q.csv"));
  if (!q.ok()) return Fail(q.status().ToString());

  const std::string blocking = Get(flags, "blocking", "standard");
  std::unique_ptr<Blocker> blocker;
  if (blocking == "standard") {
    blocker = MakeStandardBlocker(kind);
  } else if (blocking == "lsh") {
    blocker = MakeLshBlocker(kind);
  } else {
    return Fail("--blocking must be standard|lsh");
  }

  const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  RecordStore store;
  Oracle oracle;
  std::unique_ptr<OnlineMatcher> matcher;
  const std::string method = Get(flags, "method", "blocksketch");
  if (method == "blocksketch") {
    matcher = std::make_unique<BlockSketchMatcher>(BlockSketchOptions(),
                                                   similarity, &store);
  } else if (method == "eo") {
    matcher = std::make_unique<EdgeOrderingMatcher>(EoOptions(), similarity,
                                                    &store, &oracle);
  } else if (method == "inv") {
    matcher =
        std::make_unique<InvIndexMatcher>(InvOptions(), similarity, &store);
  } else if (method == "naive") {
    matcher = std::make_unique<NaiveBlockMatcher>(similarity, &store);
  } else {
    return Fail("--method must be blocksketch|eo|inv|naive");
  }

  LinkageEngine engine(blocker.get(), matcher.get(), similarity);
  Status status = engine.BuildIndex(*a);
  if (!status.ok()) return Fail(status.ToString());
  const GroundTruth truth(*a);
  auto report = engine.ResolveAll(*q, truth);
  if (!report.ok()) return Fail(report.status().ToString());

  std::printf("method           %s\n", report->method.c_str());
  std::printf("blocking         %s\n", report->blocking.c_str());
  std::printf("blocking time    %.3f s\n", report->blocking_seconds);
  std::printf("matching time    %.3f s (%.1f us/query)\n",
              report->matching_seconds, report->avg_query_seconds * 1e6);
  std::printf("comparisons      %llu\n",
              static_cast<unsigned long long>(report->comparisons));
  std::printf("matcher memory   %s\n",
              FormatBytes(report->matcher_memory_bytes).c_str());
  std::printf("recall           %.4f\n", report->quality.recall);
  std::printf("precision        %.4f\n", report->quality.precision);
  std::printf("f1               %.4f\n", report->quality.f1);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sketchlink_cli <generate|synopsis|overlap|link> "
               "[--flag=value ...]\n(see the header of tools/sketchlink_cli"
               ".cc for the full flag reference)\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return Generate(flags);
  if (command == "synopsis") return Synopsis(flags);
  if (command == "overlap") return Overlap(flags);
  if (command == "link") return Link(flags);
  return Usage();
}

}  // namespace
}  // namespace sketchlink::cli

int main(int argc, char** argv) { return sketchlink::cli::Main(argc, argv); }

#!/usr/bin/env python3
"""Checks a Chrome trace_event dump for a parented engine->sketch->kv chain.

Usage: check_trace_parenting.py TRACE_JSON_FILE

Reads the /traces export (Chrome trace_event JSON) and exits 0 iff at least
one trace contains a `kv` span whose ancestor chain passes through a
`sketch` span and terminates at an `engine`/`query` root — i.e. the span
contexts propagated correctly across the engine, sketch and storage layers
for at least one sampled query.
"""

import json
import sys


def find_chain(events):
    """Returns a (root, sketch, kv) name triple for one parented chain."""
    by_trace = {}
    for event in events:
        by_trace.setdefault(event["args"]["trace_id"], []).append(event)
    for trace_events in by_trace.values():
        by_span = {e["args"]["span_id"]: e for e in trace_events}
        for event in trace_events:
            if event["cat"] != "kv":
                continue
            # Walk rootward from the kv span, remembering any sketch hop.
            sketch_hop = None
            cursor = event
            for _ in range(len(trace_events) + 1):  # cycle guard
                parent_id = cursor["args"]["parent_span_id"]
                if parent_id == 0:
                    break
                cursor = by_span.get(parent_id)
                if cursor is None:
                    break
                if cursor["cat"] == "sketch" and sketch_hop is None:
                    sketch_hop = cursor
            if (
                sketch_hop is not None
                and cursor is not None
                and cursor["cat"] == "engine"
                and cursor["name"] == "query"
                and cursor["args"]["parent_span_id"] == 0
            ):
                return cursor, sketch_hop, event
    return None


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        data = json.load(f)
    events = data.get("traceEvents", [])
    if not events:
        print("trace dump has no events", file=sys.stderr)
        return 1
    chain = find_chain(events)
    if chain is None:
        print(
            "no engine/query -> sketch -> kv parented chain in "
            f"{len(events)} events",
            file=sys.stderr,
        )
        return 1
    root, sketch, kv = chain
    print(
        f"ok: trace {root['args']['trace_id']}: "
        f"engine/{root['name']} -> sketch/{sketch['name']} -> kv/{kv['name']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Per-directory line-coverage gate for the tier-1 suite.

Usage:
    cmake --preset coverage && cmake --build --preset coverage -j
    ctest --preset tier1-coverage
    python3 tools/check_coverage.py --build-dir build-coverage

Walks the build tree for gcov counter files (.gcda), asks gcov for JSON
intermediate output, aggregates executed/instrumented lines per source
directory under src/, and fails (exit 1) when any directory falls below its
threshold. Thresholds: --min applies everywhere, --dir-min overrides one
directory (repeatable). Only first-party sources under src/ count; tests,
benches, and system headers are ignored.
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda_files(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.join(root, name))
    return out


def gcov_json(gcda, gcov_tool):
    """Returns the parsed gcov JSON records for one .gcda, or None."""
    try:
        proc = subprocess.run(
            [gcov_tool, "--json-format", "--stdout", gcda],
            capture_output=True,
            check=False,
        )
    except FileNotFoundError:
        sys.exit(f"error: gcov tool not found: {gcov_tool}")
    if proc.returncode != 0:
        return None
    records = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def directory_of(source_path, repo_root):
    """Maps a gcov file path to its src/<dir> bucket, or None to ignore."""
    path = os.path.normpath(os.path.join(repo_root, source_path))
    rel = os.path.relpath(path, repo_root)
    parts = rel.split(os.sep)
    if len(parts) < 3 or parts[0] != "src":
        return None  # tests, benches, tools, system headers
    return os.path.join(parts[0], parts[1])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-coverage")
    parser.add_argument("--min", type=float, default=80.0,
                        help="minimum line coverage percent per directory")
    parser.add_argument("--dir-min", action="append", default=[],
                        metavar="DIR=PCT",
                        help="override, e.g. --dir-min src/simd=90")
    parser.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    build_dir = os.path.join(repo_root, args.build_dir) \
        if not os.path.isabs(args.build_dir) else args.build_dir
    if not os.path.isdir(build_dir):
        sys.exit(f"error: build dir not found: {build_dir} "
                 "(configure with `cmake --preset coverage` first)")

    gcda_files = find_gcda_files(build_dir)
    if not gcda_files:
        sys.exit(f"error: no .gcda files under {build_dir} "
                 "(run `ctest --preset tier1-coverage` first)")

    overrides = {}
    for spec in args.dir_min:
        name, _, pct = spec.partition("=")
        try:
            overrides[os.path.normpath(name)] = float(pct)
        except ValueError:
            sys.exit(f"error: bad --dir-min '{spec}' (expected DIR=PCT)")

    # line key: (absolute source path, line number) -> executed?
    # The same header/TU shows up in many .gcda files; a line counts as
    # covered if ANY test binary executed it.
    lines = {}
    for gcda in gcda_files:
        records = gcov_json(gcda, args.gcov)
        if not records:
            continue
        for record in records:
            for file_entry in record.get("files", []):
                src = file_entry.get("file", "")
                bucket = directory_of(src, repo_root)
                if bucket is None:
                    continue
                abs_src = os.path.normpath(os.path.join(repo_root, src))
                for line in file_entry.get("lines", []):
                    key = (abs_src, line["line_number"])
                    lines[key] = lines.get(key, False) or line["count"] > 0
    if not lines:
        sys.exit("error: gcov produced no line records for src/ "
                 "(is the build configured with SKETCHLINK_COVERAGE=ON?)")

    per_dir = collections.defaultdict(lambda: [0, 0])  # dir -> [covered, total]
    for (abs_src, _line_no), covered in lines.items():
        bucket = directory_of(os.path.relpath(abs_src, repo_root), repo_root)
        if bucket is None:
            continue
        per_dir[bucket][1] += 1
        if covered:
            per_dir[bucket][0] += 1

    failed = []
    print(f"{'directory':<18} {'lines':>8} {'covered':>8} {'pct':>7} "
          f"{'gate':>6}")
    for bucket in sorted(per_dir):
        covered, total = per_dir[bucket]
        pct = 100.0 * covered / total if total else 0.0
        gate = overrides.get(os.path.normpath(bucket), args.min)
        status = "ok" if pct >= gate else "FAIL"
        if pct < gate:
            failed.append((bucket, pct, gate))
        print(f"{bucket:<18} {total:>8} {covered:>8} {pct:>6.1f}% "
              f">={gate:>3.0f}% {status}")

    if failed:
        print()
        for bucket, pct, gate in failed:
            print(f"FAIL: {bucket} line coverage {pct:.1f}% is below the "
                  f"{gate:.0f}% gate")
        return 1
    print("\nall directories meet their coverage gates")
    return 0


if __name__ == "__main__":
    sys.exit(main())

# Perf-regression gate test, run by ctest:
#   1. bench_compare.py against the committed baselines with a fresh copy of
#      the baseline itself — must pass (exit 0).
#   2. against a synthetic 20%-regressed fixture — must fail (nonzero).
#   3. smoke: run bench_obs_overhead at tiny scale and check its JSON
#      sidecar carries all four variant timings and the overhead fields.

if(NOT DEFINED BENCH OR NOT DEFINED SRC_DIR)
  message(FATAL_ERROR "pass -DBENCH=<bench_obs_overhead> -DSRC_DIR=<repo root>")
endif()

find_program(PYTHON3 python3)
if(NOT PYTHON3)
  message(FATAL_ERROR "python3 is required for the bench gate")
endif()

set(COMPARE "${SRC_DIR}/tools/bench_compare.py")
set(BASELINES "${SRC_DIR}/bench/baselines")
set(WORK "${CMAKE_CURRENT_BINARY_DIR}/bench_compare_scratch")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

# --- 1. baseline vs itself: no regression -------------------------------
configure_file("${BASELINES}/BENCH_obs_overhead.json"
               "${WORK}/BENCH_obs_overhead.json" COPYONLY)
execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                        "${WORK}/BENCH_obs_overhead.json"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "baseline-vs-itself flagged a regression: ${out}${err}")
endif()

# --- 2. synthetic 20% regression must trip the 15% gate -----------------
configure_file("${SRC_DIR}/tools/testdata/BENCH_obs_overhead_regressed.json"
               "${WORK}/regressed/BENCH_obs_overhead.json" COPYONLY)
execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                        "${WORK}/regressed/BENCH_obs_overhead.json"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "20% regression fixture passed the gate: ${out}${err}")
endif()
message(STATUS "regression fixture correctly rejected (exit ${rc})")

# The same fixture passes with the gate loosened past the injected 20%.
execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                        --max-regression 0.30
                        "${WORK}/regressed/BENCH_obs_overhead.json"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fixture tripped a 30% gate it should clear")
endif()

# --- 3. bench smoke: tiny run, structural check of the sidecar ----------
execute_process(COMMAND "${BENCH}" --threads 1 --entities 100 --copies 4
                        --reps 2
                WORKING_DIRECTORY "${WORK}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_obs_overhead failed (${rc}): ${out}${err}")
endif()
if(NOT EXISTS "${WORK}/BENCH_obs_overhead.json")
  message(FATAL_ERROR "bench did not write BENCH_obs_overhead.json")
endif()
file(READ "${WORK}/BENCH_obs_overhead.json" FRESH)
foreach(field
    "unobserved_matching_seconds"
    "observed_matching_seconds"
    "traced_off_matching_seconds"
    "traced_matching_seconds"
    "observed_overhead_percent"
    "traced_off_overhead_percent"
    "traced_overhead_percent")
  if(NOT FRESH MATCHES "\"${field}\"")
    message(FATAL_ERROR "sidecar missing field '${field}'")
  endif()
endforeach()
# Timings at this scale are noise — the gate run uses default scale — but
# the tooling path must work end to end: compare the fresh tiny run with a
# gate loose enough to always pass, exercising row matching on real output.
execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                        --max-regression 1000 --max-memory-regression 1000
                        "${WORK}/BENCH_obs_overhead.json"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fresh-run compare failed: ${out}${err}")
endif()

# --- 4. concurrent R/W bench: baseline self-check + tiny live run -------
# Single-core noise makes this bench's throughput swing harder than the
# pipeline benches, so its gate runs at 30% (still catches a lock sneaking
# back onto the read path, which costs integer multiples, not percents).
if(DEFINED BENCH_RW)
  configure_file("${BASELINES}/BENCH_concurrent_rw.json"
                 "${WORK}/BENCH_concurrent_rw.json" COPYONLY)
  execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                          "${WORK}/BENCH_concurrent_rw.json"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "concurrent_rw baseline-vs-itself flagged a regression: "
            "${out}${err}")
  endif()

  execute_process(COMMAND "${BENCH_RW}" --hot 60 --cold 600 --queries 5000
                          --reps 2
                  WORKING_DIRECTORY "${WORK}"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_concurrent_rw failed (${rc}): ${out}${err}")
  endif()
  if(NOT EXISTS "${WORK}/BENCH_concurrent_rw.json")
    message(FATAL_ERROR "bench did not write BENCH_concurrent_rw.json")
  endif()
  file(READ "${WORK}/BENCH_concurrent_rw.json" FRESH_RW)
  foreach(field
      "reads_per_second"
      "quiet_p99_nanos"
      "contended_p99_nanos"
      "p99_impact_percent"
      "evictions")
    if(NOT FRESH_RW MATCHES "\"${field}\"")
      message(FATAL_ERROR "concurrent_rw sidecar missing field '${field}'")
    endif()
  endforeach()
  if(FRESH_RW MATCHES "\"read_failures\": 0")
    message(STATUS "concurrent_rw smoke: no read failures")
  else()
    message(FATAL_ERROR "concurrent_rw smoke saw read failures: ${FRESH_RW}")
  endif()
  # Tiny-scale numbers are noise; exercise row matching only.
  execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                          --max-regression 1000
                          --max-memory-regression 1000
                          "${WORK}/BENCH_concurrent_rw.json"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "concurrent_rw fresh-run compare failed: ${out}${err}")
  endif()
endif()

# --- 5. serving-plane load bench: baseline self-check + tiny live run ---
# The gated headline is served_per_second at sub-capacity offered rates,
# which is arrival-bound (the generator is open-loop), so it is stable even
# on a noisy single core; latency percentiles ride along ungated.
if(DEFINED BENCH_SERVE)
  configure_file("${BASELINES}/BENCH_serve_load.json"
                 "${WORK}/BENCH_serve_load.json" COPYONLY)
  execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                          "${WORK}/BENCH_serve_load.json"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "serve_load baseline-vs-itself flagged a regression: ${out}${err}")
  endif()

  execute_process(COMMAND "${BENCH_SERVE}" --qps0 25 --steps 1 --seconds 1
                          --preload 40
                  WORKING_DIRECTORY "${WORK}"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_serve_load failed (${rc}): ${out}${err}")
  endif()
  if(NOT EXISTS "${WORK}/BENCH_serve_load.json")
    message(FATAL_ERROR "bench did not write BENCH_serve_load.json")
  endif()
  file(READ "${WORK}/BENCH_serve_load.json" FRESH_SERVE)
  foreach(field
      "served_per_second"
      "p50_micros"
      "p99_micros"
      "p999_micros"
      "shed_429"
      "shed_503")
    if(NOT FRESH_SERVE MATCHES "\"${field}\"")
      message(FATAL_ERROR "serve_load sidecar missing field '${field}'")
    endif()
  endforeach()
  if(FRESH_SERVE MATCHES "\"errors\": 0")
    message(STATUS "serve_load smoke: no transport errors")
  else()
    message(FATAL_ERROR "serve_load smoke saw errors: ${FRESH_SERVE}")
  endif()
  # The tiny run's qps_25 row has no baseline counterpart — missing rows are
  # warnings by design; this exercises the new-bench on-ramp path.
  execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                          --max-regression 1000
                          --max-memory-regression 1000
                          "${WORK}/BENCH_serve_load.json"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve_load fresh-run compare failed: ${out}${err}")
  endif()
endif()

# --- 6. Table-4 query-latency bench: baseline self-check + tiny live run -
# The headline is queries_per_second per (dataset, method) row; the memory
# columns (matcher_memory_bytes per row, peak_rss_bytes at the top level)
# are gated lower-is-better by bench_compare.py's --max-memory-regression.
if(DEFINED BENCH_T4)
  configure_file("${BASELINES}/BENCH_table4_query_latency.json"
                 "${WORK}/BENCH_table4_query_latency.json" COPYONLY)
  execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                          "${WORK}/BENCH_table4_query_latency.json"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "table4 baseline-vs-itself flagged a regression: ${out}${err}")
  endif()

  execute_process(COMMAND "${BENCH_T4}" --threads 1 --entities 80 --copies 4
                  WORKING_DIRECTORY "${WORK}"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_table4_query_latency failed (${rc}): "
            "${out}${err}")
  endif()
  if(NOT EXISTS "${WORK}/BENCH_table4_query_latency.json")
    message(FATAL_ERROR "bench did not write BENCH_table4_query_latency.json")
  endif()
  file(READ "${WORK}/BENCH_table4_query_latency.json" FRESH_T4)
  foreach(field
      "queries_per_second"
      "avg_query_seconds"
      "matcher_memory_bytes"
      "peak_rss_bytes"
      "comparisons"
      "recall"
      "precision"
      "f1")
    if(NOT FRESH_T4 MATCHES "\"${field}\"")
      message(FATAL_ERROR "table4 sidecar missing field '${field}'")
    endif()
  endforeach()
  # Tiny-scale numbers (and their memory footprint) are not comparable to
  # the full-scale baseline; exercise row matching only.
  execute_process(COMMAND "${PYTHON3}" "${COMPARE}" --baselines "${BASELINES}"
                          --max-regression 1000 --max-memory-regression 1000
                          "${WORK}/BENCH_table4_query_latency.json"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "table4 fresh-run compare failed: ${out}${err}")
  endif()
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "bench regression gate OK")

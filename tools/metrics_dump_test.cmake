# Smoke test of metrics_dump, run by ctest: run an instrumented pipeline and
# validate every line of the Prometheus text exposition against the format
# grammar (names, label blocks, numeric samples) without external tooling,
# then sanity-check the JSON and trace outputs.

if(NOT DEFINED TOOL)
  message(FATAL_ERROR "pass -DTOOL=<path to metrics_dump>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/metrics_dump_scratch")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_tool)
  execute_process(COMMAND "${TOOL}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "metrics_dump ${ARGN} failed (${rc}): ${out}${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

# The sblocksketch pipeline exercises every layer: engine, sketch, spill db.
run_tool(--kind=ncvr --entities=150 --copies=5 --method=sblocksketch --mu=50
         --format=prometheus --out=${WORK}/metrics.prom)
if(NOT EXISTS "${WORK}/metrics.prom")
  message(FATAL_ERROR "metrics_dump did not write metrics.prom")
endif()

file(READ "${WORK}/metrics.prom" PROM)

# --- Prometheus line-format validator (text format 0.0.4) ---------------
# Comment lines must be HELP/TYPE with a valid family name; sample lines
# must be name, optional {labels}, one numeric value, nothing else.
string(REPLACE ";" ":" PROM_LINES "${PROM}")
string(REGEX REPLACE "\n" ";" PROM_LINES "${PROM_LINES}")
set(NAME_RE "[a-zA-Z_:][a-zA-Z0-9_:]*")
set(VALUE_RE "-?([0-9]+(\\.[0-9]*)?(e[+-]?[0-9]+)?|[0-9]*\\.[0-9]+(e[+-]?[0-9]+)?|inf|nan)")
set(SAMPLES 0)
foreach(line IN LISTS PROM_LINES)
  if(line STREQUAL "")
    continue()
  endif()
  if(line MATCHES "^#")
    if(NOT line MATCHES "^# HELP ${NAME_RE} .+$" AND
       NOT line MATCHES "^# TYPE ${NAME_RE} (counter|gauge|histogram)$")
      message(FATAL_ERROR "invalid comment line: '${line}'")
    endif()
  else()
    if(NOT line MATCHES "^${NAME_RE}({[^}]*})? ${VALUE_RE}$")
      message(FATAL_ERROR "invalid sample line: '${line}'")
    endif()
    math(EXPR SAMPLES "${SAMPLES} + 1")
  endif()
endforeach()
if(SAMPLES LESS 20)
  message(FATAL_ERROR "only ${SAMPLES} samples exported — pipeline not instrumented?")
endif()
message(STATUS "validated ${SAMPLES} Prometheus samples")

# Every layer must show up in the scrape.
foreach(family
    "# TYPE sketchlink_engine_builds_total counter"
    "# TYPE sketchlink_engine_query_latency_nanos histogram"
    "# TYPE sketchlink_sketch_inserts_total counter"
    "# TYPE sketchlink_kv_puts_total counter"
    "# TYPE sketchlink_kv_tables gauge")
  string(FIND "${PROM}" "${family}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "missing expected family: '${family}'")
  endif()
endforeach()
if(NOT PROM MATCHES "le=\"[+]Inf\"")
  message(FATAL_ERROR "histograms missing the +Inf bucket")
endif()

# --- JSON export --------------------------------------------------------
run_tool(--kind=ncvr --entities=150 --copies=5 --format=json
         --out=${WORK}/metrics.json)
file(READ "${WORK}/metrics.json" JSON)
if(NOT JSON MATCHES "\"metrics\": \\[" OR
   NOT JSON MATCHES "\"kind\": \"histogram\"" OR
   NOT JSON MATCHES "\"p99\"")
  message(FATAL_ERROR "JSON export missing expected structure")
endif()

# --- Trace ring ---------------------------------------------------------
# slow-ms=0 records every traced operation, so the ring cannot be empty.
run_tool(--kind=ncvr --entities=150 --copies=5 --format=trace --slow-ms=0)
if(NOT LAST_OUTPUT MATCHES "\"duration_nanos\"")
  message(FATAL_ERROR "trace dump has no events at slow-ms=0: ${LAST_OUTPUT}")
endif()

# Bad flags must fail loudly.
execute_process(COMMAND "${TOOL}" --format=xml RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "invalid --format unexpectedly succeeded")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "metrics_dump smoke test OK")

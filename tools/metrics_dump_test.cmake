# Smoke test of metrics_dump, run by ctest: run an instrumented pipeline and
# validate every line of the Prometheus text exposition against the format
# grammar (names, label blocks, numeric samples) without external tooling,
# then sanity-check the JSON and trace outputs.

if(NOT DEFINED TOOL)
  message(FATAL_ERROR "pass -DTOOL=<path to metrics_dump>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/metrics_dump_scratch")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_tool)
  execute_process(COMMAND "${TOOL}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "metrics_dump ${ARGN} failed (${rc}): ${out}${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

# The sblocksketch pipeline exercises every layer: engine, sketch, spill db.
run_tool(--kind=ncvr --entities=150 --copies=5 --method=sblocksketch --mu=50
         --format=prometheus --out=${WORK}/metrics.prom)
if(NOT EXISTS "${WORK}/metrics.prom")
  message(FATAL_ERROR "metrics_dump did not write metrics.prom")
endif()

file(READ "${WORK}/metrics.prom" PROM)

# Line-format validation (text format 0.0.4) is shared with the serve
# endpoint test: the same grammar holds for local dumps and live scrapes.
include("${CMAKE_CURRENT_LIST_DIR}/prometheus_validator.cmake")
validate_prometheus_text("${PROM}" 20)

# Every layer must show up in the scrape.
foreach(family
    "# TYPE sketchlink_engine_builds_total counter"
    "# TYPE sketchlink_engine_query_latency_nanos histogram"
    "# TYPE sketchlink_sketch_inserts_total counter"
    "# TYPE sketchlink_kv_puts_total counter"
    "# TYPE sketchlink_kv_tables gauge")
  string(FIND "${PROM}" "${family}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "missing expected family: '${family}'")
  endif()
endforeach()
if(NOT PROM MATCHES "le=\"[+]Inf\"")
  message(FATAL_ERROR "histograms missing the +Inf bucket")
endif()

# --- JSON export --------------------------------------------------------
run_tool(--kind=ncvr --entities=150 --copies=5 --format=json
         --out=${WORK}/metrics.json)
file(READ "${WORK}/metrics.json" JSON)
if(NOT JSON MATCHES "\"metrics\": \\[" OR
   NOT JSON MATCHES "\"kind\": \"histogram\"" OR
   NOT JSON MATCHES "\"p99\"")
  message(FATAL_ERROR "JSON export missing expected structure")
endif()

# --- Trace ring ---------------------------------------------------------
# slow-ms=0 records every traced operation, so the ring cannot be empty.
run_tool(--kind=ncvr --entities=150 --copies=5 --format=trace --slow-ms=0)
if(NOT LAST_OUTPUT MATCHES "\"duration_nanos\"")
  message(FATAL_ERROR "trace dump has no events at slow-ms=0: ${LAST_OUTPUT}")
endif()

# Bad flags must fail loudly.
execute_process(COMMAND "${TOOL}" --format=xml RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "invalid --format unexpectedly succeeded")
endif()

# --- URL scrape error contract ------------------------------------------
# A scrape that does not yield HTTP 2xx must exit non-zero: monitoring
# that silently swallows 404s/405s reports an empty-but-green scrape.
if(DEFINED CLI)
  execute_process(
    COMMAND bash -c "'${CLI}' api --port=0 --port-file='${WORK}/port' \
--scratch='${WORK}/indexes' --max-seconds=60 > '${WORK}/api.log' 2>&1 &"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "could not launch sketchlink_cli api")
  endif()
  set(PORT "")
  foreach(attempt RANGE 300)
    if(EXISTS "${WORK}/port")
      file(READ "${WORK}/port" PORT)
      string(STRIP "${PORT}" PORT)
      if(NOT PORT STREQUAL "")
        break()
      endif()
    endif()
    execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
  endforeach()
  if(PORT STREQUAL "")
    message(FATAL_ERROR "api did not publish a port for the URL tests")
  endif()
  set(BASE "http://127.0.0.1:${PORT}")

  # Success baseline: the live endpoint scrapes clean.
  run_tool(--url=${BASE}/metrics)
  if(NOT LAST_OUTPUT MATCHES "# TYPE serve_requests_admitted_total counter")
    message(FATAL_ERROR "live scrape missing serving-plane families")
  endif()

  # 404 (unknown path) and 405 (POST-only route) must both fail hard.
  foreach(bad_path /nope /v1/indexes/x)
    execute_process(COMMAND "${TOOL}" "--url=${BASE}${bad_path}"
                    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
    if(rc EQUAL 0)
      message(FATAL_ERROR "GET ${bad_path} unexpectedly exited 0")
    endif()
  endforeach()

  # Connection refused must also fail hard.
  execute_process(COMMAND "${TOOL}" "--url=http://127.0.0.1:1/metrics"
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "scrape of a closed port unexpectedly exited 0")
  endif()

  run_tool(--url=${BASE}/quitquitquit)
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "metrics_dump smoke test OK")

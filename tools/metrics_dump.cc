// metrics_dump: run an instrumented linkage pipeline and dump the metric
// registry — the quickest way to see every exported series, validate an
// exporter against a scrape target, or eyeball latency distributions.
//
//   metrics_dump [--kind=ncvr] [--entities=500] [--copies=8]
//       [--method=blocksketch|sblocksketch] [--mu=200] [--threads=1]
//       [--format=prometheus|json|trace] [--out=PATH] [--slow-ms=20]
//   metrics_dump --url=http://127.0.0.1:PORT/metrics [--out=PATH]
//
// The pipeline is self-contained (synthetic workload, scratch spill store
// for sblocksketch); the dump goes to stdout unless --out is given.
// --format=trace prints the slow-op ring (lower --slow-ms to populate it on
// fast machines). --url skips the pipeline entirely and scrapes a live
// endpoint (e.g. `sketchlink_cli serve`) over a plain socket instead —
// the body is printed/written verbatim so the same validators apply to
// both local dumps and live scrapes.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "blocking/presets.h"
#include "datagen/generators.h"
#include "kv/db.h"
#include "kv/env.h"
#include "linkage/engine.h"
#include "linkage/sketch_matchers.h"
#include "obs/export.h"
#include "obs/http_server.h"
#include "obs/registry.h"

namespace sketchlink::cli {
namespace {

using datagen::DatasetKind;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& name, const std::string& fallback = "") {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

uint64_t GetInt(const std::map<std::string, std::string>& flags,
                const std::string& name, uint64_t fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback
                           : std::strtoull(it->second.c_str(), nullptr, 10);
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Writes `output` to --out or stdout, mirroring the pipeline dump path.
int Emit(const std::map<std::string, std::string>& flags,
         const std::string& output) {
  const std::string out_path = Get(flags, "out");
  if (out_path.empty()) {
    std::fputs(output.c_str(), stdout);
    return 0;
  }
  const Status status = obs::WriteFile(out_path, output);
  if (!status.ok()) return Fail(status.ToString());
  std::fprintf(stderr, "wrote %zu bytes to %s\n", output.size(),
               out_path.c_str());
  return 0;
}

/// Scrape mode: GET `url` (http://HOST:PORT/PATH, numeric IPv4 host) and
/// emit the body verbatim.
int ScrapeUrl(const std::map<std::string, std::string>& flags,
              const std::string& url) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) {
    return Fail("--url must start with http://");
  }
  const std::string rest = url.substr(scheme.size());
  const size_t slash = rest.find('/');
  const std::string host_port =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  const std::string path =
      slash == std::string::npos ? "/" : rest.substr(slash);
  const size_t colon = host_port.find(':');
  if (colon == std::string::npos) {
    return Fail("--url needs an explicit port: http://HOST:PORT/PATH");
  }
  const std::string host = host_port.substr(0, colon);
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(host_port.c_str() + colon + 1, nullptr, 10));
  if (port == 0) return Fail("--url has an invalid port");

  std::string body;
  int status_code = 0;
  const Status status = obs::HttpGet(host, port, path, &body, &status_code);
  if (!status.ok()) {
    return Fail("GET " + url + " failed (HTTP " +
                std::to_string(status_code) + "): " + status.ToString());
  }
  return Emit(flags, body);
}

int Main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);

  const std::string url = Get(flags, "url");
  if (!url.empty()) return ScrapeUrl(flags, url);

  DatasetKind kind;
  const std::string kind_name = Get(flags, "kind", "ncvr");
  if (kind_name == "dblp") kind = DatasetKind::kDblp;
  else if (kind_name == "ncvr") kind = DatasetKind::kNcvr;
  else if (kind_name == "lab") kind = DatasetKind::kLab;
  else return Fail("--kind must be dblp|ncvr|lab");

  const std::string format = Get(flags, "format", "prometheus");
  if (format != "prometheus" && format != "json" && format != "trace") {
    return Fail("--format must be prometheus|json|trace");
  }
  const std::string method = Get(flags, "method", "blocksketch");
  if (method != "blocksketch" && method != "sblocksketch") {
    return Fail("--method must be blocksketch|sblocksketch");
  }

  obs::MetricRegistry::Options registry_options;
  registry_options.slow_op_threshold_nanos =
      GetInt(flags, "slow-ms", 20) * 1'000'000;
  obs::MetricRegistry registry(registry_options);

  // Build and run the instrumented pipeline.
  datagen::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_entities = GetInt(flags, "entities", 500);
  spec.copies_per_entity = GetInt(flags, "copies", 8);
  spec.max_perturb_ops = 4;
  spec.seed = GetInt(flags, "seed", 42);
  const datagen::Workload workload = datagen::MakeWorkload(spec);

  auto blocker = MakeStandardBlocker(kind);
  const RecordSimilarity similarity(MatchFieldsFor(kind), 0.75);
  RecordStore store;

  std::unique_ptr<kv::Db> spill_db;
  std::string scratch;
  std::unique_ptr<OnlineMatcher> matcher;
  if (method == "sblocksketch") {
    scratch = "/tmp/sketchlink_metrics_dump_spill";
    (void)kv::RemoveDirRecursively(scratch);
    (void)kv::CreateDirIfMissing(scratch);
    kv::Options db_options;
    db_options.registry = &registry;
    db_options.metrics_instance = "spill";
    auto db = kv::Db::Open(scratch, db_options);
    if (!db.ok()) return Fail(db.status().ToString());
    spill_db = std::move(*db);
    SBlockSketchOptions options;
    options.mu = GetInt(flags, "mu", 200);
    matcher = std::make_unique<SBlockSketchMatcher>(options, spill_db.get(),
                                                    similarity, &store);
  } else {
    matcher = std::make_unique<BlockSketchMatcher>(BlockSketchOptions(),
                                                   similarity, &store);
  }

  EngineOptions engine_options;
  engine_options.num_threads = GetInt(flags, "threads", 1);
  engine_options.registry = &registry;
  engine_options.metrics_instance = "dump";
  LinkageEngine engine(blocker.get(), matcher.get(), similarity,
                       engine_options);
  Status status = engine.BuildIndex(workload.a);
  if (!status.ok()) return Fail(status.ToString());
  const GroundTruth truth(workload.a);
  auto report = engine.ResolveAll(workload.q, truth);
  if (!report.ok()) return Fail(report.status().ToString());

  // Snapshot while the engine/matcher/db still hold their registrations.
  std::string output;
  if (format == "prometheus") {
    output = obs::ExportPrometheusText(registry.TakeSnapshot());
  } else if (format == "json") {
    output = obs::ExportJson(registry.TakeSnapshot());
  } else {
    output = obs::ExportTraceJson(registry.trace_ring()->Snapshot());
    output += "\n";
  }

  const int rc = Emit(flags, output);
  if (!scratch.empty()) (void)kv::RemoveDirRecursively(scratch);
  return rc;
}

}  // namespace
}  // namespace sketchlink::cli

int main(int argc, char** argv) { return sketchlink::cli::Main(argc, argv); }

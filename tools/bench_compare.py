#!/usr/bin/env python3
"""Perf-regression gate: diff fresh BENCH_*.json files against baselines.

Usage: bench_compare.py [--baselines DIR] [--max-regression 0.15]
                        FRESH_JSON [FRESH_JSON ...]

Each fresh file is matched to a baseline of the same name in the baselines
directory (default: bench/baselines/ next to this script's repo root).
Result rows are keyed by their identifying fields (dataset, method,
blocking, threads — whichever are present), and every *headline metric* is
compared:

  lower-is-better:  *_seconds, peak_rss_bytes, matcher_memory_bytes
  higher-is-better: *_per_second, recall, precision, f1

A headline metric that moved more than --max-regression (fractional, default
0.15 = 15%) in the bad direction fails the gate; the exit code is the number
of regressions. The memory metrics (peak_rss_bytes, matcher_memory_bytes)
are gated by the separate --max-memory-regression bound (default 0.30 —
allocator and page-cache noise moves RSS more than steady timing moves
wall-clock). peak_rss_bytes usually lives at the top level of the bench
JSON rather than in a result row; top-level numeric headline metrics are
compared the same way as row metrics. Overhead percentages and counters are
reported but not gated — they are either noise-dominated at bench scale or
already gated elsewhere. Missing baselines or rows are warnings, not
failures, so new benches can land before their first baseline is committed.
"""

import argparse
import json
import os
import sys

IDENTITY_FIELDS = ("dataset", "method", "blocking", "threads", "label")

LOWER_IS_BETTER_SUFFIX = "_seconds"
HIGHER_IS_BETTER_SUFFIXES = ("_per_second",)
HIGHER_IS_BETTER_FIELDS = ("recall", "precision", "f1")
# Memory footprint: gated lower-is-better, but against the looser
# --max-memory-regression bound (RSS is allocator- and page-cache-noisy).
MEMORY_FIELDS = ("peak_rss_bytes", "matcher_memory_bytes")


def row_key(row):
    return tuple((f, row[f]) for f in IDENTITY_FIELDS if f in row)


def metric_direction(name):
    """Returns 'lower', 'higher', or None (not a headline metric)."""
    if name.endswith(LOWER_IS_BETTER_SUFFIX) or name in MEMORY_FIELDS:
        return "lower"
    if name.endswith(HIGHER_IS_BETTER_SUFFIXES) or name in HIGHER_IS_BETTER_FIELDS:
        return "higher"
    return None


def compare_rows(bench, key, base_row, fresh_row, max_regression,
                 max_memory_regression):
    regressions = []
    for name, base_value in base_row.items():
        direction = metric_direction(name)
        if direction is None or not isinstance(base_value, (int, float)):
            continue
        fresh_value = fresh_row.get(name)
        if not isinstance(fresh_value, (int, float)):
            continue
        if base_value <= 0:
            continue  # can't compute a ratio; zero baselines are degenerate
        limit = max_memory_regression if name in MEMORY_FIELDS else max_regression
        ratio = fresh_value / base_value
        if direction == "lower":
            change = ratio - 1.0  # positive = slower/bigger = worse
        else:
            change = 1.0 - ratio  # positive = lower throughput = worse
        label = ", ".join(f"{f}={v}" for f, v in key) or "(single row)"
        if change > limit:
            regressions.append(
                f"REGRESSION {bench} [{label}] {name}: "
                f"{base_value:.6g} -> {fresh_value:.6g} "
                f"({change * 100.0:+.1f}% worse, limit "
                f"{limit * 100.0:.0f}%)"
            )
        elif change < -limit:
            print(
                f"improvement {bench} [{label}] {name}: "
                f"{base_value:.6g} -> {fresh_value:.6g} "
                f"({-change * 100.0:.1f}% better)"
            )
    return regressions


def compare_file(fresh_path, baselines_dir, max_regression,
                 max_memory_regression):
    name = os.path.basename(fresh_path)
    base_path = os.path.join(baselines_dir, name)
    if not os.path.exists(base_path):
        print(f"warning: no baseline for {name} (looked in {baselines_dir})")
        return []
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)
    bench = fresh.get("bench", name)

    base_rows = {row_key(r): r for r in base.get("results", [])}
    fresh_rows = {row_key(r): r for r in fresh.get("results", [])}

    regressions = []
    compared = 0
    for key, base_row in base_rows.items():
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            label = ", ".join(f"{f}={v}" for f, v in key)
            print(f"warning: {bench}: baseline row [{label}] missing from "
                  "fresh results")
            continue
        compared += 1
        regressions.extend(
            compare_rows(bench, key, base_row, fresh_row, max_regression,
                         max_memory_regression)
        )
    # Whole-run metrics (peak_rss_bytes and friends) live beside "results" at
    # the top level; compare them as one pseudo-row.
    base_top = {k: v for k, v in base.items() if k != "results"}
    fresh_top = {k: v for k, v in fresh.items() if k != "results"}
    regressions.extend(
        compare_rows(bench, (("scope", "run"),), base_top, fresh_top,
                     max_regression, max_memory_regression)
    )
    print(f"{bench}: compared {compared} row(s) against {base_path}")
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    default_baselines = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "bench",
        "baselines",
    )
    parser.add_argument("--baselines", default=default_baselines)
    parser.add_argument("--max-regression", type=float, default=0.15)
    parser.add_argument("--max-memory-regression", type=float, default=0.30)
    parser.add_argument("fresh", nargs="+", metavar="FRESH_JSON")
    args = parser.parse_args()

    all_regressions = []
    for path in args.fresh:
        all_regressions.extend(
            compare_file(path, args.baselines, args.max_regression,
                         args.max_memory_regression)
        )
    for line in all_regressions:
        print(line, file=sys.stderr)
    if all_regressions:
        print(
            f"{len(all_regressions)} regression(s) beyond "
            f"{args.max_regression * 100.0:.0f}%",
            file=sys.stderr,
        )
    else:
        print("no regressions")
    return min(len(all_regressions), 100)


if __name__ == "__main__":
    sys.exit(main())

# Shared Prometheus text-format (0.0.4) line validator, included by the
# metrics_dump smoke test and the serve endpoint test so a local dump and a
# live scrape are held to the identical grammar.
#
# validate_prometheus_text(<text> <min_samples>)
#   Fatally errors on any line that is not a valid HELP/TYPE comment or a
#   `name{labels} value` sample, or when fewer than <min_samples> sample
#   lines are present. Reports the validated sample count on success.

function(validate_prometheus_text PROM MIN_SAMPLES)
  # Comment lines must be HELP/TYPE with a valid family name; sample lines
  # must be name, optional {labels}, one numeric value, nothing else.
  string(REPLACE ";" ":" PROM_LINES "${PROM}")
  string(REGEX REPLACE "\n" ";" PROM_LINES "${PROM_LINES}")
  set(NAME_RE "[a-zA-Z_:][a-zA-Z0-9_:]*")
  set(VALUE_RE "-?([0-9]+(\\.[0-9]*)?(e[+-]?[0-9]+)?|[0-9]*\\.[0-9]+(e[+-]?[0-9]+)?|inf|nan)")
  set(SAMPLES 0)
  foreach(line IN LISTS PROM_LINES)
    if(line STREQUAL "")
      continue()
    endif()
    if(line MATCHES "^#")
      if(NOT line MATCHES "^# HELP ${NAME_RE} .+$" AND
         NOT line MATCHES "^# TYPE ${NAME_RE} (counter|gauge|histogram)$")
        message(FATAL_ERROR "invalid comment line: '${line}'")
      endif()
    else()
      if(NOT line MATCHES "^${NAME_RE}({[^}]*})? ${VALUE_RE}$")
        message(FATAL_ERROR "invalid sample line: '${line}'")
      endif()
      math(EXPR SAMPLES "${SAMPLES} + 1")
    endif()
  endforeach()
  if(SAMPLES LESS MIN_SAMPLES)
    message(FATAL_ERROR
            "only ${SAMPLES} samples exported — pipeline not instrumented?")
  endif()
  message(STATUS "validated ${SAMPLES} Prometheus samples")
endfunction()

#ifndef SKETCHLINK_SIMD_BIT_PROFILE_H_
#define SKETCHLINK_SIMD_BIT_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sketchlink::simd {

/// A q-gram multiset in kernel-friendly form: the distinct grams sorted
/// ascending with their multiplicities, plus a 64-bit signature (one hashed
/// bit per distinct gram) that powers the popcount prune bound of the
/// batched scorer.
///
/// Grams of width q <= 7 are packed into uint64 values (bytes left-aligned
/// big-endian, length in the low byte), so comparisons are integer
/// compares; the packing is injective and order-consistent, which makes
/// popcount/merge kernels exact — BitDice/BitJaccard equal the scalar
/// text::QGramDice / text::QGramJaccard for every input (differentially
/// tested). Wider grams fall back to a sorted string multiset and the
/// scalar merge.
struct BitProfile {
  /// Distinct packed grams, ascending (packed mode, q <= 7).
  std::vector<uint64_t> grams;
  /// Multiplicity of grams[i] in the multiset.
  std::vector<uint32_t> counts;
  /// Sorted gram multiset for q > 7 (duplicates kept).
  std::vector<std::string> wide;
  /// One hashed bit per distinct gram; 0 for empty profiles.
  uint64_t signature = 0;
  /// Multiset size (sum of counts, or wide.size()).
  uint32_t total = 0;
  /// Number of distinct grams.
  uint32_t distinct = 0;
  /// True when the uint64 packing is in use.
  bool packed = true;

  bool empty() const { return total == 0; }

  /// Heap bytes held by the profile (for ApproximateMemoryUsage).
  size_t HeapBytes() const;
};

/// Builds the profile of `s` with the exact tokenization of text::QGrams
/// (same '#'/'$' padding convention, same short-string handling).
BitProfile MakeBitProfile(std::string_view s, size_t q, bool pad = true);

/// Signature bit of a packed gram (splitmix-style multiply, top 6 bits).
inline uint64_t SignatureBit(uint64_t packed_gram) {
  return uint64_t{1} << ((packed_gram * 0x9e3779b97f4a7c15ULL) >> 58);
}

/// Lower bound on the profile-Dice *distance* of two profiles, from the
/// signatures and sizes alone (no merge): every signature bit present in
/// `a` but absent from `b` is witnessed by at least one gram of `a` that
/// cannot be in `b`, so the multiset intersection is at most
/// min(|a| - popcount(sig_a & ~sig_b), |b| - popcount(sig_b & ~sig_a)).
/// Exact Dice distance is always >= the returned value, which is what makes
/// prune-by-bound decisions identical to evaluating every candidate.
double DiceDistanceLowerBound(const BitProfile& a, const BitProfile& b);

}  // namespace sketchlink::simd

#endif  // SKETCHLINK_SIMD_BIT_PROFILE_H_

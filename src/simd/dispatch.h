#ifndef SKETCHLINK_SIMD_DISPATCH_H_
#define SKETCHLINK_SIMD_DISPATCH_H_

#include <cstddef>
#include <string_view>

namespace sketchlink::simd {

struct BitProfile;
struct JaroPattern;

/// Instruction-set tiers of the similarity kernels. Every tier computes
/// bit-for-bit identical results (enforced by the differential test
/// harness); only throughput differs. kScalar is portable C++; kSSE42 adds
/// hardware popcount and 16-wide byte compares; kAVX2 adds 32-wide byte
/// compares and 4-wide 64-bit merges; kAVX512 adds mask-register byte
/// compares and 8-wide 64-bit unsigned merges.
enum class KernelLevel { kScalar = 0, kSSE42 = 1, kAVX2 = 2, kAVX512 = 3 };

/// Human-readable tier name ("scalar", "sse42", "avx2", "avx512").
const char* KernelLevelName(KernelLevel level);

/// One similarity-kernel implementation tier. All function pointers are
/// non-null and produce results identical to the scalar reference
/// implementations in src/text (see tests/text/kernel_differential_test.cc).
struct KernelOps {
  const char* name;

  /// Exact Levenshtein distance via Myers' bit-parallel algorithm
  /// (single-word for min(|a|,|b|) <= 64, blocked beyond). Equals
  /// text::Levenshtein for all byte strings.
  size_t (*levenshtein)(std::string_view a, std::string_view b);

  /// Bounded variant: the exact distance when it is <= max_distance,
  /// max_distance + 1 otherwise (the text::BoundedLevenshtein contract).
  size_t (*levenshtein_bounded)(std::string_view a, std::string_view b,
                                size_t max_distance);

  /// 1 - multiset Dice coefficient of two q-gram profiles. Mirrors
  /// SketchPolicy::ProfileDistance (and therefore 1 - text::QGramDice)
  /// exactly, including the empty-profile conventions.
  double (*profile_dice_distance)(const BitProfile& a, const BitProfile& b);

  /// Jaccard similarity of the distinct gram sets; equals
  /// text::QGramJaccard for profiles built with the same q and padding.
  double (*profile_jaccard)(const BitProfile& a, const BitProfile& b);

  /// Jaro similarity of `a` against the pre-indexed string `b`.
  /// `pattern` must be BuildJaroPattern(b) with fits == true. Equals
  /// text::Jaro(a, b) bit-for-bit.
  double (*jaro)(std::string_view a, std::string_view b,
                 const JaroPattern& pattern);

  /// Signature/size lower bound on profile_dice_distance, minus a safety
  /// slack so floating-point rounding can never prune a candidate the
  /// exact evaluation would have kept. Same doubles at every tier.
  double (*dice_distance_bound)(const BitProfile& a, const BitProfile& b);

  /// Length-only lower bounds on the Jaro-Winkler distance (0.2*(1-mn/mx),
  /// minus slack) of the query against n candidate lengths.
  void (*jw_length_bounds)(uint32_t query_len, const uint32_t* lens, size_t n,
                           double* out);

  /// Length-only lower bounds on the normalized Levenshtein distance
  /// (|la-lb|/max, minus slack).
  void (*lev_length_bounds)(uint32_t query_len, const uint32_t* lens,
                            size_t n, double* out);
};

/// Highest tier this CPU can execute (cpuid probe, cached).
KernelLevel DetectedCpuLevel();

/// The active tier: the detected one, lowered by the SKETCHLINK_SIMD
/// environment variable ("scalar", "sse42", "avx2", "avx512"; values above the
/// detected tier are clamped). SKETCHLINK_SIMD=off disables the kernel
/// layer entirely — KernelsEnabled() turns false and callers fall back to
/// the scalar reference code in src/text.
KernelLevel ActiveLevel();

/// False only under SKETCHLINK_SIMD=off: the sketch routing and similarity
/// fast paths then bypass the kernels completely (used to benchmark the
/// legacy code paths).
bool KernelsEnabled();

/// The vtable of the active tier.
const KernelOps& Ops();

/// The vtable of a specific tier, or nullptr when this CPU cannot run it.
/// Differential tests iterate every non-null tier.
const KernelOps* OpsForLevel(KernelLevel level);

/// Test hook: forces the active tier (clamped to the detected one).
/// Returns the tier actually installed.
KernelLevel SetActiveLevelForTesting(KernelLevel level);

/// Test hook: re-reads SKETCHLINK_SIMD and restores the startup behavior.
void ResetActiveLevelForTesting();

/// Per-tier vtable constructors (defined in kernels_<tier>.cc). Prefer
/// Ops()/OpsForLevel(); these exist so the dispatcher and the differential
/// tests can name a tier explicitly.
const KernelOps* GetScalarKernels();
const KernelOps* GetSse42Kernels();
const KernelOps* GetAvx2Kernels();
const KernelOps* GetAvx512Kernels();

}  // namespace sketchlink::simd

#endif  // SKETCHLINK_SIMD_DISPATCH_H_

#include "simd/kernels.h"

#include <algorithm>

#include "simd/bit_profile.h"
#include "simd/dispatch.h"
#include "simd/jaro_pattern.h"
#include "text/edit_distance.h"
#include "text/jaro.h"

namespace sketchlink::simd {

namespace {

/// Winkler prefix boost on top of a Jaro similarity; the exact expression of
/// text::JaroWinkler with the standard 0.1 scale.
double WinklerBoost(double jaro, std::string_view a, std::string_view b) {
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

}  // namespace

double Jaro(std::string_view a, std::string_view b) {
  if (!KernelsEnabled() || b.size() > 64) return text::Jaro(a, b);
  JaroPattern pattern;
  BuildJaroPattern(b, &pattern);
  if (!pattern.fits) return text::Jaro(a, b);
  return Ops().jaro(a, b, pattern);
}

double JaroWinkler(std::string_view a, std::string_view b) {
  return WinklerBoost(Jaro(a, b), a, b);
}

double JaroWinklerDistance(std::string_view a, std::string_view b) {
  return 1.0 - JaroWinkler(a, b);
}

double JaroWithPattern(std::string_view a, std::string_view b,
                       const JaroPattern& pattern) {
  if (!KernelsEnabled()) return text::Jaro(a, b);
  return Ops().jaro(a, b, pattern);
}

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (!KernelsEnabled()) return text::Levenshtein(a, b);
  return Ops().levenshtein(a, b);
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_distance) {
  if (!KernelsEnabled()) return text::BoundedLevenshtein(a, b, max_distance);
  return Ops().levenshtein_bounded(a, b, max_distance);
}

double NormalizedLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(Levenshtein(a, b)) /
         static_cast<double>(longest);
}

double ProfileDiceDistance(const BitProfile& a, const BitProfile& b) {
  return Ops().profile_dice_distance(a, b);
}

double ProfileJaccard(const BitProfile& a, const BitProfile& b) {
  return Ops().profile_jaccard(a, b);
}

}  // namespace sketchlink::simd

// SSE4.2 tier (compiled with -msse4.2 -mpopcnt): 16-wide byte compares for
// the Jaro pattern lookup and hardware popcount for signatures. The merge
// stays scalar here; AVX2 adds the vectorized gallop.

#include <nmmintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd/jaro_pattern.h"

namespace sketchlink::simd {
namespace {

uint64_t PatternLookup(const JaroPattern& pattern, unsigned char c) {
  static_assert(JaroPattern::kMaxDistinct == 32,
                "lookup scans two 16-byte blocks");
  const __m128i needle = _mm_set1_epi8(static_cast<char>(c));
  const __m128i lo = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(pattern.chars.data()));
  int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(lo, needle));
  if (mask != 0) {
    // Padding slots carry zero masks, so a hit past num_distinct returns 0
    // exactly like the scalar scan.
    return pattern.masks[static_cast<size_t>(__builtin_ctz(mask))];
  }
  const __m128i hi = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(pattern.chars.data() + 16));
  mask = _mm_movemask_epi8(_mm_cmpeq_epi8(hi, needle));
  if (mask != 0) {
    return pattern.masks[16 + static_cast<size_t>(__builtin_ctz(mask))];
  }
  return 0;
}

void IntersectPacked(const uint64_t* ga, const uint32_t* ca, size_t na,
                     const uint64_t* gb, const uint32_t* cb, size_t nb,
                     uint64_t* multiset_common, uint64_t* distinct_common) {
  size_t i = 0;
  size_t j = 0;
  uint64_t common = 0;
  uint64_t dc = 0;
  while (i < na && j < nb) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (ga[i] > gb[j]) {
      ++j;
    } else {
      common += ca[i] < cb[j] ? ca[i] : cb[j];
      ++dc;
      ++i;
      ++j;
    }
  }
  *multiset_common = common;
  *distinct_common = dc;
}

}  // namespace
}  // namespace sketchlink::simd

#define SKETCHLINK_KERNEL_NAME "sse42"
#define SKETCHLINK_KERNEL_GETTER GetSse42Kernels
#include "simd/kernel_impl.inc"

#ifndef SKETCHLINK_SIMD_JARO_PATTERN_H_
#define SKETCHLINK_SIMD_JARO_PATTERN_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace sketchlink::simd {

/// Positional index of one comparison side of Jaro: for each distinct byte
/// of `b`, a 64-bit mask of the positions where it occurs. The bit-parallel
/// Jaro kernel replaces the scalar O(window) inner scan with one mask
/// lookup + ctz, replicating the scalar greedy matching exactly (lowest
/// unmatched position in the window wins).
///
/// `fits` is false when b is longer than 64 bytes or has more than
/// kMaxDistinct distinct bytes; callers then use the scalar text::Jaro.
/// Fixed arrays keep the pattern heap-free so it can be cached per sketch
/// representative (~900B, still cheaper than the q-gram profile cache).
struct JaroPattern {
  static constexpr size_t kMaxDistinct = 32;

  uint8_t length = 0;
  uint8_t num_distinct = 0;
  bool fits = false;
  /// True when `c & 63` is injective over the distinct bytes of b, so the
  /// peq table below answers lookups in O(1). Normalized field text
  /// (space, '#', '\'', '-', digits, upper letters) always qualifies:
  /// those bytes occupy distinct low-6-bit slots.
  bool direct = false;
  /// Distinct bytes of b in first-occurrence order, zero-padded so SIMD
  /// lookups can scan fixed-width blocks. A padded slot never yields a
  /// match: its mask is 0.
  std::array<unsigned char, kMaxDistinct> chars{};
  std::array<uint64_t, kMaxDistinct> masks{};
  /// Direct index (valid iff `direct`): slot c & 63 holds the byte that
  /// occupies it and the mask of its positions in b. A query byte that
  /// merely aliases the slot (same low 6 bits, different byte) is rejected
  /// by the stored-byte compare, so lookups stay exact for arbitrary input.
  std::array<unsigned char, 64> peq_char{};
  std::array<uint64_t, 64> peq{};
};

/// O(1) positional lookup through the direct table; caller must have
/// checked `pattern.direct`. Matches the first-occurrence slot scan
/// bit-for-bit: each slot's mask covers every occurrence of its byte.
inline uint64_t DirectPatternLookup(const JaroPattern& pattern,
                                    unsigned char c) {
  const size_t slot = c & 63u;
  return pattern.peq_char[slot] == c ? pattern.peq[slot] : 0;
}

/// Indexes `b`; sets fits=false (and leaves the arrays empty) when b does
/// not meet the kernel's limits.
void BuildJaroPattern(std::string_view b, JaroPattern* out);

}  // namespace sketchlink::simd

#endif  // SKETCHLINK_SIMD_JARO_PATTERN_H_

#ifndef SKETCHLINK_SIMD_JARO_PATTERN_H_
#define SKETCHLINK_SIMD_JARO_PATTERN_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace sketchlink::simd {

/// Positional index of one comparison side of Jaro: for each distinct byte
/// of `b`, a 64-bit mask of the positions where it occurs. The bit-parallel
/// Jaro kernel replaces the scalar O(window) inner scan with one mask
/// lookup + ctz, replicating the scalar greedy matching exactly (lowest
/// unmatched position in the window wins).
///
/// `fits` is false when b is longer than 64 bytes or has more than
/// kMaxDistinct distinct bytes; callers then use the scalar text::Jaro.
/// Fixed arrays keep the pattern heap-free so it can be cached per sketch
/// representative (~300B, cheaper than the q-gram profile cache).
struct JaroPattern {
  static constexpr size_t kMaxDistinct = 32;

  uint8_t length = 0;
  uint8_t num_distinct = 0;
  bool fits = false;
  /// Distinct bytes of b in first-occurrence order, zero-padded so SIMD
  /// lookups can scan fixed-width blocks. A padded slot never yields a
  /// match: its mask is 0.
  std::array<unsigned char, kMaxDistinct> chars{};
  std::array<uint64_t, kMaxDistinct> masks{};
};

/// Indexes `b`; sets fits=false (and leaves the arrays empty) when b does
/// not meet the kernel's limits.
void BuildJaroPattern(std::string_view b, JaroPattern* out);

}  // namespace sketchlink::simd

#endif  // SKETCHLINK_SIMD_JARO_PATTERN_H_

#ifndef SKETCHLINK_SIMD_SCORE_BATCH_H_
#define SKETCHLINK_SIMD_SCORE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

#include "simd/bit_profile.h"
#include "simd/jaro_pattern.h"

namespace sketchlink::simd {

/// Distance metric of a batch; each mirrors a scalar routing metric exactly.
enum class BatchMetric {
  /// 1 - text::JaroWinkler (the paper's evaluation metric).
  kJaroWinkler,
  /// SketchPolicy::ProfileDistance over cached q-gram profiles.
  kQGramDice,
  /// Levenshtein / max(len) (text::NormalizedLevenshteinDistance).
  kLevenshtein,
};

/// One candidate of a batch: the representative's text plus whatever caches
/// the sketch holds for it. A null/unfit `jaro` pattern or a null `profile`
/// degrades that candidate to the scalar reference path — same result,
/// just slower.
struct BatchCandidate {
  std::string_view text;
  const JaroPattern* jaro = nullptr;
  const BitProfile* profile = nullptr;
};

/// Outcome of scoring one query against a candidate array.
struct BatchResult {
  /// Index of the argmin candidate (first minimum in array order — the
  /// strict `<` update rule of SketchPolicy::ChooseSubBlock), or SIZE_MAX
  /// for an empty batch.
  size_t best_index = SIZE_MAX;
  double best_distance = std::numeric_limits<double>::infinity();
  /// Candidates whose exact distance was computed.
  uint32_t evaluated = 0;
  /// Candidates skipped because a lower bound already met or exceeded the
  /// running best. Pruning never changes best_index/best_distance: a bound
  /// b <= d with b >= best implies d >= best, which the scalar loop would
  /// also discard.
  uint32_t pruned = 0;
};

/// A query prepared for batch evaluation: per-query state (the q-gram
/// profile under kQGramDice) is built once, then scored against all
/// lambda*rho sub-block representatives in one pass with length/signature
/// early-exit pruning.
class BatchQuery {
 public:
  /// kJaroWinkler / kLevenshtein: no per-query preprocessing beyond lengths.
  BatchQuery(BatchMetric metric, std::string_view query);

  /// kQGramDice: `query_profile` must outlive the BatchQuery (the routing
  /// code builds it once per decision, like the legacy query_profile).
  BatchQuery(BatchMetric metric, std::string_view query,
             const BitProfile* query_profile);

  /// Exact distance to one candidate — the scalar reference value, bit for
  /// bit, computed with the active kernel tier.
  double Distance(const BatchCandidate& candidate) const;

  /// Scores the query against candidates[0..n), returning the first-minimum
  /// argmin under the exact metric. Equivalent to calling Distance on every
  /// candidate with the `if (d < best)` update rule; bounds only skip
  /// candidates that provably cannot win.
  BatchResult Score(const BatchCandidate* candidates, size_t n) const;

  BatchMetric metric() const { return metric_; }

 private:
  BatchMetric metric_;
  std::string_view query_;
  const BitProfile* query_profile_ = nullptr;
};

}  // namespace sketchlink::simd

#endif  // SKETCHLINK_SIMD_SCORE_BATCH_H_

#ifndef SKETCHLINK_SIMD_SCORE_BATCH_H_
#define SKETCHLINK_SIMD_SCORE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

#include "simd/bit_profile.h"
#include "simd/jaro_pattern.h"

namespace sketchlink::simd {

/// Distance metric of a batch; each mirrors a scalar routing metric exactly.
enum class BatchMetric {
  /// 1 - text::JaroWinkler (the paper's evaluation metric).
  kJaroWinkler,
  /// SketchPolicy::ProfileDistance over cached q-gram profiles.
  kQGramDice,
  /// Levenshtein / max(len) (text::NormalizedLevenshteinDistance).
  kLevenshtein,
};

/// One candidate of a batch: the representative's text plus whatever caches
/// the sketch holds for it. A null/unfit `jaro` pattern or a null `profile`
/// degrades that candidate to the scalar reference path — same result,
/// just slower.
struct BatchCandidate {
  std::string_view text;
  const JaroPattern* jaro = nullptr;
  const BitProfile* profile = nullptr;
};

/// Structure-of-arrays batch: the candidates' texts concatenated into one
/// contiguous byte run with parallel offset/length arrays, plus dense
/// pattern/profile arrays indexed by candidate position. This is the layout
/// the sketch publishes per representative set (core::RepSet::packed): the
/// scorer streams `text_lens` straight into the length-bound kernels with
/// no per-chunk gather, and every candidate access is a contiguous slice.
/// All pointers are borrowed; the backing storage must outlive the call.
struct BatchSoA {
  size_t count = 0;
  const char* text_bytes = nullptr;
  const uint32_t* text_offsets = nullptr;  ///< count entries into text_bytes
  const uint32_t* text_lens = nullptr;     ///< count entries, contiguous
  const JaroPattern* patterns = nullptr;   ///< count entries (may be null)
  const BitProfile* profiles = nullptr;    ///< count entries (may be null)

  std::string_view text(size_t i) const {
    return std::string_view(text_bytes + text_offsets[i], text_lens[i]);
  }
};

/// Outcome of scoring one query against a candidate array.
struct BatchResult {
  /// Index of the argmin candidate (first minimum in array order — the
  /// strict `<` update rule of SketchPolicy::ChooseSubBlock), or SIZE_MAX
  /// for an empty batch.
  size_t best_index = SIZE_MAX;
  double best_distance = std::numeric_limits<double>::infinity();
  /// Candidates whose exact distance was computed.
  uint32_t evaluated = 0;
  /// Candidates skipped because a lower bound already met or exceeded the
  /// running best. Pruning never changes best_index/best_distance: a bound
  /// b <= d with b >= best implies d >= best, which the scalar loop would
  /// also discard.
  uint32_t pruned = 0;
};

/// A query prepared for batch evaluation: per-query state (the q-gram
/// profile under kQGramDice) is built once, then scored against all
/// lambda*rho sub-block representatives in one pass with length/signature
/// early-exit pruning.
class BatchQuery {
 public:
  /// kJaroWinkler / kLevenshtein: no per-query preprocessing beyond lengths.
  BatchQuery(BatchMetric metric, std::string_view query);

  /// kQGramDice: `query_profile` must outlive the BatchQuery (the routing
  /// code builds it once per decision, like the legacy query_profile).
  BatchQuery(BatchMetric metric, std::string_view query,
             const BitProfile* query_profile);

  /// Exact distance to one candidate — the scalar reference value, bit for
  /// bit, computed with the active kernel tier.
  double Distance(const BatchCandidate& candidate) const;

  /// Exact distance to candidate `i` of a SoA batch; same value as the
  /// gather path for the equivalent candidate.
  double Distance(const BatchSoA& soa, size_t i) const;

  /// Scores the query against candidates[0..n), returning the first-minimum
  /// argmin under the exact metric. Equivalent to calling Distance on every
  /// candidate with the `if (d < best)` update rule; bounds only skip
  /// candidates that provably cannot win.
  BatchResult Score(const BatchCandidate* candidates, size_t n) const;

  /// SoA variant with a carried running best: candidates whose bound meets
  /// or exceeds `initial_best` are pruned exactly as the flat path would
  /// prune them mid-array. Calling Score per sub-block with the previous
  /// sub-blocks' best threaded through is bit-identical (same evaluation
  /// order, same prune/evaluate decisions) to one flat Score over the
  /// concatenation — bounds never depend on the running best, only the
  /// prune comparison does.
  BatchResult Score(const BatchSoA& soa, double initial_best) const;

  BatchMetric metric() const { return metric_; }

 private:
  BatchMetric metric_;
  std::string_view query_;
  const BitProfile* query_profile_ = nullptr;
};

}  // namespace sketchlink::simd

#endif  // SKETCHLINK_SIMD_SCORE_BATCH_H_

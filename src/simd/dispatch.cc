#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sketchlink::simd {

namespace {

const char* const kEnvVar = "SKETCHLINK_SIMD";

KernelLevel ProbeCpu() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("bmi") &&
      __builtin_cpu_supports("bmi2") && __builtin_cpu_supports("popcnt")) {
    return KernelLevel::kAVX512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi") &&
      __builtin_cpu_supports("bmi2") && __builtin_cpu_supports("popcnt")) {
    return KernelLevel::kAVX2;
  }
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt")) {
    return KernelLevel::kSSE42;
  }
#endif
  return KernelLevel::kScalar;
}

struct Config {
  bool enabled;
  KernelLevel level;
};

KernelLevel Clamp(KernelLevel requested, KernelLevel detected) {
  return static_cast<int>(requested) > static_cast<int>(detected) ? detected
                                                                  : requested;
}

/// Startup config: the detected tier, lowered or disabled by SKETCHLINK_SIMD.
/// Unknown values are ignored (detected tier wins) rather than erroring, so a
/// typo degrades gracefully instead of changing results — every tier is
/// bit-identical anyway.
Config ReadConfig(KernelLevel detected) {
  Config config{true, detected};
  const char* env = std::getenv(kEnvVar);
  if (env == nullptr || *env == '\0') return config;
  if (std::strcmp(env, "off") == 0) {
    config.enabled = false;
    config.level = KernelLevel::kScalar;
  } else if (std::strcmp(env, "scalar") == 0) {
    config.level = KernelLevel::kScalar;
  } else if (std::strcmp(env, "sse42") == 0) {
    config.level = Clamp(KernelLevel::kSSE42, detected);
  } else if (std::strcmp(env, "avx2") == 0) {
    config.level = Clamp(KernelLevel::kAVX2, detected);
  } else if (std::strcmp(env, "avx512") == 0) {
    config.level = Clamp(KernelLevel::kAVX512, detected);
  }
  return config;
}

// Packed {enabled, level} so the hot-path load is a single relaxed atomic.
// Encoding: -1 = disabled, otherwise the KernelLevel value.
std::atomic<int>& ActiveState() {
  static std::atomic<int> state = [] {
    const Config config = ReadConfig(DetectedCpuLevel());
    return config.enabled ? static_cast<int>(config.level) : -1;
  }();
  return state;
}

}  // namespace

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSSE42:
      return "sse42";
    case KernelLevel::kAVX2:
      return "avx2";
    case KernelLevel::kAVX512:
      return "avx512";
  }
  return "unknown";
}

KernelLevel DetectedCpuLevel() {
  static const KernelLevel detected = ProbeCpu();
  return detected;
}

KernelLevel ActiveLevel() {
  const int state = ActiveState().load(std::memory_order_relaxed);
  return state < 0 ? KernelLevel::kScalar : static_cast<KernelLevel>(state);
}

bool KernelsEnabled() {
  return ActiveState().load(std::memory_order_relaxed) >= 0;
}

const KernelOps* OpsForLevel(KernelLevel level) {
  if (static_cast<int>(level) > static_cast<int>(DetectedCpuLevel())) {
    return nullptr;
  }
  switch (level) {
    case KernelLevel::kScalar:
      return GetScalarKernels();
    case KernelLevel::kSSE42:
      return GetSse42Kernels();
    case KernelLevel::kAVX2:
      return GetAvx2Kernels();
    case KernelLevel::kAVX512:
      return GetAvx512Kernels();
  }
  return nullptr;
}

const KernelOps& Ops() { return *OpsForLevel(ActiveLevel()); }

KernelLevel SetActiveLevelForTesting(KernelLevel level) {
  const KernelLevel clamped = Clamp(level, DetectedCpuLevel());
  ActiveState().store(static_cast<int>(clamped), std::memory_order_relaxed);
  return clamped;
}

void ResetActiveLevelForTesting() {
  const Config config = ReadConfig(DetectedCpuLevel());
  ActiveState().store(config.enabled ? static_cast<int>(config.level) : -1,
                      std::memory_order_relaxed);
}

}  // namespace sketchlink::simd

#include "simd/bit_profile.h"

#include <algorithm>

#include "common/memory_tracker.h"
#include "text/qgram.h"

namespace sketchlink::simd {

namespace {

/// Packs a gram of len <= 7 bytes: bytes left-aligned big-endian in the
/// high 7 bytes, length in the low byte. Injective over grams up to 7
/// bytes, and numeric order equals lexicographic byte order (a shorter
/// prefix sorts before its extensions via the length byte).
uint64_t PackGram(const char* data, size_t len) {
  uint64_t value = 0;
  for (size_t i = 0; i < len; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * (7 - i));
  }
  return value | static_cast<uint64_t>(len);
}

/// FNV-1a over a wide gram, for the signature of the string fallback.
uint64_t HashWideGram(const std::string& gram) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : gram) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

size_t BitProfile::HeapBytes() const {
  size_t bytes = grams.capacity() * sizeof(uint64_t) +
                 counts.capacity() * sizeof(uint32_t) +
                 wide.capacity() * sizeof(std::string);
  for (const std::string& gram : wide) bytes += StringHeapBytes(gram);
  return bytes;
}

BitProfile MakeBitProfile(std::string_view s, size_t q, bool pad) {
  BitProfile profile;
  if (q == 0) return profile;  // QGrams convention: no grams at all

  if (q > 7) {
    // Wide grams cannot be packed unambiguously; keep the sorted string
    // multiset and let the shared scalar merge handle it.
    profile.packed = false;
    profile.wide = text::QGrams(s, q, pad);
    std::sort(profile.wide.begin(), profile.wide.end());
    profile.total = static_cast<uint32_t>(profile.wide.size());
    for (size_t i = 0; i < profile.wide.size(); ++i) {
      if (i == 0 || profile.wide[i] != profile.wide[i - 1]) {
        ++profile.distinct;
        profile.signature |= SignatureBit(HashWideGram(profile.wide[i]));
      }
    }
    return profile;
  }

  // Mirror the QGrams tokenization without materializing gram strings:
  // q-1 '#' sentinels, the text, q-1 '$' sentinels.
  std::string padded;
  if (pad) {
    padded.assign(q - 1, '#');
    padded.append(s);
    padded.append(q - 1, '$');
  } else {
    padded.assign(s);
  }

  std::vector<uint64_t> values;
  if (padded.size() < q) {
    // QGrams keeps the whole (short) string as a single gram.
    if (!padded.empty()) values.push_back(PackGram(padded.data(), padded.size()));
  } else {
    values.reserve(padded.size() - q + 1);
    for (size_t i = 0; i + q <= padded.size(); ++i) {
      values.push_back(PackGram(padded.data() + i, q));
    }
  }
  std::sort(values.begin(), values.end());

  profile.total = static_cast<uint32_t>(values.size());
  profile.grams.reserve(values.size());
  profile.counts.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0 && values[i] == values[i - 1]) {
      ++profile.counts.back();
      continue;
    }
    profile.grams.push_back(values[i]);
    profile.counts.push_back(1);
    profile.signature |= SignatureBit(values[i]);
  }
  profile.distinct = static_cast<uint32_t>(profile.grams.size());
  return profile;
}

double DiceDistanceLowerBound(const BitProfile& a, const BitProfile& b) {
  // Exact-by-convention cases: the bound IS the distance.
  if (a.total == 0 && b.total == 0) return 0.0;
  if (a.total == 0 || b.total == 0) return 1.0;
  // Each signature bit of a missing from b's signature certifies at least
  // one gram instance of a outside the intersection (and symmetrically).
  const uint64_t only_a =
      static_cast<uint64_t>(__builtin_popcountll(a.signature & ~b.signature));
  const uint64_t only_b =
      static_cast<uint64_t>(__builtin_popcountll(b.signature & ~a.signature));
  const uint64_t ub_a = a.total > only_a ? a.total - only_a : 0;
  const uint64_t ub_b = b.total > only_b ? b.total - only_b : 0;
  const uint64_t common_ub = std::min(ub_a, ub_b);
  const double dice_ub = 2.0 * static_cast<double>(common_ub) /
                         static_cast<double>(a.total + b.total);
  return 1.0 - dice_ub;
}

}  // namespace sketchlink::simd

// Portable scalar tier: plain C++ hooks, no ISA extensions. This tier is the
// reference the SIMD tiers are differentially tested against, and the one
// installed on CPUs without SSE4.2.

#include <cstddef>
#include <cstdint>

#include "simd/jaro_pattern.h"

namespace sketchlink::simd {
namespace {

uint64_t PatternLookup(const JaroPattern& pattern, unsigned char c) {
  for (size_t s = 0; s < pattern.num_distinct; ++s) {
    if (pattern.chars[s] == c) return pattern.masks[s];
  }
  return 0;
}

void IntersectPacked(const uint64_t* ga, const uint32_t* ca, size_t na,
                     const uint64_t* gb, const uint32_t* cb, size_t nb,
                     uint64_t* multiset_common, uint64_t* distinct_common) {
  size_t i = 0;
  size_t j = 0;
  uint64_t common = 0;
  uint64_t dc = 0;
  while (i < na && j < nb) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (ga[i] > gb[j]) {
      ++j;
    } else {
      common += ca[i] < cb[j] ? ca[i] : cb[j];
      ++dc;
      ++i;
      ++j;
    }
  }
  *multiset_common = common;
  *distinct_common = dc;
}

}  // namespace
}  // namespace sketchlink::simd

#define SKETCHLINK_KERNEL_NAME "scalar"
#define SKETCHLINK_KERNEL_GETTER GetScalarKernels
#include "simd/kernel_impl.inc"

#ifndef SKETCHLINK_SIMD_KERNELS_H_
#define SKETCHLINK_SIMD_KERNELS_H_

#include <cstddef>
#include <string_view>

namespace sketchlink::simd {

struct BitProfile;
struct JaroPattern;

/// Single-pair entry points of the kernel layer. Each returns exactly the
/// same bits as its scalar reference in src/text (differentially tested),
/// dispatching to the active tier and falling back to the reference
/// implementation when the kernels are disabled (SKETCHLINK_SIMD=off) or the
/// input exceeds a kernel limit (e.g. Jaro with |b| > 64).

/// == text::Jaro(a, b).
double Jaro(std::string_view a, std::string_view b);

/// == text::JaroWinkler(a, b) (standard 0.1 prefix scale).
double JaroWinkler(std::string_view a, std::string_view b);

/// == text::JaroWinklerDistance(a, b).
double JaroWinklerDistance(std::string_view a, std::string_view b);

/// Jaro with a caller-cached pattern for `b` (pattern->fits must be true).
double JaroWithPattern(std::string_view a, std::string_view b,
                       const JaroPattern& pattern);

/// == text::Levenshtein(a, b), via Myers' bit-parallel recurrence.
size_t Levenshtein(std::string_view a, std::string_view b);

/// == text::BoundedLevenshtein(a, b, max_distance) (max+1 when exceeded).
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_distance);

/// == text::NormalizedLevenshteinDistance(a, b).
double NormalizedLevenshteinDistance(std::string_view a, std::string_view b);

/// == 1 - text::QGramDice conventions over cached profiles; equals
/// SketchPolicy::ProfileDistance on profiles of the same strings and q.
double ProfileDiceDistance(const BitProfile& a, const BitProfile& b);

/// == text::QGramJaccard over cached profiles.
double ProfileJaccard(const BitProfile& a, const BitProfile& b);

}  // namespace sketchlink::simd

#endif  // SKETCHLINK_SIMD_KERNELS_H_

// AVX-512 tier (compiled with -mavx512f -mavx512bw -mavx512vl -mbmi -mbmi2
// -mpopcnt): the Jaro pattern lookup compares all 32 index slots into a mask
// register (no movemask round-trip), and the packed-gram merge gallops eight
// 64-bit grams per step with a native unsigned compare (no sign bias).
// Results are bit-identical to the scalar tier; only the instruction mix
// differs.

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd/jaro_pattern.h"

namespace sketchlink::simd {
namespace {

uint64_t PatternLookup(const JaroPattern& pattern, unsigned char c) {
  static_assert(JaroPattern::kMaxDistinct == 32,
                "lookup is one 32-byte compare");
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(c));
  const __m256i chars = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(pattern.chars.data()));
  const __mmask32 mask = _mm256_cmpeq_epi8_mask(chars, needle);
  if (mask == 0) return 0;
  // First-occurrence slot wins, matching the scalar scan; padding slots
  // carry zero masks.
  return pattern.masks[static_cast<size_t>(__builtin_ctz(mask))];
}

void IntersectPacked(const uint64_t* ga, const uint32_t* ca, size_t na,
                     const uint64_t* gb, const uint32_t* cb, size_t nb,
                     uint64_t* multiset_common, uint64_t* distinct_common) {
  size_t i = 0;
  size_t j = 0;
  uint64_t common = 0;
  uint64_t dc = 0;
  while (i < na && j < nb) {
    if (j + 8 <= nb && gb[j + 7] < ga[i]) {
      // Skip eight grams of b at a time while all are below a's cursor —
      // exactly the grams the scalar merge would step over one by one.
      const __m512i key = _mm512_set1_epi64(static_cast<long long>(ga[i]));
      do {
        const __m512i eight =
            _mm512_loadu_si512(static_cast<const void*>(gb + j));
        if (_mm512_cmplt_epu64_mask(eight, key) != 0xFF) break;
        j += 8;
      } while (j + 8 <= nb);
      if (j >= nb) break;
    }
    if (ga[i] < gb[j]) {
      ++i;
    } else if (ga[i] > gb[j]) {
      ++j;
    } else {
      common += ca[i] < cb[j] ? ca[i] : cb[j];
      ++dc;
      ++i;
      ++j;
    }
  }
  *multiset_common = common;
  *distinct_common = dc;
}

}  // namespace
}  // namespace sketchlink::simd

#define SKETCHLINK_KERNEL_NAME "avx512"
#define SKETCHLINK_KERNEL_GETTER GetAvx512Kernels
#include "simd/kernel_impl.inc"

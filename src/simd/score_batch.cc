#include "simd/score_batch.h"

#include <algorithm>

#include "simd/dispatch.h"
#include "text/jaro.h"

namespace sketchlink::simd {

namespace {

/// The exact Winkler expression of text::JaroWinkler (0.1 scale), applied on
/// top of a kernel- or reference-computed Jaro.
double WinklerDistance(double jaro, std::string_view a, std::string_view b) {
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return 1.0 - (jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro));
}

}  // namespace

BatchQuery::BatchQuery(BatchMetric metric, std::string_view query)
    : metric_(metric), query_(query) {}

BatchQuery::BatchQuery(BatchMetric metric, std::string_view query,
                       const BitProfile* query_profile)
    : metric_(metric), query_(query), query_profile_(query_profile) {}

double BatchQuery::Distance(const BatchCandidate& candidate) const {
  const KernelOps& ops = Ops();
  switch (metric_) {
    case BatchMetric::kJaroWinkler: {
      const double jaro =
          (candidate.jaro != nullptr && candidate.jaro->fits)
              ? ops.jaro(query_, candidate.text, *candidate.jaro)
              : text::Jaro(query_, candidate.text);
      return WinklerDistance(jaro, query_, candidate.text);
    }
    case BatchMetric::kQGramDice:
      return ops.profile_dice_distance(*query_profile_, *candidate.profile);
    case BatchMetric::kLevenshtein: {
      const size_t longest = std::max(query_.size(), candidate.text.size());
      if (longest == 0) return 0.0;
      return static_cast<double>(ops.levenshtein(query_, candidate.text)) /
             static_cast<double>(longest);
    }
  }
  return 0.0;
}

double BatchQuery::Distance(const BatchSoA& soa, size_t i) const {
  const KernelOps& ops = Ops();
  const std::string_view text = soa.text(i);
  switch (metric_) {
    case BatchMetric::kJaroWinkler: {
      const JaroPattern* pattern =
          soa.patterns != nullptr ? &soa.patterns[i] : nullptr;
      const double jaro = (pattern != nullptr && pattern->fits)
                              ? ops.jaro(query_, text, *pattern)
                              : text::Jaro(query_, text);
      return WinklerDistance(jaro, query_, text);
    }
    case BatchMetric::kQGramDice:
      return ops.profile_dice_distance(*query_profile_, soa.profiles[i]);
    case BatchMetric::kLevenshtein: {
      const size_t longest = std::max(query_.size(), text.size());
      if (longest == 0) return 0.0;
      return static_cast<double>(ops.levenshtein(query_, text)) /
             static_cast<double>(longest);
    }
  }
  return 0.0;
}

BatchResult BatchQuery::Score(const BatchSoA& soa, double initial_best) const {
  const KernelOps& ops = Ops();
  BatchResult result;
  result.best_distance = initial_best;

  constexpr size_t kChunk = 64;
  double bounds[kChunk];
  const bool length_bounds = metric_ != BatchMetric::kQGramDice;
  const uint32_t query_len = static_cast<uint32_t>(query_.size());

  for (size_t base = 0; base < soa.count; base += kChunk) {
    const size_t count = std::min(kChunk, soa.count - base);
    if (length_bounds) {
      // The SoA length array is already contiguous: no per-chunk gather.
      if (metric_ == BatchMetric::kJaroWinkler) {
        ops.jw_length_bounds(query_len, soa.text_lens + base, count, bounds);
      } else {
        ops.lev_length_bounds(query_len, soa.text_lens + base, count, bounds);
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        bounds[i] = ops.dice_distance_bound(*query_profile_,
                                            soa.profiles[base + i]);
      }
    }
    for (size_t i = 0; i < count; ++i) {
      if (bounds[i] >= result.best_distance) {
        ++result.pruned;
        continue;
      }
      const double d = Distance(soa, base + i);
      ++result.evaluated;
      if (d < result.best_distance) {
        result.best_distance = d;
        result.best_index = base + i;
      }
    }
  }
  return result;
}

BatchResult BatchQuery::Score(const BatchCandidate* candidates,
                              size_t n) const {
  const KernelOps& ops = Ops();
  BatchResult result;

  constexpr size_t kChunk = 64;
  uint32_t lens[kChunk];
  double bounds[kChunk];
  const bool length_bounds = metric_ != BatchMetric::kQGramDice;
  const uint32_t query_len = static_cast<uint32_t>(query_.size());

  for (size_t base = 0; base < n; base += kChunk) {
    const size_t count = std::min(kChunk, n - base);
    if (length_bounds) {
      for (size_t i = 0; i < count; ++i) {
        lens[i] = static_cast<uint32_t>(candidates[base + i].text.size());
      }
      if (metric_ == BatchMetric::kJaroWinkler) {
        ops.jw_length_bounds(query_len, lens, count, bounds);
      } else {
        ops.lev_length_bounds(query_len, lens, count, bounds);
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        bounds[i] = ops.dice_distance_bound(*query_profile_,
                                            *candidates[base + i].profile);
      }
    }
    for (size_t i = 0; i < count; ++i) {
      if (bounds[i] >= result.best_distance) {
        ++result.pruned;
        continue;
      }
      const double d = Distance(candidates[base + i]);
      ++result.evaluated;
      if (d < result.best_distance) {
        result.best_distance = d;
        result.best_index = base + i;
      }
    }
  }
  return result;
}

}  // namespace sketchlink::simd

#include "simd/jaro_pattern.h"

namespace sketchlink::simd {

void BuildJaroPattern(std::string_view b, JaroPattern* out) {
  *out = JaroPattern{};
  if (b.size() > 64) return;  // fits stays false; callers use scalar Jaro
  out->length = static_cast<uint8_t>(b.size());
  for (size_t j = 0; j < b.size(); ++j) {
    const unsigned char c = static_cast<unsigned char>(b[j]);
    size_t slot = 0;
    while (slot < out->num_distinct && out->chars[slot] != c) ++slot;
    if (slot == out->num_distinct) {
      if (out->num_distinct == JaroPattern::kMaxDistinct) {
        *out = JaroPattern{};
        out->length = static_cast<uint8_t>(b.size());
        return;  // too many distinct bytes for the fixed index
      }
      out->chars[slot] = c;
      ++out->num_distinct;
    }
    out->masks[slot] |= uint64_t{1} << j;
  }
  out->fits = true;
}

}  // namespace sketchlink::simd

#include "simd/jaro_pattern.h"

namespace sketchlink::simd {

void BuildJaroPattern(std::string_view b, JaroPattern* out) {
  *out = JaroPattern{};
  if (b.size() > 64) return;  // fits stays false; callers use scalar Jaro
  out->length = static_cast<uint8_t>(b.size());
  for (size_t j = 0; j < b.size(); ++j) {
    const unsigned char c = static_cast<unsigned char>(b[j]);
    size_t slot = 0;
    while (slot < out->num_distinct && out->chars[slot] != c) ++slot;
    if (slot == out->num_distinct) {
      if (out->num_distinct == JaroPattern::kMaxDistinct) {
        *out = JaroPattern{};
        out->length = static_cast<uint8_t>(b.size());
        return;  // too many distinct bytes for the fixed index
      }
      out->chars[slot] = c;
      ++out->num_distinct;
    }
    out->masks[slot] |= uint64_t{1} << j;
  }
  out->fits = true;

  // Build the O(1) direct table when the low 6 bits distinguish every
  // distinct byte (always true for normalized field text). A collision
  // leaves direct=false and lookups on the slot-scan path.
  out->direct = true;
  for (size_t slot = 0; slot < out->num_distinct; ++slot) {
    const unsigned char c = out->chars[slot];
    const size_t idx = c & 63u;
    // Occupied iff the mask is nonzero: every distinct byte occurs at
    // least once in b.
    if (out->peq[idx] != 0) {
      out->direct = false;
      out->peq_char.fill(0);
      out->peq.fill(0);
      return;
    }
    out->peq_char[idx] = c;
    out->peq[idx] = out->masks[slot];
  }
}

}  // namespace sketchlink::simd

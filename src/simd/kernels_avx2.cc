// AVX2 tier (compiled with -mavx2 -mbmi -mbmi2 -mpopcnt): one 32-wide byte
// compare covers the whole Jaro pattern index, and the packed-gram merge
// gallops four 64-bit grams per step. Results are bit-identical to the
// scalar tier; only the instruction mix differs.

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd/jaro_pattern.h"

namespace sketchlink::simd {
namespace {

uint64_t PatternLookup(const JaroPattern& pattern, unsigned char c) {
  static_assert(JaroPattern::kMaxDistinct == 32,
                "lookup is one 32-byte compare");
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(c));
  const __m256i chars = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(pattern.chars.data()));
  const uint32_t mask = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(chars, needle)));
  if (mask == 0) return 0;
  // First-occurrence slot wins, matching the scalar scan; padding slots
  // carry zero masks.
  return pattern.masks[static_cast<size_t>(__builtin_ctz(mask))];
}

void IntersectPacked(const uint64_t* ga, const uint32_t* ca, size_t na,
                     const uint64_t* gb, const uint32_t* cb, size_t nb,
                     uint64_t* multiset_common, uint64_t* distinct_common) {
  // Packed grams are unsigned; bias to signed domain for _mm256_cmpgt_epi64.
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  size_t i = 0;
  size_t j = 0;
  uint64_t common = 0;
  uint64_t dc = 0;
  while (i < na && j < nb) {
    if (j + 4 <= nb && gb[j + 3] < ga[i]) {
      // Skip four grams of b at a time while all are below a's cursor —
      // exactly the grams the scalar merge would step over one by one.
      const __m256i key = _mm256_xor_si256(
          _mm256_set1_epi64x(static_cast<long long>(ga[i])), bias);
      do {
        const __m256i four = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gb + j)),
            bias);
        if (_mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpgt_epi64(key, four))) != 0xF) {
          break;
        }
        j += 4;
      } while (j + 4 <= nb);
      if (j >= nb) break;
    }
    if (ga[i] < gb[j]) {
      ++i;
    } else if (ga[i] > gb[j]) {
      ++j;
    } else {
      common += ca[i] < cb[j] ? ca[i] : cb[j];
      ++dc;
      ++i;
      ++j;
    }
  }
  *multiset_common = common;
  *distinct_common = dc;
}

}  // namespace
}  // namespace sketchlink::simd

#define SKETCHLINK_KERNEL_NAME "avx2"
#define SKETCHLINK_KERNEL_GETTER GetAvx2Kernels
#include "simd/kernel_impl.inc"

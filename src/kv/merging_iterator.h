#ifndef SKETCHLINK_KV_MERGING_ITERATOR_H_
#define SKETCHLINK_KV_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "kv/iterator.h"

namespace sketchlink::kv {

/// Merges several sorted child cursors into one sorted stream. Children are
/// ordered NEWEST FIRST; when multiple children carry the same key, the
/// newest version wins and older versions are skipped. Tombstones are
/// surfaced (the DB-level iterator filters them), so layers below a
/// deletion stay shadowed.
std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_MERGING_ITERATOR_H_

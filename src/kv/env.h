#ifndef SKETCHLINK_KV_ENV_H_
#define SKETCHLINK_KV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sketchlink::kv {

/// Buffered append-only file used for WAL segments, SSTables and manifests.
/// Obtained from Env::NewWritableFile. Bytes merely Append()ed may sit in
/// user-space or page-cache buffers; Sync() is the durability point the
/// store's crash-consistency argument leans on (see DESIGN.md, Durability).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Opens (creates/truncates) `path` through the default Env.
  static Result<std::unique_ptr<WritableFile>> Open(const std::string& path);

  /// Appends bytes to the file buffer.
  virtual Status Append(std::string_view data) = 0;

  /// Flushes user-space buffers to the OS.
  virtual Status Flush() = 0;

  /// Flushes and fsyncs.
  virtual Status Sync() = 0;

  /// Flushes and closes; further calls are invalid.
  virtual Status Close() = 0;

  /// Bytes appended so far.
  virtual uint64_t size() const = 0;

  virtual const std::string& path() const = 0;

 protected:
  WritableFile() = default;
};

/// Positional-read file used to serve SSTable lookups. Obtained from
/// Env::NewRandomAccessFile.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Opens `path` through the default Env.
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  /// Reads exactly `length` bytes at `offset` into `*out` (resized).
  virtual Status Read(uint64_t offset, size_t length, std::string* out)
      const = 0;

  /// Total file size.
  virtual uint64_t size() const = 0;

  virtual const std::string& path() const = 0;

 protected:
  RandomAccessFile() = default;
};

/// The file system the store runs on. Production code uses the process-wide
/// POSIX implementation (Env::Default()); tests plug a FaultInjectionEnv
/// into Options::env to script failures into any I/O call the store makes.
/// Implementations must be thread-safe: kv::Db serializes its own state but
/// several Db instances may share one Env.
class Env {
 public:
  virtual ~Env() = default;

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// The process-wide POSIX environment. Never null, never destroyed.
  static Env* Default();

  /// Opens (creates/truncates) `path` for appending.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Opens `path` for positional reads; NotFound if absent.
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Creates directory `path` (and parents) if missing.
  virtual Status CreateDirIfMissing(const std::string& path) = 0;

  /// Removes a file; NotFound if absent.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Renames a file, replacing the destination.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// True if `path` exists.
  virtual bool FileExists(const std::string& path) = 0;

  /// Lists regular files (names only, not paths) inside directory `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Recursively deletes a directory tree (used by tests and benchmarks to
  /// reset scratch databases).
  virtual Status RemoveDirRecursively(const std::string& path) = 0;

  /// Reads an entire file into `*out`. Composed from NewRandomAccessFile so
  /// injected read faults apply.
  Status ReadFileToString(const std::string& path, std::string* out);

  /// Writes `data` to `path` atomically (tmp file + sync + rename).
  /// Composed from the virtual primitives so injected faults apply to every
  /// step.
  Status WriteStringToFileSync(const std::string& path, std::string_view data);

 protected:
  Env() = default;
};

/// Free-function conveniences over Env::Default(), used by tests, examples
/// and benchmarks that do not need fault injection.
Status ReadFileToString(const std::string& path, std::string* out);
Status WriteStringToFileSync(const std::string& path, std::string_view data);
Status CreateDirIfMissing(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
bool FileExists(const std::string& path);
Result<std::vector<std::string>> ListDir(const std::string& dir);
Status RemoveDirRecursively(const std::string& path);

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_ENV_H_

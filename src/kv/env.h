#ifndef SKETCHLINK_KV_ENV_H_
#define SKETCHLINK_KV_ENV_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sketchlink::kv {

/// Buffered append-only file used for WAL segments, SSTables and manifests.
class WritableFile {
 public:
  ~WritableFile();

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Opens (creates/truncates) `path` for writing.
  static Result<std::unique_ptr<WritableFile>> Open(const std::string& path);

  /// Appends bytes to the file buffer.
  Status Append(std::string_view data);

  /// Flushes user-space buffers to the OS.
  Status Flush();

  /// Flushes and fsyncs.
  Status Sync();

  /// Flushes and closes; further calls are invalid.
  Status Close();

  /// Bytes appended so far.
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
  uint64_t size_ = 0;
};

/// Positional-read file used to serve SSTable lookups.
class RandomAccessFile {
 public:
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Opens `path` for reading.
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  /// Reads exactly `length` bytes at `offset` into `*out` (resized).
  Status Read(uint64_t offset, size_t length, std::string* out) const;

  /// Total file size.
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, std::FILE* file, uint64_t size)
      : path_(std::move(path)), file_(file), size_(size) {}

  std::string path_;
  std::FILE* file_;
  uint64_t size_;
};

/// Reads an entire file into `*out`.
Status ReadFileToString(const std::string& path, std::string* out);

/// Writes `data` to `path` atomically (tmp file + rename).
Status WriteStringToFileSync(const std::string& path, std::string_view data);

/// Creates directory `path` (and parents) if missing.
Status CreateDirIfMissing(const std::string& path);

/// Removes a file; NotFound if absent.
Status RemoveFile(const std::string& path);

/// Renames a file, replacing the destination.
Status RenameFile(const std::string& from, const std::string& to);

/// True if `path` exists.
bool FileExists(const std::string& path);

/// Lists regular files (names only, not paths) inside directory `dir`.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Recursively deletes a directory tree (used by tests and benchmarks to
/// reset scratch databases).
Status RemoveDirRecursively(const std::string& path);

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_ENV_H_

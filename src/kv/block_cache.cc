#include "kv/block_cache.h"

namespace sketchlink::kv {

bool BlockCache::Lookup(const std::string& key, std::string* value) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  *value = it->second->value;
  return true;
}

void BlockCache::Insert(const std::string& key, const std::string& value) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    used_bytes_ -= EntryBytes(*it->second);
    it->second->value = value;
    used_bytes_ += EntryBytes(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictUntilFits();
    return;
  }
  Entry entry{key, value};
  const size_t bytes = EntryBytes(entry);
  if (bytes > capacity_bytes_) return;  // would evict everything for nothing
  lru_.push_front(std::move(entry));
  map_[key] = lru_.begin();
  used_bytes_ += bytes;
  EvictUntilFits();
}

void BlockCache::EvictUntilFits() {
  while (used_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_bytes_ -= EntryBytes(victim);
    map_.erase(victim.key);
    lru_.pop_back();
  }
}

void BlockCache::EraseByPrefix(const std::string& prefix) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      used_bytes_ -= EntryBytes(*it);
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::Clear() {
  lru_.clear();
  map_.clear();
  used_bytes_ = 0;
}

}  // namespace sketchlink::kv

#ifndef SKETCHLINK_KV_ITERATOR_H_
#define SKETCHLINK_KV_ITERATOR_H_

#include <string_view>

#include "common/status.h"

namespace sketchlink::kv {

/// Ordered cursor over key/value entries. Internal iterators (memtable,
/// SSTable, merging) surface tombstones so layering can shadow correctly;
/// the DB-level iterator hides them.
///
/// Usage:
///   for (it->SeekToFirst(); it->Valid(); it->Next()) { ... }
/// After the loop, check status() — I/O errors invalidate the iterator.
class Iterator {
 public:
  virtual ~Iterator() = default;

  /// True when positioned on an entry; key()/value() are then valid.
  virtual bool Valid() const = 0;

  /// Positions at the smallest key.
  virtual void SeekToFirst() = 0;

  /// Positions at the first key >= target.
  virtual void Seek(std::string_view target) = 0;

  /// Advances to the next key in order. Requires Valid().
  virtual void Next() = 0;

  /// Current key; the view is valid until the next mutation of the cursor.
  virtual std::string_view key() const = 0;

  /// Current value (empty for tombstones).
  virtual std::string_view value() const = 0;

  /// True when the current entry is a deletion marker.
  virtual bool tombstone() const = 0;

  /// OK, or the first error the cursor hit (an erroring iterator turns
  /// invalid).
  virtual Status status() const = 0;
};

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_ITERATOR_H_

#ifndef SKETCHLINK_KV_WAL_H_
#define SKETCHLINK_KV_WAL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kv/env.h"

namespace sketchlink::kv {

/// One logical operation recovered from (or appended to) the write-ahead log.
struct WalRecord {
  enum class Op : uint8_t { kPut = 1, kDelete = 2 };
  Op op;
  std::string key;
  std::string value;  // empty for kDelete
};

/// Append-only write-ahead log. Each record is framed as
///   crc32c(payload) : fixed32
///   len(payload)    : varint32
///   payload         : op byte, length-prefixed key, length-prefixed value
/// so recovery can detect torn tails and stop at the first bad frame.
class WalWriter {
 public:
  /// Creates/truncates the log at `path` on `env` (nullptr: Env::Default()).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 bool sync_each_record,
                                                 Env* env = nullptr);

  /// Appends a put record.
  Status AppendPut(std::string_view key, std::string_view value);

  /// Appends a delete record.
  Status AppendDelete(std::string_view key);

  /// Flushes (and fsyncs when configured).
  Status Sync();

  /// Closes the underlying file.
  Status Close();

  uint64_t size() const { return file_->size(); }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, bool sync_each_record)
      : file_(std::move(file)), sync_each_record_(sync_each_record) {}

  Status AppendRecord(std::string_view payload);

  std::unique_ptr<WritableFile> file_;
  bool sync_each_record_;
};

/// Replays a WAL file from `env` (nullptr: Env::Default()). Parsing stops
/// cleanly at an *incomplete* tail frame — the shape a crash mid-append
/// leaves — returning every record before it. A checksum mismatch on a
/// frame whose bytes are all present is bit rot, not a torn write, and
/// yields Corruption wherever it sits; `best_effort` downgrades that to
/// stop-at-first-bad-frame prefix recovery (Options::best_effort_wal_recovery).
Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       Env* env = nullptr,
                                       bool best_effort = false);

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_WAL_H_

#include "kv/merging_iterator.h"

#include <string>

namespace sketchlink::kv {

namespace {

class MergingIterator : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override {
    return status_.ok() && current_ != nullptr;
  }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    PickCurrent();
  }

  void Seek(std::string_view target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    PickCurrent();
  }

  void Next() override {
    // Advance every child positioned at the current key, so shadowed older
    // versions are consumed together with the winner.
    const std::string current_key(current_->key());
    for (auto& child : children_) {
      if (child->Valid() && child->key() == current_key) {
        child->Next();
      }
    }
    PickCurrent();
  }

  std::string_view key() const override { return current_->key(); }
  std::string_view value() const override { return current_->value(); }
  bool tombstone() const override { return current_->tombstone(); }
  Status status() const override { return status_; }

 private:
  // Selects the child with the smallest key; among equals the FIRST child
  // (the newest layer) wins. A linear scan per step is fine: the store
  // keeps at most a handful of runs.
  void PickCurrent() {
    current_ = nullptr;
    for (auto& child : children_) {
      if (!child->status().ok()) {
        status_ = child->status();
        current_ = nullptr;
        return;
      }
      if (!child->Valid()) continue;
      if (current_ == nullptr || child->key() < current_->key()) {
        current_ = child.get();
      }
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

}  // namespace sketchlink::kv

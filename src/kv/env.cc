#include "kv/env.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace sketchlink::kv {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

/// stdio-backed writable file: buffered appends, explicit fsync on Sync().
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (data.empty()) return Status::OK();
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write " + path_);
    }
    size_ += data.size();
    return Status::OK();
  }

  Status Flush() override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fflush(file_) != 0) return ErrnoStatus("flush " + path_);
    return Status::OK();
  }

  Status Sync() override {
    SKETCHLINK_RETURN_IF_ERROR(Flush());
    // fileno + fsync; fflush alone leaves data in the page cache, which is
    // fine for crash-consistency within the process but not across power
    // loss. Our durability contract matches LevelDB's default (no fsync per
    // write); Sync() is called on WAL rotation and manifest swaps.
    if (fsync(fileno(file_)) != 0) return ErrnoStatus("fsync " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return ErrnoStatus("close " + path_);
    return Status::OK();
  }

  uint64_t size() const override { return size_; }
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  uint64_t size_ = 0;
};

/// stdio-backed positional reader.
class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, std::FILE* file, uint64_t size)
      : path_(std::move(path)), file_(file), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(uint64_t offset, size_t length,
              std::string* out) const override {
    out->resize(length);
    if (length == 0) return Status::OK();
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return ErrnoStatus("seek " + path_);
    }
    if (std::fread(out->data(), 1, length, file_) != length) {
      return Status::IOError("short read from " + path_);
    }
    return Status::OK();
  }

  uint64_t size() const override { return size_; }
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  uint64_t size_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return ErrnoStatus("open " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, f));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("open " + path);
    }
    std::error_code ec;
    const uint64_t size = fs::file_size(path, ec);
    if (ec) {
      std::fclose(f);
      return Status::IOError("stat " + path + ": " + ec.message());
    }
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(path, f, size));
  }

  Status CreateDirIfMissing(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec)) {
      if (ec) return Status::IOError("remove " + path + ": " + ec.message());
      return Status::NotFound(path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IOError("rename " + from + " -> " + to + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file()) {
        names.push_back(entry.path().filename().string());
      }
    }
    if (ec) return Status::IOError("list " + dir + ": " + ec.message());
    return names;
  }

  Status RemoveDirRecursively(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) return Status::IOError("rmtree " + path + ": " + ec.message());
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked: outlives every Db
  return env;
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  auto file = NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  return (*file)->Read(0, (*file)->size(), out);
}

Status Env::WriteStringToFileSync(const std::string& path,
                                  std::string_view data) {
  const std::string tmp = path + ".tmp";
  auto file = NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  SKETCHLINK_RETURN_IF_ERROR((*file)->Append(data));
  SKETCHLINK_RETURN_IF_ERROR((*file)->Sync());
  SKETCHLINK_RETURN_IF_ERROR((*file)->Close());
  return RenameFile(tmp, path);
}

Result<std::unique_ptr<WritableFile>> WritableFile::Open(
    const std::string& path) {
  return Env::Default()->NewWritableFile(path);
}

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  return Env::Default()->NewRandomAccessFile(path);
}

Status ReadFileToString(const std::string& path, std::string* out) {
  return Env::Default()->ReadFileToString(path, out);
}

Status WriteStringToFileSync(const std::string& path, std::string_view data) {
  return Env::Default()->WriteStringToFileSync(path, data);
}

Status CreateDirIfMissing(const std::string& path) {
  return Env::Default()->CreateDirIfMissing(path);
}

Status RemoveFile(const std::string& path) {
  return Env::Default()->RemoveFile(path);
}

Status RenameFile(const std::string& from, const std::string& to) {
  return Env::Default()->RenameFile(from, to);
}

bool FileExists(const std::string& path) {
  return Env::Default()->FileExists(path);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  return Env::Default()->ListDir(dir);
}

Status RemoveDirRecursively(const std::string& path) {
  return Env::Default()->RemoveDirRecursively(path);
}

}  // namespace sketchlink::kv

#include "kv/env.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace sketchlink::kv {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

}  // namespace

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WritableFile>> WritableFile::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("open " + path);
  return std::unique_ptr<WritableFile>(new WritableFile(path, f));
}

Status WritableFile::Append(std::string_view data) {
  if (file_ == nullptr) return Status::FailedPrecondition("file closed");
  if (data.empty()) return Status::OK();
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return ErrnoStatus("write " + path_);
  }
  size_ += data.size();
  return Status::OK();
}

Status WritableFile::Flush() {
  if (file_ == nullptr) return Status::FailedPrecondition("file closed");
  if (std::fflush(file_) != 0) return ErrnoStatus("flush " + path_);
  return Status::OK();
}

Status WritableFile::Sync() {
  SKETCHLINK_RETURN_IF_ERROR(Flush());
  // fileno + fsync; fflush alone leaves data in the page cache, which is
  // fine for crash-consistency within the process but not across power
  // loss. Our durability contract matches LevelDB's default (no fsync per
  // write); Sync() is called on WAL rotation and manifest swaps.
  if (fsync(fileno(file_)) != 0) return ErrnoStatus("fsync " + path_);
  return Status::OK();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return ErrnoStatus("close " + path_);
  return Status::OK();
}

RandomAccessFile::~RandomAccessFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound(path);
    return ErrnoStatus("open " + path);
  }
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) {
    std::fclose(f);
    return Status::IOError("stat " + path + ": " + ec.message());
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(path, f, size));
}

Status RandomAccessFile::Read(uint64_t offset, size_t length,
                              std::string* out) const {
  out->resize(length);
  if (length == 0) return Status::OK();
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return ErrnoStatus("seek " + path_);
  }
  if (std::fread(out->data(), 1, length, file_) != length) {
    return Status::IOError("short read from " + path_);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  return (*file)->Read(0, (*file)->size(), out);
}

Status WriteStringToFileSync(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  auto file = WritableFile::Open(tmp);
  if (!file.ok()) return file.status();
  SKETCHLINK_RETURN_IF_ERROR((*file)->Append(data));
  SKETCHLINK_RETURN_IF_ERROR((*file)->Sync());
  SKETCHLINK_RETURN_IF_ERROR((*file)->Close());
  return RenameFile(tmp, path);
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec)) {
    if (ec) return Status::IOError("remove " + path + ": " + ec.message());
    return Status::NotFound(path);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  return names;
}

Status RemoveDirRecursively(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("rmtree " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace sketchlink::kv

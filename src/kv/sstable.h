#ifndef SKETCHLINK_KV_SSTABLE_H_
#define SKETCHLINK_KV_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/status.h"
#include "kv/block_cache.h"
#include "kv/env.h"
#include "kv/iterator.h"
#include "kv/options.h"

namespace sketchlink::kv {

/// One key/value entry surfaced from an SSTable scan. Tombstones are kept in
/// the file so newer runs can shadow older ones; they are dropped when the
/// merge output is the oldest surviving run.
struct TableEntry {
  std::string key;
  std::string value;
  bool tombstone = false;
};

/// Builds an immutable sorted-run file (SSTable). Keys must be added in
/// strictly increasing order. Layout:
///   data records  : varint32 klen | key | varint32 (vlen<<1 | tomb) | value
///   sparse index  : one (first_key, offset) pair per `index_interval` records
///   bloom filter  : optional, over all keys
///   footer        : fixed offsets/sizes + entry count + crc + magic
class TableBuilder {
 public:
  /// Starts building at `path` on `options.env` (nullptr: Env::Default()).
  static Result<std::unique_ptr<TableBuilder>> Open(const std::string& path,
                                                    const Options& options);

  /// Appends an entry; `key` must exceed the previous key.
  Status Add(std::string_view key, std::string_view value, bool tombstone);

  /// Writes index/bloom/footer and closes the file.
  Status Finish();

  /// Number of entries added.
  uint64_t num_entries() const { return num_entries_; }

  /// File bytes written so far (data section only until Finish()).
  uint64_t file_size() const { return file_->size(); }

 private:
  TableBuilder(std::unique_ptr<WritableFile> file, const Options& options);

  std::unique_ptr<WritableFile> file_;
  Options options_;
  uint64_t num_entries_ = 0;
  std::string last_key_;
  // Pending index entries: (first key of stride, file offset of stride).
  std::vector<std::pair<std::string, uint64_t>> index_;
  std::vector<std::string> keys_for_bloom_;
  bool finished_ = false;
};

/// Read-side handle for one SSTable: holds the parsed sparse index and Bloom
/// filter in memory (O(n / index_interval) entries) and serves point lookups
/// with a single ranged read, giving the O(log n) disk-seek behaviour the
/// paper attributes to LevelDB.
class Table : public std::enable_shared_from_this<Table> {
 public:
  /// Opens and validates `path`, loading index + bloom. `cache` (optional,
  /// not owned, must outlive the table) serves repeated data-block reads;
  /// `env` (nullptr: Env::Default()) supplies the file system.
  static Result<std::shared_ptr<Table>> Open(const std::string& path,
                                             BlockCache* cache = nullptr,
                                             Env* env = nullptr);

  /// Point lookup. Returns kFound/kDeleted/kAbsent like the memtable.
  enum class LookupState { kFound, kDeleted, kAbsent };
  Result<LookupState> Get(std::string_view key, std::string* value) const;

  /// Sequentially reads every entry in key order (used by compaction and by
  /// full scans).
  Status Scan(std::vector<TableEntry>* out) const;

  /// Streaming cursor over the table in key order, stride-buffered: one
  /// sparse-index stride is resident at a time, read through the block
  /// cache. The iterator keeps the table alive.
  std::unique_ptr<Iterator> NewIterator() const;

  uint64_t num_entries() const { return num_entries_; }
  const std::string& path() const { return file_->path(); }
  uint64_t file_size() const { return file_->size(); }

  /// Smallest and largest key in the table.
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  /// True when the Bloom filter proves `key` absent.
  bool DefinitelyAbsent(std::string_view key) const {
    return bloom_.has_value() && !bloom_->MayContain(key);
  }

  /// In-memory footprint (index + bloom).
  size_t ApproximateMemoryUsage() const;

  /// Parses records from `block`, appending to `out` (exposed for the
  /// table iterator).
  static Status ParseRecords(std::string_view block,
                             std::vector<TableEntry>* out);

  /// Iterator hook: cached ranged read of the data section.
  Status ReadDataRangeForIterator(uint64_t begin, uint64_t end,
                                  std::string* out) const;

 private:
  Table() = default;

  // Reads [begin, end) of the data section, through the block cache when
  // one is attached.
  Status ReadDataRange(uint64_t begin, uint64_t end, std::string* out) const;

  std::unique_ptr<RandomAccessFile> file_;
  BlockCache* cache_ = nullptr;
  uint64_t data_size_ = 0;  // bytes before the index section
  uint64_t num_entries_ = 0;
  std::vector<std::pair<std::string, uint64_t>> index_;
  std::optional<BloomFilter> bloom_;
  std::string min_key_;
  std::string max_key_;
};

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_SSTABLE_H_

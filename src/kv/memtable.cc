#include "kv/memtable.h"

namespace sketchlink::kv {

namespace {

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(const MemTable* mem)
      : it_(mem->NewIterator()) {}

  bool Valid() const override { return it_.Valid(); }
  void SeekToFirst() override { it_.SeekToFirst(); }
  void Seek(std::string_view target) override {
    it_.Seek(std::string(target));
  }
  void Next() override { it_.Next(); }
  std::string_view key() const override { return it_.key(); }
  std::string_view value() const override { return it_.value().value; }
  bool tombstone() const override { return it_.value().tombstone; }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator it_;
};

}  // namespace

std::unique_ptr<Iterator> MemTable::NewKvIterator() const {
  return std::make_unique<MemTableIterator>(this);
}

}  // namespace sketchlink::kv

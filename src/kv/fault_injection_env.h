#ifndef SKETCHLINK_KV_FAULT_INJECTION_ENV_H_
#define SKETCHLINK_KV_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kv/env.h"

namespace sketchlink::kv {

/// One Env entry point that can be made to fail. kAppend/kFlush/kSync/
/// kClose apply to writable files, kRead to random-access files; the rest
/// name the Env method directly.
enum class IoOp {
  kOpenWritable,
  kAppend,
  kFlush,
  kSync,
  kClose,
  kOpenRandomAccess,
  kRead,
  kRename,
  kRemove,
  kCreateDir,
};

/// Returns the canonical name of an op ("append", "sync", ...), for test
/// failure messages.
std::string_view IoOpName(IoOp op);

/// Test double wrapping a real Env (the files live on the actual file
/// system) that can script the failures a production stream service sees:
///
///   (a) FailNth(op, n, status) fails the n-th future call of `op` with a
///       chosen Status — the call has no effect on disk, except that with
///       set_partial_appends(true) a failed Append first writes the first
///       half of its data, simulating a torn write.
///   (b) DropUnsyncedWrites() simulates power loss: every tracked file is
///       truncated back to its last Sync()ed size. Call it only after all
///       writers are closed/destroyed (i.e. after the "process" died).
///   (c) CrashAfter(n) trips a crash point: after n more mutating ops
///       succeed, the on-disk state freezes — every later mutating op fails
///       with IOError and has no effect — so tests can reopen the exact
///       mid-sequence state. mutating_ops() after a clean run enumerates
///       the crash points to sweep.
///
/// Mutating ops are kOpenWritable, kAppend, kFlush, kSync, kClose, kRename,
/// kRemove and kCreateDir; reads never trip the crash point. Thread-safe.
/// The env must outlive every file handle it returned, and `base` must be
/// the POSIX env (or another env whose files land on the real file system,
/// which DropUnsyncedWrites truncates directly).
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  // --- fault scripting ------------------------------------------------

  /// Fails the nth (0 = the very next) future call of `op` with `status`.
  /// Multiple schedules may be active at once.
  void FailNth(IoOp op, uint64_t nth, Status status);

  /// Drops every scheduled fault (crash state is separate; see ClearCrash).
  void ClearFaults();

  /// When on, a failed or crashed Append first writes the first half of its
  /// payload — the torn tail a real crash mid-write leaves behind.
  void set_partial_appends(bool on);

  /// Freezes the disk after `budget` more successful mutating ops.
  void CrashAfter(uint64_t budget);

  /// True once the crash point tripped.
  bool crashed() const;

  /// Un-freezes the disk (the scheduled crash budget is also cleared).
  void ClearCrash();

  /// Power loss: truncates every tracked file back to its last synced size.
  /// Requires all writable files obtained from this env to be destroyed.
  Status DropUnsyncedWrites();

  /// Mutating ops observed so far (attempted, whether or not they failed).
  /// Run a workload once cleanly, read this, then sweep CrashAfter(0..n).
  uint64_t mutating_ops() const;

  // --- Env ------------------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status RemoveDirRecursively(const std::string& path) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  struct ScheduledFault {
    IoOp op;
    uint64_t remaining;  // matching calls to let through first
    Status status;
  };

  /// Sync state of one file this env created, keyed by handle id so it
  /// follows the inode through renames. Untracked files are assumed fully
  /// durable.
  struct TrackedFile {
    std::string path;
    uint64_t synced = 0;  // byte count known to survive power loss
  };

  /// Applies crash + scheduled-fault bookkeeping for one call of `op`.
  /// Non-OK means the caller must bail out without touching the base env.
  Status CheckOp(IoOp op);

  /// Marks handle `id`'s first `bytes` bytes as surviving power loss.
  void NoteSynced(uint64_t id, uint64_t bytes);

  bool partial_appends() const;

  static bool IsMutating(IoOp op);

  Env* const base_;
  mutable std::mutex mutex_;
  std::vector<ScheduledFault> faults_;
  bool partial_appends_ = false;
  bool crashed_ = false;
  bool crash_armed_ = false;
  uint64_t crash_budget_ = 0;
  uint64_t mutating_ops_ = 0;
  uint64_t next_file_id_ = 1;
  std::map<uint64_t, TrackedFile> files_;
};

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_FAULT_INJECTION_ENV_H_

#ifndef SKETCHLINK_KV_DB_H_
#define SKETCHLINK_KV_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kv/block_cache.h"
#include "obs/registry.h"
#include "kv/env.h"
#include "kv/iterator.h"
#include "kv/memtable.h"
#include "kv/options.h"
#include "kv/sstable.h"
#include "kv/wal.h"

namespace sketchlink::kv {

/// Live instruments of one Db (see obs/instruments.h). Counters always
/// count; the duration histograms only receive samples while
/// `timing_enabled` is set, which happens when the store is registered with
/// an enabled registry. The DbStats accessor is a thin view over these.
struct DbMetrics {
  obs::Counter puts;
  obs::Counter gets;
  obs::Counter deletes;
  obs::Counter memtable_hits;
  obs::Counter sstable_reads;
  obs::Counter bloom_skips;
  obs::Counter flushes;
  obs::Counter compactions;
  obs::Counter wal_appends;    // records appended (incl. rotation rewrites)
  obs::Counter wal_rotations;  // successful log rotations
  obs::Counter wal_syncs;      // fsyncs issued on the log
  obs::Counter flush_bytes;       // key+value payload flushed to runs
  obs::Counter compaction_bytes;  // key+value payload rewritten by merges
  obs::Histogram flush_duration_nanos;
  obs::Histogram compaction_duration_nanos;
  bool timing_enabled = false;  // guarded by the Db mutex

  DbStats ToStats() const {
    DbStats stats;
    stats.puts = puts.value();
    stats.gets = gets.value();
    stats.deletes = deletes.value();
    stats.memtable_hits = memtable_hits.value();
    stats.sstable_reads = sstable_reads.value();
    stats.bloom_skips = bloom_skips.value();
    stats.flushes = flushes.value();
    stats.compactions = compactions.value();
    return stats;
  }
};

/// Embedded log-structured key/value store: WAL + skip-list memtable +
/// size-tiered sorted runs, our stand-in for the LevelDB instance the paper
/// uses as persistent block storage (Secs. 4-6). Point lookups are O(log n)
/// in the number of stored keys (memtable skip list + per-run sparse index
/// binary search), matching the complexity the paper assumes for
/// `retrieve(k)`.
///
/// Thread-safe for point operations: Put/Delete/Get/Contains/Flush/Compact
/// and the scan helpers serialize on one internal mutex (a spill store is
/// latency-bound, not lock-bound — the sharded sketches above it keep their
/// own finer-grained locks). NewIterator is the exception: the returned
/// cursor reads the memtable without holding the lock, so iteration must be
/// externally synchronized against writers.
class Db {
 public:
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Opens (or creates) a database rooted at directory `path`, replaying any
  /// WAL left by a previous process.
  static Result<std::unique_ptr<Db>> Open(const std::string& path,
                                          const Options& options = Options());

  /// Inserts or overwrites `key`. After a failed WAL rotation the store is
  /// poisoned: writes fail with the sticky rotation error (retrying the
  /// rotation first) instead of acknowledging updates the log never saw.
  Status Put(std::string_view key, std::string_view value);

  /// Removes `key` (idempotent). Same poisoning contract as Put.
  Status Delete(std::string_view key);

  /// Point lookup; NotFound status when absent.
  Status Get(std::string_view key, std::string* value);

  /// True if `key` exists (no value copy).
  bool Contains(std::string_view key);

  /// Forces the memtable out to an SSTable.
  Status Flush();

  /// Runs a full merge of all sorted runs if the compaction trigger is met
  /// (or `force` is true).
  Status Compact(bool force = false);

  /// Streaming cursor over the live entries (tombstones hidden) in key
  /// order: a merge of the memtable and every sorted run, newest layer
  /// winning per key. The iterator pins the runs it reads (compaction may
  /// retire them concurrently-in-program-order) but is invalidated by
  /// writes to the memtable; iterate-then-write, externally synchronized
  /// against concurrent writers, as the linkage pipelines do.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Returns every live entry in key order (merged view). Intended for
  /// tests, examples and small scans, not for bulk workloads.
  Result<std::vector<TableEntry>> ScanAll();

  /// Returns live entries whose key starts with `prefix`, in key order;
  /// seeks directly to the prefix instead of scanning the whole store.
  Result<std::vector<TableEntry>> ScanPrefix(std::string_view prefix);

  /// Operation counters: a thin by-value view over the live instruments, so
  /// historical callers keep compiling unchanged.
  DbStats stats() const { return metrics_.ToStats(); }

  /// Live instruments (registry closures and tests read these directly).
  const DbMetrics& metrics() const { return metrics_; }

  /// Attaches this store's instruments to `registry` under the `instance`
  /// label and arms flush/compaction timing when the registry is enabled.
  /// Called by Open when Options::registry is set; the Db owns the handles,
  /// so destruction deregisters them.
  void RegisterMetrics(obs::Registry* registry, const std::string& instance);

  /// The shared block cache, or nullptr when disabled (hit/miss counters
  /// live on the cache itself).
  const BlockCache* block_cache() const { return block_cache_.get(); }

  /// Number of sorted runs currently on disk.
  size_t num_tables() const { return tables_.size(); }

  /// In-memory footprint: memtable + per-run indexes/bloom filters.
  size_t ApproximateMemoryUsage() const;

  const std::string& path() const { return path_; }

 private:
  Db(std::string path, Options options)
      : path_(std::move(path)),
        options_(options),
        env_(options.env != nullptr ? options.env : Env::Default()) {}

  std::string TableFileName(uint64_t number) const;
  std::string WalFileName() const;
  std::string ManifestFileName() const;

  Status Recover();
  Status WriteManifest();
  Status ApplyToMemtable(const WalRecord& record);
  // *Locked methods expect mutex_ to be held by the caller.
  Status GetLocked(std::string_view key, std::string* value);
  Status FlushLocked();
  Status CompactLocked(bool force);
  Status MaybeFlushAndCompactLocked();
  // Rebuilds the WAL from the current memtable (fresh file beside the live
  // one, sync, atomic rename). On failure wal_ is dropped and wal_status_
  // keeps the error, poisoning the write path.
  Status RotateWalLocked();
  // Write-path gate: OK when the WAL is healthy, otherwise retries the
  // rotation so a transient failure can heal.
  Status EnsureWalLocked();
  std::unique_ptr<Iterator> NewIteratorLocked() const;

  mutable std::mutex mutex_;
  std::string path_;
  Options options_;
  Env* env_;  // never null: resolved to Env::Default() at construction
  std::unique_ptr<BlockCache> block_cache_;
  MemTable mem_;
  std::unique_ptr<WalWriter> wal_;
  // Sticky result of the last WAL rotation; non-OK poisons Put/Delete.
  Status wal_status_;
  // Sorted runs, oldest first; lookups scan newest -> oldest.
  std::vector<std::shared_ptr<Table>> tables_;
  uint64_t next_file_number_ = 1;
  mutable DbMetrics metrics_;
  obs::Registry* registry_ = nullptr;  // for slow-op traces; may be null
  // Declared last: deregistration (whose closures read this Db) must run
  // before any other member is torn down.
  std::vector<obs::Registration> metric_registrations_;
};

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_DB_H_

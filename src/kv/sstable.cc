#include "kv/sstable.h"

#include <algorithm>

#include "common/coding.h"

namespace sketchlink::kv {

namespace {

constexpr uint32_t kTableMagic = 0x534b4c54;  // "SKLT"
constexpr size_t kFooterSize = 8 * 5 + 4 + 4;

void AppendRecord(std::string* dst, std::string_view key,
                  std::string_view value, bool tombstone) {
  PutVarint32(dst, static_cast<uint32_t>(key.size()));
  dst->append(key);
  PutVarint32(dst,
              (static_cast<uint32_t>(value.size()) << 1) | (tombstone ? 1 : 0));
  dst->append(value);
}

}  // namespace

TableBuilder::TableBuilder(std::unique_ptr<WritableFile> file,
                           const Options& options)
    : file_(std::move(file)), options_(options) {}

Result<std::unique_ptr<TableBuilder>> TableBuilder::Open(
    const std::string& path, const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  auto file = env->NewWritableFile(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<TableBuilder>(
      new TableBuilder(std::move(*file), options));
}

Status TableBuilder::Add(std::string_view key, std::string_view value,
                         bool tombstone) {
  if (finished_) return Status::FailedPrecondition("builder finished");
  if (num_entries_ > 0 && key <= last_key_) {
    return Status::InvalidArgument("keys must be added in increasing order");
  }
  if (num_entries_ % options_.index_interval == 0) {
    index_.emplace_back(std::string(key), file_->size());
  }
  std::string record;
  record.reserve(key.size() + value.size() + 10);
  AppendRecord(&record, key, value, tombstone);
  SKETCHLINK_RETURN_IF_ERROR(file_->Append(record));
  if (options_.sstable_bloom_fp > 0) {
    keys_for_bloom_.emplace_back(key);
  }
  last_key_.assign(key);
  ++num_entries_;
  return Status::OK();
}

Status TableBuilder::Finish() {
  if (finished_) return Status::FailedPrecondition("builder finished");
  finished_ = true;

  const uint64_t index_offset = file_->size();
  std::string index_block;
  for (const auto& [key, offset] : index_) {
    PutLengthPrefixed(&index_block, key);
    PutVarint64(&index_block, offset);
  }
  SKETCHLINK_RETURN_IF_ERROR(file_->Append(index_block));

  const uint64_t bloom_offset = file_->size();
  std::string bloom_block;
  if (options_.sstable_bloom_fp > 0 && !keys_for_bloom_.empty()) {
    BloomFilter bloom = BloomFilter::WithCapacity(keys_for_bloom_.size(),
                                                  options_.sstable_bloom_fp);
    for (const std::string& key : keys_for_bloom_) bloom.Insert(key);
    bloom.EncodeTo(&bloom_block);
  }
  SKETCHLINK_RETURN_IF_ERROR(file_->Append(bloom_block));

  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index_block.size());
  PutFixed64(&footer, bloom_offset);
  PutFixed64(&footer, bloom_block.size());
  PutFixed64(&footer, num_entries_);
  PutFixed32(&footer, Crc32c(footer));
  PutFixed32(&footer, kTableMagic);
  SKETCHLINK_RETURN_IF_ERROR(file_->Append(footer));
  SKETCHLINK_RETURN_IF_ERROR(file_->Sync());
  return file_->Close();
}

Result<std::shared_ptr<Table>> Table::Open(const std::string& path,
                                           BlockCache* cache, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  auto table = std::shared_ptr<Table>(new Table());
  table->file_ = std::move(*file);
  table->cache_ = cache;

  const uint64_t size = table->file_->size();
  if (size < kFooterSize) return Status::Corruption("table too small: " + path);

  std::string footer;
  SKETCHLINK_RETURN_IF_ERROR(
      table->file_->Read(size - kFooterSize, kFooterSize, &footer));
  std::string_view fv(footer);
  uint64_t index_offset, index_size, bloom_offset, bloom_size, num_entries;
  uint32_t crc, magic;
  GetFixed64(&fv, &index_offset);
  GetFixed64(&fv, &index_size);
  GetFixed64(&fv, &bloom_offset);
  GetFixed64(&fv, &bloom_size);
  GetFixed64(&fv, &num_entries);
  GetFixed32(&fv, &crc);
  GetFixed32(&fv, &magic);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic: " + path);
  }
  if (Crc32c(std::string_view(footer).substr(0, 40)) != crc) {
    return Status::Corruption("bad footer checksum: " + path);
  }
  table->data_size_ = index_offset;
  table->num_entries_ = num_entries;

  std::string index_block;
  SKETCHLINK_RETURN_IF_ERROR(
      table->file_->Read(index_offset, index_size, &index_block));
  std::string_view iv(index_block);
  while (!iv.empty()) {
    std::string_view key;
    uint64_t offset;
    if (!GetLengthPrefixed(&iv, &key) || !GetVarint64(&iv, &offset)) {
      return Status::Corruption("bad index block: " + path);
    }
    table->index_.emplace_back(std::string(key), offset);
  }

  if (bloom_size > 0) {
    std::string bloom_block;
    SKETCHLINK_RETURN_IF_ERROR(
        table->file_->Read(bloom_offset, bloom_size, &bloom_block));
    std::string_view bv(bloom_block);
    auto bloom = BloomFilter::DecodeFrom(&bv);
    if (!bloom.ok()) return bloom.status();
    table->bloom_.emplace(std::move(*bloom));
  }

  if (!table->index_.empty()) {
    table->min_key_ = table->index_.front().first;
    // The max key requires reading the final stride; do it once at open.
    std::vector<TableEntry> tail;
    const uint64_t tail_offset = table->index_.back().second;
    std::string block;
    SKETCHLINK_RETURN_IF_ERROR(table->file_->Read(
        tail_offset, table->data_size_ - tail_offset, &block));
    SKETCHLINK_RETURN_IF_ERROR(ParseRecords(block, &tail));
    if (!tail.empty()) table->max_key_ = tail.back().key;
  }
  return table;
}

Status Table::ParseRecords(std::string_view block,
                           std::vector<TableEntry>* out) {
  while (!block.empty()) {
    uint32_t klen;
    if (!GetVarint32(&block, &klen) || block.size() < klen) {
      return Status::Corruption("bad record key");
    }
    TableEntry entry;
    entry.key.assign(block.substr(0, klen));
    block.remove_prefix(klen);
    uint32_t vtag;
    if (!GetVarint32(&block, &vtag)) {
      return Status::Corruption("bad record value tag");
    }
    const uint32_t vlen = vtag >> 1;
    entry.tombstone = (vtag & 1) != 0;
    if (block.size() < vlen) return Status::Corruption("bad record value");
    entry.value.assign(block.substr(0, vlen));
    block.remove_prefix(vlen);
    out->push_back(std::move(entry));
  }
  return Status::OK();
}

Result<Table::LookupState> Table::Get(std::string_view key,
                                      std::string* value) const {
  if (index_.empty()) return LookupState::kAbsent;
  if (DefinitelyAbsent(key)) return LookupState::kAbsent;

  // Binary search for the last index entry with first_key <= key.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::string_view k, const auto& entry) { return k < entry.first; });
  if (it == index_.begin()) return LookupState::kAbsent;
  --it;
  const uint64_t begin = it->second;
  const uint64_t end =
      (std::next(it) == index_.end()) ? data_size_ : std::next(it)->second;

  std::string block;
  SKETCHLINK_RETURN_IF_ERROR(ReadDataRange(begin, end, &block));
  std::vector<TableEntry> entries;
  SKETCHLINK_RETURN_IF_ERROR(ParseRecords(block, &entries));
  for (const TableEntry& entry : entries) {
    if (entry.key == key) {
      if (entry.tombstone) return LookupState::kDeleted;
      *value = entry.value;
      return LookupState::kFound;
    }
    if (entry.key > key) break;  // records are sorted
  }
  return LookupState::kAbsent;
}

Status Table::ReadDataRange(uint64_t begin, uint64_t end,
                            std::string* out) const {
  if (cache_ == nullptr) {
    return file_->Read(begin, end - begin, out);
  }
  std::string key = file_->path();
  key.push_back('@');
  key.append(std::to_string(begin));
  if (cache_->Lookup(key, out)) return Status::OK();
  SKETCHLINK_RETURN_IF_ERROR(file_->Read(begin, end - begin, out));
  cache_->Insert(key, *out);
  return Status::OK();
}

Status Table::Scan(std::vector<TableEntry>* out) const {
  std::string data;
  SKETCHLINK_RETURN_IF_ERROR(file_->Read(0, data_size_, &data));
  return ParseRecords(data, out);
}

namespace {

// Stride-buffered cursor: holds the decoded entries of one sparse-index
// stride; crossing the stride boundary loads the next range (through the
// table's block cache when attached).
class TableIterator : public Iterator {
 public:
  explicit TableIterator(std::shared_ptr<const Table> table,
                         const std::vector<std::pair<std::string, uint64_t>>&
                             index,
                         uint64_t data_size)
      : table_(std::move(table)), index_(index), data_size_(data_size) {}

  bool Valid() const override {
    return status_.ok() && pos_ < entries_.size();
  }

  void SeekToFirst() override {
    status_ = Status::OK();
    LoadStride(0);
    pos_ = 0;
  }

  void Seek(std::string_view target) override {
    status_ = Status::OK();
    if (index_.empty()) {
      entries_.clear();
      pos_ = 0;
      return;
    }
    // Last stride whose first key <= target (or the first stride when the
    // target precedes everything).
    auto it = std::upper_bound(
        index_.begin(), index_.end(), target,
        [](std::string_view k, const auto& e) { return k < e.first; });
    size_t stride =
        (it == index_.begin())
            ? 0
            : static_cast<size_t>(std::distance(index_.begin(), it)) - 1;
    LoadStride(stride);
    pos_ = 0;
    while (status_.ok()) {
      while (pos_ < entries_.size() && entries_[pos_].key < target) ++pos_;
      if (pos_ < entries_.size() || stride + 1 >= index_.size()) break;
      LoadStride(++stride);
      pos_ = 0;
    }
  }

  void Next() override {
    ++pos_;
    if (pos_ >= entries_.size() && status_.ok() &&
        stride_ + 1 < index_.size()) {
      LoadStride(stride_ + 1);
      pos_ = 0;
    }
  }

  std::string_view key() const override { return entries_[pos_].key; }
  std::string_view value() const override { return entries_[pos_].value; }
  bool tombstone() const override { return entries_[pos_].tombstone; }
  Status status() const override { return status_; }

 private:
  void LoadStride(size_t stride) {
    stride_ = stride;
    entries_.clear();
    if (stride >= index_.size()) return;
    const uint64_t begin = index_[stride].second;
    const uint64_t end =
        (stride + 1 < index_.size()) ? index_[stride + 1].second : data_size_;
    std::string block;
    Status status = table_->ReadDataRangeForIterator(begin, end, &block);
    if (!status.ok()) {
      status_ = status;
      return;
    }
    status_ = Table::ParseRecords(block, &entries_);
  }

  std::shared_ptr<const Table> table_;
  const std::vector<std::pair<std::string, uint64_t>>& index_;
  uint64_t data_size_;
  size_t stride_ = 0;
  size_t pos_ = 0;
  std::vector<TableEntry> entries_;
  Status status_;
};

}  // namespace

Status Table::ReadDataRangeForIterator(uint64_t begin, uint64_t end,
                                       std::string* out) const {
  return ReadDataRange(begin, end, out);
}

std::unique_ptr<Iterator> Table::NewIterator() const {
  return std::make_unique<TableIterator>(shared_from_this(), index_,
                                         data_size_);
}

size_t Table::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, offset] : index_) {
    bytes += sizeof(key) + key.capacity() + sizeof(offset);
  }
  if (bloom_.has_value()) bytes += bloom_->ApproximateMemoryUsage();
  return bytes;
}

}  // namespace sketchlink::kv

#include "kv/fault_injection_env.h"

#include <filesystem>
#include <system_error>
#include <utility>

namespace sketchlink::kv {

namespace fs = std::filesystem;

std::string_view IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kOpenWritable: return "open-writable";
    case IoOp::kAppend: return "append";
    case IoOp::kFlush: return "flush";
    case IoOp::kSync: return "sync";
    case IoOp::kClose: return "close";
    case IoOp::kOpenRandomAccess: return "open-random-access";
    case IoOp::kRead: return "read";
    case IoOp::kRename: return "rename";
    case IoOp::kRemove: return "remove";
    case IoOp::kCreateDir: return "create-dir";
  }
  return "unknown";
}

bool FaultInjectionEnv::IsMutating(IoOp op) {
  switch (op) {
    case IoOp::kOpenWritable:
    case IoOp::kAppend:
    case IoOp::kFlush:
    case IoOp::kSync:
    case IoOp::kClose:
    case IoOp::kRename:
    case IoOp::kRemove:
    case IoOp::kCreateDir:
      return true;
    case IoOp::kOpenRandomAccess:
    case IoOp::kRead:
      return false;
  }
  return false;
}

/// Writable file that routes every call through the env's fault machinery.
/// Tracks itself by id so sync state follows the file through renames.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, uint64_t id,
                    std::unique_ptr<WritableFile> base)
      : env_(env), id_(id), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    // Only the call that hits the fault/crash point tears; once the disk
    // is frozen, later appends must leave no trace at all.
    const bool was_crashed = env_->crashed();
    const Status fault = env_->CheckOp(IoOp::kAppend);
    if (!fault.ok()) {
      if (!was_crashed && env_->partial_appends() && data.size() > 1) {
        // Torn write: half the payload lands before the "crash".
        (void)base_->Append(data.substr(0, data.size() / 2));
      }
      return fault;
    }
    return base_->Append(data);
  }

  Status Flush() override {
    SKETCHLINK_RETURN_IF_ERROR(env_->CheckOp(IoOp::kFlush));
    return base_->Flush();
  }

  Status Sync() override {
    SKETCHLINK_RETURN_IF_ERROR(env_->CheckOp(IoOp::kSync));
    SKETCHLINK_RETURN_IF_ERROR(base_->Sync());
    env_->NoteSynced(id_, base_->size());
    return Status::OK();
  }

  Status Close() override {
    SKETCHLINK_RETURN_IF_ERROR(env_->CheckOp(IoOp::kClose));
    return base_->Close();
  }

  uint64_t size() const override { return base_->size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  FaultInjectionEnv* const env_;
  const uint64_t id_;
  std::unique_ptr<WritableFile> base_;
};

/// Read-side counterpart: lets tests fail the Nth positional read.
class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t length,
              std::string* out) const override {
    SKETCHLINK_RETURN_IF_ERROR(env_->CheckOp(IoOp::kRead));
    return base_->Read(offset, length, out);
  }

  uint64_t size() const override { return base_->size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  FaultInjectionEnv* const env_;
  std::unique_ptr<RandomAccessFile> base_;
};

void FaultInjectionEnv::FailNth(IoOp op, uint64_t nth, Status status) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.push_back(ScheduledFault{op, nth, std::move(status)});
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.clear();
}

void FaultInjectionEnv::set_partial_appends(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  partial_appends_ = on;
}

bool FaultInjectionEnv::partial_appends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return partial_appends_;
}

void FaultInjectionEnv::CrashAfter(uint64_t budget) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_armed_ = true;
  crashed_ = false;
  crash_budget_ = budget;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void FaultInjectionEnv::ClearCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_armed_ = false;
  crashed_ = false;
  crash_budget_ = 0;
}

uint64_t FaultInjectionEnv::mutating_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mutating_ops_;
}

Status FaultInjectionEnv::CheckOp(IoOp op) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (IsMutating(op)) {
    ++mutating_ops_;
    if (crashed_) {
      return Status::IOError("crash point tripped (" +
                             std::string(IoOpName(op)) + ")");
    }
    if (crash_armed_) {
      if (crash_budget_ == 0) {
        crashed_ = true;
        return Status::IOError("crash point tripped (" +
                               std::string(IoOpName(op)) + ")");
      }
      --crash_budget_;
    }
  }
  Status result;
  for (auto it = faults_.begin(); it != faults_.end();) {
    if (it->op != op) {
      ++it;
      continue;
    }
    if (it->remaining == 0 && result.ok()) {
      result = std::move(it->status);
      it = faults_.erase(it);
    } else {
      if (it->remaining > 0) --it->remaining;
      ++it;
    }
  }
  return result;
}

void FaultInjectionEnv::NoteSynced(uint64_t id, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it != files_.end()) it->second.synced = bytes;
}

Status FaultInjectionEnv::DropUnsyncedWrites() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, state] : files_) {
    std::error_code ec;
    const uint64_t on_disk = fs::file_size(state.path, ec);
    if (ec) continue;  // already gone: nothing survived to truncate
    if (on_disk > state.synced) {
      fs::resize_file(state.path, state.synced, ec);
      if (ec) {
        return Status::IOError("truncate " + state.path + ": " + ec.message());
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  SKETCHLINK_RETURN_IF_ERROR(CheckOp(IoOp::kOpenWritable));
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The open truncated `path`: older generations tracking the same path
    // are obsolete.
    for (auto it = files_.begin(); it != files_.end();) {
      it = it->second.path == path ? files_.erase(it) : std::next(it);
    }
    id = next_file_id_++;
    files_[id] = TrackedFile{path, 0};
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, id, std::move(*base)));
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path) {
  SKETCHLINK_RETURN_IF_ERROR(CheckOp(IoOp::kOpenRandomAccess));
  auto base = base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      new FaultRandomAccessFile(this, std::move(*base)));
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  SKETCHLINK_RETURN_IF_ERROR(CheckOp(IoOp::kCreateDir));
  return base_->CreateDirIfMissing(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  SKETCHLINK_RETURN_IF_ERROR(CheckOp(IoOp::kRemove));
  SKETCHLINK_RETURN_IF_ERROR(base_->RemoveFile(path));
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = files_.begin(); it != files_.end();) {
    it = it->second.path == path ? files_.erase(it) : std::next(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  SKETCHLINK_RETURN_IF_ERROR(CheckOp(IoOp::kRename));
  SKETCHLINK_RETURN_IF_ERROR(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mutex_);
  // The destination's old content is gone; sync state follows the source
  // (the renamed inode may still be open and syncing under its old path).
  for (auto it = files_.begin(); it != files_.end();) {
    it = it->second.path == to ? files_.erase(it) : std::next(it);
  }
  for (auto& [id, state] : files_) {
    if (state.path == from) state.path = to;
  }
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultInjectionEnv::RemoveDirRecursively(const std::string& path) {
  return base_->RemoveDirRecursively(path);
}

}  // namespace sketchlink::kv

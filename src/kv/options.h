#ifndef SKETCHLINK_KV_OPTIONS_H_
#define SKETCHLINK_KV_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sketchlink::obs {
class Registry;
}  // namespace sketchlink::obs

namespace sketchlink::kv {

class Env;

/// Tuning knobs for the embedded key/value store. Defaults are sized for the
/// scaled-down experiments in this repository (single core, small heap).
struct Options {
  /// File system the store runs on; nullptr means Env::Default() (POSIX).
  /// Tests plug in a FaultInjectionEnv to script I/O failures. Not owned;
  /// must outlive the Db.
  Env* env = nullptr;
  /// Memtable is flushed to an SSTable once it holds this many bytes of
  /// key+value payload.
  size_t memtable_bytes = 4 << 20;  // 4 MiB

  /// Sparse-index stride: one index entry per this many data records.
  size_t index_interval = 16;

  /// Per-SSTable Bloom filter false-positive rate (0 disables the filter).
  double sstable_bloom_fp = 0.01;

  /// Merge all sorted runs into one when their count reaches this threshold
  /// (size-tiered compaction trigger).
  size_t compaction_trigger = 6;

  /// Byte budget of the shared LRU block cache serving SSTable reads
  /// (0 disables caching).
  size_t block_cache_bytes = 4 << 20;  // 4 MiB

  /// fsync WAL appends (off by default, matching LevelDB's default).
  bool sync_writes = false;

  /// Create the database directory if it does not exist.
  bool create_if_missing = true;

  /// Escape hatch for damaged logs: when true, WAL replay stops at the
  /// first bad frame and recovers the prefix instead of failing the open.
  /// Off by default — a checksum-corrupt record whose frame is fully
  /// present on disk is bit rot, not a torn write, and is surfaced as
  /// Corruption.
  bool best_effort_wal_recovery = false;

  /// Metric registry the store reports into (counters, flush/compaction
  /// latency, WAL activity, memory gauges). nullptr leaves the store
  /// unregistered: counters still count (relaxed atomics), but no latency
  /// timing happens and nothing is exported. Not owned; must outlive the Db.
  obs::Registry* registry = nullptr;

  /// Value of the `instance` label the store's metrics are registered under
  /// (distinguishes several stores sharing one registry).
  std::string metrics_instance = "kv";
};

/// Counters exposed by DB::stats() for the benchmark harness.
struct DbStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t memtable_hits = 0;
  uint64_t sstable_reads = 0;   // lookups that touched at least one SSTable
  uint64_t bloom_skips = 0;     // SSTables skipped by their Bloom filter
  uint64_t flushes = 0;
  uint64_t compactions = 0;
};

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_OPTIONS_H_

#ifndef SKETCHLINK_KV_MEMTABLE_H_
#define SKETCHLINK_KV_MEMTABLE_H_

#include <memory>
#include <string>

#include "common/memory_tracker.h"
#include "kv/iterator.h"
#include "skiplist/skip_list.h"

namespace sketchlink::kv {

/// Value stored in the memtable: either a live value or a tombstone that
/// shadows older SSTable versions of the key.
struct MemValue {
  bool tombstone = false;
  std::string value;
};

/// In-memory write buffer of the key/value store: a skip list from key to
/// MemValue, with byte accounting to drive flush decisions.
class MemTable {
 public:
  explicit MemTable(uint64_t seed = 0xbeefULL) : table_(seed) {}

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts or overwrites `key`.
  void Put(const std::string& key, const std::string& value) {
    AccountBytes(key, value.size());
    table_.InsertOrAssign(key, MemValue{false, value});
  }

  /// Records a deletion of `key`.
  void Delete(const std::string& key) {
    AccountBytes(key, 0);
    table_.InsertOrAssign(key, MemValue{true, {}});
  }

  /// Lookup result: found (live or tombstone) vs absent.
  enum class LookupState { kFound, kDeleted, kAbsent };

  LookupState Get(const std::string& key, std::string* value) const {
    const auto* node = table_.Find(key);
    if (node == nullptr) return LookupState::kAbsent;
    if (node->value.tombstone) return LookupState::kDeleted;
    *value = node->value.value;
    return LookupState::kFound;
  }

  /// Number of distinct keys (live + tombstones).
  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }

  /// Approximate payload bytes buffered (drives flush).
  size_t payload_bytes() const { return payload_bytes_; }

  /// Drops all buffered entries (after a flush made them durable).
  void Clear() {
    table_.Clear();
    payload_bytes_ = 0;
  }

  using Table = SkipList<std::string, MemValue>;
  Table::Iterator NewIterator() const { return table_.NewIterator(); }

  /// Polymorphic cursor over the memtable (tombstones surfaced), for the
  /// merging iterator. Invalidated by writes; the memtable must outlive it.
  std::unique_ptr<Iterator> NewKvIterator() const;

  size_t ApproximateMemoryUsage() const {
    return table_.ApproximateNodeMemory() + payload_bytes_;
  }

 private:
  void AccountBytes(const std::string& key, size_t value_size) {
    payload_bytes_ += key.size() + value_size + 16;  // + node overhead guess
  }

  Table table_;
  size_t payload_bytes_ = 0;
};

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_MEMTABLE_H_

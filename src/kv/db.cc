#include "kv/db.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/coding.h"
#include "kv/merging_iterator.h"
#include "obs/spans.h"

namespace sketchlink::kv {

namespace {

constexpr uint32_t kManifestMagic = 0x534b4c4d;  // "SKLM"

}  // namespace

Db::~Db() {
  if (wal_ != nullptr) {
    (void)wal_->Sync();
    (void)wal_->Close();
  }
}

std::string Db::TableFileName(uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06" PRIu64 ".sst", number);
  return path_ + "/" + buf;
}

std::string Db::WalFileName() const { return path_ + "/wal.log"; }

std::string Db::ManifestFileName() const { return path_ + "/MANIFEST"; }

Result<std::unique_ptr<Db>> Db::Open(const std::string& path,
                                     const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (options.create_if_missing) {
    SKETCHLINK_RETURN_IF_ERROR(env->CreateDirIfMissing(path));
  } else if (!env->FileExists(path)) {
    return Status::NotFound("database directory missing: " + path);
  }
  auto db = std::unique_ptr<Db>(new Db(path, options));
  if (options.block_cache_bytes > 0) {
    db->block_cache_ = std::make_unique<BlockCache>(options.block_cache_bytes);
  }
  SKETCHLINK_RETURN_IF_ERROR(db->Recover());
  if (options.registry != nullptr) {
    db->RegisterMetrics(options.registry, options.metrics_instance);
  }
  return db;
}

void Db::RegisterMetrics(obs::Registry* registry, const std::string& instance) {
  if (registry == nullptr) return;
  registry_ = registry;
  if (registry->enabled()) {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.timing_enabled = true;
  }
  auto& regs = metric_registrations_;
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"instance", instance}};
  const auto add_counter = [&](const char* name, const char* help,
                               const obs::Counter* counter) {
    regs.push_back(
        registry->AddCounter(obs::MetricId(name, help, labels), counter));
  };
  add_counter("sketchlink_kv_puts_total", "Put operations", &metrics_.puts);
  add_counter("sketchlink_kv_gets_total", "Get operations", &metrics_.gets);
  add_counter("sketchlink_kv_deletes_total", "Delete operations",
              &metrics_.deletes);
  add_counter("sketchlink_kv_memtable_hits_total",
              "Lookups answered by the memtable", &metrics_.memtable_hits);
  add_counter("sketchlink_kv_sstable_reads_total",
              "Lookups that touched at least one SSTable",
              &metrics_.sstable_reads);
  add_counter("sketchlink_kv_bloom_skips_total",
              "SSTables skipped by their Bloom filter", &metrics_.bloom_skips);
  add_counter("sketchlink_kv_flushes_total", "Memtable flushes",
              &metrics_.flushes);
  add_counter("sketchlink_kv_compactions_total", "Full merges of sorted runs",
              &metrics_.compactions);
  add_counter("sketchlink_kv_wal_appends_total",
              "Records appended to the write-ahead log",
              &metrics_.wal_appends);
  add_counter("sketchlink_kv_wal_rotations_total",
              "Successful write-ahead log rotations",
              &metrics_.wal_rotations);
  add_counter("sketchlink_kv_wal_syncs_total",
              "fsyncs issued on the write-ahead log", &metrics_.wal_syncs);
  add_counter("sketchlink_kv_flush_bytes_total",
              "Key+value payload flushed to sorted runs",
              &metrics_.flush_bytes);
  add_counter("sketchlink_kv_compaction_bytes_total",
              "Key+value payload rewritten by compactions",
              &metrics_.compaction_bytes);
  regs.push_back(registry->AddHistogram(
      obs::MetricId("sketchlink_kv_flush_duration_nanos",
                    "Memtable flush duration", labels),
      &metrics_.flush_duration_nanos));
  regs.push_back(registry->AddHistogram(
      obs::MetricId("sketchlink_kv_compaction_duration_nanos",
                    "Compaction duration", labels),
      &metrics_.compaction_duration_nanos));
  regs.push_back(registry->AddCallbackGauge(
      obs::MetricId("sketchlink_kv_tables", "Sorted runs on disk", labels),
      [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return static_cast<double>(tables_.size());
      }));
  regs.push_back(registry->AddCallbackGauge(
      obs::MetricId("sketchlink_kv_memtable_bytes",
                    "Key+value payload buffered in the memtable", labels),
      [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return static_cast<double>(mem_.payload_bytes());
      }));
  regs.push_back(registry->AddCallbackGauge(
      obs::MetricId("sketchlink_kv_memory_bytes",
                    "Approximate in-memory footprint", labels),
      [this] { return static_cast<double>(ApproximateMemoryUsage()); }));
}

Status Db::Recover() {
  // 1. Manifest -> table list.
  if (env_->FileExists(ManifestFileName())) {
    std::string manifest;
    SKETCHLINK_RETURN_IF_ERROR(
        env_->ReadFileToString(ManifestFileName(), &manifest));
    if (manifest.size() < 8) return Status::Corruption("manifest too small");
    std::string_view body(manifest.data(), manifest.size() - 8);
    std::string_view tail(manifest.data() + manifest.size() - 8, 8);
    uint32_t crc, magic;
    GetFixed32(&tail, &crc);
    GetFixed32(&tail, &magic);
    if (magic != kManifestMagic || Crc32c(body) != crc) {
      return Status::Corruption("bad manifest checksum");
    }
    std::string_view input = body;
    uint64_t next_number;
    uint32_t count;
    if (!GetVarint64(&input, &next_number) || !GetVarint32(&input, &count)) {
      return Status::Corruption("bad manifest header");
    }
    next_file_number_ = next_number;
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view name;
      if (!GetLengthPrefixed(&input, &name)) {
        return Status::Corruption("bad manifest entry");
      }
      auto table = Table::Open(path_ + "/" + std::string(name),
                               block_cache_.get(), env_);
      if (!table.ok()) return table.status();
      tables_.push_back(std::move(*table));
    }
  }

  // 2. Sweep .sst files the manifest never adopted: a crash between writing
  // a run and committing the manifest leaves an orphan whose number may be
  // reused. Best effort — an undeletable orphan is only wasted space.
  if (auto listing = env_->ListDir(path_); listing.ok()) {
    for (const std::string& name : *listing) {
      if (name.size() < 4 || name.substr(name.size() - 4) != ".sst") continue;
      const std::string full = path_ + "/" + name;
      const bool live = std::any_of(
          tables_.begin(), tables_.end(),
          [&](const auto& table) { return table->path() == full; });
      if (!live) (void)env_->RemoveFile(full);
    }
  }

  // 3. Replay the WAL into a fresh memtable.
  if (env_->FileExists(WalFileName())) {
    auto records =
        ReadWal(WalFileName(), env_, options_.best_effort_wal_recovery);
    if (!records.ok()) return records.status();
    for (const WalRecord& record : *records) {
      SKETCHLINK_RETURN_IF_ERROR(ApplyToMemtable(record));
    }
  }

  // 4. Re-open the WAL for appending. Re-writing the replayed records keeps
  // the implementation simple (single WAL segment) at the cost of one
  // rewrite on recovery.
  return RotateWalLocked();
}

Status Db::RotateWalLocked() {
  if (wal_ != nullptr) (void)wal_->Close();
  wal_ = nullptr;
  auto rotate = [&]() -> Status {
    const std::string tmp = WalFileName() + ".new";
    auto wal = WalWriter::Open(tmp, options_.sync_writes, env_);
    if (!wal.ok()) return wal.status();
    for (auto it = mem_.NewIterator(); it.Valid(); it.Next()) {
      if (it.value().tombstone) {
        SKETCHLINK_RETURN_IF_ERROR((*wal)->AppendDelete(it.key()));
      } else {
        SKETCHLINK_RETURN_IF_ERROR(
            (*wal)->AppendPut(it.key(), it.value().value));
      }
      metrics_.wal_appends.Inc();
    }
    SKETCHLINK_RETURN_IF_ERROR((*wal)->Sync());
    metrics_.wal_syncs.Inc();
    // The writer keeps its handle across the rename: appends land in the
    // newly-named live log.
    SKETCHLINK_RETURN_IF_ERROR(env_->RenameFile(tmp, WalFileName()));
    wal_ = std::move(*wal);
    return Status::OK();
  };
  wal_status_ = rotate();
  if (wal_status_.ok()) metrics_.wal_rotations.Inc();
  return wal_status_;
}

Status Db::EnsureWalLocked() {
  if (wal_status_.ok() && wal_ != nullptr) return Status::OK();
  return RotateWalLocked();
}

Status Db::ApplyToMemtable(const WalRecord& record) {
  if (record.op == WalRecord::Op::kPut) {
    mem_.Put(record.key, record.value);
  } else {
    mem_.Delete(record.key);
  }
  return Status::OK();
}

Status Db::WriteManifest() {
  std::string body;
  PutVarint64(&body, next_file_number_);
  PutVarint32(&body, static_cast<uint32_t>(tables_.size()));
  for (const auto& table : tables_) {
    const std::string& path = table->path();
    const size_t slash = path.find_last_of('/');
    PutLengthPrefixed(&body,
                      slash == std::string::npos ? path
                                                 : path.substr(slash + 1));
  }
  std::string file = body;
  PutFixed32(&file, Crc32c(body));
  PutFixed32(&file, kManifestMagic);
  return env_->WriteStringToFileSync(ManifestFileName(), file);
}

Status Db::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  {
    obs::Span span("kv", "wal_append");
    Status status = EnsureWalLocked();
    if (status.ok()) status = wal_->AppendPut(key, value);
    if (!status.ok()) {
      span.MarkError();
      return status;
    }
  }
  metrics_.wal_appends.Inc();
  if (options_.sync_writes) metrics_.wal_syncs.Inc();
  mem_.Put(std::string(key), std::string(value));
  metrics_.puts.Inc();
  return MaybeFlushAndCompactLocked();
}

Status Db::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  {
    obs::Span span("kv", "wal_append");
    Status status = EnsureWalLocked();
    if (status.ok()) status = wal_->AppendDelete(key);
    if (!status.ok()) {
      span.MarkError();
      return status;
    }
  }
  metrics_.wal_appends.Inc();
  if (options_.sync_writes) metrics_.wal_syncs.Inc();
  mem_.Delete(std::string(key));
  metrics_.deletes.Inc();
  return MaybeFlushAndCompactLocked();
}

Status Db::MaybeFlushAndCompactLocked() {
  if (mem_.payload_bytes() >= options_.memtable_bytes) {
    SKETCHLINK_RETURN_IF_ERROR(FlushLocked());
    SKETCHLINK_RETURN_IF_ERROR(CompactLocked(false));
  }
  return Status::OK();
}

Status Db::Get(std::string_view key, std::string* value) {
  obs::Span span("kv", "get");
  std::lock_guard<std::mutex> lock(mutex_);
  return GetLocked(key, value);
}

Status Db::GetLocked(std::string_view key, std::string* value) {
  metrics_.gets.Inc();
  const std::string k(key);
  switch (mem_.Get(k, value)) {
    case MemTable::LookupState::kFound:
      metrics_.memtable_hits.Inc();
      return Status::OK();
    case MemTable::LookupState::kDeleted:
      return Status::NotFound(k);
    case MemTable::LookupState::kAbsent:
      break;
  }
  // Newest run first: the most recent version of a key wins.
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    if ((*it)->DefinitelyAbsent(key)) {
      metrics_.bloom_skips.Inc();
      continue;
    }
    metrics_.sstable_reads.Inc();
    auto state = (*it)->Get(key, value);
    if (!state.ok()) return state.status();
    if (*state == Table::LookupState::kFound) return Status::OK();
    if (*state == Table::LookupState::kDeleted) return Status::NotFound(k);
  }
  return Status::NotFound(k);
}

bool Db::Contains(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string scratch;
  return GetLocked(key, &scratch).ok();
}

Status Db::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mem_.empty()) return Status::OK();
  return FlushLocked();
}

Status Db::FlushLocked() {
  obs::Span span("kv", "flush");
  obs::LatencyTimer timer(
      metrics_.timing_enabled ? &metrics_.flush_duration_nanos : nullptr);
  const uint64_t number = next_file_number_++;
  const std::string table_path = TableFileName(number);
  auto builder = TableBuilder::Open(table_path, options_);
  if (!builder.ok()) return builder.status();
  for (auto it = mem_.NewIterator(); it.Valid(); it.Next()) {
    SKETCHLINK_RETURN_IF_ERROR(
        (*builder)->Add(it.key(), it.value().value, it.value().tombstone));
  }
  SKETCHLINK_RETURN_IF_ERROR((*builder)->Finish());
  auto table = Table::Open(table_path, block_cache_.get(), env_);
  if (!table.ok()) return table.status();
  tables_.push_back(std::move(*table));
  SKETCHLINK_RETURN_IF_ERROR(WriteManifest());

  // Reset the memtable + WAL: everything buffered is now durable in the run.
  // A failed rotation poisons the write path (the flushed data itself is
  // safe) until EnsureWalLocked heals it.
  metrics_.flush_bytes.Add(mem_.payload_bytes());
  mem_.Clear();
  metrics_.flushes.Inc();
  const Status rotated = RotateWalLocked();
  if (registry_ != nullptr) registry_->TraceSlow("kv", "flush", timer.Stop());
  return rotated;
}

Status Db::Compact(bool force) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CompactLocked(force);
}

Status Db::CompactLocked(bool force) {
  if (!force && tables_.size() < options_.compaction_trigger) {
    return Status::OK();
  }
  if (tables_.size() <= 1) return Status::OK();

  obs::Span span("kv", "compact");
  obs::LatencyTimer timer(
      metrics_.timing_enabled ? &metrics_.compaction_duration_nanos : nullptr);

  // Stream a merge of all runs (newest first) straight into the builder —
  // no materialized map, so compaction memory is O(stride), not O(data).
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(tables_.size());
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    children.push_back((*it)->NewIterator());
  }
  auto merged = NewMergingIterator(std::move(children));

  const uint64_t number = next_file_number_++;
  const std::string table_path = TableFileName(number);
  auto builder = TableBuilder::Open(table_path, options_);
  if (!builder.ok()) return builder.status();
  uint64_t rewritten_bytes = 0;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    // The merged output is the only (hence oldest) run: tombstones have
    // nothing left to shadow and can be dropped.
    if (merged->tombstone()) continue;
    rewritten_bytes += merged->key().size() + merged->value().size();
    SKETCHLINK_RETURN_IF_ERROR(
        (*builder)->Add(merged->key(), merged->value(), false));
  }
  SKETCHLINK_RETURN_IF_ERROR(merged->status());
  SKETCHLINK_RETURN_IF_ERROR((*builder)->Finish());

  auto table = Table::Open(table_path, block_cache_.get(), env_);
  if (!table.ok()) return table.status();

  std::vector<std::string> obsolete;
  obsolete.reserve(tables_.size());
  for (const auto& old_table : tables_) obsolete.push_back(old_table->path());
  tables_.clear();
  tables_.push_back(std::move(*table));
  SKETCHLINK_RETURN_IF_ERROR(WriteManifest());
  for (const std::string& old_path : obsolete) {
    // Best effort; manifest no longer refs them, and recovery re-sweeps.
    (void)env_->RemoveFile(old_path);
    if (block_cache_ != nullptr) block_cache_->EraseByPrefix(old_path + "@");
  }
  metrics_.compaction_bytes.Add(rewritten_bytes);
  metrics_.compactions.Inc();
  if (registry_ != nullptr) {
    registry_->TraceSlow("kv", "compact", timer.Stop());
  }
  return Status::OK();
}

namespace {

// DB-level cursor: merged view with tombstones suppressed.
class DbIterator : public Iterator {
 public:
  explicit DbIterator(std::unique_ptr<Iterator> merged)
      : merged_(std::move(merged)) {}

  bool Valid() const override { return merged_->Valid(); }
  void SeekToFirst() override {
    merged_->SeekToFirst();
    SkipTombstones();
  }
  void Seek(std::string_view target) override {
    merged_->Seek(target);
    SkipTombstones();
  }
  void Next() override {
    merged_->Next();
    SkipTombstones();
  }
  std::string_view key() const override { return merged_->key(); }
  std::string_view value() const override { return merged_->value(); }
  bool tombstone() const override { return false; }
  Status status() const override { return merged_->status(); }

 private:
  void SkipTombstones() {
    while (merged_->Valid() && merged_->tombstone()) {
      merged_->Next();
    }
  }

  std::unique_ptr<Iterator> merged_;
};

}  // namespace

std::unique_ptr<Iterator> Db::NewIterator() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return NewIteratorLocked();
}

std::unique_ptr<Iterator> Db::NewIteratorLocked() const {
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(tables_.size() + 1);
  children.push_back(mem_.NewKvIterator());  // newest layer first
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    children.push_back((*it)->NewIterator());
  }
  return std::make_unique<DbIterator>(NewMergingIterator(std::move(children)));
}

Result<std::vector<TableEntry>> Db::ScanAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TableEntry> out;
  auto it = NewIteratorLocked();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.push_back(TableEntry{std::string(it->key()),
                             std::string(it->value()), false});
  }
  SKETCHLINK_RETURN_IF_ERROR(it->status());
  return out;
}

Result<std::vector<TableEntry>> Db::ScanPrefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TableEntry> out;
  auto it = NewIteratorLocked();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    const std::string_view key = it->key();
    if (key.size() < prefix.size() ||
        key.substr(0, prefix.size()) != prefix) {
      break;  // sorted order: past the prefix range
    }
    out.push_back(TableEntry{std::string(key), std::string(it->value()),
                             false});
  }
  SKETCHLINK_RETURN_IF_ERROR(it->status());
  return out;
}

size_t Db::ApproximateMemoryUsage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = sizeof(*this) + mem_.ApproximateMemoryUsage();
  for (const auto& table : tables_) bytes += table->ApproximateMemoryUsage();
  return bytes;
}

}  // namespace sketchlink::kv

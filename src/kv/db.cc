#include "kv/db.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/coding.h"
#include "kv/merging_iterator.h"

namespace sketchlink::kv {

namespace {

constexpr uint32_t kManifestMagic = 0x534b4c4d;  // "SKLM"

}  // namespace

Db::~Db() {
  if (wal_ != nullptr) {
    (void)wal_->Sync();
    (void)wal_->Close();
  }
}

std::string Db::TableFileName(uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06" PRIu64 ".sst", number);
  return path_ + "/" + buf;
}

std::string Db::WalFileName() const { return path_ + "/wal.log"; }

std::string Db::ManifestFileName() const { return path_ + "/MANIFEST"; }

Result<std::unique_ptr<Db>> Db::Open(const std::string& path,
                                     const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (options.create_if_missing) {
    SKETCHLINK_RETURN_IF_ERROR(env->CreateDirIfMissing(path));
  } else if (!env->FileExists(path)) {
    return Status::NotFound("database directory missing: " + path);
  }
  auto db = std::unique_ptr<Db>(new Db(path, options));
  if (options.block_cache_bytes > 0) {
    db->block_cache_ = std::make_unique<BlockCache>(options.block_cache_bytes);
  }
  SKETCHLINK_RETURN_IF_ERROR(db->Recover());
  return db;
}

Status Db::Recover() {
  // 1. Manifest -> table list.
  if (env_->FileExists(ManifestFileName())) {
    std::string manifest;
    SKETCHLINK_RETURN_IF_ERROR(
        env_->ReadFileToString(ManifestFileName(), &manifest));
    if (manifest.size() < 8) return Status::Corruption("manifest too small");
    std::string_view body(manifest.data(), manifest.size() - 8);
    std::string_view tail(manifest.data() + manifest.size() - 8, 8);
    uint32_t crc, magic;
    GetFixed32(&tail, &crc);
    GetFixed32(&tail, &magic);
    if (magic != kManifestMagic || Crc32c(body) != crc) {
      return Status::Corruption("bad manifest checksum");
    }
    std::string_view input = body;
    uint64_t next_number;
    uint32_t count;
    if (!GetVarint64(&input, &next_number) || !GetVarint32(&input, &count)) {
      return Status::Corruption("bad manifest header");
    }
    next_file_number_ = next_number;
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view name;
      if (!GetLengthPrefixed(&input, &name)) {
        return Status::Corruption("bad manifest entry");
      }
      auto table = Table::Open(path_ + "/" + std::string(name),
                               block_cache_.get(), env_);
      if (!table.ok()) return table.status();
      tables_.push_back(std::move(*table));
    }
  }

  // 2. Sweep .sst files the manifest never adopted: a crash between writing
  // a run and committing the manifest leaves an orphan whose number may be
  // reused. Best effort — an undeletable orphan is only wasted space.
  if (auto listing = env_->ListDir(path_); listing.ok()) {
    for (const std::string& name : *listing) {
      if (name.size() < 4 || name.substr(name.size() - 4) != ".sst") continue;
      const std::string full = path_ + "/" + name;
      const bool live = std::any_of(
          tables_.begin(), tables_.end(),
          [&](const auto& table) { return table->path() == full; });
      if (!live) (void)env_->RemoveFile(full);
    }
  }

  // 3. Replay the WAL into a fresh memtable.
  if (env_->FileExists(WalFileName())) {
    auto records =
        ReadWal(WalFileName(), env_, options_.best_effort_wal_recovery);
    if (!records.ok()) return records.status();
    for (const WalRecord& record : *records) {
      SKETCHLINK_RETURN_IF_ERROR(ApplyToMemtable(record));
    }
  }

  // 4. Re-open the WAL for appending. Re-writing the replayed records keeps
  // the implementation simple (single WAL segment) at the cost of one
  // rewrite on recovery.
  return RotateWalLocked();
}

Status Db::RotateWalLocked() {
  if (wal_ != nullptr) (void)wal_->Close();
  wal_ = nullptr;
  auto rotate = [&]() -> Status {
    const std::string tmp = WalFileName() + ".new";
    auto wal = WalWriter::Open(tmp, options_.sync_writes, env_);
    if (!wal.ok()) return wal.status();
    for (auto it = mem_.NewIterator(); it.Valid(); it.Next()) {
      if (it.value().tombstone) {
        SKETCHLINK_RETURN_IF_ERROR((*wal)->AppendDelete(it.key()));
      } else {
        SKETCHLINK_RETURN_IF_ERROR(
            (*wal)->AppendPut(it.key(), it.value().value));
      }
    }
    SKETCHLINK_RETURN_IF_ERROR((*wal)->Sync());
    // The writer keeps its handle across the rename: appends land in the
    // newly-named live log.
    SKETCHLINK_RETURN_IF_ERROR(env_->RenameFile(tmp, WalFileName()));
    wal_ = std::move(*wal);
    return Status::OK();
  };
  wal_status_ = rotate();
  return wal_status_;
}

Status Db::EnsureWalLocked() {
  if (wal_status_.ok() && wal_ != nullptr) return Status::OK();
  return RotateWalLocked();
}

Status Db::ApplyToMemtable(const WalRecord& record) {
  if (record.op == WalRecord::Op::kPut) {
    mem_.Put(record.key, record.value);
  } else {
    mem_.Delete(record.key);
  }
  return Status::OK();
}

Status Db::WriteManifest() {
  std::string body;
  PutVarint64(&body, next_file_number_);
  PutVarint32(&body, static_cast<uint32_t>(tables_.size()));
  for (const auto& table : tables_) {
    const std::string& path = table->path();
    const size_t slash = path.find_last_of('/');
    PutLengthPrefixed(&body,
                      slash == std::string::npos ? path
                                                 : path.substr(slash + 1));
  }
  std::string file = body;
  PutFixed32(&file, Crc32c(body));
  PutFixed32(&file, kManifestMagic);
  return env_->WriteStringToFileSync(ManifestFileName(), file);
}

Status Db::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  SKETCHLINK_RETURN_IF_ERROR(EnsureWalLocked());
  SKETCHLINK_RETURN_IF_ERROR(wal_->AppendPut(key, value));
  mem_.Put(std::string(key), std::string(value));
  ++stats_.puts;
  return MaybeFlushAndCompactLocked();
}

Status Db::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  SKETCHLINK_RETURN_IF_ERROR(EnsureWalLocked());
  SKETCHLINK_RETURN_IF_ERROR(wal_->AppendDelete(key));
  mem_.Delete(std::string(key));
  ++stats_.deletes;
  return MaybeFlushAndCompactLocked();
}

Status Db::MaybeFlushAndCompactLocked() {
  if (mem_.payload_bytes() >= options_.memtable_bytes) {
    SKETCHLINK_RETURN_IF_ERROR(FlushLocked());
    SKETCHLINK_RETURN_IF_ERROR(CompactLocked(false));
  }
  return Status::OK();
}

Status Db::Get(std::string_view key, std::string* value) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetLocked(key, value);
}

Status Db::GetLocked(std::string_view key, std::string* value) {
  ++stats_.gets;
  const std::string k(key);
  switch (mem_.Get(k, value)) {
    case MemTable::LookupState::kFound:
      ++stats_.memtable_hits;
      return Status::OK();
    case MemTable::LookupState::kDeleted:
      return Status::NotFound(k);
    case MemTable::LookupState::kAbsent:
      break;
  }
  // Newest run first: the most recent version of a key wins.
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    if ((*it)->DefinitelyAbsent(key)) {
      ++stats_.bloom_skips;
      continue;
    }
    ++stats_.sstable_reads;
    auto state = (*it)->Get(key, value);
    if (!state.ok()) return state.status();
    if (*state == Table::LookupState::kFound) return Status::OK();
    if (*state == Table::LookupState::kDeleted) return Status::NotFound(k);
  }
  return Status::NotFound(k);
}

bool Db::Contains(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string scratch;
  return GetLocked(key, &scratch).ok();
}

Status Db::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mem_.empty()) return Status::OK();
  return FlushLocked();
}

Status Db::FlushLocked() {
  const uint64_t number = next_file_number_++;
  const std::string table_path = TableFileName(number);
  auto builder = TableBuilder::Open(table_path, options_);
  if (!builder.ok()) return builder.status();
  for (auto it = mem_.NewIterator(); it.Valid(); it.Next()) {
    SKETCHLINK_RETURN_IF_ERROR(
        (*builder)->Add(it.key(), it.value().value, it.value().tombstone));
  }
  SKETCHLINK_RETURN_IF_ERROR((*builder)->Finish());
  auto table = Table::Open(table_path, block_cache_.get(), env_);
  if (!table.ok()) return table.status();
  tables_.push_back(std::move(*table));
  SKETCHLINK_RETURN_IF_ERROR(WriteManifest());

  // Reset the memtable + WAL: everything buffered is now durable in the run.
  // A failed rotation poisons the write path (the flushed data itself is
  // safe) until EnsureWalLocked heals it.
  mem_.Clear();
  ++stats_.flushes;
  return RotateWalLocked();
}

Status Db::Compact(bool force) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CompactLocked(force);
}

Status Db::CompactLocked(bool force) {
  if (!force && tables_.size() < options_.compaction_trigger) {
    return Status::OK();
  }
  if (tables_.size() <= 1) return Status::OK();

  // Stream a merge of all runs (newest first) straight into the builder —
  // no materialized map, so compaction memory is O(stride), not O(data).
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(tables_.size());
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    children.push_back((*it)->NewIterator());
  }
  auto merged = NewMergingIterator(std::move(children));

  const uint64_t number = next_file_number_++;
  const std::string table_path = TableFileName(number);
  auto builder = TableBuilder::Open(table_path, options_);
  if (!builder.ok()) return builder.status();
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    // The merged output is the only (hence oldest) run: tombstones have
    // nothing left to shadow and can be dropped.
    if (merged->tombstone()) continue;
    SKETCHLINK_RETURN_IF_ERROR(
        (*builder)->Add(merged->key(), merged->value(), false));
  }
  SKETCHLINK_RETURN_IF_ERROR(merged->status());
  SKETCHLINK_RETURN_IF_ERROR((*builder)->Finish());

  auto table = Table::Open(table_path, block_cache_.get(), env_);
  if (!table.ok()) return table.status();

  std::vector<std::string> obsolete;
  obsolete.reserve(tables_.size());
  for (const auto& old_table : tables_) obsolete.push_back(old_table->path());
  tables_.clear();
  tables_.push_back(std::move(*table));
  SKETCHLINK_RETURN_IF_ERROR(WriteManifest());
  for (const std::string& old_path : obsolete) {
    // Best effort; manifest no longer refs them, and recovery re-sweeps.
    (void)env_->RemoveFile(old_path);
    if (block_cache_ != nullptr) block_cache_->EraseByPrefix(old_path + "@");
  }
  ++stats_.compactions;
  return Status::OK();
}

namespace {

// DB-level cursor: merged view with tombstones suppressed.
class DbIterator : public Iterator {
 public:
  explicit DbIterator(std::unique_ptr<Iterator> merged)
      : merged_(std::move(merged)) {}

  bool Valid() const override { return merged_->Valid(); }
  void SeekToFirst() override {
    merged_->SeekToFirst();
    SkipTombstones();
  }
  void Seek(std::string_view target) override {
    merged_->Seek(target);
    SkipTombstones();
  }
  void Next() override {
    merged_->Next();
    SkipTombstones();
  }
  std::string_view key() const override { return merged_->key(); }
  std::string_view value() const override { return merged_->value(); }
  bool tombstone() const override { return false; }
  Status status() const override { return merged_->status(); }

 private:
  void SkipTombstones() {
    while (merged_->Valid() && merged_->tombstone()) {
      merged_->Next();
    }
  }

  std::unique_ptr<Iterator> merged_;
};

}  // namespace

std::unique_ptr<Iterator> Db::NewIterator() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return NewIteratorLocked();
}

std::unique_ptr<Iterator> Db::NewIteratorLocked() const {
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(tables_.size() + 1);
  children.push_back(mem_.NewKvIterator());  // newest layer first
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    children.push_back((*it)->NewIterator());
  }
  return std::make_unique<DbIterator>(NewMergingIterator(std::move(children)));
}

Result<std::vector<TableEntry>> Db::ScanAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TableEntry> out;
  auto it = NewIteratorLocked();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.push_back(TableEntry{std::string(it->key()),
                             std::string(it->value()), false});
  }
  SKETCHLINK_RETURN_IF_ERROR(it->status());
  return out;
}

Result<std::vector<TableEntry>> Db::ScanPrefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TableEntry> out;
  auto it = NewIteratorLocked();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    const std::string_view key = it->key();
    if (key.size() < prefix.size() ||
        key.substr(0, prefix.size()) != prefix) {
      break;  // sorted order: past the prefix range
    }
    out.push_back(TableEntry{std::string(key), std::string(it->value()),
                             false});
  }
  SKETCHLINK_RETURN_IF_ERROR(it->status());
  return out;
}

size_t Db::ApproximateMemoryUsage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = sizeof(*this) + mem_.ApproximateMemoryUsage();
  for (const auto& table : tables_) bytes += table->ApproximateMemoryUsage();
  return bytes;
}

}  // namespace sketchlink::kv

#ifndef SKETCHLINK_KV_BLOCK_CACHE_H_
#define SKETCHLINK_KV_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace sketchlink::kv {

/// Byte-bounded LRU cache for SSTable data blocks — the "cache structure"
/// the paper's Algorithm 3 retrieves sub-blocks from before touching
/// secondary storage. Keys are "<table-path>@<offset>"; values are the raw
/// block bytes. Single-threaded like the rest of the store.
class BlockCache {
 public:
  /// `capacity_bytes` bounds the sum of cached value sizes (keys and
  /// bookkeeping are accounted on top with a fixed per-entry estimate).
  explicit BlockCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Copies the cached block into `*value` and marks it most-recently-used.
  /// Returns false on miss.
  bool Lookup(const std::string& key, std::string* value);

  /// Inserts (or refreshes) a block, evicting LRU entries until the budget
  /// holds. Values larger than the whole budget are not cached.
  void Insert(const std::string& key, const std::string& value);

  /// Drops every entry whose key starts with `prefix` (used when a table
  /// file is deleted by compaction).
  void EraseByPrefix(const std::string& prefix);

  /// Drops everything.
  void Clear();

  size_t size_bytes() const { return used_bytes_; }
  size_t num_entries() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  using Lru = std::list<Entry>;

  void EvictUntilFits();
  size_t EntryBytes(const Entry& entry) const {
    return entry.key.size() + entry.value.size() + 64;
  }

  size_t capacity_bytes_;
  size_t used_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  Lru lru_;  // front = most recent
  std::unordered_map<std::string, Lru::iterator> map_;
};

}  // namespace sketchlink::kv

#endif  // SKETCHLINK_KV_BLOCK_CACHE_H_

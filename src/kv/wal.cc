#include "kv/wal.h"

#include "common/coding.h"

namespace sketchlink::kv {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   bool sync_each_record,
                                                   Env* env) {
  if (env == nullptr) env = Env::Default();
  auto file = env->NewWritableFile(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(*file), sync_each_record));
}

Status WalWriter::AppendRecord(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 9);
  PutFixed32(&frame, Crc32c(payload));
  PutVarint32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  SKETCHLINK_RETURN_IF_ERROR(file_->Append(frame));
  if (sync_each_record_) return file_->Sync();
  return Status::OK();
}

Status WalWriter::AppendPut(std::string_view key, std::string_view value) {
  std::string payload;
  payload.reserve(key.size() + value.size() + 11);
  payload.push_back(static_cast<char>(WalRecord::Op::kPut));
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  return AppendRecord(payload);
}

Status WalWriter::AppendDelete(std::string_view key) {
  std::string payload;
  payload.reserve(key.size() + 6);
  payload.push_back(static_cast<char>(WalRecord::Op::kDelete));
  PutLengthPrefixed(&payload, key);
  return AppendRecord(payload);
}

Status WalWriter::Sync() { return file_->Sync(); }

Status WalWriter::Close() { return file_->Close(); }

Result<std::vector<WalRecord>> ReadWal(const std::string& path, Env* env,
                                       bool best_effort) {
  if (env == nullptr) env = Env::Default();
  std::string contents;
  SKETCHLINK_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));

  std::vector<WalRecord> records;
  std::string_view input(contents);
  while (!input.empty()) {
    uint32_t expected_crc;
    uint32_t length;
    if (!GetFixed32(&input, &expected_crc) || !GetVarint32(&input, &length) ||
        input.size() < length) {
      // Incomplete frame: a torn tail from a crash mid-append. Recover
      // everything before it.
      break;
    }
    const std::string_view payload = input.substr(0, length);
    input.remove_prefix(length);
    if (Crc32c(payload) != expected_crc) {
      // The whole frame is present on disk, so this is bit rot — even at
      // the tail — not a torn write. Surface it unless the caller opted
      // into best-effort prefix recovery.
      if (best_effort) break;
      return Status::Corruption("WAL checksum mismatch in " + path);
    }

    std::string_view body = payload;
    if (body.empty()) return Status::Corruption("empty WAL payload");
    const auto op = static_cast<WalRecord::Op>(body.front());
    body.remove_prefix(1);
    WalRecord record;
    record.op = op;
    std::string_view key;
    if (!GetLengthPrefixed(&body, &key)) {
      return Status::Corruption("bad WAL key in " + path);
    }
    record.key.assign(key);
    if (op == WalRecord::Op::kPut) {
      std::string_view value;
      if (!GetLengthPrefixed(&body, &value)) {
        return Status::Corruption("bad WAL value in " + path);
      }
      record.value.assign(value);
    } else if (op != WalRecord::Op::kDelete) {
      return Status::Corruption("unknown WAL op in " + path);
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace sketchlink::kv

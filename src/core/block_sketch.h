#ifndef SKETCHLINK_CORE_BLOCK_SKETCH_H_
#define SKETCHLINK_CORE_BLOCK_SKETCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/sketch_metrics.h"
#include "record/record.h"
#include "simd/bit_profile.h"
#include "simd/jaro_pattern.h"

namespace sketchlink {

/// Distance between two key-value strings (a record's untruncated blocking
/// field values, '#'-joined). The default is Jaro-Winkler distance, matching
/// the paper's evaluation (similarity threshold 0.75 => theta = 0.25).
using KeyDistanceFn =
    std::function<double(std::string_view, std::string_view)>;

/// Returns the library default distance (Jaro-Winkler distance). Passing an
/// explicit KeyDistanceFn — this one included — routes through the legacy
/// scalar comparison loop; leaving the sketch's distance empty selects the
/// built-in metric of the configured KeyDistanceKind, which additionally
/// unlocks the batched bit-parallel kernel path (src/simd) with identical
/// results.
KeyDistanceFn DefaultKeyDistance();

/// Sorted q-gram multiset of a key-value string. Cached per representative
/// (and per block anchor) at insert time, so q-gram-based routing tokenizes
/// each representative exactly once instead of once per query — the
/// memoized input of the similarity hot path.
using QGramProfile = std::vector<std::string>;

/// Distance used for routing keys into sub-blocks.
enum class KeyDistanceKind {
  /// Jaro-Winkler distance on the raw strings (the paper's evaluation).
  kJaroWinkler,
  /// 1 - Dice coefficient over q-gram profiles. Profiles of representatives
  /// are computed once at insert time and cached in the sketch; a query
  /// tokenizes its own key values once per routing decision instead of once
  /// per representative comparison.
  kQGramDice,
  /// Normalized Levenshtein distance (edit distance / max length), computed
  /// with Myers' bit-parallel recurrence on the kernel path.
  kLevenshtein,
};

/// Tuning parameters shared by BlockSketch and SBlockSketch.
struct BlockSketchOptions {
  /// Number of sub-blocks (distance rings <=theta, <=2*theta, ...).
  size_t lambda = 3;
  /// Failure probability of Lemma 5.1; rho = ceil(lambda * ln(1/delta))
  /// representatives are kept per sub-block.
  double delta = 0.1;
  /// Ring width: the distance threshold between the keys of a matching pair.
  double theta = 0.25;
  uint64_t seed = 0x5ce7cULL;
  /// Routing distance. kQGramDice enables the cached-profile fast path; the
  /// default reproduces the paper's numbers.
  KeyDistanceKind distance_kind = KeyDistanceKind::kJaroWinkler;
  /// q-gram width of the kQGramDice profiles.
  size_t qgram = 2;

  /// Representatives per sub-block (Lemma 5.1, ceiling applied).
  size_t rho() const;
};

/// One distance ring of a block: up to rho representative key-value strings
/// plus the ids of every record routed here.
struct SketchSubBlock {
  std::vector<std::string> representatives;
  /// Parallel to `representatives` when the q-gram distance is active:
  /// rep_profiles[i] is the cached profile of representatives[i]. Empty
  /// under kJaroWinkler. Derived data — never serialized; rebuilt by
  /// SketchPolicy::RehydrateProfiles after a block is decoded.
  std::vector<QGramProfile> rep_profiles;
  /// Kernel caches, parallel to `representatives` when the batched kernel
  /// path is active (built-in metric + kernels enabled). rep_patterns backs
  /// the bit-parallel Jaro (kJaroWinkler); rep_bits the popcount Dice
  /// (kQGramDice). Derived data — never serialized; rebuilt alongside
  /// rep_profiles.
  std::vector<simd::JaroPattern> rep_patterns;
  std::vector<simd::BitProfile> rep_bits;
  std::vector<RecordId> members;
};

/// A summarized block: lambda sub-blocks keyed by the blocking key.
struct SketchBlock {
  /// Key values of the first record routed here; the origin the distance
  /// rings (<=theta, <=2*theta, ...) are measured from. The blocking key
  /// itself cannot serve: it may be truncated (standard blocking) or a bit
  /// pattern outside value space entirely (LSH blocking).
  std::string anchor;
  /// Cached q-gram profile of `anchor` (empty under kJaroWinkler). Derived;
  /// not serialized.
  QGramProfile anchor_profile;
  /// Kernel caches of `anchor` (see SketchSubBlock). Derived; not
  /// serialized.
  simd::JaroPattern anchor_pattern;
  simd::BitProfile anchor_bits;
  std::vector<SketchSubBlock> subs;

  explicit SketchBlock(size_t lambda = 0) : subs(lambda) {}

  size_t TotalMembers() const;
  size_t ApproximateMemoryUsage() const;

  /// Binary serialization, used when SBlockSketch spills a block to the
  /// key/value store.
  void EncodeTo(std::string* dst) const;
  static Result<SketchBlock> DecodeFrom(std::string_view* input);
};

/// Shared routing logic: picks the target sub-block for a key and maintains
/// the representative reservoirs. Both BlockSketch and SBlockSketch (which
/// differ only in where blocks live) delegate here.
class SketchPolicy {
 public:
  /// Telemetry of one routing decision. `comparisons` keeps the historical
  /// accounting — one per representative considered (plus the anchor) —
  /// whether or not the kernel batch pruned the actual evaluation, so the
  /// paper's "constant number of comparisons" metric is identical on every
  /// path. evaluated/pruned/batch_size describe the kernel batch itself.
  struct RouteDecision {
    size_t sub = 0;
    uint64_t comparisons = 0;
    uint64_t evaluated = 0;
    uint64_t pruned = 0;
    uint64_t batch_size = 0;
    bool batched = false;
  };

  /// `distance` overrides the routing metric and forces the legacy scalar
  /// comparison loop; leave it empty to use the built-in metric of
  /// options.distance_kind (and, when the CPU/env allow, the batched
  /// bit-parallel kernels — same results, differentially tested). When
  /// options.distance_kind is kQGramDice a custom distance must be null
  /// (the cached-profile path owns the metric).
  SketchPolicy(const BlockSketchOptions& options, KeyDistanceFn distance);

  /// Routing rule. The distance ring of `key_values` (measured from the
  /// block's anchor) is computed first; if that ring has no representatives
  /// yet, the key seeds it — this is how the <=theta, <=2*theta, ... bands
  /// of Sec. 5 come into existence. Otherwise Algorithm 3 applies: the
  /// sub-block whose representative is nearest to `key_values` wins. Adds
  /// the number of distance computations to `*comparisons`.
  size_t ChooseSubBlock(const SketchBlock& block, std::string_view key_values,
                        uint64_t* comparisons) const;

  /// ChooseSubBlock with full telemetry: one batched kernel evaluation of
  /// the query against all lambda*rho representatives when the built-in
  /// metric is in use, the scalar loop otherwise. The chosen sub-block is
  /// identical on both paths (strict-< first-minimum argmin; kernel prune
  /// bounds only skip candidates that provably cannot win).
  RouteDecision Route(const SketchBlock& block,
                      std::string_view key_values) const;

  /// Algorithm 3, line 16: coin-toss representative maintenance. Fills the
  /// reservoir up to rho unconditionally, then replaces a uniformly random
  /// representative on heads.
  void MaybeAddRepresentative(SketchSubBlock* sub,
                              std::string_view key_values) const;

  /// Seeds a fresh block from its first key: stores the anchor and, under
  /// kQGramDice, its cached profile.
  void SeedAnchor(SketchBlock* block, std::string_view key_values) const;

  /// Rebuilds the derived profile caches (anchor_profile, rep_profiles) of a
  /// block that was just decoded from its serialized form. No-op under
  /// kJaroWinkler.
  void RehydrateProfiles(SketchBlock* block) const;

  /// Sorted q-gram multiset of `text` per options().qgram.
  QGramProfile MakeProfile(std::string_view text) const;

  /// 1 - Dice coefficient of two profiles (sorted-merge intersection).
  static double ProfileDistance(const QGramProfile& a, const QGramProfile& b);

  const BlockSketchOptions& options() const { return options_; }
  const KeyDistanceFn& distance() const { return distance_; }

 private:
  bool UsesProfiles() const {
    return options_.distance_kind == KeyDistanceKind::kQGramDice;
  }

  /// True when routing may take the batched kernel path: built-in metric
  /// (no custom KeyDistanceFn) and kernels not disabled via SKETCHLINK_SIMD.
  /// The kernel caches (rep_patterns / rep_bits) are maintained under the
  /// same condition.
  bool KernelRoutingActive() const;

  /// The scalar distance of the configured built-in metric (or the custom
  /// distance_ when set) — the reference the kernel path must match.
  double ScalarKeyDistance(std::string_view a, std::string_view b) const;

  /// Appends (or replaces, when `replace_index` != SIZE_MAX) the kernel
  /// caches of one representative.
  void UpdateKernelCaches(SketchSubBlock* sub, size_t replace_index,
                          std::string_view key_values) const;

  RouteDecision RouteWithKernels(const SketchBlock& block,
                                 std::string_view key_values) const;
  RouteDecision RouteScalar(const SketchBlock& block,
                            std::string_view key_values) const;

  BlockSketchOptions options_;
  KeyDistanceFn distance_;
  mutable Rng rng_;
};

/// BlockSketch (paper Sec. 5): bounds the matching phase to a constant
/// number of comparisons per query by summarizing each block with lambda
/// sub-blocks of rho representatives. A query is compared against the
/// lambda*rho representatives only, then against the members of the single
/// chosen sub-block — never against the whole block (Problem Statement 2).
class BlockSketch {
 public:
  /// An empty `distance` (the default) selects the built-in metric of
  /// options.distance_kind and enables the batched kernel routing path;
  /// passing a function (DefaultKeyDistance() included) pins the legacy
  /// scalar loop with that exact callable.
  explicit BlockSketch(const BlockSketchOptions& options = {},
                       KeyDistanceFn distance = {});

  BlockSketch(const BlockSketch&) = delete;
  BlockSketch& operator=(const BlockSketch&) = delete;

  /// Routes a record (its id + untruncated key values) into the target
  /// sub-block of `block_key`, creating the block on first contact.
  void Insert(const std::string& block_key, std::string_view key_values,
              RecordId id);

  /// Returns the member ids of the sub-block a query with `key_values`
  /// routes to — the constant-size candidate set of the matching phase.
  std::vector<RecordId> Candidates(const std::string& block_key,
                                   std::string_view key_values) const;

  /// Number of blocks summarized.
  size_t num_blocks() const { return blocks_.size(); }

  /// True if `block_key` has been seen.
  bool HasBlock(const std::string& block_key) const {
    return blocks_.count(block_key) > 0;
  }

  /// Direct access for diagnostics/tests; nullptr when absent.
  const SketchBlock* FindBlock(const std::string& block_key) const;

  /// Thin view over the live instruments (see core/sketch_metrics.h); kept
  /// by-value so historical callers keep compiling unchanged.
  BlockSketchStats stats() const { return metrics_.ToStats(); }
  const BlockSketchOptions& options() const { return policy_.options(); }

  /// Live instruments; shard owners merge these via MergeFrom.
  const BlockSketchMetrics& metrics() const { return metrics_; }

  /// Arms the per-operation latency histograms (clock reads). Follows the
  /// owner's synchronization, like every other mutation of this sketch.
  void EnableLatencyTiming() { metrics_.timing_enabled = true; }

  size_t ApproximateMemoryUsage() const;

 private:
  SketchPolicy policy_;
  mutable BlockSketchMetrics metrics_;
  std::unordered_map<std::string, SketchBlock> blocks_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_BLOCK_SKETCH_H_

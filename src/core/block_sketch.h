#ifndef SKETCHLINK_CORE_BLOCK_SKETCH_H_
#define SKETCHLINK_CORE_BLOCK_SKETCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/epoch_hash_table.h"
#include "common/interner.h"
#include "common/random.h"
#include "common/status.h"
#include "core/published_block.h"
#include "core/sketch_metrics.h"
#include "core/sketch_types.h"

namespace sketchlink {

/// Shared routing logic: picks the target sub-block for a key and maintains
/// the representative reservoirs. Both BlockSketch and SBlockSketch (which
/// differ only in where blocks live) delegate here. Routing is stateless
/// over whatever representative snapshots the caller presents, so it works
/// identically on the classic in-place SketchBlock and on the concurrent
/// PublishedBlock; only the reservoir maintenance consumes the policy RNG.
class SketchPolicy {
 public:
  /// Telemetry of one routing decision. `comparisons` keeps the historical
  /// accounting — one per representative considered (plus the anchor) —
  /// whether or not the kernel batch pruned the actual evaluation, so the
  /// paper's "constant number of comparisons" metric is identical on every
  /// path. evaluated/pruned/batch_size describe the kernel batch itself.
  struct RouteDecision {
    size_t sub = 0;
    uint64_t comparisons = 0;
    uint64_t evaluated = 0;
    uint64_t pruned = 0;
    uint64_t batch_size = 0;
    bool batched = false;
  };

  /// The anchor fields of a block, viewed without caring which
  /// representation owns them.
  struct AnchorView {
    std::string_view anchor;
    const QGramProfile* profile;
    const simd::JaroPattern* pattern;
    const simd::BitProfile* bits;
  };

  /// One reservoir-maintenance decision (Algorithm 3, line 16), split from
  /// its application so the concurrent sketch can apply it copy-on-write.
  /// Planning consumes the policy RNG exactly like MaybeAddRepresentative
  /// always did: fill-to-rho draws nothing, afterwards one coin flip and —
  /// on heads — one uniform index.
  struct RepUpdate {
    enum class Kind { kNone, kAppend, kReplace };
    Kind kind = Kind::kNone;
    size_t index = 0;  // victim for kReplace
  };

  /// `distance` overrides the routing metric and forces the legacy scalar
  /// comparison loop; leave it empty to use the built-in metric of
  /// options.distance_kind (and, when the CPU/env allow, the batched
  /// bit-parallel kernels — same results, differentially tested). When
  /// options.distance_kind is kQGramDice a custom distance must be null
  /// (the cached-profile path owns the metric).
  SketchPolicy(const BlockSketchOptions& options, KeyDistanceFn distance);

  /// Routing rule. The distance ring of `key_values` (measured from the
  /// block's anchor) is computed first; if that ring has no representatives
  /// yet, the key seeds it — this is how the <=theta, <=2*theta, ... bands
  /// of Sec. 5 come into existence. Otherwise Algorithm 3 applies: the
  /// sub-block whose representative is nearest to `key_values` wins. Adds
  /// the number of distance computations to `*comparisons`.
  size_t ChooseSubBlock(const SketchBlock& block, std::string_view key_values,
                        uint64_t* comparisons) const;

  /// ChooseSubBlock with full telemetry: one batched kernel evaluation of
  /// the query against all lambda*rho representatives when the built-in
  /// metric is in use, the scalar loop otherwise. The chosen sub-block is
  /// identical on both paths (strict-< first-minimum argmin; kernel prune
  /// bounds only skip candidates that provably cannot win).
  RouteDecision Route(const SketchBlock& block,
                      std::string_view key_values) const;

  /// Route over a published block: loads each sub's current reservoir
  /// snapshot (callers hold an epoch::ReadGuard or the write lock) and runs
  /// the identical decision procedure.
  RouteDecision Route(const PublishedBlock& block,
                      std::string_view key_values) const;

  /// The representation-independent core of Route: `subs[i]` is sub-block
  /// i's reservoir snapshot, `num_subs` == lambda.
  RouteDecision RouteView(const AnchorView& anchor,
                          const RepSet* const* subs, size_t num_subs,
                          std::string_view key_values) const;

  /// Plans one reservoir update for a sub-block currently holding
  /// `current_reps` representatives. Consumes the RNG (see RepUpdate).
  RepUpdate PlanRepUpdate(size_t current_reps) const;

  /// Applies a planned update in place (no RNG). `reps` may be a
  /// SketchSubBlock or a copy-on-write RepSet snapshot.
  void ApplyRepUpdate(RepSet* reps, const RepUpdate& update,
                      std::string_view key_values) const;

  /// Algorithm 3, line 16: coin-toss representative maintenance. Fills the
  /// reservoir up to rho unconditionally, then replaces a uniformly random
  /// representative on heads. Equivalent to PlanRepUpdate + ApplyRepUpdate.
  void MaybeAddRepresentative(RepSet* sub, std::string_view key_values) const;

  /// Seeds a fresh block from its first key: stores the anchor and, under
  /// kQGramDice, its cached profile.
  void SeedAnchor(SketchBlock* block, std::string_view key_values) const;
  void SeedAnchor(PublishedBlock* block, std::string_view key_values) const;

  /// Rebuilds the derived profile caches (anchor_profile, rep_profiles) of a
  /// block that was just decoded from its serialized form. No-op under
  /// kJaroWinkler.
  void RehydrateProfiles(SketchBlock* block) const;

  /// Sorted q-gram multiset of `text` per options().qgram.
  QGramProfile MakeProfile(std::string_view text) const;

  /// 1 - Dice coefficient of two profiles (sorted-merge intersection).
  static double ProfileDistance(const QGramProfile& a, const QGramProfile& b);

  const BlockSketchOptions& options() const { return options_; }
  const KeyDistanceFn& distance() const { return distance_; }

  /// Test hook: forces the legacy gather routing path (per-candidate
  /// BatchCandidate build) even when every sub-block publishes a consistent
  /// SoA snapshot. The layout cross-check test diffs the two paths bit for
  /// bit. Process-global; affects all policies.
  static void SetGatherRoutingForTesting(bool force);

 private:
  bool UsesProfiles() const {
    return options_.distance_kind == KeyDistanceKind::kQGramDice;
  }

  /// True when routing may take the batched kernel path: built-in metric
  /// (no custom KeyDistanceFn) and kernels not disabled via SKETCHLINK_SIMD.
  /// The kernel caches (rep_patterns / rep_bits) are maintained under the
  /// same condition.
  bool KernelRoutingActive() const;

  /// The scalar distance of the configured built-in metric (or the custom
  /// distance_ when set) — the reference the kernel path must match.
  double ScalarKeyDistance(std::string_view a, std::string_view b) const;

  /// Appends (or replaces, when `replace_index` != SIZE_MAX) the kernel
  /// caches of one representative.
  void UpdateKernelCaches(RepSet* sub, size_t replace_index,
                          std::string_view key_values) const;

  RouteDecision RouteWithKernels(const AnchorView& anchor,
                                 const RepSet* const* subs, size_t num_subs,
                                 std::string_view key_values) const;
  RouteDecision RouteScalar(const AnchorView& anchor,
                            const RepSet* const* subs, size_t num_subs,
                            std::string_view key_values) const;

  BlockSketchOptions options_;
  KeyDistanceFn distance_;
  mutable Rng rng_;
};

/// BlockSketch (paper Sec. 5): bounds the matching phase to a constant
/// number of comparisons per query by summarizing each block with lambda
/// sub-blocks of rho representatives. A query is compared against the
/// lambda*rho representatives only, then against the members of the single
/// chosen sub-block — never against the whole block (Problem Statement 2).
///
/// Concurrency: Candidates()/num_blocks()/HasBlock()/FindBlock() are
/// lock-free reads over epoch-protected published state and never block on
/// writers. Insert() serializes writers behind an internal mutex (callers
/// no longer need their own lock, but concurrent single inserts make the
/// observed order scheduling-dependent — batch per stripe for determinism).
class BlockSketch {
 public:
  /// An empty `distance` (the default) selects the built-in metric of
  /// options.distance_kind and enables the batched kernel routing path;
  /// passing a function (DefaultKeyDistance() included) pins the legacy
  /// scalar loop with that exact callable.
  explicit BlockSketch(const BlockSketchOptions& options = {},
                       KeyDistanceFn distance = {});

  BlockSketch(const BlockSketch&) = delete;
  BlockSketch& operator=(const BlockSketch&) = delete;

  /// Routes a record (its id + untruncated key values) into the target
  /// sub-block of `block_key`, creating the block on first contact. The key
  /// is interned once: later operations on the same key compare a 32-bit id
  /// instead of hashing the string.
  void Insert(std::string_view block_key, std::string_view key_values,
              RecordId id);

  /// Returns a pinned view of the member ids of the sub-block a query with
  /// `key_values` routes to — the constant-size candidate set of the
  /// matching phase. Lock-free: never waits on inserts. A key the sketch
  /// never saw short-circuits at the interner probe (no block-table walk).
  CandidateList Candidates(std::string_view block_key,
                           std::string_view key_values) const;

  /// Number of blocks summarized.
  size_t num_blocks() const { return blocks_.size(); }

  /// True if `block_key` has been seen.
  bool HasBlock(std::string_view block_key) const;

  /// Materialized snapshot for diagnostics/tests; nullptr when absent.
  std::shared_ptr<const SketchBlock> FindBlock(
      std::string_view block_key) const;

  /// Thin view over the live instruments (see core/sketch_metrics.h); kept
  /// by-value so historical callers keep compiling unchanged.
  BlockSketchStats stats() const { return metrics_.ToStats(); }
  const BlockSketchOptions& options() const { return policy_.options(); }

  /// Live instruments; shard owners merge these via MergeFrom.
  const BlockSketchMetrics& metrics() const { return metrics_; }

  /// Arms the per-operation latency histograms (clock reads). Thread-safe.
  void EnableLatencyTiming() {
    metrics_.timing_enabled.store(true, std::memory_order_relaxed);
  }

  size_t ApproximateMemoryUsage() const;

 private:
  SketchPolicy policy_;
  mutable BlockSketchMetrics metrics_;
  /// Maps block-key text to a dense 32-bit id. Intern on the insert path
  /// only; queries use the lock-free Find — an unseen query key never grows
  /// the interner, and its miss answers "no such block" with no further
  /// lookup.
  StringInterner interner_;
  EpochHashTable<PublishedBlock, uint32_t> blocks_;
  mutable std::mutex write_mu_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_BLOCK_SKETCH_H_

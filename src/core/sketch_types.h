#ifndef SKETCHLINK_CORE_SKETCH_TYPES_H_
#define SKETCHLINK_CORE_SKETCH_TYPES_H_

// Plain data types of the sketch layer: options, the serializable
// SketchBlock, and the representative-set value type shared between the
// classic single-threaded representation and the concurrent published one
// (core/published_block.h).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "record/record.h"
#include "simd/bit_profile.h"
#include "simd/jaro_pattern.h"

namespace sketchlink {

/// Distance between two key-value strings (a record's untruncated blocking
/// field values, '#'-joined). The default is Jaro-Winkler distance, matching
/// the paper's evaluation (similarity threshold 0.75 => theta = 0.25).
using KeyDistanceFn =
    std::function<double(std::string_view, std::string_view)>;

/// Returns the library default distance (Jaro-Winkler distance). Passing an
/// explicit KeyDistanceFn — this one included — routes through the legacy
/// scalar comparison loop; leaving the sketch's distance empty selects the
/// built-in metric of the configured KeyDistanceKind, which additionally
/// unlocks the batched bit-parallel kernel path (src/simd) with identical
/// results.
KeyDistanceFn DefaultKeyDistance();

/// Sorted q-gram multiset of a key-value string. Cached per representative
/// (and per block anchor) at insert time, so q-gram-based routing tokenizes
/// each representative exactly once instead of once per query — the
/// memoized input of the similarity hot path.
using QGramProfile = std::vector<std::string>;

/// Distance used for routing keys into sub-blocks.
enum class KeyDistanceKind {
  /// Jaro-Winkler distance on the raw strings (the paper's evaluation).
  kJaroWinkler,
  /// 1 - Dice coefficient over q-gram profiles. Profiles of representatives
  /// are computed once at insert time and cached in the sketch; a query
  /// tokenizes its own key values once per routing decision instead of once
  /// per representative comparison.
  kQGramDice,
  /// Normalized Levenshtein distance (edit distance / max length), computed
  /// with Myers' bit-parallel recurrence on the kernel path.
  kLevenshtein,
};

/// Tuning parameters shared by BlockSketch and SBlockSketch.
struct BlockSketchOptions {
  /// Number of sub-blocks (distance rings <=theta, <=2*theta, ...).
  size_t lambda = 3;
  /// Failure probability of Lemma 5.1; rho = ceil(lambda * ln(1/delta))
  /// representatives are kept per sub-block.
  double delta = 0.1;
  /// Ring width: the distance threshold between the keys of a matching pair.
  double theta = 0.25;
  uint64_t seed = 0x5ce7cULL;
  /// Routing distance. kQGramDice enables the cached-profile fast path; the
  /// default reproduces the paper's numbers.
  KeyDistanceKind distance_kind = KeyDistanceKind::kJaroWinkler;
  /// q-gram width of the kQGramDice profiles.
  size_t qgram = 2;

  /// Representatives per sub-block (Lemma 5.1, ceiling applied).
  size_t rho() const;
};

/// One representative reservoir: up to rho representative key-value strings
/// plus their derived routing caches. This is the unit the concurrent
/// sketch publishes as an immutable snapshot (copy-on-write on mutation);
/// the classic in-place representation embeds it in SketchSubBlock.
struct RepSet {
  /// Structure-of-arrays mirror of `representatives`: the texts
  /// concatenated into one contiguous buffer plus parallel offset/length
  /// arrays. This is the layout simd::BatchQuery::Score streams — the
  /// length-bound kernels read `text_lens` directly and candidate bytes sit
  /// in one cache-friendly run instead of rho scattered std::string heaps.
  /// Derived data, maintained by SketchPolicy alongside the kernel caches;
  /// never serialized. Like the rest of a published RepSet snapshot it is
  /// immutable after publish (copy-on-write on mutation), so lock-free
  /// readers can borrow the raw pointers for the duration of a route.
  struct Packed {
    std::string text_bytes;
    std::vector<uint32_t> text_offsets;
    std::vector<uint32_t> text_lens;
  };

  std::vector<std::string> representatives;
  /// Parallel to `representatives` when the q-gram distance is active:
  /// rep_profiles[i] is the cached profile of representatives[i]. Empty
  /// under kJaroWinkler. Derived data — never serialized; rebuilt by
  /// SketchPolicy::RehydrateProfiles after a block is decoded.
  std::vector<QGramProfile> rep_profiles;
  /// Kernel caches, parallel to `representatives` when the batched kernel
  /// path is active (built-in metric + kernels enabled). rep_patterns backs
  /// the bit-parallel Jaro (kJaroWinkler); rep_bits the popcount Dice
  /// (kQGramDice). Derived data — never serialized; rebuilt alongside
  /// rep_profiles.
  std::vector<simd::JaroPattern> rep_patterns;
  std::vector<simd::BitProfile> rep_bits;
  Packed packed;

  /// True when `packed` mirrors `representatives` entry for entry. Routing
  /// falls back to the gather path on any inconsistent sub (e.g. a decoded
  /// block before RehydrateProfiles), so staleness degrades speed, never
  /// results.
  bool PackedConsistent() const {
    return packed.text_lens.size() == representatives.size() &&
           packed.text_offsets.size() == representatives.size();
  }

  /// Rebuilds `packed` from `representatives`.
  void FinalizePacked();

  /// Appends the newest representative's text to `packed` (amortized O(len);
  /// callers use it on the append path, FinalizePacked on replacement).
  void AppendPacked(std::string_view text);

  /// Heap bytes held by the reservoir (for memory accounting).
  size_t ApproximateHeapBytes() const;
};

/// One distance ring of a block: the representative reservoir plus the ids
/// of every record routed here.
struct SketchSubBlock : RepSet {
  std::vector<RecordId> members;
};

/// A summarized block: lambda sub-blocks keyed by the blocking key.
struct SketchBlock {
  /// Key values of the first record routed here; the origin the distance
  /// rings (<=theta, <=2*theta, ...) are measured from. The blocking key
  /// itself cannot serve: it may be truncated (standard blocking) or a bit
  /// pattern outside value space entirely (LSH blocking).
  std::string anchor;
  /// Cached q-gram profile of `anchor` (empty under kJaroWinkler). Derived;
  /// not serialized.
  QGramProfile anchor_profile;
  /// Kernel caches of `anchor` (see RepSet). Derived; not serialized.
  simd::JaroPattern anchor_pattern;
  simd::BitProfile anchor_bits;
  std::vector<SketchSubBlock> subs;

  explicit SketchBlock(size_t lambda = 0) : subs(lambda) {}

  size_t TotalMembers() const;
  size_t ApproximateMemoryUsage() const;

  /// Binary serialization, used when SBlockSketch spills a block to the
  /// key/value store.
  void EncodeTo(std::string* dst) const;
  static Result<SketchBlock> DecodeFrom(std::string_view* input);
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_SKETCH_TYPES_H_

#include "core/overlap.h"

#include <cmath>
#include <unordered_set>

namespace sketchlink {

OverlapEstimate EstimateOverlapAgainstKeys(
    const SkipBloom& synopsis_a, const std::vector<std::string>& keys_b) {
  OverlapEstimate estimate;
  estimate.sample_size = keys_b.size();
  for (const std::string& key : keys_b) {
    if (synopsis_a.Query(key)) ++estimate.hits;
  }
  estimate.coefficient =
      estimate.sample_size == 0
          ? 0.0
          : static_cast<double>(estimate.hits) /
                static_cast<double>(estimate.sample_size);
  return estimate;
}

OverlapEstimate EstimateOverlapCoefficient(const SkipBloom& synopsis_a,
                                           const SkipBloom& synopsis_b) {
  return EstimateOverlapAgainstKeys(synopsis_a, synopsis_b.SampledKeys());
}

double ExactOverlapCoefficient(const std::vector<std::string>& keys_a,
                               const std::vector<std::string>& keys_b) {
  std::unordered_set<std::string> set_a(keys_a.begin(), keys_a.end());
  std::unordered_set<std::string> set_b(keys_b.begin(), keys_b.end());
  if (set_b.empty()) return 0.0;
  size_t common = 0;
  for (const std::string& key : set_b) {
    common += set_a.count(key);
  }
  return static_cast<double>(common) / static_cast<double>(set_b.size());
}

size_t RequiredSampleSize(double epsilon, double theta_lower_bound) {
  epsilon = std::max(epsilon, 1e-6);
  theta_lower_bound = std::max(theta_lower_bound, 1e-6);
  return static_cast<size_t>(
      std::ceil(1.0 / (epsilon * epsilon * theta_lower_bound)));
}

}  // namespace sketchlink

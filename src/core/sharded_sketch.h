#ifndef SKETCHLINK_CORE_SHARDED_SKETCH_H_
#define SKETCHLINK_CORE_SHARDED_SKETCH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/maintenance_queue.h"
#include "common/thread_pool.h"
#include "core/block_sketch.h"
#include "core/sblock_sketch.h"
#include "obs/registry.h"

namespace sketchlink {

/// One record routed into a sketch: pointers into caller-owned storage that
/// must stay valid for the duration of an InsertBatch call.
struct SketchInsert {
  const std::string* block_key;
  const std::string* key_values;
  RecordId id;
};

/// Striped wrapper for concurrent use: the blocking key hashes to one of
/// `num_stripes` independent sub-sketches. The sketches are internally
/// synchronized (lock-free epoch-protected reads, a per-sketch write mutex),
/// so this layer adds no locks of its own: queries on any stripe never wait,
/// and writers contend only within a stripe.
///
/// Determinism: stripe selection depends only on the key and the (fixed)
/// stripe count — never on the thread count. InsertBatch buckets its input
/// per stripe in submission order before fanning out, and each stripe is
/// drained by exactly one task, so every sub-sketch observes the same insert
/// sequence (and therefore makes the same coin-flip decisions) whether the
/// batch runs on 1 thread or 16. Results are bit-identical for any pool
/// size; only wall-clock changes.
class ShardedBlockSketch {
 public:
  static constexpr size_t kDefaultStripes = 16;

  /// An empty `distance` (the default) selects the built-in metric of
  /// options.distance_kind and enables the batched kernel routing path in
  /// every stripe; passing a function pins the legacy scalar loop.
  explicit ShardedBlockSketch(const BlockSketchOptions& options = {},
                              KeyDistanceFn distance = {},
                              size_t num_stripes = kDefaultStripes);

  ShardedBlockSketch(const ShardedBlockSketch&) = delete;
  ShardedBlockSketch& operator=(const ShardedBlockSketch&) = delete;

  /// Single insert; serialized within the key's stripe. Safe to call
  /// concurrently, but concurrent single inserts make the per-stripe order
  /// scheduling-dependent — use InsertBatch for reproducible parallel
  /// builds.
  void Insert(std::string_view block_key, std::string_view key_values,
              RecordId id);

  /// Deterministic parallel build: buckets `entries` per stripe in order,
  /// then runs one task per stripe on `pool` (sequentially when pool is
  /// null).
  void InsertBatch(const std::vector<SketchInsert>& entries, ThreadPool* pool);

  /// Lock-free candidate lookup (never waits on writers of any stripe).
  CandidateList Candidates(std::string_view block_key,
                           std::string_view key_values) const;

  size_t num_blocks() const;
  size_t num_stripes() const { return stripes_.size(); }

  /// Aggregated counters across stripes (by value: a consistent-enough
  /// snapshot for statistics, not a linearizable cut). Produced by merging
  /// the per-stripe instruments — see MergeMetricsInto.
  BlockSketchStats stats() const;

  /// Merges every stripe's live instruments into `*out`: counters add,
  /// histograms merge bucket-wise (an exact re-bucketing of the union of
  /// samples — percentiles are extracted from the merged buckets, never
  /// averaged across shards). Reads are relaxed-atomic; no locks.
  void MergeMetricsInto(BlockSketchMetrics* out) const;

  /// Arms per-operation latency timing in every stripe.
  void EnableLatencyTiming();

  /// Registers the merged instruments (plus block-count and memory gauges)
  /// under `instance` and enables latency timing when `registry` is
  /// enabled. The returned handles must be dropped before this sketch; they
  /// hold closures reading it.
  std::vector<obs::Registration> RegisterMetrics(obs::Registry* registry,
                                                 const std::string& instance);

  const BlockSketchOptions& options() const { return options_; }

  size_t ApproximateMemoryUsage() const;

 private:
  size_t StripeOf(std::string_view block_key) const;

  BlockSketchOptions options_;
  std::vector<std::unique_ptr<BlockSketch>> stripes_;
};

/// Striped wrapper for SBlockSketch with the same contract as
/// ShardedBlockSketch. The memory budget mu is split exactly across stripes
/// (each stripe evicts independently once its share is full; see
/// StripeMuBudget); all stripes share the caller's spill store, which must
/// itself be thread-safe (kv::Db is). Keys never cross stripes, so spilled
/// blocks cannot collide. When options.background_spill is set, this
/// wrapper owns one maintenance thread shared by all stripes: eviction
/// encode+spill runs there, off every caller's path.
class ShardedSBlockSketch {
 public:
  static constexpr size_t kDefaultStripes = 16;

  /// An empty `distance` (the default) enables the batched kernel routing
  /// path (see ShardedBlockSketch).
  explicit ShardedSBlockSketch(const SBlockSketchOptions& options,
                               kv::Db* spill_db,
                               KeyDistanceFn distance = {},
                               size_t num_stripes = kDefaultStripes);

  ShardedSBlockSketch(const ShardedSBlockSketch&) = delete;
  ShardedSBlockSketch& operator=(const ShardedSBlockSketch&) = delete;

  Status Insert(std::string_view block_key, std::string_view key_values,
                RecordId id);

  /// Deterministic parallel build; returns the first per-stripe error in
  /// stripe order (all stripes still run to completion).
  Status InsertBatch(const std::vector<SketchInsert>& entries,
                     ThreadPool* pool);

  /// Candidate lookup. Lock-free when the block is live in its stripe; a
  /// miss may fault the block in from the spill store and evict another
  /// within that stripe only.
  Result<CandidateList> Candidates(std::string_view block_key,
                                   std::string_view key_values);

  size_t num_live_blocks() const;
  size_t num_stripes() const { return stripes_.size(); }

  /// Blocks until no background spill is in flight in any stripe, then
  /// returns the first sticky failure in stripe order (OK when clean).
  Status WaitForMaintenance();

  /// Aggregated counters across stripes, via instrument merge (see
  /// ShardedBlockSketch::stats).
  SBlockSketchStats stats() const;

  /// Merges every stripe's live instruments into `*out` (same contract as
  /// ShardedBlockSketch::MergeMetricsInto).
  void MergeMetricsInto(SBlockSketchMetrics* out) const;

  /// Arms per-operation latency timing in every stripe.
  void EnableLatencyTiming();

  /// Registers the merged instruments (plus live-block and memory gauges)
  /// under `instance` and enables latency timing when `registry` is
  /// enabled. The returned handles must be dropped before this sketch.
  std::vector<obs::Registration> RegisterMetrics(obs::Registry* registry,
                                                 const std::string& instance);

  const SBlockSketchOptions& options() const { return options_; }

  size_t ApproximateMemoryUsage() const;

  /// Live-block budget of stripe `stripe`: mu/n everywhere plus one for the
  /// first mu%n stripes, so the budgets sum to exactly mu (never over).
  /// Degenerate cases: SIZE_MAX (unbounded) passes through; when mu <
  /// num_stripes some stripes get the floor of 1 live block — the aggregate
  /// may then exceed mu, which is unavoidable with independent stripes and
  /// documented rather than hidden.
  static size_t StripeMuBudget(size_t mu, size_t num_stripes, size_t stripe);

 private:
  size_t StripeOf(std::string_view block_key) const;

  SBlockSketchOptions options_;
  /// Declared before stripes_ so it outlives them: stripe destructors wait
  /// out their in-flight spill jobs, which run on this thread.
  MaintenanceQueue maintenance_;
  std::vector<std::unique_ptr<SBlockSketch>> stripes_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_SHARDED_SKETCH_H_

#ifndef SKETCHLINK_CORE_SHARDED_SKETCH_H_
#define SKETCHLINK_CORE_SHARDED_SKETCH_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "core/block_sketch.h"
#include "core/sblock_sketch.h"
#include "obs/registry.h"

namespace sketchlink {

/// One record routed into a sketch: pointers into caller-owned storage that
/// must stay valid for the duration of an InsertBatch call.
struct SketchInsert {
  const std::string* block_key;
  const std::string* key_values;
  RecordId id;
};

/// Striped wrapper making BlockSketch safe for concurrent use: the blocking
/// key hashes to one of `num_stripes` independent sub-sketches, each behind
/// its own mutex, so operations on different stripes never contend.
///
/// Determinism: stripe selection depends only on the key and the (fixed)
/// stripe count — never on the thread count. InsertBatch buckets its input
/// per stripe in submission order before fanning out, and each stripe is
/// drained by exactly one task, so every sub-sketch observes the same insert
/// sequence (and therefore makes the same coin-flip decisions) whether the
/// batch runs on 1 thread or 16. Results are bit-identical for any pool
/// size; only wall-clock changes.
class ShardedBlockSketch {
 public:
  static constexpr size_t kDefaultStripes = 16;

  /// An empty `distance` (the default) selects the built-in metric of
  /// options.distance_kind and enables the batched kernel routing path in
  /// every stripe; passing a function pins the legacy scalar loop.
  explicit ShardedBlockSketch(const BlockSketchOptions& options = {},
                              KeyDistanceFn distance = {},
                              size_t num_stripes = kDefaultStripes);

  ShardedBlockSketch(const ShardedBlockSketch&) = delete;
  ShardedBlockSketch& operator=(const ShardedBlockSketch&) = delete;

  /// Single insert; takes the stripe lock. Safe to call concurrently, but
  /// concurrent single inserts make the per-stripe order scheduling-
  /// dependent — use InsertBatch for reproducible parallel builds.
  void Insert(const std::string& block_key, std::string_view key_values,
              RecordId id);

  /// Deterministic parallel build: buckets `entries` per stripe in order,
  /// then runs one task per stripe on `pool` (sequentially when pool is
  /// null).
  void InsertBatch(const std::vector<SketchInsert>& entries, ThreadPool* pool);

  /// Thread-safe candidate lookup (locks only the key's stripe).
  std::vector<RecordId> Candidates(const std::string& block_key,
                                   std::string_view key_values) const;

  size_t num_blocks() const;
  size_t num_stripes() const { return stripes_.size(); }

  /// Aggregated counters across stripes (by value: a consistent-enough
  /// snapshot for statistics, not a linearizable cut). Produced by merging
  /// the per-stripe instruments — see MergeMetricsInto.
  BlockSketchStats stats() const;

  /// Merges every stripe's live instruments into `*out`: counters add,
  /// histograms merge bucket-wise (an exact re-bucketing of the union of
  /// samples — percentiles are extracted from the merged buckets, never
  /// averaged across shards). Reads are relaxed-atomic; no stripe locks.
  void MergeMetricsInto(BlockSketchMetrics* out) const;

  /// Arms per-operation latency timing in every stripe.
  void EnableLatencyTiming();

  /// Registers the merged instruments (plus block-count and memory gauges)
  /// under `instance` and enables latency timing when `registry` is
  /// enabled. The returned handles must be dropped before this sketch; they
  /// hold closures reading it.
  std::vector<obs::Registration> RegisterMetrics(obs::Registry* registry,
                                                 const std::string& instance);

  const BlockSketchOptions& options() const { return options_; }

  size_t ApproximateMemoryUsage() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    BlockSketch sketch;

    Stripe(const BlockSketchOptions& options, KeyDistanceFn distance)
        : sketch(options, std::move(distance)) {}
  };

  size_t StripeOf(std::string_view block_key) const;

  BlockSketchOptions options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Striped wrapper for SBlockSketch with the same contract as
/// ShardedBlockSketch. The memory budget mu is split evenly across stripes
/// (each stripe evicts independently once its share is full); all stripes
/// share the caller's spill store, which must itself be thread-safe
/// (kv::Db is). Keys never cross stripes, so spilled blocks cannot collide.
class ShardedSBlockSketch {
 public:
  static constexpr size_t kDefaultStripes = 16;

  /// An empty `distance` (the default) enables the batched kernel routing
  /// path (see ShardedBlockSketch).
  explicit ShardedSBlockSketch(const SBlockSketchOptions& options,
                               kv::Db* spill_db,
                               KeyDistanceFn distance = {},
                               size_t num_stripes = kDefaultStripes);

  ShardedSBlockSketch(const ShardedSBlockSketch&) = delete;
  ShardedSBlockSketch& operator=(const ShardedSBlockSketch&) = delete;

  Status Insert(const std::string& block_key, std::string_view key_values,
                RecordId id);

  /// Deterministic parallel build; returns the first per-stripe error in
  /// stripe order (all stripes still run to completion).
  Status InsertBatch(const std::vector<SketchInsert>& entries,
                     ThreadPool* pool);

  /// Thread-safe candidate lookup. May fault blocks in from the spill store
  /// and evict others within the key's stripe; stripes evict independently.
  Result<std::vector<RecordId>> Candidates(const std::string& block_key,
                                           std::string_view key_values);

  size_t num_live_blocks() const;
  size_t num_stripes() const { return stripes_.size(); }

  /// Aggregated counters across stripes, via instrument merge (see
  /// ShardedBlockSketch::stats).
  SBlockSketchStats stats() const;

  /// Merges every stripe's live instruments into `*out` (same contract as
  /// ShardedBlockSketch::MergeMetricsInto).
  void MergeMetricsInto(SBlockSketchMetrics* out) const;

  /// Arms per-operation latency timing in every stripe.
  void EnableLatencyTiming();

  /// Registers the merged instruments (plus live-block and memory gauges)
  /// under `instance` and enables latency timing when `registry` is
  /// enabled. The returned handles must be dropped before this sketch.
  std::vector<obs::Registration> RegisterMetrics(obs::Registry* registry,
                                                 const std::string& instance);

  const SBlockSketchOptions& options() const { return options_; }

  size_t ApproximateMemoryUsage() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    SBlockSketch sketch;

    Stripe(const SBlockSketchOptions& options, kv::Db* spill_db,
           KeyDistanceFn distance)
        : sketch(options, spill_db, std::move(distance)) {}
  };

  size_t StripeOf(std::string_view block_key) const;

  SBlockSketchOptions options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_SHARDED_SKETCH_H_

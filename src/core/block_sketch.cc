#include "core/block_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/coding.h"
#include "common/memory_tracker.h"
#include "obs/spans.h"
#include "simd/dispatch.h"
#include "simd/score_batch.h"
#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/qgram.h"

namespace sketchlink {

KeyDistanceFn DefaultKeyDistance() {
  return [](std::string_view a, std::string_view b) {
    return text::JaroWinklerDistance(a, b);
  };
}

size_t BlockSketchOptions::rho() const {
  const double d = std::clamp(delta, 1e-9, 0.999999);
  return static_cast<size_t>(
      std::ceil(static_cast<double>(lambda) * std::log(1.0 / d)));
}

size_t SketchBlock::TotalMembers() const {
  size_t total = 0;
  for (const SketchSubBlock& sub : subs) total += sub.members.size();
  return total;
}

namespace {

size_t ProfileHeapBytes(const QGramProfile& profile) {
  size_t bytes = profile.capacity() * sizeof(std::string);
  for (const std::string& gram : profile) bytes += StringHeapBytes(gram);
  return bytes;
}

/// Builds the per-sub RepSet pointer array for routing, spilling to the
/// heap only past kInlineSubs sub-blocks (lambda is small in practice).
constexpr size_t kInlineSubs = 16;

/// Test hook (see SketchPolicy::SetGatherRoutingForTesting): forces the
/// legacy AoS gather path so the layout cross-check can diff it against the
/// SoA fast path.
std::atomic<bool> g_force_gather_routing{false};

}  // namespace

void RepSet::FinalizePacked() {
  packed.text_bytes.clear();
  packed.text_offsets.clear();
  packed.text_lens.clear();
  packed.text_offsets.reserve(representatives.size());
  packed.text_lens.reserve(representatives.size());
  for (const std::string& rep : representatives) {
    packed.text_offsets.push_back(
        static_cast<uint32_t>(packed.text_bytes.size()));
    packed.text_lens.push_back(static_cast<uint32_t>(rep.size()));
    packed.text_bytes.append(rep);
  }
}

void RepSet::AppendPacked(std::string_view text) {
  packed.text_offsets.push_back(
      static_cast<uint32_t>(packed.text_bytes.size()));
  packed.text_lens.push_back(static_cast<uint32_t>(text.size()));
  packed.text_bytes.append(text);
}

size_t RepSet::ApproximateHeapBytes() const {
  size_t bytes = representatives.capacity() * sizeof(std::string);
  bytes += StringHeapBytes(packed.text_bytes);
  bytes += packed.text_offsets.capacity() * sizeof(uint32_t);
  bytes += packed.text_lens.capacity() * sizeof(uint32_t);
  for (const std::string& rep : representatives) {
    bytes += StringHeapBytes(rep);
  }
  for (const QGramProfile& profile : rep_profiles) {
    bytes += sizeof(QGramProfile) + ProfileHeapBytes(profile);
  }
  bytes += rep_patterns.capacity() * sizeof(simd::JaroPattern);
  bytes += rep_bits.capacity() * sizeof(simd::BitProfile);
  for (const simd::BitProfile& bits : rep_bits) {
    bytes += bits.HeapBytes();
  }
  return bytes;
}

size_t SketchBlock::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this) + StringHeapBytes(anchor) +
                 ProfileHeapBytes(anchor_profile) +
                 subs.capacity() * sizeof(SketchSubBlock);
  bytes += anchor_bits.HeapBytes();
  for (const SketchSubBlock& sub : subs) {
    bytes += sub.ApproximateHeapBytes();
    bytes += sub.members.capacity() * sizeof(RecordId);
  }
  return bytes;
}

void SketchBlock::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, anchor);
  PutVarint32(dst, static_cast<uint32_t>(subs.size()));
  for (const SketchSubBlock& sub : subs) {
    PutVarint32(dst, static_cast<uint32_t>(sub.representatives.size()));
    for (const std::string& rep : sub.representatives) {
      PutLengthPrefixed(dst, rep);
    }
    PutVarint32(dst, static_cast<uint32_t>(sub.members.size()));
    for (RecordId id : sub.members) {
      PutVarint64(dst, id);
    }
  }
}

Result<SketchBlock> SketchBlock::DecodeFrom(std::string_view* input) {
  std::string_view anchor;
  uint32_t num_subs;
  if (!GetLengthPrefixed(input, &anchor) || !GetVarint32(input, &num_subs)) {
    return Status::Corruption("truncated block header");
  }
  SketchBlock block(num_subs);
  block.anchor.assign(anchor);
  for (uint32_t s = 0; s < num_subs; ++s) {
    uint32_t num_reps;
    if (!GetVarint32(input, &num_reps)) {
      return Status::Corruption("truncated sub-block reps");
    }
    block.subs[s].representatives.reserve(num_reps);
    for (uint32_t r = 0; r < num_reps; ++r) {
      std::string_view rep;
      if (!GetLengthPrefixed(input, &rep)) {
        return Status::Corruption("truncated representative");
      }
      block.subs[s].representatives.emplace_back(rep);
    }
    uint32_t num_members;
    if (!GetVarint32(input, &num_members)) {
      return Status::Corruption("truncated sub-block members");
    }
    block.subs[s].members.reserve(num_members);
    for (uint32_t m = 0; m < num_members; ++m) {
      uint64_t id;
      if (!GetVarint64(input, &id)) {
        return Status::Corruption("truncated member id");
      }
      block.subs[s].members.push_back(id);
    }
  }
  return block;
}

SketchPolicy::SketchPolicy(const BlockSketchOptions& options,
                           KeyDistanceFn distance)
    : options_(options),
      distance_(std::move(distance)),
      rng_(options.seed ^ 0x7e97e9ULL) {}

QGramProfile SketchPolicy::MakeProfile(std::string_view text) const {
  QGramProfile profile = text::QGrams(text, options_.qgram);
  std::sort(profile.begin(), profile.end());
  return profile;
}

double SketchPolicy::ProfileDistance(const QGramProfile& a,
                                     const QGramProfile& b) {
  // Multiset Dice over pre-sorted profiles; mirrors text::QGramDice exactly
  // (including its empty-string conventions) without re-tokenizing.
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  size_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  const double dice = 2.0 * static_cast<double>(common) /
                      static_cast<double>(a.size() + b.size());
  return 1.0 - dice;
}

void SketchPolicy::SetGatherRoutingForTesting(bool force) {
  g_force_gather_routing.store(force, std::memory_order_relaxed);
}

bool SketchPolicy::KernelRoutingActive() const {
  return !distance_ && simd::KernelsEnabled();
}

double SketchPolicy::ScalarKeyDistance(std::string_view a,
                                       std::string_view b) const {
  if (distance_) return distance_(a, b);
  switch (options_.distance_kind) {
    case KeyDistanceKind::kJaroWinkler:
      return text::JaroWinklerDistance(a, b);
    case KeyDistanceKind::kQGramDice:
      // Unreachable: kQGramDice routes through the profile caches.
      return 1.0 - text::QGramDice(a, b, options_.qgram);
    case KeyDistanceKind::kLevenshtein:
      return text::NormalizedLevenshteinDistance(a, b);
  }
  return 0.0;
}

void SketchPolicy::UpdateKernelCaches(RepSet* sub, size_t replace_index,
                                      std::string_view key_values) const {
  if (!KernelRoutingActive()) return;
  switch (options_.distance_kind) {
    case KeyDistanceKind::kJaroWinkler: {
      if (replace_index == SIZE_MAX) sub->rep_patterns.emplace_back();
      simd::JaroPattern& pattern = replace_index == SIZE_MAX
                                       ? sub->rep_patterns.back()
                                       : sub->rep_patterns[replace_index];
      simd::BuildJaroPattern(key_values, &pattern);
      break;
    }
    case KeyDistanceKind::kQGramDice: {
      simd::BitProfile bits = simd::MakeBitProfile(key_values, options_.qgram);
      if (replace_index == SIZE_MAX) {
        sub->rep_bits.push_back(std::move(bits));
      } else {
        sub->rep_bits[replace_index] = std::move(bits);
      }
      break;
    }
    case KeyDistanceKind::kLevenshtein:
      break;  // the Myers kernel needs only the strings themselves
  }
}

namespace {

/// Anchor seeding shared by both block representations (identical member
/// names by design).
template <typename Block>
void SeedAnchorInto(Block* block, std::string_view key_values,
                    const BlockSketchOptions& options, bool use_profiles,
                    bool kernels, const SketchPolicy& policy) {
  block->anchor.assign(key_values);
  if (use_profiles) block->anchor_profile = policy.MakeProfile(key_values);
  if (kernels) {
    if (options.distance_kind == KeyDistanceKind::kJaroWinkler) {
      simd::BuildJaroPattern(block->anchor, &block->anchor_pattern);
    } else if (options.distance_kind == KeyDistanceKind::kQGramDice) {
      block->anchor_bits = simd::MakeBitProfile(block->anchor, options.qgram);
    }
  }
}

}  // namespace

void SketchPolicy::SeedAnchor(SketchBlock* block,
                              std::string_view key_values) const {
  SeedAnchorInto(block, key_values, options_, UsesProfiles(),
                 KernelRoutingActive(), *this);
}

void SketchPolicy::SeedAnchor(PublishedBlock* block,
                              std::string_view key_values) const {
  SeedAnchorInto(block, key_values, options_, UsesProfiles(),
                 KernelRoutingActive(), *this);
}

void SketchPolicy::RehydrateProfiles(SketchBlock* block) const {
  if (UsesProfiles()) {
    block->anchor_profile = MakeProfile(block->anchor);
    for (SketchSubBlock& sub : block->subs) {
      sub.rep_profiles.clear();
      sub.rep_profiles.reserve(sub.representatives.size());
      for (const std::string& rep : sub.representatives) {
        sub.rep_profiles.push_back(MakeProfile(rep));
      }
    }
  }
  if (!KernelRoutingActive()) return;
  if (options_.distance_kind == KeyDistanceKind::kJaroWinkler) {
    simd::BuildJaroPattern(block->anchor, &block->anchor_pattern);
  } else if (options_.distance_kind == KeyDistanceKind::kQGramDice) {
    block->anchor_bits = simd::MakeBitProfile(block->anchor, options_.qgram);
  }
  for (SketchSubBlock& sub : block->subs) {
    sub.rep_patterns.clear();
    sub.rep_bits.clear();
    for (const std::string& rep : sub.representatives) {
      UpdateKernelCaches(&sub, SIZE_MAX, rep);
    }
    sub.FinalizePacked();
  }
}

size_t SketchPolicy::ChooseSubBlock(const SketchBlock& block,
                                    std::string_view key_values,
                                    uint64_t* comparisons) const {
  const RouteDecision decision = Route(block, key_values);
  if (comparisons != nullptr) *comparisons += decision.comparisons;
  return decision.sub;
}

SketchPolicy::RouteDecision SketchPolicy::Route(
    const SketchBlock& block, std::string_view key_values) const {
  const RepSet* inline_subs[kInlineSubs];
  std::vector<const RepSet*> heap_subs;
  const RepSet** subs = inline_subs;
  if (block.subs.size() > kInlineSubs) {
    heap_subs.resize(block.subs.size());
    subs = heap_subs.data();
  }
  for (size_t i = 0; i < block.subs.size(); ++i) subs[i] = &block.subs[i];
  const AnchorView anchor{block.anchor, &block.anchor_profile,
                          &block.anchor_pattern, &block.anchor_bits};
  return RouteView(anchor, subs, block.subs.size(), key_values);
}

SketchPolicy::RouteDecision SketchPolicy::Route(
    const PublishedBlock& block, std::string_view key_values) const {
  // One acquire load per sub pins this decision to a consistent set of
  // reservoir snapshots; concurrent re-publishes affect later routes only.
  const RepSet* inline_subs[kInlineSubs];
  std::vector<const RepSet*> heap_subs;
  const RepSet** subs = inline_subs;
  if (block.num_subs() > kInlineSubs) {
    heap_subs.resize(block.num_subs());
    subs = heap_subs.data();
  }
  for (size_t i = 0; i < block.num_subs(); ++i) {
    subs[i] = block.sub(i).reps.load(std::memory_order_acquire);
  }
  const AnchorView anchor{block.anchor, &block.anchor_profile,
                          &block.anchor_pattern, &block.anchor_bits};
  return RouteView(anchor, subs, block.num_subs(), key_values);
}

SketchPolicy::RouteDecision SketchPolicy::RouteView(
    const AnchorView& anchor, const RepSet* const* subs, size_t num_subs,
    std::string_view key_values) const {
  // The routing decision is the comparison-heavy kernel of every insert and
  // query; its span is what separates "slow route" from "slow store" in a
  // trace.
  obs::Span span("sketch", "route");
  return KernelRoutingActive()
             ? RouteWithKernels(anchor, subs, num_subs, key_values)
             : RouteScalar(anchor, subs, num_subs, key_values);
}

SketchPolicy::RouteDecision SketchPolicy::RouteScalar(
    const AnchorView& anchor, const RepSet* const* subs, size_t num_subs,
    std::string_view key_values) const {
  RouteDecision decision;
  const bool profiles = UsesProfiles();
  // Under kQGramDice the query side is tokenized once per routing decision;
  // every representative comparison then reuses the cached profiles.
  QGramProfile query_profile;
  if (profiles) query_profile = MakeProfile(key_values);

  // Distance ring of the key, measured from the block anchor (the
  // <=theta, <=2*theta, ..., <=lambda*theta bands of Sec. 5).
  const double anchor_distance =
      profiles ? ProfileDistance(query_profile, *anchor.profile)
               : ScalarKeyDistance(key_values, anchor.anchor);
  ++decision.comparisons;
  const double theta = std::max(options_.theta, 1e-9);
  const size_t ring = std::min(static_cast<size_t>(anchor_distance / theta),
                               options_.lambda - 1);

  // A key whose ring is still unrepresented seeds it: this is how the
  // farther sub-blocks of Fig. 4 acquire their first representative.
  if (subs[ring]->representatives.empty()) {
    decision.sub = ring;
    return decision;
  }

  // Algorithm 3: otherwise the sub-block whose representative exhibits the
  // smallest distance from the key values wins.
  size_t best = ring;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < num_subs; ++i) {
    const RepSet& sub = *subs[i];
    for (size_t r = 0; r < sub.representatives.size(); ++r) {
      const double d =
          profiles ? ProfileDistance(query_profile, sub.rep_profiles[r])
                   : ScalarKeyDistance(key_values, sub.representatives[r]);
      ++decision.comparisons;
      ++decision.evaluated;
      if (d < best_distance) {
        best = i;
        best_distance = d;
      }
    }
  }
  decision.sub = best;
  return decision;
}

SketchPolicy::RouteDecision SketchPolicy::RouteWithKernels(
    const AnchorView& anchor, const RepSet* const* subs, size_t num_subs,
    std::string_view key_values) const {
  RouteDecision decision;

  simd::BatchMetric metric = simd::BatchMetric::kJaroWinkler;
  switch (options_.distance_kind) {
    case KeyDistanceKind::kJaroWinkler:
      metric = simd::BatchMetric::kJaroWinkler;
      break;
    case KeyDistanceKind::kQGramDice:
      metric = simd::BatchMetric::kQGramDice;
      break;
    case KeyDistanceKind::kLevenshtein:
      metric = simd::BatchMetric::kLevenshtein;
      break;
  }
  // Query-side preprocessing happens once per routing decision, like the
  // legacy query_profile.
  simd::BitProfile query_bits;
  if (metric == simd::BatchMetric::kQGramDice) {
    query_bits = simd::MakeBitProfile(key_values, options_.qgram);
  }
  const simd::BatchQuery query =
      metric == simd::BatchMetric::kQGramDice
          ? simd::BatchQuery(metric, key_values, &query_bits)
          : simd::BatchQuery(metric, key_values);

  const simd::BatchCandidate anchor_candidate{anchor.anchor, anchor.pattern,
                                              anchor.bits};
  const double anchor_distance = query.Distance(anchor_candidate);
  ++decision.comparisons;
  const double theta = std::max(options_.theta, 1e-9);
  const size_t ring = std::min(static_cast<size_t>(anchor_distance / theta),
                               options_.lambda - 1);
  if (subs[ring]->representatives.empty()) {
    decision.sub = ring;
    return decision;
  }

  size_t total = 0;
  bool soa_ready = !g_force_gather_routing.load(std::memory_order_relaxed);
  for (size_t i = 0; i < num_subs; ++i) {
    total += subs[i]->representatives.size();
    soa_ready = soa_ready && subs[i]->PackedConsistent();
  }

  if (soa_ready) {
    // SoA fast path: each sub-block's reservoir is already published as a
    // contiguous {text run, offsets, lens} snapshot, so no gather step is
    // needed. Scoring per sub with the running best carried across subs is
    // bit-identical to one flat batch over the concatenation: bounds never
    // depend on the running best, and the (sub, rep) evaluation order is
    // unchanged — a later sub updates the argmin only on a strict
    // improvement, exactly the flat first-minimum rule.
    decision.comparisons += total;  // historical accounting: one per rep
    decision.batch_size = total;
    decision.batched = true;
    double best_distance = std::numeric_limits<double>::infinity();
    size_t best_sub = SIZE_MAX;
    for (size_t i = 0; i < num_subs; ++i) {
      const RepSet& sub = *subs[i];
      const size_t count = sub.representatives.size();
      if (count == 0) continue;
      simd::BatchSoA soa;
      soa.count = count;
      soa.text_bytes = sub.packed.text_bytes.data();
      soa.text_offsets = sub.packed.text_offsets.data();
      soa.text_lens = sub.packed.text_lens.data();
      soa.patterns =
          sub.rep_patterns.size() == count ? sub.rep_patterns.data() : nullptr;
      soa.profiles =
          sub.rep_bits.size() == count ? sub.rep_bits.data() : nullptr;
      const simd::BatchResult result = query.Score(soa, best_distance);
      decision.evaluated += result.evaluated;
      decision.pruned += result.pruned;
      if (result.best_index != SIZE_MAX) {
        best_distance = result.best_distance;
        best_sub = i;
      }
    }
    decision.sub = best_sub == SIZE_MAX ? ring : best_sub;
    return decision;
  }

  // Gather path: one batch over all lambda*rho representatives, flat
  // (sub, rep) order — the exact scan order of the scalar loop, so the
  // first-minimum argmin is identical.
  constexpr size_t kInlineCandidates = 64;
  simd::BatchCandidate inline_buf[kInlineCandidates];
  std::vector<simd::BatchCandidate> heap_buf;
  simd::BatchCandidate* candidates = inline_buf;
  if (total > kInlineCandidates) {
    heap_buf.resize(total);
    candidates = heap_buf.data();
  }
  size_t k = 0;
  for (size_t i = 0; i < num_subs; ++i) {
    const RepSet& sub = *subs[i];
    const bool has_patterns =
        sub.rep_patterns.size() == sub.representatives.size();
    const bool has_bits = sub.rep_bits.size() == sub.representatives.size();
    for (size_t r = 0; r < sub.representatives.size(); ++r) {
      candidates[k].text = sub.representatives[r];
      candidates[k].jaro = has_patterns ? &sub.rep_patterns[r] : nullptr;
      candidates[k].profile = has_bits ? &sub.rep_bits[r] : nullptr;
      ++k;
    }
  }

  const simd::BatchResult result = query.Score(candidates, total);
  decision.comparisons += total;  // historical accounting: one per rep
  decision.evaluated = result.evaluated;
  decision.pruned = result.pruned;
  decision.batch_size = total;
  decision.batched = true;

  decision.sub = ring;
  if (result.best_index != SIZE_MAX) {
    size_t offset = result.best_index;
    for (size_t i = 0; i < num_subs; ++i) {
      const size_t count = subs[i]->representatives.size();
      if (offset < count) {
        decision.sub = i;
        break;
      }
      offset -= count;
    }
  }
  return decision;
}

SketchPolicy::RepUpdate SketchPolicy::PlanRepUpdate(
    size_t current_reps) const {
  const size_t rho = options_.rho();
  RepUpdate update;
  if (current_reps < rho) {
    update.kind = RepUpdate::Kind::kAppend;
    return update;
  }
  if (rho == 0) return update;
  // Coin toss; on heads a uniformly random old representative is evicted
  // in favour of the new key (Sec. 5, representative replacement).
  if (rng_.CoinFlip()) {
    update.kind = RepUpdate::Kind::kReplace;
    update.index = rng_.UniformIndex(current_reps);
  }
  return update;
}

void SketchPolicy::ApplyRepUpdate(RepSet* reps, const RepUpdate& update,
                                  std::string_view key_values) const {
  switch (update.kind) {
    case RepUpdate::Kind::kNone:
      return;
    case RepUpdate::Kind::kAppend:
      reps->representatives.emplace_back(key_values);
      if (UsesProfiles()) reps->rep_profiles.push_back(MakeProfile(key_values));
      UpdateKernelCaches(reps, SIZE_MAX, key_values);
      if (KernelRoutingActive()) {
        if (reps->packed.text_lens.size() + 1 == reps->representatives.size()) {
          reps->AppendPacked(key_values);
        } else {
          reps->FinalizePacked();
        }
      }
      return;
    case RepUpdate::Kind::kReplace:
      reps->representatives[update.index].assign(key_values);
      if (UsesProfiles()) {
        reps->rep_profiles[update.index] = MakeProfile(key_values);
      }
      UpdateKernelCaches(reps, update.index, key_values);
      if (KernelRoutingActive()) reps->FinalizePacked();
      return;
  }
}

void SketchPolicy::MaybeAddRepresentative(RepSet* sub,
                                          std::string_view key_values) const {
  ApplyRepUpdate(sub, PlanRepUpdate(sub->representatives.size()), key_values);
}

BlockSketch::BlockSketch(const BlockSketchOptions& options,
                         KeyDistanceFn distance)
    : policy_(options, std::move(distance)) {}

void BlockSketch::Insert(std::string_view block_key,
                         std::string_view key_values, RecordId id) {
  obs::Span span("sketch", "insert");
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.insert_timer() : nullptr);
  metrics_.inserts.Inc();
  std::lock_guard<std::mutex> lock(write_mu_);
  const StringInterner::Id key_id = interner_.Intern(block_key);
  // The writer probes without a guard: nothing can be retired under it.
  std::shared_ptr<PublishedBlock> block = blocks_.Find(key_id);
  if (block == nullptr) {
    metrics_.blocks_created.Inc();
    block = std::make_shared<PublishedBlock>(policy_.options().lambda);
    policy_.SeedAnchor(block.get(), key_values);
    // Published with the anchor set but no members yet: a concurrent query
    // sees an empty (but consistent) block until this insert lands.
    blocks_.Insert(key_id, block);
  }
  const SketchPolicy::RouteDecision decision =
      policy_.Route(*block, key_values);
  metrics_.representative_comparisons.Add(decision.comparisons);
  if (decision.batched) {
    metrics_.route_batches.Inc();
    metrics_.reps_pruned.Add(decision.pruned);
    metrics_.route_batch_size.Record(decision.batch_size);
  }
  block->sub(decision.sub).members.Append(id);
  const RepSet* current =
      block->sub(decision.sub).reps.load(std::memory_order_relaxed);
  const SketchPolicy::RepUpdate update =
      policy_.PlanRepUpdate(current->representatives.size());
  if (update.kind != SketchPolicy::RepUpdate::Kind::kNone) {
    auto* fresh = new RepSet(*current);
    policy_.ApplyRepUpdate(fresh, update, key_values);
    block->PublishReps(decision.sub, fresh);
  }
}

CandidateList BlockSketch::Candidates(std::string_view block_key,
                                      std::string_view key_values) const {
  obs::Span span("sketch", "candidates");
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.query_timer() : nullptr);
  metrics_.queries.Inc();
  // A key that was never interned was never inserted: answer the miss from
  // the interner probe alone.
  const StringInterner::Id key_id = interner_.Find(block_key);
  if (key_id == StringInterner::kInvalidId) return CandidateList();
  epoch::ReadGuard guard;
  std::shared_ptr<PublishedBlock> block = blocks_.Find(key_id);
  if (block == nullptr) return CandidateList();
  const SketchPolicy::RouteDecision decision =
      policy_.Route(*block, key_values);
  metrics_.representative_comparisons.Add(decision.comparisons);
  if (decision.batched) {
    metrics_.route_batches.Inc();
    metrics_.reps_pruned.Add(decision.pruned);
    metrics_.route_batch_size.Record(decision.batch_size);
  }
  CandidateList candidates(std::move(block), decision.sub);
  metrics_.candidates_returned.Add(candidates.size());
  return candidates;
}

bool BlockSketch::HasBlock(std::string_view block_key) const {
  const StringInterner::Id key_id = interner_.Find(block_key);
  if (key_id == StringInterner::kInvalidId) return false;
  epoch::ReadGuard guard;
  return blocks_.Find(key_id) != nullptr;
}

std::shared_ptr<const SketchBlock> BlockSketch::FindBlock(
    std::string_view block_key) const {
  const StringInterner::Id key_id = interner_.Find(block_key);
  if (key_id == StringInterner::kInvalidId) return nullptr;
  epoch::ReadGuard guard;
  std::shared_ptr<PublishedBlock> block = blocks_.Find(key_id);
  if (block == nullptr) return nullptr;
  return std::make_shared<const SketchBlock>(block->Materialize());
}

size_t BlockSketch::ApproximateMemoryUsage() const {
  epoch::ReadGuard guard;
  size_t bytes = sizeof(*this) + interner_.ApproximateMemoryUsage();
  blocks_.ForEach([&bytes](uint32_t /*key*/,
                           const std::shared_ptr<PublishedBlock>& block) {
    bytes += block->ApproximateMemoryUsage() +
             sizeof(void*) * 2;  // hash-table entry overhead estimate
  });
  return bytes;
}

}  // namespace sketchlink

#include "core/block_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/coding.h"
#include "common/memory_tracker.h"
#include "text/jaro.h"
#include "text/qgram.h"

namespace sketchlink {

KeyDistanceFn DefaultKeyDistance() {
  return [](std::string_view a, std::string_view b) {
    return text::JaroWinklerDistance(a, b);
  };
}

size_t BlockSketchOptions::rho() const {
  const double d = std::clamp(delta, 1e-9, 0.999999);
  return static_cast<size_t>(
      std::ceil(static_cast<double>(lambda) * std::log(1.0 / d)));
}

size_t SketchBlock::TotalMembers() const {
  size_t total = 0;
  for (const SketchSubBlock& sub : subs) total += sub.members.size();
  return total;
}

namespace {

size_t ProfileHeapBytes(const QGramProfile& profile) {
  size_t bytes = profile.capacity() * sizeof(std::string);
  for (const std::string& gram : profile) bytes += StringHeapBytes(gram);
  return bytes;
}

}  // namespace

size_t SketchBlock::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this) + StringHeapBytes(anchor) +
                 ProfileHeapBytes(anchor_profile) +
                 subs.capacity() * sizeof(SketchSubBlock);
  for (const SketchSubBlock& sub : subs) {
    bytes += sub.representatives.capacity() * sizeof(std::string);
    for (const std::string& rep : sub.representatives) {
      bytes += StringHeapBytes(rep);
    }
    for (const QGramProfile& profile : sub.rep_profiles) {
      bytes += sizeof(QGramProfile) + ProfileHeapBytes(profile);
    }
    bytes += sub.members.capacity() * sizeof(RecordId);
  }
  return bytes;
}

void SketchBlock::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, anchor);
  PutVarint32(dst, static_cast<uint32_t>(subs.size()));
  for (const SketchSubBlock& sub : subs) {
    PutVarint32(dst, static_cast<uint32_t>(sub.representatives.size()));
    for (const std::string& rep : sub.representatives) {
      PutLengthPrefixed(dst, rep);
    }
    PutVarint32(dst, static_cast<uint32_t>(sub.members.size()));
    for (RecordId id : sub.members) {
      PutVarint64(dst, id);
    }
  }
}

Result<SketchBlock> SketchBlock::DecodeFrom(std::string_view* input) {
  std::string_view anchor;
  uint32_t num_subs;
  if (!GetLengthPrefixed(input, &anchor) || !GetVarint32(input, &num_subs)) {
    return Status::Corruption("truncated block header");
  }
  SketchBlock block(num_subs);
  block.anchor.assign(anchor);
  for (uint32_t s = 0; s < num_subs; ++s) {
    uint32_t num_reps;
    if (!GetVarint32(input, &num_reps)) {
      return Status::Corruption("truncated sub-block reps");
    }
    block.subs[s].representatives.reserve(num_reps);
    for (uint32_t r = 0; r < num_reps; ++r) {
      std::string_view rep;
      if (!GetLengthPrefixed(input, &rep)) {
        return Status::Corruption("truncated representative");
      }
      block.subs[s].representatives.emplace_back(rep);
    }
    uint32_t num_members;
    if (!GetVarint32(input, &num_members)) {
      return Status::Corruption("truncated sub-block members");
    }
    block.subs[s].members.reserve(num_members);
    for (uint32_t m = 0; m < num_members; ++m) {
      uint64_t id;
      if (!GetVarint64(input, &id)) {
        return Status::Corruption("truncated member id");
      }
      block.subs[s].members.push_back(id);
    }
  }
  return block;
}

SketchPolicy::SketchPolicy(const BlockSketchOptions& options,
                           KeyDistanceFn distance)
    : options_(options),
      distance_(std::move(distance)),
      rng_(options.seed ^ 0x7e97e9ULL) {}

QGramProfile SketchPolicy::MakeProfile(std::string_view text) const {
  QGramProfile profile = text::QGrams(text, options_.qgram);
  std::sort(profile.begin(), profile.end());
  return profile;
}

double SketchPolicy::ProfileDistance(const QGramProfile& a,
                                     const QGramProfile& b) {
  // Multiset Dice over pre-sorted profiles; mirrors text::QGramDice exactly
  // (including its empty-string conventions) without re-tokenizing.
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  size_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  const double dice = 2.0 * static_cast<double>(common) /
                      static_cast<double>(a.size() + b.size());
  return 1.0 - dice;
}

void SketchPolicy::SeedAnchor(SketchBlock* block,
                              std::string_view key_values) const {
  block->anchor.assign(key_values);
  if (UsesProfiles()) block->anchor_profile = MakeProfile(key_values);
}

void SketchPolicy::RehydrateProfiles(SketchBlock* block) const {
  if (!UsesProfiles()) return;
  block->anchor_profile = MakeProfile(block->anchor);
  for (SketchSubBlock& sub : block->subs) {
    sub.rep_profiles.clear();
    sub.rep_profiles.reserve(sub.representatives.size());
    for (const std::string& rep : sub.representatives) {
      sub.rep_profiles.push_back(MakeProfile(rep));
    }
  }
}

size_t SketchPolicy::ChooseSubBlock(const SketchBlock& block,
                                    std::string_view key_values,
                                    uint64_t* comparisons) const {
  const bool profiles = UsesProfiles();
  // Under kQGramDice the query side is tokenized once per routing decision;
  // every representative comparison then reuses the cached profiles.
  QGramProfile query_profile;
  if (profiles) query_profile = MakeProfile(key_values);

  // Distance ring of the key, measured from the block anchor (the
  // <=theta, <=2*theta, ..., <=lambda*theta bands of Sec. 5).
  const double anchor_distance =
      profiles ? ProfileDistance(query_profile, block.anchor_profile)
               : distance_(key_values, block.anchor);
  if (comparisons != nullptr) ++*comparisons;
  const double theta = std::max(options_.theta, 1e-9);
  const size_t ring = std::min(static_cast<size_t>(anchor_distance / theta),
                               options_.lambda - 1);

  // A key whose ring is still unrepresented seeds it: this is how the
  // farther sub-blocks of Fig. 4 acquire their first representative.
  if (block.subs[ring].representatives.empty()) return ring;

  // Algorithm 3: otherwise the sub-block whose representative exhibits the
  // smallest distance from the key values wins.
  size_t best = ring;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < block.subs.size(); ++i) {
    const SketchSubBlock& sub = block.subs[i];
    for (size_t r = 0; r < sub.representatives.size(); ++r) {
      const double d =
          profiles ? ProfileDistance(query_profile, sub.rep_profiles[r])
                   : distance_(key_values, sub.representatives[r]);
      if (comparisons != nullptr) ++*comparisons;
      if (d < best_distance) {
        best = i;
        best_distance = d;
      }
    }
  }
  return best;
}

void SketchPolicy::MaybeAddRepresentative(SketchSubBlock* sub,
                                          std::string_view key_values) const {
  const size_t rho = options_.rho();
  if (sub->representatives.size() < rho) {
    sub->representatives.emplace_back(key_values);
    if (UsesProfiles()) sub->rep_profiles.push_back(MakeProfile(key_values));
    return;
  }
  if (rho == 0) return;
  // Coin toss; on heads a uniformly random old representative is evicted
  // in favour of the new key (Sec. 5, representative replacement).
  if (rng_.CoinFlip()) {
    const size_t victim = rng_.UniformIndex(sub->representatives.size());
    sub->representatives[victim].assign(key_values);
    if (UsesProfiles()) sub->rep_profiles[victim] = MakeProfile(key_values);
  }
}

BlockSketch::BlockSketch(const BlockSketchOptions& options,
                         KeyDistanceFn distance)
    : policy_(options, std::move(distance)) {}

void BlockSketch::Insert(const std::string& block_key,
                         std::string_view key_values, RecordId id) {
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.insert_timer() : nullptr);
  metrics_.inserts.Inc();
  auto [it, created] =
      blocks_.try_emplace(block_key, policy_.options().lambda);
  if (created) {
    metrics_.blocks_created.Inc();
    policy_.SeedAnchor(&it->second, key_values);
  }
  SketchBlock& block = it->second;
  uint64_t comparisons = 0;
  const size_t sub = policy_.ChooseSubBlock(block, key_values, &comparisons);
  metrics_.representative_comparisons.Add(comparisons);
  block.subs[sub].members.push_back(id);
  policy_.MaybeAddRepresentative(&block.subs[sub], key_values);
}

std::vector<RecordId> BlockSketch::Candidates(
    const std::string& block_key, std::string_view key_values) const {
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.query_timer() : nullptr);
  metrics_.queries.Inc();
  auto it = blocks_.find(block_key);
  if (it == blocks_.end()) return {};
  uint64_t comparisons = 0;
  const size_t sub =
      policy_.ChooseSubBlock(it->second, key_values, &comparisons);
  metrics_.representative_comparisons.Add(comparisons);
  const std::vector<RecordId>& members = it->second.subs[sub].members;
  metrics_.candidates_returned.Add(members.size());
  return members;
}

const SketchBlock* BlockSketch::FindBlock(const std::string& block_key) const {
  auto it = blocks_.find(block_key);
  return it == blocks_.end() ? nullptr : &it->second;
}

size_t BlockSketch::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, block] : blocks_) {
    bytes += StringFootprint(key) + block.ApproximateMemoryUsage() +
             sizeof(void*) * 2;  // hash-table node overhead estimate
  }
  return bytes;
}

}  // namespace sketchlink

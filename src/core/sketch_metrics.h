#ifndef SKETCHLINK_CORE_SKETCH_METRICS_H_
#define SKETCHLINK_CORE_SKETCH_METRICS_H_

// Observability instruments of the sketch structures, plus the plain stat
// structs the public stats() accessors return. The instruments are the
// single source of truth — the stat structs are thin views built on demand
// — so the same numbers back the historical accessors, the registry
// exporters, and the sharded aggregation (which merges instruments instead
// of adding view fields).

#include <atomic>
#include <cstdint>

#include "obs/instruments.h"

namespace sketchlink {

/// Counters for the experiments (view type; see BlockSketchMetrics).
struct BlockSketchStats {
  uint64_t inserts = 0;
  uint64_t queries = 0;
  /// Distance computations against representatives (the paper's "constant
  /// number of comparisons": lambda * rho per operation).
  uint64_t representative_comparisons = 0;
  uint64_t blocks_created = 0;
  /// Candidates handed to the matcher across all queries.
  uint64_t candidates_returned = 0;
};

/// Counters for the experiments (view type; see SBlockSketchMetrics).
struct SBlockSketchStats {
  uint64_t inserts = 0;
  uint64_t queries = 0;
  uint64_t live_hits = 0;    // operations served from the hash table T
  uint64_t disk_loads = 0;   // blocks pulled back from secondary storage
  uint64_t evictions = 0;    // blocks spilled to secondary storage
  uint64_t query_misses = 0; // queries for block keys the stream never made
  uint64_t representative_comparisons = 0;
  uint64_t candidates_returned = 0;
};

/// Live instruments of one BlockSketch. Counters always count (relaxed
/// atomics, plain-integer cost); the latency histograms only receive
/// samples while `timing_enabled` is set — flipped when the sketch is
/// attached to an enabled registry. It is an atomic flag (relaxed) because
/// lock-free query paths read it concurrently with EnableLatencyTiming.
struct BlockSketchMetrics {
  obs::Counter inserts;
  obs::Counter queries;
  obs::Counter representative_comparisons;
  obs::Counter blocks_created;
  obs::Counter candidates_returned;
  /// Kernel-path telemetry: routing decisions that took the batched kernel
  /// scan, representatives skipped by its prune bounds (pruning never
  /// changes the chosen sub-block), and the size distribution of those
  /// batches. All zero on the legacy scalar path.
  obs::Counter route_batches;
  obs::Counter reps_pruned;
  obs::Histogram route_batch_size;
  obs::Histogram query_latency_nanos;
  obs::Histogram insert_latency_nanos;
  std::atomic<bool> timing_enabled{false};

  /// Adds `other`'s counters and histogram buckets into this accumulator —
  /// the shard-aggregation primitive (histograms merge exactly by bucket;
  /// percentiles are extracted only after merging, never averaged).
  void MergeFrom(const BlockSketchMetrics& other) {
    inserts.Merge(other.inserts);
    queries.Merge(other.queries);
    representative_comparisons.Merge(other.representative_comparisons);
    blocks_created.Merge(other.blocks_created);
    candidates_returned.Merge(other.candidates_returned);
    route_batches.Merge(other.route_batches);
    reps_pruned.Merge(other.reps_pruned);
    route_batch_size.Merge(other.route_batch_size);
    query_latency_nanos.Merge(other.query_latency_nanos);
    insert_latency_nanos.Merge(other.insert_latency_nanos);
  }

  /// The historical stats view (one relaxed load per field).
  BlockSketchStats ToStats() const {
    BlockSketchStats stats;
    stats.inserts = inserts.value();
    stats.queries = queries.value();
    stats.representative_comparisons = representative_comparisons.value();
    stats.blocks_created = blocks_created.value();
    stats.candidates_returned = candidates_returned.value();
    return stats;
  }

  obs::Histogram* query_timer() {
    return timing_enabled.load(std::memory_order_relaxed)
               ? &query_latency_nanos
               : nullptr;
  }
  obs::Histogram* insert_timer() {
    return timing_enabled.load(std::memory_order_relaxed)
               ? &insert_latency_nanos
               : nullptr;
  }
};

/// Live instruments of one SBlockSketch (same contract as
/// BlockSketchMetrics, plus the eviction/spill telemetry of the bounded
/// sketch).
struct SBlockSketchMetrics {
  obs::Counter inserts;
  obs::Counter queries;
  obs::Counter live_hits;
  obs::Counter disk_loads;
  obs::Counter evictions;
  obs::Counter query_misses;
  obs::Counter representative_comparisons;
  obs::Counter candidates_returned;
  /// Kernel-path telemetry (see BlockSketchMetrics).
  obs::Counter route_batches;
  obs::Counter reps_pruned;
  obs::Histogram route_batch_size;
  obs::Histogram query_latency_nanos;
  obs::Histogram insert_latency_nanos;
  obs::Histogram spill_load_latency_nanos;   // reload from secondary storage
  obs::Histogram spill_write_latency_nanos;  // eviction encode + Put
  std::atomic<bool> timing_enabled{false};

  void MergeFrom(const SBlockSketchMetrics& other) {
    inserts.Merge(other.inserts);
    queries.Merge(other.queries);
    live_hits.Merge(other.live_hits);
    disk_loads.Merge(other.disk_loads);
    evictions.Merge(other.evictions);
    query_misses.Merge(other.query_misses);
    representative_comparisons.Merge(other.representative_comparisons);
    candidates_returned.Merge(other.candidates_returned);
    route_batches.Merge(other.route_batches);
    reps_pruned.Merge(other.reps_pruned);
    route_batch_size.Merge(other.route_batch_size);
    query_latency_nanos.Merge(other.query_latency_nanos);
    insert_latency_nanos.Merge(other.insert_latency_nanos);
    spill_load_latency_nanos.Merge(other.spill_load_latency_nanos);
    spill_write_latency_nanos.Merge(other.spill_write_latency_nanos);
  }

  SBlockSketchStats ToStats() const {
    SBlockSketchStats stats;
    stats.inserts = inserts.value();
    stats.queries = queries.value();
    stats.live_hits = live_hits.value();
    stats.disk_loads = disk_loads.value();
    stats.evictions = evictions.value();
    stats.query_misses = query_misses.value();
    stats.representative_comparisons = representative_comparisons.value();
    stats.candidates_returned = candidates_returned.value();
    return stats;
  }

  obs::Histogram* query_timer() {
    return timing_enabled.load(std::memory_order_relaxed)
               ? &query_latency_nanos
               : nullptr;
  }
  obs::Histogram* insert_timer() {
    return timing_enabled.load(std::memory_order_relaxed)
               ? &insert_latency_nanos
               : nullptr;
  }
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_SKETCH_METRICS_H_

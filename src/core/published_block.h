#ifndef SKETCHLINK_CORE_PUBLISHED_BLOCK_H_
#define SKETCHLINK_CORE_PUBLISHED_BLOCK_H_

// The concurrent block representation behind BlockSketch / SBlockSketch.
//
// A PublishedBlock is built (or decoded) by a writer, published into an
// epoch-protected table, and from then on read lock-free:
//   - the anchor section is immutable after publish;
//   - each sub-block's representative reservoir is an immutable RepSet
//     snapshot behind an atomic pointer — mutations copy-on-write a fresh
//     snapshot and epoch-retire the old one;
//   - member ids live in an append-only chunk list whose release-published
//     size bounds what readers may traverse.
//
// CandidateList is the read-side handle Candidates() returns: it pins the
// block via shared_ptr and iterates a fixed-size prefix of one sub-block's
// member list — no copy of the id vector, no lock.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/sketch_types.h"

namespace sketchlink {

/// Append-only list of record ids in linked chunks. Exactly one writer
/// appends; readers observe a consistent prefix bounded by size() (release
/// store on append, acquire load on read). Chunks are never reallocated or
/// freed before the owning block, so iterators stay valid while the block
/// is pinned.
class MemberChunkList {
 public:
  MemberChunkList() = default;
  ~MemberChunkList();

  MemberChunkList(const MemberChunkList&) = delete;
  MemberChunkList& operator=(const MemberChunkList&) = delete;

  struct Chunk {
    explicit Chunk(size_t cap)
        : capacity(cap), slots(new RecordId[cap]) {}
    const size_t capacity;
    std::atomic<Chunk*> next{nullptr};
    std::unique_ptr<RecordId[]> slots;
  };

  /// Appends one id (single writer).
  void Append(RecordId id);

  /// Ids visible to a reader right now (acquire: every slot below the
  /// returned count is readable).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Iterates the first `count` ids; `count` must come from size().
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = RecordId;
    using difference_type = std::ptrdiff_t;
    using pointer = const RecordId*;
    using reference = RecordId;

    const_iterator() = default;
    const_iterator(const Chunk* chunk, size_t remaining)
        : chunk_(remaining == 0 ? nullptr : chunk), remaining_(remaining) {}

    RecordId operator*() const { return chunk_->slots[index_]; }

    const_iterator& operator++() {
      if (--remaining_ == 0) {
        chunk_ = nullptr;
        index_ = 0;
        return *this;
      }
      if (++index_ == chunk_->capacity) {
        chunk_ = chunk_->next.load(std::memory_order_acquire);
        index_ = 0;
      }
      return *this;
    }

    bool operator==(const const_iterator& other) const {
      return remaining_ == other.remaining_ && chunk_ == other.chunk_ &&
             index_ == other.index_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    const Chunk* chunk_ = nullptr;
    size_t index_ = 0;
    size_t remaining_ = 0;
  };

  const_iterator begin_prefix(size_t count) const {
    return const_iterator(head_.load(std::memory_order_acquire), count);
  }

  /// Allocated chunk bytes (reader-safe; for memory accounting).
  size_t ApproximateHeapBytes() const;

 private:
  static constexpr size_t kFirstChunkCapacity = 8;
  static constexpr size_t kMaxChunkCapacity = 65536;

  std::atomic<Chunk*> head_{nullptr};
  Chunk* tail_ = nullptr;     // writer only
  size_t tail_used_ = 0;      // writer only
  std::atomic<size_t> size_{0};
};

/// A block published for concurrent reads. See the file comment for the
/// synchronization contract of each section.
class PublishedBlock {
 public:
  explicit PublishedBlock(size_t lambda);
  ~PublishedBlock();

  PublishedBlock(const PublishedBlock&) = delete;
  PublishedBlock& operator=(const PublishedBlock&) = delete;

  /// The shared all-empty reservoir every sub starts from; never retired.
  static const RepSet* EmptyReps();

  // --- anchor section: written before publish, immutable afterwards ---
  std::string anchor;
  QGramProfile anchor_profile;
  simd::JaroPattern anchor_pattern;
  simd::BitProfile anchor_bits;

  struct Sub {
    std::atomic<const RepSet*> reps{nullptr};  // set to EmptyReps() in ctor
    MemberChunkList members;
  };

  size_t num_subs() const { return num_subs_; }
  Sub& sub(size_t i) { return subs_[i]; }
  const Sub& sub(size_t i) const { return subs_[i]; }

  /// Publishes a fresh reservoir snapshot for sub `i` (writer only) and
  /// epoch-retires the replaced one. Takes ownership of `fresh`.
  void PublishReps(size_t i, const RepSet* fresh);

  // --- SBlockSketch bookkeeping ---
  // xi / last_access are bumped by lock-free readers (relaxed; they only
  // feed eviction scoring). The plain fields are written at admission under
  // the sketch's write lock and never read outside it.
  std::atomic<uint64_t> xi{0};
  std::atomic<uint64_t> last_access{0};
  uint64_t admit_evictions = 0;  // global eviction count at admission
  uint64_t admitted_at = 0;      // for the FIFO ablation
  uint64_t version = 0;          // invalidates stale eviction-queue entries

  size_t TotalMembers() const;
  size_t ApproximateMemoryUsage() const;

  /// Deep-copies into the classic representation (diagnostics, spilling).
  /// Safe concurrently with readers and the single writer.
  SketchBlock Materialize() const;

  /// Serializes with the exact SketchBlock::EncodeTo wire format, reading
  /// the published state directly (no intermediate copy).
  void EncodeTo(std::string* dst) const;

  /// Moves a decoded (and rehydrated) SketchBlock into the published
  /// representation.
  static std::shared_ptr<PublishedBlock> FromSketchBlock(SketchBlock&& block);

 private:
  size_t num_subs_;
  std::unique_ptr<Sub[]> subs_;
};

/// The candidate set of one query: a pinned, fixed-size view over the
/// chosen sub-block's member ids. Cheap to move, copyable (copies share the
/// pin), and iterable like the std::vector<RecordId> it replaces. The ids
/// stay valid for the lifetime of this handle even if the block is
/// concurrently evicted or mutated.
class CandidateList {
 public:
  CandidateList() = default;
  CandidateList(std::shared_ptr<const PublishedBlock> block, size_t sub)
      : block_(std::move(block)),
        members_(&block_->sub(sub).members),
        size_(members_->size()) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  MemberChunkList::const_iterator begin() const {
    return members_ == nullptr ? MemberChunkList::const_iterator()
                               : members_->begin_prefix(size_);
  }
  MemberChunkList::const_iterator end() const {
    return MemberChunkList::const_iterator();
  }

  std::vector<RecordId> ToVector() const;
  void AppendTo(std::vector<RecordId>* out) const;

  friend bool operator==(const CandidateList& a, const CandidateList& b);
  friend bool operator!=(const CandidateList& a, const CandidateList& b) {
    return !(a == b);
  }

 private:
  std::shared_ptr<const PublishedBlock> block_;
  const MemberChunkList* members_ = nullptr;
  size_t size_ = 0;
};

/// gtest-friendly printing (mirrors how a vector of ids would print).
std::ostream& operator<<(std::ostream& os, const CandidateList& list);

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_PUBLISHED_BLOCK_H_

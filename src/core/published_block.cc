#include "core/published_block.h"

#include <algorithm>

#include "common/coding.h"
#include "common/epoch.h"
#include "common/memory_tracker.h"

namespace sketchlink {

MemberChunkList::~MemberChunkList() {
  Chunk* chunk = head_.load(std::memory_order_relaxed);
  while (chunk != nullptr) {
    Chunk* next = chunk->next.load(std::memory_order_relaxed);
    delete chunk;
    chunk = next;
  }
}

void MemberChunkList::Append(RecordId id) {
  if (tail_ == nullptr || tail_used_ == tail_->capacity) {
    const size_t capacity =
        tail_ == nullptr
            ? kFirstChunkCapacity
            : std::min(tail_->capacity * 2, kMaxChunkCapacity);
    Chunk* chunk = new Chunk(capacity);
    if (tail_ == nullptr) {
      head_.store(chunk, std::memory_order_release);
    } else {
      tail_->next.store(chunk, std::memory_order_release);
    }
    tail_ = chunk;
    tail_used_ = 0;
  }
  tail_->slots[tail_used_++] = id;
  // The release store publishes the slot write (and any new chunk links)
  // to readers that acquire size().
  size_.store(size_.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
}

size_t MemberChunkList::ApproximateHeapBytes() const {
  size_t bytes = 0;
  const Chunk* chunk = head_.load(std::memory_order_acquire);
  while (chunk != nullptr) {
    bytes += sizeof(Chunk) + chunk->capacity * sizeof(RecordId);
    chunk = chunk->next.load(std::memory_order_acquire);
  }
  return bytes;
}

const RepSet* PublishedBlock::EmptyReps() {
  static const RepSet* empty = new RepSet();
  return empty;
}

PublishedBlock::PublishedBlock(size_t lambda)
    : num_subs_(lambda), subs_(new Sub[lambda]) {
  for (size_t i = 0; i < num_subs_; ++i) {
    subs_[i].reps.store(EmptyReps(), std::memory_order_relaxed);
  }
}

PublishedBlock::~PublishedBlock() {
  // No reader can hold this block (shared_ptr refcount reached zero), so
  // the current snapshots can be freed directly; replaced ones were already
  // handed to the epoch manager by PublishReps.
  for (size_t i = 0; i < num_subs_; ++i) {
    const RepSet* reps = subs_[i].reps.load(std::memory_order_relaxed);
    if (reps != EmptyReps()) delete reps;
  }
}

void PublishedBlock::PublishReps(size_t i, const RepSet* fresh) {
  const RepSet* old = subs_[i].reps.load(std::memory_order_relaxed);
  subs_[i].reps.store(fresh, std::memory_order_release);
  if (old != EmptyReps()) {
    epoch::EpochManager::Global().Retire([old] { delete old; });
  }
}

size_t PublishedBlock::TotalMembers() const {
  size_t total = 0;
  for (size_t i = 0; i < num_subs_; ++i) total += subs_[i].members.size();
  return total;
}

namespace {

size_t ProfileHeapBytes(const QGramProfile& profile) {
  size_t bytes = profile.capacity() * sizeof(std::string);
  for (const std::string& gram : profile) bytes += StringHeapBytes(gram);
  return bytes;
}

}  // namespace

size_t PublishedBlock::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this) + StringHeapBytes(anchor) +
                 ProfileHeapBytes(anchor_profile) + num_subs_ * sizeof(Sub);
  bytes += anchor_bits.HeapBytes();
  for (size_t i = 0; i < num_subs_; ++i) {
    const RepSet* reps = subs_[i].reps.load(std::memory_order_acquire);
    if (reps != EmptyReps()) {
      bytes += sizeof(RepSet) + reps->ApproximateHeapBytes();
    }
    bytes += subs_[i].members.ApproximateHeapBytes();
  }
  return bytes;
}

SketchBlock PublishedBlock::Materialize() const {
  SketchBlock block(num_subs_);
  block.anchor = anchor;
  block.anchor_profile = anchor_profile;
  block.anchor_pattern = anchor_pattern;
  block.anchor_bits = anchor_bits;
  for (size_t i = 0; i < num_subs_; ++i) {
    const RepSet* reps = subs_[i].reps.load(std::memory_order_acquire);
    static_cast<RepSet&>(block.subs[i]) = *reps;
    const size_t count = subs_[i].members.size();
    block.subs[i].members.reserve(count);
    auto it = subs_[i].members.begin_prefix(count);
    for (size_t m = 0; m < count; ++m, ++it) {
      block.subs[i].members.push_back(*it);
    }
  }
  return block;
}

void PublishedBlock::EncodeTo(std::string* dst) const {
  // Byte-identical to SketchBlock::EncodeTo for the same logical content.
  PutLengthPrefixed(dst, anchor);
  PutVarint32(dst, static_cast<uint32_t>(num_subs_));
  for (size_t i = 0; i < num_subs_; ++i) {
    const RepSet* reps = subs_[i].reps.load(std::memory_order_acquire);
    PutVarint32(dst, static_cast<uint32_t>(reps->representatives.size()));
    for (const std::string& rep : reps->representatives) {
      PutLengthPrefixed(dst, rep);
    }
    const size_t count = subs_[i].members.size();
    PutVarint32(dst, static_cast<uint32_t>(count));
    auto it = subs_[i].members.begin_prefix(count);
    for (size_t m = 0; m < count; ++m, ++it) {
      PutVarint64(dst, *it);
    }
  }
}

std::shared_ptr<PublishedBlock> PublishedBlock::FromSketchBlock(
    SketchBlock&& block) {
  auto published = std::make_shared<PublishedBlock>(block.subs.size());
  published->anchor = std::move(block.anchor);
  published->anchor_profile = std::move(block.anchor_profile);
  published->anchor_pattern = std::move(block.anchor_pattern);
  published->anchor_bits = std::move(block.anchor_bits);
  for (size_t i = 0; i < published->num_subs_; ++i) {
    SketchSubBlock& sub = block.subs[i];
    if (!sub.representatives.empty()) {
      auto* reps = new RepSet(std::move(static_cast<RepSet&>(sub)));
      published->subs_[i].reps.store(reps, std::memory_order_relaxed);
    }
    for (RecordId id : sub.members) {
      published->subs_[i].members.Append(id);
    }
  }
  return published;
}

std::vector<RecordId> CandidateList::ToVector() const {
  std::vector<RecordId> out;
  AppendTo(&out);
  return out;
}

void CandidateList::AppendTo(std::vector<RecordId>* out) const {
  out->reserve(out->size() + size_);
  for (RecordId id : *this) out->push_back(id);
}

bool operator==(const CandidateList& a, const CandidateList& b) {
  if (a.size_ != b.size_) return false;
  auto ia = a.begin();
  auto ib = b.begin();
  for (size_t i = 0; i < a.size_; ++i, ++ia, ++ib) {
    if (*ia != *ib) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const CandidateList& list) {
  os << "{";
  bool first = true;
  for (RecordId id : list) {
    if (!first) os << ", ";
    os << id;
    first = false;
  }
  return os << "}";
}

}  // namespace sketchlink

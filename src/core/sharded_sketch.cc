#include "core/sharded_sketch.h"

#include <algorithm>

#include "common/hash.h"

namespace sketchlink {

namespace {

/// Decorrelates the stripes' coin-flip streams: each stripe gets its own RNG
/// seed derived from the base seed, so stripe s makes the same decisions in
/// every run (and at every thread count) but different stripes do not march
/// in lockstep.
uint64_t StripeSeed(uint64_t base_seed, size_t stripe) {
  return base_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(stripe + 1));
}

/// Buckets a batch per stripe preserving submission order within each
/// stripe — the load-bearing step of the determinism guarantee.
template <typename StripeOfFn>
std::vector<std::vector<const SketchInsert*>> BucketByStripe(
    const std::vector<SketchInsert>& entries, size_t num_stripes,
    const StripeOfFn& stripe_of) {
  std::vector<std::vector<const SketchInsert*>> buckets(num_stripes);
  for (const SketchInsert& entry : entries) {
    buckets[stripe_of(*entry.block_key)].push_back(&entry);
  }
  return buckets;
}

}  // namespace

ShardedBlockSketch::ShardedBlockSketch(const BlockSketchOptions& options,
                                       KeyDistanceFn distance,
                                       size_t num_stripes)
    : options_(options) {
  if (num_stripes == 0) num_stripes = 1;
  stripes_.reserve(num_stripes);
  for (size_t s = 0; s < num_stripes; ++s) {
    BlockSketchOptions stripe_options = options;
    stripe_options.seed = StripeSeed(options.seed, s);
    stripes_.push_back(std::make_unique<BlockSketch>(stripe_options, distance));
  }
}

size_t ShardedBlockSketch::StripeOf(std::string_view block_key) const {
  return Fnv1a64(block_key) % stripes_.size();
}

void ShardedBlockSketch::Insert(std::string_view block_key,
                                std::string_view key_values, RecordId id) {
  stripes_[StripeOf(block_key)]->Insert(block_key, key_values, id);
}

void ShardedBlockSketch::InsertBatch(const std::vector<SketchInsert>& entries,
                                     ThreadPool* pool) {
  const auto buckets = BucketByStripe(
      entries, stripes_.size(),
      [this](const std::string& key) { return StripeOf(key); });
  const auto drain = [&](size_t s) {
    BlockSketch& sketch = *stripes_[s];
    for (const SketchInsert* entry : buckets[s]) {
      sketch.Insert(*entry->block_key, *entry->key_values, entry->id);
    }
  };
  if (pool != nullptr) {
    pool->RunShards(stripes_.size(), drain);
  } else {
    for (size_t s = 0; s < stripes_.size(); ++s) drain(s);
  }
}

CandidateList ShardedBlockSketch::Candidates(
    std::string_view block_key, std::string_view key_values) const {
  return stripes_[StripeOf(block_key)]->Candidates(block_key, key_values);
}

size_t ShardedBlockSketch::num_blocks() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) total += stripe->num_blocks();
  return total;
}

void ShardedBlockSketch::MergeMetricsInto(BlockSketchMetrics* out) const {
  // Instrument reads are relaxed-atomic: a merge racing with writers yields
  // a consistent-enough cut, same contract as a registry snapshot.
  for (const auto& stripe : stripes_) {
    out->MergeFrom(stripe->metrics());
  }
}

BlockSketchStats ShardedBlockSketch::stats() const {
  BlockSketchMetrics merged;
  MergeMetricsInto(&merged);
  return merged.ToStats();
}

void ShardedBlockSketch::EnableLatencyTiming() {
  for (const auto& stripe : stripes_) stripe->EnableLatencyTiming();
}

std::vector<obs::Registration> ShardedBlockSketch::RegisterMetrics(
    obs::Registry* registry, const std::string& instance) {
  std::vector<obs::Registration> regs;
  if (registry == nullptr) return regs;
  if (registry->enabled()) EnableLatencyTiming();
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"instance", instance}, {"kind", "block"}};
  const auto add_counter = [&](const char* name, const char* help,
                               obs::Counter BlockSketchMetrics::*field) {
    regs.push_back(registry->AddCounterFn(
        obs::MetricId(name, help, labels), [this, field] {
          BlockSketchMetrics merged;
          MergeMetricsInto(&merged);
          return (merged.*field).value();
        }));
  };
  const auto add_histogram = [&](const char* name, const char* help,
                                 obs::Histogram BlockSketchMetrics::*field) {
    regs.push_back(registry->AddHistogramFn(
        obs::MetricId(name, help, labels), [this, field] {
          BlockSketchMetrics merged;
          MergeMetricsInto(&merged);
          return (merged.*field).Snapshot();
        }));
  };
  add_counter("sketchlink_sketch_inserts_total", "Records routed into the sketch",
              &BlockSketchMetrics::inserts);
  add_counter("sketchlink_sketch_queries_total", "Candidate queries served",
              &BlockSketchMetrics::queries);
  add_counter("sketchlink_sketch_representative_comparisons_total",
              "Distance computations against representatives",
              &BlockSketchMetrics::representative_comparisons);
  add_counter("sketchlink_sketch_blocks_created_total",
              "Blocks created on first contact",
              &BlockSketchMetrics::blocks_created);
  add_counter("sketchlink_sketch_candidates_returned_total",
              "Candidate ids handed to the matcher",
              &BlockSketchMetrics::candidates_returned);
  add_counter("sketchlink_sketch_route_batches_total",
              "Routing decisions taken by the batched kernel path",
              &BlockSketchMetrics::route_batches);
  add_counter("sketchlink_sketch_reps_pruned_total",
              "Representatives skipped by kernel prune bounds",
              &BlockSketchMetrics::reps_pruned);
  add_histogram("sketchlink_sketch_route_batch_size",
                "Representatives per batched routing decision",
                &BlockSketchMetrics::route_batch_size);
  add_histogram("sketchlink_sketch_query_latency_nanos",
                "Per-query sketch latency",
                &BlockSketchMetrics::query_latency_nanos);
  add_histogram("sketchlink_sketch_insert_latency_nanos",
                "Per-insert sketch latency",
                &BlockSketchMetrics::insert_latency_nanos);
  // The gauges read lock-free state (atomic sizes, epoch-guarded walks), so
  // a scrape thread can evaluate them mid-insert without blocking anything.
  regs.push_back(registry->AddCallbackGauge(
      obs::MetricId("sketchlink_sketch_blocks", "Blocks summarized", labels),
      [this] { return static_cast<double>(num_blocks()); }));
  regs.push_back(registry->AddCallbackGauge(
      obs::MetricId("sketchlink_sketch_memory_bytes",
                    "Approximate sketch memory", labels),
      [this] { return static_cast<double>(ApproximateMemoryUsage()); }));
  return regs;
}

size_t ShardedBlockSketch::ApproximateMemoryUsage() const {
  size_t total = sizeof(*this);
  for (const auto& stripe : stripes_) {
    total += sizeof(BlockSketch) + stripe->ApproximateMemoryUsage();
  }
  return total;
}

size_t ShardedSBlockSketch::StripeMuBudget(size_t mu, size_t num_stripes,
                                           size_t stripe) {
  if (mu == SIZE_MAX) return SIZE_MAX;
  if (num_stripes == 0) return mu;
  const size_t base = mu / num_stripes;
  const size_t budget = base + (stripe < mu % num_stripes ? 1 : 0);
  return std::max<size_t>(1, budget);
}

ShardedSBlockSketch::ShardedSBlockSketch(const SBlockSketchOptions& options,
                                         kv::Db* spill_db,
                                         KeyDistanceFn distance,
                                         size_t num_stripes)
    : options_(options) {
  if (num_stripes == 0) num_stripes = 1;
  stripes_.reserve(num_stripes);
  MaintenanceQueue* maintenance =
      options.background_spill ? &maintenance_ : nullptr;
  for (size_t s = 0; s < num_stripes; ++s) {
    SBlockSketchOptions stripe_options = options;
    stripe_options.sketch.seed = StripeSeed(options.sketch.seed, s);
    stripe_options.mu = StripeMuBudget(options.mu, num_stripes, s);
    stripes_.push_back(std::make_unique<SBlockSketch>(stripe_options, spill_db,
                                                      distance, maintenance));
  }
}

size_t ShardedSBlockSketch::StripeOf(std::string_view block_key) const {
  return Fnv1a64(block_key) % stripes_.size();
}

Status ShardedSBlockSketch::Insert(std::string_view block_key,
                                   std::string_view key_values, RecordId id) {
  return stripes_[StripeOf(block_key)]->Insert(block_key, key_values, id);
}

Status ShardedSBlockSketch::InsertBatch(
    const std::vector<SketchInsert>& entries, ThreadPool* pool) {
  const auto buckets = BucketByStripe(
      entries, stripes_.size(),
      [this](const std::string& key) { return StripeOf(key); });
  std::vector<Status> results(stripes_.size());
  const auto drain = [&](size_t s) {
    SBlockSketch& sketch = *stripes_[s];
    for (const SketchInsert* entry : buckets[s]) {
      Status status =
          sketch.Insert(*entry->block_key, *entry->key_values, entry->id);
      if (!status.ok()) {
        results[s] = std::move(status);
        return;
      }
    }
  };
  if (pool != nullptr) {
    pool->RunShards(stripes_.size(), drain);
  } else {
    for (size_t s = 0; s < stripes_.size(); ++s) drain(s);
  }
  for (Status& status : results) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Result<CandidateList> ShardedSBlockSketch::Candidates(
    std::string_view block_key, std::string_view key_values) {
  return stripes_[StripeOf(block_key)]->Candidates(block_key, key_values);
}

size_t ShardedSBlockSketch::num_live_blocks() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) total += stripe->num_live_blocks();
  return total;
}

Status ShardedSBlockSketch::WaitForMaintenance() {
  Status first;
  for (const auto& stripe : stripes_) {
    Status status = stripe->WaitForMaintenance();
    if (first.ok() && !status.ok()) first = std::move(status);
  }
  return first;
}

void ShardedSBlockSketch::MergeMetricsInto(SBlockSketchMetrics* out) const {
  // Relaxed-atomic reads; no locks (see ShardedBlockSketch).
  for (const auto& stripe : stripes_) {
    out->MergeFrom(stripe->metrics());
  }
}

SBlockSketchStats ShardedSBlockSketch::stats() const {
  SBlockSketchMetrics merged;
  MergeMetricsInto(&merged);
  return merged.ToStats();
}

void ShardedSBlockSketch::EnableLatencyTiming() {
  for (const auto& stripe : stripes_) stripe->EnableLatencyTiming();
}

std::vector<obs::Registration> ShardedSBlockSketch::RegisterMetrics(
    obs::Registry* registry, const std::string& instance) {
  std::vector<obs::Registration> regs;
  if (registry == nullptr) return regs;
  if (registry->enabled()) EnableLatencyTiming();
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"instance", instance}, {"kind", "sblock"}};
  const auto add_counter = [&](const char* name, const char* help,
                               obs::Counter SBlockSketchMetrics::*field) {
    regs.push_back(registry->AddCounterFn(
        obs::MetricId(name, help, labels), [this, field] {
          SBlockSketchMetrics merged;
          MergeMetricsInto(&merged);
          return (merged.*field).value();
        }));
  };
  const auto add_histogram = [&](const char* name, const char* help,
                                 obs::Histogram SBlockSketchMetrics::*field) {
    regs.push_back(registry->AddHistogramFn(
        obs::MetricId(name, help, labels), [this, field] {
          SBlockSketchMetrics merged;
          MergeMetricsInto(&merged);
          return (merged.*field).Snapshot();
        }));
  };
  add_counter("sketchlink_sketch_inserts_total", "Records routed into the sketch",
              &SBlockSketchMetrics::inserts);
  add_counter("sketchlink_sketch_queries_total", "Candidate queries served",
              &SBlockSketchMetrics::queries);
  add_counter("sketchlink_sketch_live_hits_total",
              "Operations served from the live table",
              &SBlockSketchMetrics::live_hits);
  add_counter("sketchlink_sketch_disk_loads_total",
              "Blocks reloaded from the spill store",
              &SBlockSketchMetrics::disk_loads);
  add_counter("sketchlink_sketch_evictions_total",
              "Blocks spilled to secondary storage",
              &SBlockSketchMetrics::evictions);
  add_counter("sketchlink_sketch_query_misses_total",
              "Queries for block keys the stream never produced",
              &SBlockSketchMetrics::query_misses);
  add_counter("sketchlink_sketch_representative_comparisons_total",
              "Distance computations against representatives",
              &SBlockSketchMetrics::representative_comparisons);
  add_counter("sketchlink_sketch_candidates_returned_total",
              "Candidate ids handed to the matcher",
              &SBlockSketchMetrics::candidates_returned);
  add_counter("sketchlink_sketch_route_batches_total",
              "Routing decisions taken by the batched kernel path",
              &SBlockSketchMetrics::route_batches);
  add_counter("sketchlink_sketch_reps_pruned_total",
              "Representatives skipped by kernel prune bounds",
              &SBlockSketchMetrics::reps_pruned);
  add_histogram("sketchlink_sketch_route_batch_size",
                "Representatives per batched routing decision",
                &SBlockSketchMetrics::route_batch_size);
  add_histogram("sketchlink_sketch_query_latency_nanos",
                "Per-query sketch latency",
                &SBlockSketchMetrics::query_latency_nanos);
  add_histogram("sketchlink_sketch_insert_latency_nanos",
                "Per-insert sketch latency",
                &SBlockSketchMetrics::insert_latency_nanos);
  add_histogram("sketchlink_sketch_spill_load_latency_nanos",
                "Reload-from-spill latency (actual loads only)",
                &SBlockSketchMetrics::spill_load_latency_nanos);
  add_histogram("sketchlink_sketch_spill_write_latency_nanos",
                "Eviction encode+write latency",
                &SBlockSketchMetrics::spill_write_latency_nanos);
  // Lock-free gauges: scrape threads never block a stripe.
  regs.push_back(registry->AddCallbackGauge(
      obs::MetricId("sketchlink_sketch_live_blocks",
                    "Blocks currently live in the hash table T", labels),
      [this] { return static_cast<double>(num_live_blocks()); }));
  regs.push_back(registry->AddCallbackGauge(
      obs::MetricId("sketchlink_sketch_memory_bytes",
                    "Approximate sketch memory", labels),
      [this] { return static_cast<double>(ApproximateMemoryUsage()); }));
  return regs;
}

size_t ShardedSBlockSketch::ApproximateMemoryUsage() const {
  size_t total = sizeof(*this);
  for (const auto& stripe : stripes_) {
    total += sizeof(SBlockSketch) + stripe->ApproximateMemoryUsage();
  }
  return total;
}

}  // namespace sketchlink
